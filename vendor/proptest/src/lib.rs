//! Offline drop-in subset of [proptest](https://docs.rs/proptest).
//!
//! Supports the `proptest!` macro surface this workspace uses — range
//! and tuple strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! `Strategy::prop_map`, `prop_assert!`, `prop_assume!`, and
//! `ProptestConfig::with_cases` — with two deliberate simplifications:
//!
//! * **deterministic seeding**: cases derive from a fixed SplitMix64
//!   stream, so failures reproduce without persistence files;
//! * **no shrinking**: a failing case reports its message directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::ops::Range;

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRunner,
    };
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `sizes` and
    /// elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(!sizes.is_empty(), "empty size range");
        VecStrategy { element, sizes }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.sizes.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it is retried, not failed.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail<M: Display>(msg: M) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    /// Builds a rejection.
    pub fn reject<M: Display>(msg: M) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

/// Deterministic RNG handed to strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`; no
    /// shrinking here, so it is a plain post-generation transform).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform over `{false, true}`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The upstream `proptest::bool::ANY` constant.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
int_range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Runs generated cases against a property closure.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `property` until `config.cases` cases pass. Rejected cases
    /// (via `prop_assume!`) are retried up to a global attempt budget;
    /// a failed case panics with its message and the case seed.
    pub fn run<F>(&mut self, test_name: &str, mut property: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // Seed per test name so sibling tests explore different streams.
        let mut seed = 0xB1A5_0AE5_u64;
        for b in test_name.bytes() {
            seed = seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
        }
        let mut rng = TestRng::new(seed);
        let cases = self.config.cases.max(1);
        let max_attempts = (cases as u64) * 20;
        let mut passed = 0u32;
        let mut attempts = 0u64;
        while passed < cases {
            attempts += 1;
            if attempts > max_attempts {
                panic!(
                    "proptest `{test_name}`: too many rejected cases \
                     ({passed}/{cases} passed after {attempts} attempts)"
                );
            }
            match property(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{test_name}` failed on case {passed}: {msg}")
                }
            }
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+),
            )));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {left:?}, right: {right:?})",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Rejects (retries) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident $args:tt $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default())
            $(#[$meta])* fn $name $args $body $($rest)*);
    };
    (@impl ($config:expr)) => {};
    (@impl ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::TestRunner::new($config).run(stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            });
        }
        $crate::proptest!(@impl ($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            x in -5.0f64..5.0,
            n in 1usize..10,
            pair in (0u64..4, -3i32..3),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n), "n = {n}");
            prop_assert!(pair.0 < 4 && (-3..3).contains(&pair.1));
        }

        #[test]
        fn vec_strategy_sizes(
            v in prop::collection::vec(0.0f64..1.0, 3..24),
        ) {
            prop_assert!((3..24).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_rejects_without_failing(k in 0usize..6) {
            prop_assume!(k % 2 == 0);
            prop_assert_eq!(k % 2, 0);
        }

        #[test]
        fn prop_map_transforms_values(
            doubled in (0u64..50).prop_map(|x| x * 2),
        ) {
            prop_assert!(doubled % 2 == 0 && doubled < 100);
        }

        #[test]
        fn bool_any_generates_both(
            flags in prop::collection::vec(prop::bool::ANY, 64..65),
        ) {
            // 64 fair coins: all-equal has probability 2^-63.
            prop_assert!(flags.iter().any(|&b| b));
            prop_assert!(flags.iter().any(|&b| !b));
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failures_panic() {
        TestRunner::new(ProptestConfig::with_cases(4)).run("failures_panic", |rng| {
            let x = Strategy::generate(&(0u64..10), rng);
            prop_assert!(x > 100, "x = {x}");
            Ok(())
        });
    }
}
