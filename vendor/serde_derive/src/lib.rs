//! Derive macros for the vendored serde subset.
//!
//! Parses the deriving item with a hand-rolled scanner over
//! [`proc_macro::TokenStream`] (no `syn`/`quote` in this offline
//! workspace) and emits impls against the `Content` data model of the
//! vendored `serde` crate. Supported shapes — the ones this workspace
//! uses:
//!
//! * structs with named fields → `Content::Map`, field name as key;
//! * enums with unit variants → `Content::Str(variant_name)`;
//! * enums with one-field tuple (newtype) variants →
//!   `Content::Map([(variant_name, inner)])` (serde's externally-tagged
//!   representation).
//!
//! Generics and `#[serde(...)]` attributes are intentionally not
//! supported; deriving on such an item fails with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct with named fields or an
/// enum of unit / newtype variants.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` for a struct with named fields or an
/// enum of unit / newtype variants.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    /// `true` for a one-field tuple (newtype) variant, `false` for unit.
    newtype: bool,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match (mode, &item) {
            (Mode::Serialize, Item::Struct { name, fields }) => struct_serialize(name, fields),
            (Mode::Deserialize, Item::Struct { name, fields }) => struct_deserialize(name, fields),
            (Mode::Serialize, Item::Enum { name, variants }) => enum_serialize(name, variants),
            (Mode::Deserialize, Item::Enum { name, variants }) => enum_deserialize(name, variants),
        },
        Err(msg) => format!("::core::compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Scans the deriving item down to its name and field/variant names.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
                return Err(format!("serde derive: unexpected `{word}`"));
            }
            other => return Err(format!("serde derive: unexpected token {other:?}")),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected item name, got {other:?}")),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "serde derive: generic type `{name}` is not supported by the vendored serde"
            ));
        }
        other => {
            return Err(format!(
                "serde derive: expected braced body for `{name}` \
                 (tuple/unit structs unsupported), got {other:?}"
            ))
        }
    };
    if kind == "struct" {
        Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

/// Extracts field names from `name: Type, ...`, skipping attributes,
/// visibility, and the type tokens (commas inside `<...>` nest in
/// groups only for `()`/`[]`/`{}`, so angle depth is tracked by hand).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field = loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                other => return Err(format!("serde derive: unexpected field token {other:?}")),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde derive: expected `:` after field `{field}`, got {other:?}"
                ))
            }
        }
        fields.push(field);
        // Skip the type: consume until a top-level (angle-depth 0) comma.
        // The `>` of `->` (fn-pointer types) is not an angle close: it
        // arrives as a joint `-` immediately followed by `>`.
        let mut angle_depth = 0i32;
        let mut after_joint_minus = false;
        loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) => {
                    match p.as_char() {
                        '<' => angle_depth += 1,
                        '>' if !after_joint_minus => angle_depth -= 1,
                        ',' if angle_depth == 0 => break,
                        _ => {}
                    }
                    after_joint_minus =
                        p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint;
                }
                Some(_) => after_joint_minus = false,
            }
        }
    }
}

/// Extracts variant names and shapes from an enum body.
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let name = loop {
            match tokens.next() {
                None => return Ok(variants),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                other => return Err(format!("serde derive: unexpected variant token {other:?}")),
            }
        };
        let mut newtype = false;
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let has_comma = g
                    .stream()
                    .into_iter()
                    .any(|t| matches!(&t, TokenTree::Punct(p) if p.as_char() == ','));
                if has_comma {
                    return Err(format!(
                        "serde derive: variant `{name}` has multiple fields; only unit and \
                         newtype variants are supported by the vendored serde"
                    ));
                }
                newtype = true;
                tokens.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde derive: struct variant `{name}` is not supported by the vendored serde"
                ));
            }
            _ => {}
        }
        match tokens.next() {
            None => {
                variants.push(Variant { name, newtype });
                return Ok(variants);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name, newtype });
            }
            other => {
                return Err(format!(
                    "serde derive: expected `,` after variant `{name}`, got {other:?}"
                ))
            }
        }
    }
}

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let mut pushes = String::new();
    for field in fields {
        pushes.push_str(&format!(
            "entries.push(({field:?}.to_string(), ::serde::to_content(&self.{field})\
             .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?));\n"
        ));
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 let mut entries = ::std::vec::Vec::with_capacity({len});\n\
                 {pushes}\
                 serializer.serialize_content(::serde::Content::Map(entries))\n\
             }}\n\
         }}\n",
        len = fields.len(),
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let mut extracts = String::new();
    for field in fields {
        extracts.push_str(&format!(
            "let {field} = {{\n\
                 let at = entries.iter().position(|(k, _)| k == {field:?})\n\
                     .ok_or_else(|| <D::Error as ::serde::de::Error>::custom(\n\
                         concat!(\"missing field `\", {field:?}, \"` in \", {name:?})))?;\n\
                 ::serde::from_content(entries.swap_remove(at).1)\n\
                     .map_err(|e| <D::Error as ::serde::de::Error>::custom(\n\
                         format!(\"field `{field}`: {{e}}\")))?\n\
             }};\n"
        ));
    }
    let field_list = fields.join(", ");
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 let mut entries = match deserializer.deserialize_content()? {{\n\
                     ::serde::Content::Map(entries) => entries,\n\
                     _ => return Err(<D::Error as ::serde::de::Error>::custom(\n\
                         concat!(\"expected a map for \", {name:?}))),\n\
                 }};\n\
                 {extracts}\
                 let _ = &mut entries;\n\
                 ::core::result::Result::Ok({name} {{ {field_list} }})\n\
             }}\n\
         }}\n"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        if v.newtype {
            arms.push_str(&format!(
                "{name}::{vname}(inner) => ::serde::Content::Map(vec![({vname:?}.to_string(),\n\
                     ::serde::to_content(inner)\n\
                         .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?)]),\n"
            ));
        } else {
            arms.push_str(&format!(
                "{name}::{vname} => ::serde::Content::Str({vname:?}.to_string()),\n"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 let content = match self {{\n\
                     {arms}\
                 }};\n\
                 serializer.serialize_content(content)\n\
             }}\n\
         }}\n"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut newtype_arms = String::new();
    for v in variants {
        let vname = &v.name;
        if v.newtype {
            newtype_arms.push_str(&format!(
                "{vname:?} => ::core::result::Result::Ok({name}::{vname}(\n\
                     ::serde::from_content(value)\n\
                         .map_err(|e| <D::Error as ::serde::de::Error>::custom(\n\
                             format!(\"variant `{vname}`: {{e}}\")))?)),\n"
            ));
        } else {
            unit_arms.push_str(&format!(
                "{vname:?} => ::core::result::Result::Ok({name}::{vname}),\n"
            ));
        }
    }
    let value_pat = if variants.iter().any(|v| v.newtype) {
        "value"
    } else {
        "_value"
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 match deserializer.deserialize_content()? {{\n\
                     ::serde::Content::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\
                         other => Err(<D::Error as ::serde::de::Error>::custom(\n\
                             format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(mut entries) if entries.len() == 1 => {{\n\
                         let (tag, {value_pat}) = entries.pop().expect(\"length checked\");\n\
                         match tag.as_str() {{\n\
                             {newtype_arms}\
                             other => Err(<D::Error as ::serde::de::Error>::custom(\n\
                                 format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(<D::Error as ::serde::de::Error>::custom(\n\
                         concat!(\"expected a variant of \", {name:?}))),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}
