//! Offline drop-in subset of `serde_json`: [`to_string`] / [`from_str`]
//! over the vendored serde's `Content` data model.
//!
//! The emitted JSON matches real `serde_json` for the types this
//! workspace serializes: struct fields in declaration order, integer
//! map keys rendered as strings, non-finite floats as `null`, and
//! floats printed in Rust's shortest round-trip form. The parser is
//! marginally more lenient than real `serde_json` on numbers (it
//! accepts `+5`, leading zeros, and saturates overflowing exponents
//! to infinity instead of erroring); it never emits such forms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Content, Deserialize, Serialize};
use std::fmt::{self, Display, Write as _};

/// Error type for JSON serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = serde::to_content(value).map_err(|e| Error(e.0))?;
    let mut out = String::new();
    write_content(&mut out, &content);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<'a, T: Deserialize<'a>>(input: &'a str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    serde::from_content(value).map_err(|e| Error(e.0))
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_content(out: &mut String, content: &Content) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's float Display is the shortest round-trip form;
                // force a decimal point so the value re-parses as float.
                let s = format!("{v}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Real serde_json also writes null for NaN/Infinity.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_content(out, value);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("JSON nesting too deep"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.error("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    if self.peek() != Some(b'"') {
                        return Err(self.error("expected string key in object"));
                    }
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.error("expected `,` or `}` in object")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        debug_assert_eq!(self.bytes.get(self.pos), Some(&b'"'));
        self.pos += 1;
        self.parse_string_body(String::new())
    }

    /// Decodes the string body after the opening quote. Unescaped runs
    /// are copied in slices; escape decoding happens in exactly one
    /// place so the surrogate logic cannot drift between copies.
    fn parse_string_body(&mut self, mut out: String) -> Result<String, Error> {
        let mut start = self.pos;
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' | b'\\' => {
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?,
                    );
                    if b == b'"' {
                        self.pos += 1;
                        return Ok(out);
                    }
                    self.pos += 1;
                    let escaped = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000
                                    + (((first - 0xD800) as u32) << 10)
                                    + (second - 0xDC00) as u32;
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first as u32)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    start = self.pos;
                }
                _ => self.pos += 1,
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.error("truncated unicode escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.error("invalid unicode escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        self.skip_whitespace();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.error("expected a JSON value"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<String>(r#""a\nbé""#).unwrap(), "a\nbé");
        assert!(from_str::<u64>("1.5").is_err());
        assert!(from_str::<f64>("[1]").is_err());
        assert!(from_str::<f64>("1 2").is_err());
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![(1u64, 2.5f64), (3, -4.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[3,-4.0]]");
        let back: Vec<(u64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let mut m = std::collections::HashMap::new();
        m.insert(7u64, (1u64, 0.5f64));
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"7":[1,0.5]}"#);
        let back: std::collections::HashMap<u64, (u64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn float_shortest_roundtrip_is_exact() {
        for &v in &[0.1f64, 1.0 / 3.0, f64::MAX, 5e-324, -2.5e17] {
            let back: f64 = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }
}
