//! Offline drop-in subset of [serde](https://serde.rs).
//!
//! This workspace builds in environments with no crates.io access, so it
//! vendors the slice of serde's API surface its crates actually use:
//! the `Serialize` / `Deserialize` traits (plus derive), `Serializer` /
//! `Deserializer`, and the `ser::Error` / `de::Error` traits.
//!
//! Instead of serde's 29-method visitor data model, everything funnels
//! through one JSON-shaped tree, [`Content`]. A `Serializer` consumes a
//! `Content`; a `Deserializer` produces one. This is wire-compatible
//! with real serde for the self-describing formats used here (JSON),
//! and keeps manual trait impls written against real serde — generic
//! delegation like `Wire { .. }.serialize(serializer)` and
//! `D::Error::custom(..)` — compiling unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt::{self, Display};
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The universal in-memory data model: every `Serialize` impl reduces a
/// value to this tree, every `Deserialize` impl rebuilds from it.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also the encoding of `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (positive values normalize to `U64`).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (`Vec`, slices, tuples).
    Seq(Vec<Content>),
    /// A map with string keys (structs, maps, newtype enum variants).
    Map(Vec<(String, Content)>),
}

impl Content {
    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Serialization-side error support.
pub mod ser {
    use std::fmt::Display;

    /// Trait for serialization error types: anything that can be built
    /// from an error message.
    pub trait Error: Sized {
        /// Builds an error carrying `msg`.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error support.
pub mod de {
    use std::fmt::Display;

    /// Trait for deserialization error types: anything that can be
    /// built from an error message.
    pub trait Error: Sized {
        /// Builds an error carrying `msg`.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Error produced when converting values to/from [`Content`] directly
/// (e.g. via [`to_content`] / [`from_content`]).
#[derive(Debug, Clone)]
pub struct ContentError(pub String);

impl Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl ser::Error for ContentError {
    fn custom<T: Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

impl de::Error for ContentError {
    fn custom<T: Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

/// A data format that can consume the [`Content`] tree of any value.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: ser::Error;

    /// Consumes the fully-reduced value.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can produce a [`Content`] tree for a value.
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: de::Error;

    /// Produces the parsed input as a content tree.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A value that can reduce itself to the data model.
pub trait Serialize {
    /// Serializes `self` into the given format.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value that can rebuild itself from the data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes an instance from the given format.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The identity serializer: captures the [`Content`] tree itself.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }
}

/// The identity deserializer: replays a captured [`Content`] tree.
pub struct ContentDeserializer(pub Content);

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = ContentError;

    fn deserialize_content(self) -> Result<Content, ContentError> {
        Ok(self.0)
    }
}

/// Reduces any serializable value to its [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
    value.serialize(ContentSerializer)
}

/// Rebuilds any deserializable value from a [`Content`] tree.
pub fn from_content<'de, T: Deserialize<'de>>(content: Content) -> Result<T, ContentError> {
    T::deserialize(ContentDeserializer(content))
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

macro_rules! serialize_unsigned {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::U64(*self as u64))
            }
        }
    )*};
}
serialize_unsigned!(u8 u16 u32 u64 usize);

macro_rules! serialize_signed {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                let content = if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                };
                serializer.serialize_content(content)
            }
        }
    )*};
}
serialize_signed!(i8 i16 i32 i64 isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(*self as f64))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_content(Content::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn seq_to_content<'a, S, I, T>(iter: I) -> Result<Content, S::Error>
where
    S: Serializer,
    I: IntoIterator<Item = &'a T>,
    T: Serialize + 'a,
{
    let mut items = Vec::new();
    for item in iter {
        items.push(to_content(item).map_err(|e| <S::Error as ser::Error>::custom(e))?);
    }
    Ok(Content::Seq(items))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let content = seq_to_content::<S, _, _>(self.iter())?;
        serializer.serialize_content(content)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let content = seq_to_content::<S, _, _>(self.iter())?;
        serializer.serialize_content(content)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let content = seq_to_content::<S, _, _>(self.iter())?;
        serializer.serialize_content(content)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(
                    to_content(&self.$idx).map_err(|e| <S::Error as ser::Error>::custom(e))?,
                )+];
                serializer.serialize_content(Content::Seq(items))
            }
        }
    )*};
}
serialize_tuple! {
    (T0.0)
    (T0.0, T1.1)
    (T0.0, T1.1, T2.2)
    (T0.0, T1.1, T2.2, T3.3)
}

/// Types usable as map keys: convertible to and from the string keys of
/// [`Content::Map`] (mirrors `serde_json`'s integer-keys-as-strings).
pub trait MapKey: Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back from a string.
    fn from_key(key: &str) -> Result<Self, ContentError>;
}

macro_rules! integer_map_key {
    ($($t:ty)*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, ContentError> {
                key.parse().map_err(|_| {
                    ContentError(format!("invalid {} map key: {key:?}", stringify!($t)))
                })
            }
        }
    )*};
}
integer_map_key!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, ContentError> {
        Ok(key.to_string())
    }
}

macro_rules! serialize_map {
    ($($map:ident $(: $extra:path)?),*) => {$(
        impl<K: MapKey $(+ $extra)?, V: Serialize> Serialize for $map<K, V> {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut entries = Vec::with_capacity(self.len());
                for (k, v) in self {
                    let v = to_content(v).map_err(|e| <S::Error as ser::Error>::custom(e))?;
                    entries.push((k.to_key(), v));
                }
                serializer.serialize_content(Content::Map(entries))
            }
        }
    )*};
}
serialize_map!(HashMap, BTreeMap);

// ---------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------

fn type_error<E: de::Error>(expected: &str, got: &Content) -> E {
    E::custom(format!("expected {expected}, found {}", got.kind()))
}

macro_rules! deserialize_unsigned {
    ($($t:ty)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let out = match content {
                    Content::U64(v) => <$t>::try_from(v).ok(),
                    Content::I64(v) => <$t>::try_from(v).ok(),
                    ref other => return Err(type_error(stringify!($t), other)),
                };
                out.ok_or_else(|| {
                    <D::Error as de::Error>::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
deserialize_unsigned!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            // The writers emit null for non-finite floats (as real
            // serde_json does); accepting null back keeps such values
            // round-trippable. Real serde_json instead ERRORS here —
            // deviation documented in vendor/README.md.
            Content::Null => Ok(f64::NAN),
            ref other => Err(type_error("float", other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(v) => Ok(v),
            ref other => Err(type_error("bool", other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(v) => Ok(v),
            ref other => Err(type_error("string", other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(<D::Error as de::Error>::custom(
                "expected a single character",
            )),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => from_content(other)
                .map(Some)
                .map_err(|e| <D::Error as de::Error>::custom(e)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|item| from_content(item).map_err(|e| <D::Error as de::Error>::custom(e)))
                .collect(),
            ref other => Err(type_error("sequence", other)),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal; $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::Seq(items) => {
                        if items.len() != $len {
                            return Err(<D::Error as de::Error>::custom(format!(
                                "expected a tuple of length {}, found {}", $len, items.len()
                            )));
                        }
                        let mut iter = items.into_iter();
                        Ok(($(
                            from_content::<$name>(iter.next().expect("length checked"))
                                .map_err(|e| <D::Error as de::Error>::custom(e))?,
                        )+))
                    }
                    ref other => Err(type_error("sequence", other)),
                }
            }
        }
    )*};
}
deserialize_tuple! {
    (1; T0)
    (2; T0, T1)
    (3; T0, T1, T2)
    (4; T0, T1, T2, T3)
}

impl<'de, K: MapKey + Eq + Hash, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = K::from_key(&k).map_err(|e| <D::Error as de::Error>::custom(e))?;
                    let value = from_content(v).map_err(|e| <D::Error as de::Error>::custom(e))?;
                    Ok((key, value))
                })
                .collect(),
            ref other => Err(type_error("map", other)),
        }
    }
}

impl<'de, K: MapKey + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = K::from_key(&k).map_err(|e| <D::Error as de::Error>::custom(e))?;
                    let value = from_content(v).map_err(|e| <D::Error as de::Error>::custom(e))?;
                    Ok((key, value))
                })
                .collect(),
            ref other => Err(type_error("map", other)),
        }
    }
}
