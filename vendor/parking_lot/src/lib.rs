//! Offline drop-in subset of `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API this workspace uses: `lock()` without a
//! poison `Result`, and `into_inner()` returning the value directly. A
//! poisoned std lock (a thread panicked while holding it) is unwrapped
//! into the inner guard, mirroring parking_lot's no-poisoning design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
