//! Offline drop-in subset of `crossbeam`'s scoped threads, backed by
//! `std::thread::scope`.
//!
//! Keeps crossbeam's calling convention: [`scope`] returns a `Result`
//! (`Err` if any spawned thread panicked instead of unwinding through
//! the caller), and `Scope::spawn` passes the scope to the closure so
//! spawned threads can spawn more threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// The payload of a panicked scoped thread.
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A scope handle: spawn threads that may borrow from the enclosing
/// stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope, so it
    /// can spawn further threads (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which threads borrowing the environment can be
/// spawned; joins them all before returning.
///
/// Returns `Err` with the first panic payload if any spawned (or
/// scope-closure) code panicked, matching crossbeam's contract of not
/// unwinding through the caller.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panics_surface_as_err() {
        let res = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
