//! Offline drop-in subset of [criterion](https://docs.rs/criterion):
//! the same `criterion_group!` / `criterion_main!` / `Criterion` /
//! `Bencher` calling convention, but a deliberately simple wall-clock
//! measurement loop with plain-text output (no plots, no statistics
//! machinery, no saved baselines).
//!
//! Each benchmark runs one warm-up batch and `sample_size` timed
//! batches, then reports the minimum, mean, and maximum per-iteration
//! time. The minimum is the headline number: it is the least
//! noise-contaminated statistic a wall clock can produce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimizer barrier, like criterion's.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stub times the routine
/// per batch regardless; the variants exist for source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: many iterations per batch.
    SmallInput,
    /// Large per-iteration inputs: one iteration per batch.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark, `{function}/{parameter}`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The benchmark driver handed to every `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Finishes the group (output is already printed; provided for
    /// source compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples + 1),
    };
    // One warm-up batch plus the timed batches.
    for _ in 0..samples + 1 {
        f(&mut bencher);
    }
    if bencher.samples.len() > 1 {
        bencher.samples.remove(0);
    }
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(elapsed, iters)| elapsed.as_nanos() as f64 / (*iters).max(1) as f64)
        .collect();
    if per_iter.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{label:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times closures; one `iter`/`iter_batched` call produces one sample.
pub struct Bencher {
    /// (elapsed, iterations) per recorded batch.
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, amortizing the clock reads over enough
    /// iterations to dominate timer overhead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the iteration count until a batch takes ≥1ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.samples.push((elapsed, iters));
                return;
            }
            iters *= 4;
        }
    }

    /// Times `routine` over inputs produced by `setup`, excluding the
    /// setup cost from the measurement.
    ///
    /// Unlike [`Bencher::iter`], this stub takes exactly ONE timed
    /// invocation per sample (no iteration calibration), so the
    /// routine must do enough work per call to dwarf the ~tens of
    /// nanoseconds of timer overhead.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        let elapsed = start.elapsed();
        black_box(out);
        self.samples.push((elapsed, 1));
    }
}

/// Declares a benchmark group: a function that runs each listed
/// benchmark function against a shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert!(runs >= 2);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default();
        c.sample_size(2).bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            );
        });
    }
}
