//! Real-time streaming: consume a Hudong-like edge stream (one `+1`
//! update per inserted wiki link) while answering point queries *during*
//! the stream — the scenario of the paper's §4.4/§5.5. The bias estimate
//! is maintained incrementally by the Bias-Heap (Algorithm 5), so
//! queries never trigger a re-sort.
//!
//! Run with: `cargo run --release --example streaming_graph`

use bias_aware_sketches::core::{L2BiasMaintenance, L2Config, L2SketchRecover};
use bias_aware_sketches::data::GraphStreamGen;
use bias_aware_sketches::sketches::PointQuerySketch;
use std::time::Instant;

fn main() {
    let gen = GraphStreamGen::hudong_scaled(250_000, 2_000_000);
    println!(
        "generating edge stream: {} articles, {} link insertions",
        gen.nodes, gen.edges
    );
    let stream = gen.stream(7);

    let cfg = L2Config::new(gen.nodes as u64, 16_384, 9)
        .with_seed(3)
        .with_maintenance(L2BiasMaintenance::BiasHeap);
    let mut sketch = L2SketchRecover::new(&cfg);
    let mut exact = vec![0.0f64; gen.nodes];

    let checkpoints = [200_000usize, 500_000, 1_000_000, 2_000_000];
    let t0 = Instant::now();
    let mut processed = 0usize;
    for &cp in &checkpoints {
        while processed < cp {
            let src = stream[processed] as u64;
            sketch.update(src, 1.0);
            exact[src as usize] += 1.0;
            processed += 1;
        }
        // Mid-stream, real-time answers: current hottest article.
        let (hot, &hot_deg) = exact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let q0 = Instant::now();
        let est = sketch.estimate(hot as u64);
        let query_time = q0.elapsed();
        println!(
            "after {processed:>9} edges: bias(avg out-degree) = {:>5.2}, \
             hottest article {hot} -> est {est:.0} (true {hot_deg:.0}), \
             query took {query_time:?}",
            sketch.bias()
        );
    }
    let elapsed = t0.elapsed();
    println!(
        "\nstream consumed in {elapsed:?} ({:.0} ns/update incl. bookkeeping)",
        elapsed.as_nanos() as f64 / stream.len() as f64
    );

    // Final accuracy over the whole vector.
    let recovered = sketch.recover_all();
    let (mut sum_err, mut max_err) = (0.0f64, 0.0f64);
    for (r, t) in recovered.iter().zip(exact.iter()) {
        let e = (r - t).abs();
        sum_err += e;
        max_err = max_err.max(e);
    }
    println!(
        "final recovery: avg error {:.3}, max error {:.1} over {} articles \
         (sketch is {:.2}% of the exact table)",
        sum_err / gen.nodes as f64,
        max_err,
        gen.nodes,
        100.0 * sketch.size_in_words() as f64 / gen.nodes as f64,
    );

    // Top-out-degree articles through the sketch vs truth.
    let mut order: Vec<usize> = (0..gen.nodes).collect();
    order.sort_by(|&a, &b| recovered[b].total_cmp(&recovered[a]));
    println!("\ntop articles by sketched out-degree:");
    for &a in order.iter().take(5) {
        println!(
            "  article {a:>7}: est {:>7.0}, true {:>7.0}",
            recovered[a], exact[a]
        );
    }
}
