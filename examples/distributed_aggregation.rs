//! Distributed aggregation: `t` telemetry collectors each see a slice
//! of global traffic; the coordinator learns the global frequency
//! vector from merged bias-aware sketches (the protocol of the paper's
//! §1/§5.5), at a tiny fraction of the naive communication cost.
//!
//! Run with: `cargo run --release --example distributed_aggregation`

use bias_aware_sketches::data::{VectorGenerator, WebTrafficGen};
use bias_aware_sketches::prelude::*;

fn main() {
    let sites_count = 8usize;
    let gen = WebTrafficGen::wiki_scaled(1_000_000, 40.0);
    let n = gen.len() as u64;

    // Each site observes an independent slice of the traffic; the
    // global vector is their sum.
    let shards: Vec<Vec<f64>> = (0..sites_count)
        .map(|s| gen.generate(1000 + s as u64))
        .collect();
    let mut global_truth = vec![0.0f64; n as usize];
    for shard in &shards {
        for (i, v) in shard.iter().enumerate() {
            global_truth[i] += v;
        }
    }

    let sites: Vec<SiteData> = shards
        .iter()
        .map(|s| SiteData::from_vector(s.clone()))
        .collect();

    // The coordinator picks the configuration — one seed, shared by all.
    let cfg = L2Config::new(n, 8_192, 9).with_seed(42);
    let run = DistributedRun::execute(&sites, || L2SketchRecover::new(&cfg));

    println!("distributed aggregation across {} sites:", run.sites);
    println!("  universe n           = {n}");
    println!("  words per site       = {}", run.words_per_site);
    println!("  total communication  = {} words", run.total_words);
    println!("  naive protocol       = {} words", run.naive_words);
    println!("  savings              = {:.0}x\n", run.savings_factor());

    println!(
        "coordinator's view: global bias estimate {:.1} (true mean {:.1})",
        run.global.bias(),
        global_truth.iter().sum::<f64>() / n as f64
    );

    // Compare recovered global counts against truth on the heaviest
    // seconds (the bursts) and some ordinary ones.
    let mut heaviest: Vec<usize> = (0..n as usize).collect();
    heaviest.sort_by(|&a, &b| global_truth[b].total_cmp(&global_truth[a]));
    println!("\nglobal point queries (truth vs merged sketch):");
    for &sec in heaviest.iter().take(4) {
        println!(
            "  burst second {sec:>7}: true {:>8.0}, merged sketch {:>8.0}",
            global_truth[sec],
            run.global.estimate(sec as u64)
        );
    }
    // Non-burst seconds sit at the noise floor: the sketch resolves
    // them to "≈ the base rate", which is exactly what the bias-aware
    // guarantee promises (errors scale with the *residual* tail, so
    // outliers are sharp and ordinary seconds read as the bias).
    for sec in [123usize, 98_765, 200_000] {
        println!(
            "  plain second {sec:>7}: true {:>8.0}, merged sketch {:>8.0} (base rate {:.0})",
            global_truth[sec],
            run.global.estimate(sec as u64),
            run.global.bias(),
        );
    }

    // Sanity: merged-distributed equals centralized exactly (linearity).
    let mut central = L2SketchRecover::new(&cfg);
    central.ingest_vector(&global_truth);
    let drift = (0..n)
        .step_by(997)
        .map(|j| (central.estimate(j) - run.global.estimate(j)).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nmax |centralized - distributed| over probes: {drift:.2e} \
         (linearity: identical up to float addition order)"
    );
}
