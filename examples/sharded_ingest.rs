//! Sharded ingest: the single-node ingest paths side by side.
//!
//! A stream of per-second request counts (biased around a shared level,
//! a few anomalous seconds) is fed through the same `CountSketch`
//! configuration four ways:
//!
//! 1. **single** — one `update` call per item, the classical hot path;
//! 2. **batched** — `drive_chunked` + `update_batch`, the fast path
//!    that hoists the hash-family dispatch out of the item loop;
//! 3. **sharded** — `ShardedIngest`, batches fanned across per-thread
//!    shard sketches merged once by linearity (the paper's distributed
//!    protocol of §5.5 collapsed onto one machine) — k× counter memory;
//! 4. **concurrent-shared** — `ConcurrentIngest`, the same worker
//!    threads feeding **one** `Atomic`-backed sketch through lock-free
//!    counter adds — 1× counter memory, no merge step.
//!
//! All four produce the *same sketch* (bit-for-bit on this
//! integer-delta stream); only throughput and memory differ.
//!
//! Run with: `cargo run --release --example sharded_ingest`

use bias_aware_sketches::prelude::*;
use std::time::Instant;

fn main() {
    let n = 1_000_000u64;
    let total_updates = 4_000_000usize;
    let params = SketchParams::new(n, 4_096, 9).with_seed(11);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("available parallelism: {cores} core(s) (sharded paths need >1 to win)");

    // Synthetic traffic: most seconds see counts near the bias, a few
    // seconds spike. Deltas are integer-valued (the arrival model), so
    // every ingest path below agrees exactly.
    println!("generating {total_updates} updates over a universe of {n}...");
    let mut state = 0x5EED_CAFEu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let updates: Vec<(u64, f64)> = (0..total_updates)
        .map(|_| {
            let item = next() % n;
            let delta = if item % 100_003 == 0 { 50.0 } else { 1.0 };
            (item, delta)
        })
        .collect();

    // ------------------------------------------------------------------
    // Path 1: single-item updates.
    // ------------------------------------------------------------------
    let t = Instant::now();
    let mut single = CountSketch::new(&params);
    for &(i, d) in &updates {
        single.update(i, d);
    }
    let single_secs = t.elapsed().as_secs_f64();
    report("single-item", total_updates, single_secs, single_secs);

    // ------------------------------------------------------------------
    // Path 2: chunked batches through the update_batch fast path.
    // ------------------------------------------------------------------
    let t = Instant::now();
    let mut batched = CountSketch::new(&params);
    let stream = updates.iter().map(|&(i, d)| StreamUpdate::new(i, d));
    let delivered = drive_chunked(
        stream,
        bias_aware_sketches::streaming::DEFAULT_CHUNK_SIZE,
        |c| batched.update_batch(c),
    );
    assert_eq!(delivered as usize, total_updates);
    report(
        "batched",
        total_updates,
        t.elapsed().as_secs_f64(),
        single_secs,
    );

    // ------------------------------------------------------------------
    // Path 3: sharded across worker threads, merged by linearity.
    // ------------------------------------------------------------------
    let mut sharded_sketches = Vec::new();
    for shards in [2usize, 4, 8] {
        let t = Instant::now();
        let mut ingest = ShardedIngest::new(shards, || CountSketch::new(&params));
        ingest.extend_from_slice(&updates);
        let sk = ingest.finish();
        report(
            &format!("sharded-{shards}"),
            total_updates,
            t.elapsed().as_secs_f64(),
            single_secs,
        );
        sharded_sketches.push(sk);
    }

    // ------------------------------------------------------------------
    // Path 4: worker threads feeding ONE shared atomic-backed sketch.
    // ------------------------------------------------------------------
    let mut shared_sketches = Vec::new();
    for workers in [2usize, 4, 8] {
        let t = Instant::now();
        let mut ingest = ConcurrentIngest::new(workers, AtomicCountSketch::with_backend(&params));
        ingest.extend_from_slice(&updates);
        let sk = ingest.finish();
        report(
            &format!("concurrent-{workers}"),
            total_updates,
            t.elapsed().as_secs_f64(),
            single_secs,
        );
        shared_sketches.push(sk);
    }
    let words = single.size_in_words();
    println!(
        "  (memory: concurrent-shared holds {words} counter words at any worker \
         count; sharded-8 held {} until its merge)",
        8 * words
    );

    // ------------------------------------------------------------------
    // Same sketch, four ways: spot-check estimates agree exactly.
    // ------------------------------------------------------------------
    let mut checked = 0u32;
    for j in (0..n).step_by(37_021) {
        let reference = single.estimate(j);
        assert_eq!(batched.estimate(j), reference, "batched item {j}");
        for sk in &sharded_sketches {
            assert_eq!(sk.estimate(j), reference, "sharded item {j}");
        }
        for sk in &shared_sketches {
            assert_eq!(sk.estimate(j), reference, "concurrent item {j}");
        }
        checked += 1;
    }
    println!("\nall paths agree exactly on {checked} spot-checked estimates");
    println!(
        "(linearity: merged same-seed shard sketches == the single-threaded sketch, paper §5.5;\n \
         order-independence: lock-free adds into one shared sketch == the same sketch again)"
    );
}

fn report(label: &str, updates: usize, secs: f64, baseline_secs: f64) {
    println!(
        "{label:>14}: {:>7.1} ms  {:>6.1} M items/s  ({:.2}x vs single)",
        secs * 1e3,
        updates as f64 / secs / 1e6,
        baseline_secs / secs,
    );
}
