//! Daemon lifecycle end to end: boot `Daemon` on a loopback TCP
//! socket with a journal, register tenants and stream telemetry
//! through a reconnecting [`Client`], shut down gracefully, then
//! recover a second daemon from the journal and show it answers
//! bit-for-bit.
//!
//! ```text
//! cargo run --example daemon_lifecycle
//! ```

use bias_aware_sketches::prelude::*;
use bias_aware_sketches::server::wire::{IngestFrame, PointQuery, TenantRef};
use bias_aware_sketches::server::{
    persist, Client, Daemon, DaemonConfig, Fabric, FabricConfig, Journal, Request, Response,
    RetryPolicy, TenantSpec, MAX_FRAME_BYTES,
};
use std::net::TcpStream;

fn expect_value(resp: Response) -> f64 {
    match resp {
        Response::Value(v) => v.value,
        other => panic!("expected a value, got {other:?}"),
    }
}

fn main() {
    let params = SketchParams::new(4_096, 128, 5);
    let journal_path =
        std::env::temp_dir().join(format!("bas-daemon-example-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);

    // ---- boot a daemon on an OS-assigned port ----
    let mut fabric = Fabric::new(FabricConfig::new(params.clone()).with_workers(2));
    fabric.add_shard(0, 1.0).unwrap();
    fabric.add_shard(1, 1.0).unwrap();
    let journal = Journal::open(&journal_path).unwrap();
    let daemon =
        Daemon::bind_tcp("127.0.0.1:0", fabric, Some(journal), DaemonConfig::new()).unwrap();
    let addr = daemon.local_addr().unwrap();
    println!("daemon listening on {addr}");

    // ---- a reconnecting client with bounded retries ----
    let mut client = Client::new(
        move || {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true)?;
            Ok(s)
        },
        RetryPolicy::new().with_seed(7),
        MAX_FRAME_BYTES,
    );

    // Register two tenants over the wire and stream updates.
    for spec in [TenantSpec::frequency(1, 101), TenantSpec::frequency(2, 202)] {
        match client.call(&Request::Register(spec)).unwrap() {
            Response::Installed(r) => println!("tenant {} on shard {}", r.tenant, r.shard),
            other => panic!("{other:?}"),
        }
    }
    for tenant in [1u64, 2] {
        let updates: Vec<(u64, f64)> = (0..2_000u64)
            .map(|i| ((i * 17 + tenant * 29) % 4_096, 1.0 + (i % 3) as f64))
            .collect();
        client
            .call(&Request::Ingest(IngestFrame { tenant, updates }))
            .unwrap();
        client.call(&Request::Flush(TenantRef { tenant })).unwrap();
    }
    let before = expect_value(
        client
            .call(&Request::Point(PointQuery {
                tenant: 1,
                item: 17,
            }))
            .unwrap(),
    );
    println!("tenant 1, item 17 ≈ {before}");

    // ---- graceful shutdown: drain, seal, checkpoint ----
    drop(client);
    let report = daemon.shutdown().unwrap();
    println!(
        "shutdown: {} connections, {} frames, {} intervals sealed",
        report.connections,
        report.frames,
        report.sealed.len()
    );

    // ---- recover a fresh daemon from the journal ----
    let recovered =
        persist::recover(&journal_path, FabricConfig::new(params).with_workers(2)).unwrap();
    let daemon = Daemon::bind_tcp("127.0.0.1:0", recovered, None, DaemonConfig::new()).unwrap();
    let addr = daemon.local_addr().unwrap();
    let mut client = Client::new(
        move || {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true)?;
            Ok(s)
        },
        RetryPolicy::new(),
        MAX_FRAME_BYTES,
    );
    let after = expect_value(
        client
            .call(&Request::Point(PointQuery {
                tenant: 1,
                item: 17,
            }))
            .unwrap(),
    );
    println!("recovered tenant 1, item 17 ≈ {after}");
    assert_eq!(before.to_bits(), after.to_bits(), "recovery is bit-for-bit");

    drop(client);
    daemon.shutdown().unwrap();
    std::fs::remove_file(&journal_path).ok();
    println!("recovered answers are bit-for-bit identical ✓");
}
