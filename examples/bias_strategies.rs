//! Choosing a bias estimator: the paper's sampled-median / median-bucket
//! estimators versus the global-mean heuristic (§4.1 and §5.4, Figure 8).
//! The mean is fine on benign data and catastrophically wrong once a few
//! extreme coordinates drag it — exactly the difference between
//! `l2-mean` and `l2-S/R`.
//!
//! Run with: `cargo run --release --example bias_strategies`

use bias_aware_sketches::data::{ShiftedGaussianGen, VectorGenerator};
use bias_aware_sketches::prelude::*;

fn evaluate(label: &str, x: &[f64], strategies: &[(&str, BiasStrategy)]) {
    let n = x.len() as u64;
    println!("--- {label} (n = {n}) ---");
    let tail1 = oracle::min_beta_err_k1(x, 512);
    let tail2 = oracle::min_beta_err_k2(x, 512);
    println!(
        "  oracle: beta* = {:.2}, min_b Err_1 = {:.1}, min_b Err_2 = {:.1}",
        tail2.beta, tail1.err, tail2.err
    );
    for &(name, strategy) in strategies {
        let cfg = L2Config::new(n, 2_048, 9).with_seed(5).with_bias(strategy);
        let mut sk = L2SketchRecover::new(&cfg);
        sk.ingest_vector(x);
        let rec = sk.recover_all();
        let avg: f64 = rec
            .iter()
            .zip(x.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / n as f64;
        let max = rec
            .iter()
            .zip(x.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "  {name:<22} beta-hat = {:>10.2}   avg err = {:>10.3}   max err = {:>10.1}",
            sk.bias(),
            avg,
            max
        );
    }
    println!();
}

fn main() {
    let strategies: [(&str, BiasStrategy); 2] = [
        ("l2-S/R (median bkts)", BiasStrategy::Paper),
        ("l2-mean (global mean)", BiasStrategy::GlobalMean),
    ];

    // Benign: pure Gaussian around 100 — both estimators nail it
    // (Figure 8a-b).
    let clean = ShiftedGaussianGen::new(500_000, 0, 100_000.0).generate(1);
    evaluate("Gaussian-2, unshifted", &clean, &strategies);

    // Adversarial: 500 entries shifted by 100 000 (Figure 8c-d). The
    // global mean moves by 500·1e5/5e5 = 100 while the true bias stays
    // at 100 — the mean heuristic de-biases with ~200 and its error
    // explodes; the median-bucket estimator ignores the outliers.
    let dirty = ShiftedGaussianGen::new(500_000, 500, 100_000.0).generate(1);
    evaluate(
        "Gaussian-2, 500 entries shifted by 1e5",
        &dirty,
        &strategies,
    );

    // The paper's §4.1 thought experiment, writ small: a couple of
    // colossal values make the mean useless no matter how much data
    // surrounds them.
    let mut pathological = vec![50.0f64; 100_000];
    pathological[0] = 1e12;
    pathological[1] = 1e12;
    evaluate(
        "50-everywhere with two 1e12 outliers",
        &pathological,
        &strategies,
    );

    println!(
        "takeaway: the sampled/median estimators pay O(log n) extra words \
         for robustness to arbitrary outliers; the mean heuristic saves \
         those words and loses the guarantee (paper, Section 4.1)."
    );
}
