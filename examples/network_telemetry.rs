//! Network telemetry: sketch a day of per-second request counts
//! (WorldCup-like traffic) and answer the operator questions the
//! paper's introduction motivates — point queries, burst detection
//! (heavy hitters *above the bias*), and range sums.
//!
//! Run with: `cargo run --release --example network_telemetry`

use bias_aware_sketches::data::{VectorGenerator, WebTrafficGen};
use bias_aware_sketches::prelude::*;

fn main() {
    let gen = WebTrafficGen::worldcup();
    let traffic = gen.generate(2024);
    let n = traffic.len() as u64;
    let total: f64 = traffic.iter().sum();
    println!(
        "one day of traffic: {n} seconds, {:.2}M requests, mean {:.1}/s",
        total / 1e6,
        total / n as f64
    );

    // --- Point queries through a bias-aware sketch -------------------
    let cfg = L2Config::new(n, 4_096, 9).with_seed(7);
    let mut sketch = L2SketchRecover::new(&cfg);
    sketch.ingest_vector(&traffic);
    println!(
        "sketch: {} words ({:.1}% of the raw vector), estimated base rate {:.1}/s\n",
        sketch.size_in_words(),
        100.0 * sketch.size_in_words() as f64 / n as f64,
        sketch.bias()
    );

    // Busiest true second vs sketch's view of it.
    let (busiest, &peak) = traffic
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    println!(
        "busiest second {:02}:{:02}:{:02}: true {peak:.0} req, sketch {:.0} req",
        busiest / 3600,
        (busiest % 3600) / 60,
        busiest % 60,
        sketch.estimate(busiest as u64)
    );

    // --- Burst detection: find seconds far above the bias ------------
    let recovered = sketch.recover_all();
    let beta = sketch.bias();
    let mut bursts: Vec<(usize, f64)> = recovered
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > 5.0 * beta)
        .map(|(i, &v)| (i, v))
        .collect();
    bursts.sort_by(|a, b| b.1.total_cmp(&a.1));
    let true_bursts: usize = traffic.iter().filter(|&&v| v > 5.0 * beta).count();
    println!(
        "\nburst seconds (> 5x base rate): sketch flags {}, truth has {true_bursts}",
        bursts.len()
    );
    for (sec, est) in bursts.iter().take(5) {
        println!(
            "  {:02}:{:02}:{:02}  est {est:>7.0}  true {:>7.0}",
            sec / 3600,
            (sec % 3600) / 60,
            sec % 60,
            traffic[*sec]
        );
    }

    // --- Heavy hitters over a live stream -----------------------------
    // Re-play the day as a stream of (second, count) updates and track
    // the top seconds online.
    // A single second holds at most ~1e-4 of a whole day's traffic, so
    // the heavy-hitter share must sit below that.
    let hh_params = SketchParams::new(n, 4_096, 9).with_seed(9);
    let mut tracker = HeavyHitters::new(CountSketch::new(&hh_params), 0.000_2);
    for (i, &v) in traffic.iter().enumerate() {
        if v > 0.0 {
            tracker.update(i as u64, v);
        }
    }
    let hot = tracker.heavy_hitters();
    println!("\ntop seconds by online heavy-hitter tracking:");
    for h in hot.iter().take(3) {
        println!(
            "  second {:>6}  est {:>8.0}  true {:>8.0}",
            h.item, h.estimate, traffic[h.item as usize]
        );
    }

    // --- Range queries: hourly request volumes ------------------------
    let rs_params = SketchParams::new(n, 2_048, 7).with_seed(11);
    let mut ranges = RangeSumSketch::new(&rs_params);
    for (i, &v) in traffic.iter().enumerate() {
        if v > 0.0 {
            ranges.update(i as u64, v);
        }
    }
    println!("\nhourly volumes (sketch vs truth):");
    for hour in (0..24).step_by(6) {
        let (lo, hi) = (hour * 3600, hour * 3600 + 3599);
        let truth: f64 = traffic[lo as usize..=hi as usize].iter().sum();
        let est = ranges.query(lo, hi);
        println!(
            "  {hour:02}:00-{:02}:59  est {est:>10.0}  true {truth:>10.0}  ({:+.1}%)",
            hour + 5,
            100.0 * (est - truth) / truth
        );
    }
}
