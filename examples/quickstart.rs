//! Quickstart: the paper's §1 worked example, then a realistic-sized
//! demo of why bias-awareness matters.
//!
//! Run with: `cargo run --release --example quickstart`

use bias_aware_sketches::data::{GaussianGen, VectorGenerator};
use bias_aware_sketches::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Part 1 — the paper's worked example (§1).
    // x has a strong bias around 100; coordinates 0 and 3 are outliers.
    // ------------------------------------------------------------------
    let x = vec![
        3.0, 100.0, 101.0, 500.0, 102.0, 98.0, 97.0, 100.0, 99.0, 103.0,
    ];
    let k = 2;

    println!("paper example: x = {x:?}, k = {k}");
    println!(
        "  Err_1^k(x)                = {:>10.2}",
        oracle::err_k_p(&x, k, 1)
    );
    println!(
        "  Err_2^k(x)                = {:>10.2}",
        oracle::err_k_p(&x, k, 2)
    );
    let t1 = oracle::min_beta_err_k1(&x, k);
    let t2 = oracle::min_beta_err_k2(&x, k);
    println!(
        "  min_b Err_1^k(x - b)      = {:>10.2}   at b = {}",
        t1.err, t1.beta
    );
    println!(
        "  min_b Err_2^k(x - b)      = {:>10.2}   at b = {}",
        t2.err, t2.beta
    );
    println!("  (the paper reports 700, 263.49, 12 and 5.29 at b = 100)\n");

    // ------------------------------------------------------------------
    // Part 2 — sketch a biased vector and point-query it.
    // ------------------------------------------------------------------
    let n = 200_000u64;
    let mut data = GaussianGen::new(n as usize, 100.0, 15.0).generate(7);
    // Plant a few anomalies we will want to find again.
    data[123] = 9_999.0;
    data[45_678] = 7_500.0;
    data[199_999] = -2_000.0;

    let cfg = L2Config::new(n, 4_096, 9).with_seed(1);
    let mut bias_aware = L2SketchRecover::new(&cfg);
    bias_aware.ingest_vector(&data);

    let cs_params = SketchParams::new(n, 4_096, 10).with_seed(1);
    let mut count_sketch = CountSketch::new(&cs_params);
    count_sketch.ingest_vector(&data);

    println!(
        "sketched n = {n} coordinates into {} words (l2-S/R) / {} words (CS)",
        bias_aware.size_in_words(),
        count_sketch.size_in_words()
    );
    println!(
        "estimated bias = {:.2} (true bias = 100)\n",
        bias_aware.bias()
    );

    println!("point queries (truth vs l2-S/R vs Count-Sketch):");
    for probe in [123u64, 45_678, 199_999, 500, 77_777] {
        println!(
            "  x[{probe:>6}] = {:>8.1}   l2-S/R: {:>8.1}   CS: {:>8.1}",
            data[probe as usize],
            bias_aware.estimate(probe),
            count_sketch.estimate(probe)
        );
    }

    // Average error over everything.
    let rec_ba = bias_aware.recover_all();
    let rec_cs = count_sketch.recover_all();
    let avg = |rec: &[f64]| -> f64 {
        rec.iter()
            .zip(data.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / n as f64
    };
    println!(
        "\naverage error: l2-S/R = {:.3}, Count-Sketch = {:.3} ({}x better)",
        avg(&rec_ba),
        avg(&rec_cs),
        (avg(&rec_cs) / avg(&rec_ba)).round()
    );
}
