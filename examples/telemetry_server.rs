//! A miniature telemetry server on the live query plane.
//!
//! The north-star scenario: per-endpoint request counts stream in hot
//! (4 ingest workers feeding **one** shared Count-Median through
//! lock-free counter adds), while reader threads serve queries off the
//! same sketch the whole time:
//!
//! * **live point reads** — lock-free, straight off the atomic cells;
//! * **heavy-endpoint scans** — over epoch-pinned snapshots, so the
//!   scan sees one consistent stream prefix;
//! * **time-range sums** — a second engine wraps a `RangeSumSketch`
//!   keyed by second-of-day, answering "requests between 09:00 and
//!   09:05" from the same snapshot discipline;
//! * **mid-stream probes** — the `drive_probed` stream driver
//!   interleaves deterministic query checkpoints with ingest.
//!
//! At the end the example *gates itself*: the final snapshot must be
//! bit-identical to a single-threaded sketch of the same stream
//! (integer deltas make every path exact), and the range engine's
//! full-range estimate must match the true total within sketch error.
//!
//! This example is the **single-engine** deep dive. Its original
//! "wire two engines together by hand" framing is superseded by the
//! `serving_fabric` example, where `bas-server` owns the many-engine
//! story: per-tenant placement, the wire protocol, admission control
//! and live rebalance.
//!
//! Run with: `cargo run --release --example telemetry_server`

use bias_aware_sketches::prelude::*;
use std::time::Instant;

const ENDPOINTS: u64 = 100_000;
const SECONDS: u64 = 86_400;
const TOTAL: usize = 2_000_000;
const READERS: usize = 2;

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("telemetry server demo: {cores} core(s), 4 ingest workers, {READERS} readers");

    // Synthetic traffic: most endpoints hum along, two are hot, and
    // requests cluster in a morning rush window.
    let mut state = 0x7E1E_C0DEu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let traffic: Vec<(u64, u64)> = (0..TOTAL)
        .map(|_| {
            let r = next();
            let endpoint = if r % 10 < 2 {
                if r % 2 == 0 {
                    42
                } else {
                    777
                } // 20% of traffic on two endpoints
            } else {
                r % ENDPOINTS
            };
            let second = if r % 10 < 4 {
                9 * 3600 + r % 1800 // 40% inside the 09:00–09:30 rush
            } else {
                r % SECONDS
            };
            (endpoint, second)
        })
        .collect();

    let point_params = SketchParams::new(ENDPOINTS, 4_096, 7).with_seed(13);
    let range_params = SketchParams::new(SECONDS, 2_048, 5).with_seed(14);
    let mut points = QueryEngine::new(4, AtomicCountMedian::with_backend(&point_params));
    let mut ranges = QueryEngine::new(4, RangeSumSketch::<Atomic>::with_backend(&range_params));

    // Reader threads hammer the point engine while the main thread
    // ingests; each does a bounded quota of live + snapshot reads.
    let handles: Vec<QueryHandle<_>> = (0..READERS).map(|_| points.handle()).collect();
    let ingest_clock = Instant::now();
    let mut reader_stats = Vec::new();
    std::thread::scope(|scope| {
        let spawned: Vec<_> = handles
            .into_iter()
            .map(|handle| {
                scope.spawn(move || {
                    let quota = 200_000usize;
                    let mut snap = handle.pin();
                    let mut item = 0xFEEDu64;
                    let mut acc = 0.0;
                    let t = Instant::now();
                    for q in 0..quota {
                        item = item.wrapping_mul(6364136223846793005).wrapping_add(1);
                        if q % 4 == 0 {
                            if q % 8_192 == 0 {
                                snap.refresh();
                            }
                            acc += snap.estimate(item % ENDPOINTS);
                        } else {
                            acc += handle.estimate_live(item % ENDPOINTS);
                        }
                    }
                    std::hint::black_box(acc);
                    (quota as f64 / t.elapsed().as_secs_f64(), snap.applied())
                })
            })
            .collect();

        // The ingest path: a probed stream driver interleaving
        // deterministic query checkpoints with chunked ingest.
        let stream = traffic
            .iter()
            .map(|&(endpoint, _)| StreamUpdate::new(endpoint, 1.0));
        let mut checkpoints = 0u64;
        let points_ref = std::cell::RefCell::new(&mut points);
        drive_probed(
            stream,
            8_192,
            64,
            |chunk| points_ref.borrow_mut().extend_from_slice(chunk),
            |progress| {
                let engine = points_ref.borrow();
                let snap = engine.pin();
                // The pinned prefix never runs ahead of what the driver
                // has delivered into the engine.
                assert!(snap.applied() <= progress.delivered);
                checkpoints += 1;
            },
        );
        points_ref.borrow_mut().flush();
        for h in spawned {
            reader_stats.push(h.join().expect("reader panicked"));
        }
        println!("mid-stream probe checkpoints served: {checkpoints}");
    });
    let ingest_secs = ingest_clock.elapsed().as_secs_f64();

    // Time-keyed ingest for the range engine (bulk, then quiesce).
    let seconds: Vec<(u64, f64)> = traffic.iter().map(|&(_, s)| (s, 1.0)).collect();
    ranges.extend_from_slice(&seconds);
    ranges.flush();

    println!(
        "ingest: {TOTAL} updates in {ingest_secs:.2}s ({:.2} M items/s, readers live throughout)",
        TOTAL as f64 / ingest_secs / 1e6
    );
    for (i, (qps, seen)) in reader_stats.iter().enumerate() {
        println!(
            "reader {i}: {:.2} M queries/s (last snapshot at stream position {seen})",
            qps / 1e6
        );
    }

    // Serve some queries off the final state.
    let snap = points.pin();
    println!(
        "endpoint 42: {:.0} requests (live {:.0})",
        snap.estimate(42),
        points.estimate_live(42)
    );
    let hot = points.heavy_hitters_in(&snap, 0.05);
    println!(
        "heavy endpoints (>=5% of {} requests): {:?}",
        snap.mass(),
        hot.iter().map(|h| h.item).collect::<Vec<_>>()
    );
    let rush = ranges.range_sum(9 * 3600, 9 * 3600 + 1799);
    println!(
        "requests 09:00-09:30: {rush:.0} (expect ~{})",
        2 * TOTAL / 5
    );

    // ---- exactness gates ----
    // 1) The final snapshot is bit-identical to a single-threaded
    //    sketch of the same stream.
    let mut reference = CountMedian::new(&point_params);
    let updates: Vec<(u64, f64)> = traffic.iter().map(|&(e, _)| (e, 1.0)).collect();
    reference.update_batch(&updates);
    for j in (0..ENDPOINTS).step_by(9_973) {
        assert_eq!(
            snap.estimate(j),
            reference.estimate(j),
            "exactness gate failed at endpoint {j}"
        );
    }
    assert_eq!(snap.applied(), TOTAL as u64);
    // 2) The planted heavy endpoints surface in the scan.
    let hot_items: Vec<u64> = hot.iter().map(|h| h.item).collect();
    assert!(
        hot_items.contains(&42) && hot_items.contains(&777),
        "{hot_items:?}"
    );
    // 3) The range engine's full-range estimate matches the total mass
    //    within Count-Median error at this width.
    let full = ranges.range_sum(0, SECONDS - 1);
    let tolerance = 0.05 * TOTAL as f64;
    assert!(
        (full - TOTAL as f64).abs() <= tolerance,
        "full-range {full} vs {TOTAL}"
    );
    println!("exactness gates passed: snapshot == single-threaded reference");
}
