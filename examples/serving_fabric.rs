//! The multi-tenant serving fabric end to end: many tenants — each
//! with its own seed, serving mode and admission knobs — behind one
//! `Fabric`, fed and queried through the wire protocol, rebalanced
//! live, and gated on bit-exactness against dedicated engines.
//!
//! This example supersedes the "wire several engines by hand" framing
//! of `telemetry_server` (which remains the single-engine deep dive):
//! here placement, admission and tenant isolation are the fabric's
//! job, not the caller's. Four acts:
//!
//! 1. **wire ingest** — framed `Ingest`/`AdvanceInterval` requests
//!    through `serve_connection`, one response frame per request;
//! 2. **queries** — point / heavy-hitter / range-sum / windowed
//!    answers, bit-for-bit against never-fabric mirror engines;
//! 3. **backpressure** — a hog tenant saturates its own queue and
//!    quota (`Busy`/`Shed`, typed), neighbors unaffected;
//! 4. **rebalance** — a new shard joins, moved tenants ship their
//!    counter planes by linearity, answers stay bit-for-bit.

use bias_aware_sketches::prelude::*;
use bias_aware_sketches::server::wire::{
    HeavyHittersQuery, IngestFrame, PointQuery, RangeQuery, TenantRef,
};
use bias_aware_sketches::server::{read_frame, serve_connection, write_frame, MAX_FRAME_BYTES};

/// Universe size shared by every tenant (the fabric's shape template).
const N: u64 = 65_536;
/// Updates per tenant per interval.
const BATCH: usize = 5_000;
/// Sealed intervals before the first queries.
const INTERVALS: u64 = 3;

/// A deterministic per-tenant stream with integer-valued deltas, so
/// `f64` accumulation is exact and bit-for-bit gates are honest.
fn stream(tenant: u64, round: u64, len: usize) -> Vec<(u64, f64)> {
    let mut state = (tenant ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) % N, ((state >> 11) % 5) as f64 + 1.0)
        })
        .collect()
}

fn expect_value(resp: Response) -> f64 {
    match resp {
        Response::Value(v) => v.value,
        other => panic!("expected a value, got {other:?}"),
    }
}

fn main() {
    let params = SketchParams::new(N, 1_024, 5);
    let mut fabric = Fabric::new(FabricConfig::new(params).with_workers(2));
    fabric.add_shard(1, 1.0).unwrap();
    fabric.add_shard(2, 1.0).unwrap();

    // Four serving tenants plus a hog for the backpressure act. Each
    // gets its own seed (hash isolation) on the shared shape template.
    let specs = [
        TenantSpec::frequency(1, 4_242), // "edge-api": since-boot totals
        TenantSpec::frequency(2, 5_151) // "checkout": rolling window
            .with_mode(ServingMode::Sliding(WindowLen { intervals: 3 })),
        TenantSpec::range_sum(3, 6_161) // "billing": per-bucket reports
            .with_mode(ServingMode::Tumbling(WindowLen { intervals: 2 })),
        TenantSpec::frequency(4, 7_171) // "untrusted": rotated + audited
            .with_mode(ServingMode::Rotating(WindowLen { intervals: 2 }))
            .with_audit_limit(3),
        TenantSpec::frequency(5, 8_181) // "hog": tight admission knobs
            .with_queue_capacity(512)
            .with_interval_quota(2_000),
    ];
    for spec in specs {
        let shard = fabric.register_tenant(spec).unwrap();
        println!("tenant {} placed on shard {shard}", spec.tenant);
    }

    // Never-fabric mirrors for the bit-exactness gates.
    let mut edge = QueryEngine::with_policy(
        2,
        AtomicCountMedian::with_backend(&params.with_seed(4_242)),
        Unbounded,
    );
    let mut checkout = QueryEngine::with_policy(
        2,
        AtomicCountMedian::with_backend(&params.with_seed(5_151)),
        Sliding::new(3).unwrap(),
    );
    let mut billing = QueryEngine::with_policy(
        2,
        RangeSumSketch::<Atomic>::with_backend(&params.with_seed(6_161)),
        Tumbling::new(2).unwrap(),
    );

    // ---- act 1: ingest through the wire ----
    // Frame every request up front (a real deployment would stream
    // them over a socket; the protocol is transport-agnostic).
    let mut requests = Vec::new();
    for round in 0..INTERVALS {
        for tenant in 1u64..=4 {
            let updates = stream(tenant, round, BATCH);
            match tenant {
                1 => edge.extend_from_slice(&updates),
                2 => checkout.extend_from_slice(&updates),
                3 => billing.extend_from_slice(&updates),
                _ => {}
            }
            write_frame(
                &mut requests,
                &Request::Ingest(IngestFrame { tenant, updates }),
            )
            .unwrap();
            write_frame(
                &mut requests,
                &Request::AdvanceInterval(TenantRef { tenant }),
            )
            .unwrap();
        }
        edge.advance_interval();
        checkout.advance_interval();
        billing.advance_interval();
    }
    let mut responses = Vec::new();
    let answered = serve_connection(
        &mut fabric,
        &mut &requests[..],
        &mut responses,
        MAX_FRAME_BYTES,
    )
    .unwrap();
    let mut cursor = &responses[..];
    while let Some(resp) = read_frame::<_, Response>(&mut cursor, MAX_FRAME_BYTES).unwrap() {
        match resp {
            Response::Admitted(_) | Response::Sealed(_) => {}
            other => panic!("unexpected response on the ingest stream: {other:?}"),
        }
    }
    println!(
        "wire loop: {answered} frames answered ({} updates across 4 tenants x {INTERVALS} intervals)",
        4 * INTERVALS as usize * BATCH
    );
    assert_eq!(answered, 4 * INTERVALS * 2);

    // ---- act 2: queries, gated bit-for-bit ----
    for item in (0..N).step_by(997) {
        let got = expect_value(fabric.handle(Request::Point(PointQuery { tenant: 1, item })));
        assert_eq!(
            got.to_bits(),
            edge.estimate_live(item).to_bits(),
            "tenant 1 item {item}"
        );
        let got = expect_value(fabric.handle(Request::WindowPoint(PointQuery { tenant: 2, item })));
        assert_eq!(
            got.to_bits(),
            checkout.point_in_window(item).to_bits(),
            "tenant 2 item {item}"
        );
    }
    let hot = match fabric.handle(Request::WindowHeavyHitters(HeavyHittersQuery {
        tenant: 2,
        phi: 0.002,
    })) {
        Response::HeavyHitters(r) => r.items,
        other => panic!("{other:?}"),
    };
    println!(
        "tenant 2 window heavy hitters (phi = 0.2%): {} items",
        hot.len()
    );
    let (lo, hi) = (1_000u64, 9_000u64);
    let got =
        expect_value(fabric.handle(Request::WindowRangeSum(RangeQuery { tenant: 3, lo, hi })));
    assert_eq!(
        got.to_bits(),
        billing.range_sum_in_window(lo, hi).unwrap().to_bits()
    );
    println!("tenant 3 window range sum [{lo}, {hi}]: {got:.0}");

    // The audited tenant: three answers per key per generation, then a
    // typed refusal; rotation (AdvanceInterval) renews the budget.
    for _ in 0..3 {
        let resp = fabric.handle(Request::WindowPoint(PointQuery { tenant: 4, item: 7 }));
        assert!(matches!(resp, Response::Value(_)), "{resp:?}");
    }
    match fabric.handle(Request::WindowPoint(PointQuery { tenant: 4, item: 7 })) {
        Response::Error(e) => {
            assert_eq!(e.code, "audit_rejected");
            println!("tenant 4 key 7, 4th query: refused ({})", e.code);
        }
        other => panic!("expected an audit refusal, got {other:?}"),
    }

    // ---- act 3: backpressure, typed and isolated ----
    let baseline: Vec<f64> = (0..N)
        .step_by(1_871)
        .map(|item| expect_value(fabric.handle(Request::Point(PointQuery { tenant: 1, item }))))
        .collect();
    match fabric.handle(Request::Ingest(IngestFrame {
        tenant: 5,
        updates: stream(5, 0, 513), // wider than the 512-slot queue
    })) {
        Response::Busy(b) => println!(
            "tenant 5 oversized batch: Busy (pending {}, capacity {})",
            b.pending, b.capacity
        ),
        other => panic!("expected Busy, got {other:?}"),
    }
    let mut shed_at = None;
    for batch_no in 0..8 {
        let resp = fabric.handle(Request::Ingest(IngestFrame {
            tenant: 5,
            updates: stream(5, batch_no, 500),
        }));
        fabric.handle(Request::Flush(TenantRef { tenant: 5 }));
        match resp {
            Response::Admitted(_) => {}
            Response::Shed(s) => {
                shed_at = Some((batch_no, s.admitted, s.quota));
                break;
            }
            other => panic!("{other:?}"),
        }
    }
    let (batch_no, hog_admitted, quota) = shed_at.expect("the quota must bite");
    println!(
        "tenant 5 batch {batch_no}: Shed (admitted {hog_admitted} of quota {quota} this interval)"
    );
    assert_eq!(hog_admitted, 2_000);
    for (i, item) in (0..N).step_by(1_871).enumerate() {
        let now = expect_value(fabric.handle(Request::Point(PointQuery { tenant: 1, item })));
        assert_eq!(
            now.to_bits(),
            baseline[i].to_bits(),
            "neighbor answer drifted"
        );
    }
    println!("tenant 1 (neighbor): answers unchanged while tenant 5 saturated");

    // ---- act 4: live rebalance by linearity ----
    // A double-weight shard joins; rendezvous placement ships ~half
    // the tenants to it. Each transfer is counter planes only — the
    // destination rebuilds hashers from the tenant's seed — framed
    // through the real wire format and metered.
    let report = fabric.add_shard(3, 2.0).unwrap();
    println!(
        "shard 3 joined (weight 2): {} tenants moved, {} pinned (rotating), {} wire bytes, {} metered words",
        report.moved.len(),
        report.pinned.len(),
        report.bytes_shipped,
        fabric.meter().total_words()
    );
    for m in &report.moved {
        assert_eq!(m.to, 3, "growth may only move tenants onto the new shard");
    }

    // Keep ingesting after the move, then gate again: a moved tenant
    // answers exactly like one that never moved.
    for tenant in [1u64, 2] {
        let updates = stream(tenant, 99, BATCH);
        match tenant {
            1 => edge.extend_from_slice(&updates),
            _ => checkout.extend_from_slice(&updates),
        }
        fabric.handle(Request::Ingest(IngestFrame { tenant, updates }));
        fabric.handle(Request::Flush(TenantRef { tenant }));
    }
    edge.flush();
    checkout.flush();
    for item in (0..N).step_by(499) {
        let got = expect_value(fabric.handle(Request::Point(PointQuery { tenant: 1, item })));
        assert_eq!(got.to_bits(), edge.estimate_live(item).to_bits());
        let got = expect_value(fabric.handle(Request::WindowPoint(PointQuery { tenant: 2, item })));
        assert_eq!(got.to_bits(), checkout.point_in_window(item).to_bits());
    }
    println!(
        "exactness gates passed: fabric answers == dedicated engines, before and after rebalance"
    );
    for shard in [1u64, 2, 3] {
        println!("shard {shard} hosts tenants {:?}", fabric.tenants_on(shard));
    }
}
