//! Deterministic seeding for hash families.
//!
//! Sketching and recovery must agree on the hash functions (the paper
//! treats them as "common knowledge" shared between the two phases, and
//! in the distributed model the coordinator ships them to every site).
//! We derive every random parameter from a single `u64` master seed with
//! SplitMix64, the splittable generator from Steele, Lea & Flood
//! (OOPSLA 2014). It passes BigCrush for this use and — crucially — is
//! trivially reproducible across machines and versions.

/// The SplitMix64 output finalizer: a fixed, bijective 64-bit mixer.
///
/// Sketch inputs are typically *consecutive* indices `0..n`. A bare
/// Carter–Wegman hash `((a·x + b) mod p) mod s` degenerates on such
/// inputs whenever `a·n < p` (no wrap-around): it becomes an affine map
/// mod `s` that hits only `s / gcd(a, s)` buckets. Pre-mixing the key
/// with a fixed public bijection destroys that structure while leaving
/// the family's pairwise independence untouched — it is merely a
/// relabeling of the universe, chosen before the random `(a, b)`.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 pseudo-random generator.
///
/// Not intended as a general-purpose RNG for experiments (use the `rand`
/// crate for workloads); this exists to expand one master seed into the
/// `O(d)` hash-function parameters of a sketch, identically on every
/// machine that holds the seed.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a master seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-then-fixup rejection method, so the result
    /// is exactly uniform (no modulo bias).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u64();
        let mut m = x as u128 * bound as u128;
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = x as u128 * bound as u128;
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Derives an independent child generator; children of distinct
    /// indices are decorrelated even for adjacent master seeds.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs for seed 1234567 from the published reference
        // implementation (Vigna, prng.di.unimi.it).
        let mut g = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| g.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6_457_827_717_110_365_317,
                3_203_168_211_198_807_973,
                9_817_491_932_198_370_423
            ]
        );
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(0);
        let mut b = SplitMix64::new(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut g = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = g.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_below_one_is_zero() {
        let mut g = SplitMix64::new(3);
        for _ in 0..10 {
            assert_eq!(g.next_below(1), 0);
        }
    }

    #[test]
    fn split_children_are_independent_streams() {
        let mut parent = SplitMix64::new(42);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let overlap = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
