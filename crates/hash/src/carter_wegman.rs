//! Carter–Wegman polynomial hashing over `GF(2^61 − 1)`.

use crate::family::{BucketHasher, SignHasher};
use crate::prime::{mul_mod_p61, reduce_p61, P61};
use crate::seed::{mix64, SplitMix64};

/// A 2-universal hash function `h : [n] → [s]` of the form
/// `h(x) = ((a·x + b) mod p) mod s` with `p = 2^61 − 1`, `a ∈ [1, p)`,
/// `b ∈ [0, p)`.
///
/// This is the exact family assumed by the paper for the CM/CS matrices
/// (Definitions 1–2): for `x ≠ y`, `Pr[h(x) = h(y)] ≤ 1/s + o(1/s)`, and
/// only pairwise independence is needed for the second-moment analyses of
/// Theorems 1–4.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarterWegman {
    a: u64,
    b: u64,
    buckets: u64,
}

impl CarterWegman {
    /// Samples a random function with range `[0, buckets)`.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `buckets > p`.
    pub fn sample(seeder: &mut SplitMix64, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!((buckets as u128) <= P61 as u128, "range exceeds field size");
        let a = 1 + seeder.next_below(P61 - 1); // a ∈ [1, p)
        let b = seeder.next_below(P61); // b ∈ [0, p)
        Self {
            a,
            b,
            buckets: buckets as u64,
        }
    }

    /// Constructs the function from explicit coefficients (used by tests
    /// and by serialization).
    pub fn from_parts(a: u64, b: u64, buckets: usize) -> Self {
        assert!(buckets > 0 && (1..P61).contains(&a) && b < P61);
        Self {
            a,
            b,
            buckets: buckets as u64,
        }
    }

    /// The raw field value `(a·mix(x) + b) mod p`, before range
    /// reduction. Keys pass through the fixed [`mix64`] bijection first
    /// so that consecutive indices cannot line up with the modulus (see
    /// `mix64`'s documentation for the failure mode this prevents).
    #[inline]
    pub fn field_value(&self, x: u64) -> u64 {
        let ax = mul_mod_p61(self.a, reduce_p61(mix64(x) as u128));
        let s = ax as u128 + self.b as u128;
        reduce_p61(s)
    }
}

impl BucketHasher for CarterWegman {
    #[inline]
    fn bucket(&self, item: u64) -> usize {
        (range_reduce(self.field_value(item), self.buckets)) as usize
    }

    fn num_buckets(&self) -> usize {
        self.buckets as usize
    }
}

/// `v % buckets`, with the division replaced by a mask when `buckets`
/// is a power of two (bit-identical to `%` in that case).
///
/// The hardware 64-bit division is the single hottest instruction in
/// the update path — every stream element pays `d + 1` of them — and
/// two very common divisors are powers of two: the sign functions
/// (`buckets = 2`) and benchmark/production widths picked as `2^m`.
/// The branch predicts perfectly because `buckets` is fixed per hash
/// function.
#[inline]
fn range_reduce(v: u64, buckets: u64) -> u64 {
    if buckets & (buckets - 1) == 0 {
        v & (buckets - 1)
    } else {
        v % buckets
    }
}

#[cfg(test)]
mod range_reduce_tests {
    use super::range_reduce;

    #[test]
    fn matches_modulo_for_all_divisor_shapes() {
        let values = [0u64, 1, 2, 61, 4095, 4096, 1 << 60, (1 << 61) - 2];
        for b in [1u64, 2, 3, 4, 7, 1024, 2000, 4096, 50_000] {
            for &v in &values {
                assert_eq!(range_reduce(v, b), v % b, "v={v} b={b}");
            }
        }
    }
}

/// A `t`-wise independent hash function realized as a random degree-`t−1`
/// polynomial over `GF(2^61 − 1)`.
///
/// Pairwise independence is all the paper's proofs need, but 4-wise
/// families are useful for variance-sensitive extensions (e.g. AMS-style
/// moment estimation on the de-biased vector) and for the hashing
/// ablation bench.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolynomialHash {
    /// Coefficients, lowest degree first; `coeffs.len()` = independence.
    coeffs: Vec<u64>,
    buckets: u64,
}

impl PolynomialHash {
    /// Samples a `t`-wise independent function with range `[0, buckets)`.
    ///
    /// # Panics
    /// Panics if `t == 0` or `buckets == 0`.
    pub fn sample(seeder: &mut SplitMix64, t: usize, buckets: usize) -> Self {
        assert!(t >= 1, "independence must be at least 1");
        assert!(buckets > 0, "need at least one bucket");
        let mut coeffs: Vec<u64> = (0..t).map(|_| seeder.next_below(P61)).collect();
        // Leading coefficient non-zero keeps the polynomial's degree exact.
        if let Some(last) = coeffs.last_mut() {
            if *last == 0 {
                *last = 1;
            }
        }
        Self {
            coeffs,
            buckets: buckets as u64,
        }
    }

    /// Degree of independence `t` (number of coefficients).
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Horner evaluation of the polynomial at `mix(x)`, in the field
    /// (the same structured-key defence as [`CarterWegman`]).
    #[inline]
    pub fn field_value(&self, x: u64) -> u64 {
        let x = reduce_p61(mix64(x) as u128);
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = reduce_p61(mul_mod_p61(acc, x) as u128 + c as u128);
        }
        acc
    }
}

impl BucketHasher for PolynomialHash {
    #[inline]
    fn bucket(&self, item: u64) -> usize {
        (range_reduce(self.field_value(item), self.buckets)) as usize
    }

    fn num_buckets(&self) -> usize {
        self.buckets as usize
    }
}

impl SignHasher for PolynomialHash {
    #[inline]
    fn sign(&self, item: u64) -> i8 {
        // Take a high-entropy bit of the field value. The low bit of a
        // uniform residue mod a Mersenne prime is itself (1/2 ± 2^-61)
        // uniform.
        if self.field_value(item) & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::BucketHasher;

    fn chi_square_uniform(counts: &[u64], total: u64) -> f64 {
        let s = counts.len() as f64;
        let expect = total as f64 / s;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum()
    }

    #[test]
    fn range_is_respected() {
        let mut seeder = SplitMix64::new(1);
        for buckets in [1usize, 2, 3, 17, 1024, 99_991] {
            let h = CarterWegman::sample(&mut seeder, buckets);
            for x in 0..1000u64 {
                assert!(h.bucket(x) < buckets);
            }
            assert_eq!(h.num_buckets(), buckets);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut s1 = SplitMix64::new(5);
        let mut s2 = SplitMix64::new(5);
        let h1 = CarterWegman::sample(&mut s1, 64);
        let h2 = CarterWegman::sample(&mut s2, 64);
        for x in 0..256u64 {
            assert_eq!(h1.bucket(x), h2.bucket(x));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut seeder = SplitMix64::new(2024);
        let buckets = 64usize;
        let h = CarterWegman::sample(&mut seeder, buckets);
        let n = 64_000u64;
        let mut counts = vec![0u64; buckets];
        for x in 0..n {
            counts[h.bucket(x)] += 1;
        }
        // 63 dof; chi^2 far below the 99.9% quantile (~103) is expected.
        let chi = chi_square_uniform(&counts, n);
        assert!(chi < 120.0, "chi^2 = {chi}");
    }

    #[test]
    fn collision_probability_is_near_one_over_s() {
        // Empirical pairwise collision rate over many sampled functions.
        let mut seeder = SplitMix64::new(77);
        let buckets = 32usize;
        let trials = 4000;
        let mut collisions = 0u64;
        for _ in 0..trials {
            let h = CarterWegman::sample(&mut seeder, buckets);
            if h.bucket(123) == h.bucket(456_789) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let ideal = 1.0 / buckets as f64;
        assert!(
            (rate - ideal).abs() < 3.0 * (ideal / trials as f64).sqrt() + 0.01,
            "rate = {rate}, ideal = {ideal}"
        );
    }

    #[test]
    fn polynomial_degree_one_matches_cw_shape() {
        let mut seeder = SplitMix64::new(9);
        let p = PolynomialHash::sample(&mut seeder, 2, 100);
        assert_eq!(p.independence(), 2);
        for x in 0..500u64 {
            assert!(p.bucket(x) < 100);
        }
    }

    #[test]
    fn polynomial_horner_matches_naive() {
        let p = PolynomialHash {
            coeffs: vec![3, 5, 7], // 3 + 5x + 7x^2, evaluated at mix(x)
            buckets: 1 << 20,
        };
        for x in [0u64, 1, 2, 10, 1_000_003] {
            let xr = reduce_p61(mix64(x) as u128);
            let naive = reduce_p61(
                3u128 + mul_mod_p61(5, xr) as u128 + mul_mod_p61(7, mul_mod_p61(xr, xr)) as u128,
            );
            assert_eq!(p.field_value(x), naive, "x = {x}");
        }
    }

    #[test]
    fn polynomial_sign_is_balanced() {
        let mut seeder = SplitMix64::new(33);
        let p = PolynomialHash::sample(&mut seeder, 4, 2);
        let n = 20_000u64;
        let pos = (0..n).filter(|&x| p.sign(x) == 1).count() as f64;
        let frac = pos / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "positive fraction = {frac}");
    }

    #[test]
    fn four_wise_tuples_spread() {
        // Weak sanity check of 4-wise behaviour: the joint distribution of
        // (h(0), h(1), h(2), h(3)) over sampled functions should cover many
        // distinct tuples, unlike a degenerate family.
        let mut seeder = SplitMix64::new(4096);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..512 {
            let p = PolynomialHash::sample(&mut seeder, 4, 4);
            seen.insert([p.bucket(0), p.bucket(1), p.bucket(2), p.bucket(3)]);
        }
        assert!(seen.len() > 200, "only {} distinct tuples", seen.len());
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        CarterWegman::sample(&mut SplitMix64::new(0), 0);
    }
}
