//! Pairwise-independent sign functions `r : [n] → {−1, +1}`.

use crate::carter_wegman::CarterWegman;
use crate::family::SignHasher;
use crate::seed::SplitMix64;

/// A pairwise-independent random sign function, as required by the
/// CS-matrix (paper, Definition 2).
///
/// Implemented as a Carter–Wegman function into two buckets; pairwise
/// independence of the underlying family carries over to the signs, which
/// is exactly what the variance computation in Theorem 2 (and hence
/// Theorem 4) consumes: `E[r(i)r(j)] = 0` for `i ≠ j`.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignHash {
    inner: CarterWegman,
}

impl SignHash {
    /// Samples a random sign function.
    pub fn sample(seeder: &mut SplitMix64) -> Self {
        Self {
            inner: CarterWegman::sample(seeder, 2),
        }
    }

    /// The sign as `f64` (`+1.0` or `−1.0`), convenient for arithmetic on
    /// bucket counters.
    #[inline]
    pub fn sign_f64(&self, item: u64) -> f64 {
        self.sign(item) as f64
    }
}

impl SignHasher for SignHash {
    #[inline]
    fn sign(&self, item: u64) -> i8 {
        use crate::family::BucketHasher;
        if self.inner.bucket(item) == 0 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_are_plus_minus_one() {
        let r = SignHash::sample(&mut SplitMix64::new(3));
        for x in 0..1000u64 {
            let s = r.sign(x);
            assert!(s == 1 || s == -1);
            assert_eq!(r.sign_f64(x), s as f64);
        }
    }

    #[test]
    fn balanced() {
        let r = SignHash::sample(&mut SplitMix64::new(31));
        let n = 50_000u64;
        let sum: i64 = (0..n).map(|x| r.sign(x) as i64).sum();
        // Mean should be 0 with sd sqrt(n) ~ 224.
        assert!(sum.abs() < 1500, "sum = {sum}");
    }

    #[test]
    fn pairwise_product_is_centered() {
        // E[r(i) r(j)] should be ~0 over random functions: sample many
        // functions and average the product for a fixed pair.
        let mut seeder = SplitMix64::new(64);
        let trials = 4000;
        let sum: i64 = (0..trials)
            .map(|_| {
                let r = SignHash::sample(&mut seeder);
                (r.sign(42) as i64) * (r.sign(4242) as i64)
            })
            .sum();
        let mean = sum as f64 / trials as f64;
        assert!(mean.abs() < 0.06, "mean = {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SignHash::sample(&mut SplitMix64::new(7));
        let b = SignHash::sample(&mut SplitMix64::new(7));
        for x in 0..256u64 {
            assert_eq!(a.sign(x), b.sign(x));
        }
    }
}
