//! Arithmetic modulo the Mersenne prime `p = 2^61 − 1`.
//!
//! All polynomial hash families in this crate work over `GF(p)`. The
//! Mersenne structure lets us reduce a 122-bit product with shifts and
//! adds instead of a hardware division, which keeps per-item hashing at a
//! handful of cycles — important because sketch updates hash every stream
//! element `d + 1` times.

/// The Mersenne prime `2^61 − 1`.
pub const P61: u64 = (1u64 << 61) - 1;

/// Reduces an arbitrary `u128` value modulo [`P61`].
///
/// Uses the identity `2^61 ≡ 1 (mod p)`: split the value into 61-bit
/// limbs, sum them, and fold once more. The result is fully reduced into
/// `[0, p)`.
#[inline]
pub fn reduce_p61(x: u128) -> u64 {
    // Three limbs cover up to 183 bits; products of two values < p are
    // at most ~122 bits so the top limb fits easily.
    let lo = (x & (P61 as u128)) as u64;
    let mid = ((x >> 61) & (P61 as u128)) as u64;
    let hi = (x >> 122) as u64;
    let mut s = lo as u128 + mid as u128 + hi as u128;
    // s < 3 * 2^61, so one more fold plus a conditional subtract settles it.
    s = (s & (P61 as u128)) + (s >> 61);
    let mut r = s as u64;
    if r >= P61 {
        r -= P61;
    }
    r
}

/// Multiplies two residues modulo [`P61`].
///
/// Inputs need not be fully reduced as long as they are `< 2^64`; the
/// 128-bit product is reduced with [`reduce_p61`].
#[inline]
pub fn mul_mod_p61(a: u64, b: u64) -> u64 {
    reduce_p61(a as u128 * b as u128)
}

/// Adds two residues modulo [`P61`]. Inputs must already be `< p`.
#[inline]
pub fn add_mod_p61(a: u64, b: u64) -> u64 {
    let s = a + b; // < 2^62, no overflow
    if s >= P61 {
        s - P61
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p61_is_prime_shaped() {
        assert_eq!(P61, 2_305_843_009_213_693_951);
        assert_eq!(P61, (1u64 << 61) - 1);
    }

    #[test]
    fn reduce_matches_naive_mod() {
        let samples: &[u128] = &[
            0,
            1,
            P61 as u128 - 1,
            P61 as u128,
            P61 as u128 + 1,
            u64::MAX as u128,
            u128::MAX >> 6, // ~122 bits, the largest product we ever reduce
            (P61 as u128 - 1) * (P61 as u128 - 1),
        ];
        for &x in samples {
            assert_eq!(reduce_p61(x) as u128, x % P61 as u128, "x = {x}");
        }
    }

    #[test]
    fn reduce_is_idempotent_on_reduced_values() {
        for x in [0u64, 1, 12345, P61 - 1] {
            assert_eq!(reduce_p61(x as u128), x);
        }
    }

    #[test]
    fn mul_matches_naive_mod() {
        let vals = [0u64, 1, 2, 97, 1 << 32, P61 - 1, P61 - 2];
        for &a in &vals {
            for &b in &vals {
                let expect = ((a as u128 * b as u128) % P61 as u128) as u64;
                assert_eq!(mul_mod_p61(a, b), expect, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn add_matches_naive_mod() {
        let vals = [0u64, 1, P61 / 2, P61 - 1];
        for &a in &vals {
            for &b in &vals {
                let expect = ((a as u128 + b as u128) % P61 as u128) as u64;
                assert_eq!(add_mod_p61(a, b), expect);
            }
        }
    }

    #[test]
    fn fermat_little_theorem_spot_check() {
        // a^(p-1) = 1 mod p for prime p: exponentiate by squaring.
        fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
            let mut acc = 1u64;
            while exp > 0 {
                if exp & 1 == 1 {
                    acc = mul_mod_p61(acc, base);
                }
                base = mul_mod_p61(base, base);
                exp >>= 1;
            }
            acc
        }
        for a in [2u64, 3, 5, 7, 1234567891011] {
            assert_eq!(pow_mod(a, P61 - 1), 1, "a = {a}");
        }
    }
}
