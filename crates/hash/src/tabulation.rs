//! Simple tabulation hashing.

use crate::family::{BucketHasher, SignHasher};
use crate::seed::SplitMix64;

/// Simple tabulation hashing: split the 64-bit key into 8 bytes and XOR
/// together one random table entry per byte.
///
/// Only 3-wise independent, but Pătraşcu–Thorup showed it behaves like a
/// fully random function for hash tables, linear probing, and — relevant
/// here — Count-Sketch-style estimation (it gives Chernoff-style
/// concentration). It trades 8 cache-resident table lookups for the
/// multiplications of the polynomial families; the `ablation_hashing`
/// bench measures the trade on sketch updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tabulation {
    /// 8 tables × 256 entries of 64 random bits.
    tables: Box<[[u64; 256]; 8]>,
    buckets: usize,
}

impl Tabulation {
    /// Samples a random tabulation function with range `[0, buckets)`.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn sample(seeder: &mut SplitMix64, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        let mut tables = Box::new([[0u64; 256]; 8]);
        for table in tables.iter_mut() {
            for entry in table.iter_mut() {
                *entry = seeder.next_u64();
            }
        }
        Self { tables, buckets }
    }

    /// The full 64-bit hash before range reduction.
    #[inline]
    pub fn hash64(&self, item: u64) -> u64 {
        let b = item.to_le_bytes();
        let mut acc = 0u64;
        for (i, table) in self.tables.iter().enumerate() {
            acc ^= table[b[i] as usize];
        }
        acc
    }
}

impl BucketHasher for Tabulation {
    #[inline]
    fn bucket(&self, item: u64) -> usize {
        // Multiply-high range reduction keeps uniformity for arbitrary
        // (non power-of-two) bucket counts.
        ((self.hash64(item) as u128 * self.buckets as u128) >> 64) as usize
    }

    fn num_buckets(&self) -> usize {
        self.buckets
    }
}

impl SignHasher for Tabulation {
    #[inline]
    fn sign(&self, item: u64) -> i8 {
        if self.hash64(item) & (1 << 63) == 0 {
            1
        } else {
            -1
        }
    }
}

/// Serde support: the 8x256 tables flatten to a `Vec<u64>` of length
/// 2048 (derive cannot handle arrays this large).
#[cfg(feature = "serde")]
mod serde_impl {
    use super::Tabulation;
    use serde::de::Error as DeError;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    #[derive(Serialize, Deserialize)]
    struct Wire {
        tables: Vec<u64>,
        buckets: usize,
    }

    impl Serialize for Tabulation {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let flat: Vec<u64> = self.tables.iter().flat_map(|t| t.iter().copied()).collect();
            Wire {
                tables: flat,
                buckets: self.buckets,
            }
            .serialize(serializer)
        }
    }

    impl<'de> Deserialize<'de> for Tabulation {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let wire = Wire::deserialize(deserializer)?;
            if wire.tables.len() != 8 * 256 {
                return Err(D::Error::custom(format!(
                    "tabulation table must have 2048 entries, got {}",
                    wire.tables.len()
                )));
            }
            if wire.buckets == 0 {
                return Err(D::Error::custom("bucket count must be positive"));
            }
            let mut tables = Box::new([[0u64; 256]; 8]);
            for (i, chunk) in wire.tables.chunks_exact(256).enumerate() {
                tables[i].copy_from_slice(chunk);
            }
            Ok(Tabulation {
                tables,
                buckets: wire.buckets,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_is_respected() {
        let mut seeder = SplitMix64::new(21);
        for buckets in [1usize, 7, 100, 4096] {
            let h = Tabulation::sample(&mut seeder, buckets);
            for x in 0..1000u64 {
                assert!(h.bucket(x) < buckets);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let h1 = Tabulation::sample(&mut SplitMix64::new(13), 512);
        let h2 = Tabulation::sample(&mut SplitMix64::new(13), 512);
        for x in 0..512u64 {
            assert_eq!(h1.bucket(x), h2.bucket(x));
            assert_eq!(h1.sign(x), h2.sign(x));
        }
    }

    #[test]
    fn single_byte_change_flips_hash() {
        let h = Tabulation::sample(&mut SplitMix64::new(5), 1 << 30);
        // Keys differing in exactly one byte XOR in exactly one table
        // difference, which is a uniformly random 64-bit value: the
        // resulting buckets should almost never match.
        let mut same = 0;
        for x in 0..1000u64 {
            if h.bucket(x) == h.bucket(x ^ 0xFF00) {
                same += 1;
            }
        }
        assert!(same <= 2, "{same} unexpected collisions");
    }

    #[test]
    fn signs_are_balanced() {
        let h = Tabulation::sample(&mut SplitMix64::new(17), 2);
        let n = 20_000u64;
        let pos = (0..n).filter(|&x| h.sign(x) == 1).count() as f64;
        let frac = pos / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "positive fraction = {frac}");
    }

    #[test]
    fn uniform_across_odd_bucket_count() {
        let buckets = 97usize;
        let h = Tabulation::sample(&mut SplitMix64::new(29), buckets);
        let n = 97_000u64;
        let mut counts = vec![0u64; buckets];
        for x in 0..n {
            counts[h.bucket(x)] += 1;
        }
        let expect = n as f64 / buckets as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "bucket {i}: {c} vs expected {expect}"
            );
        }
    }
}
