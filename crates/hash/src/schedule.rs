//! Bounded-lifetime seed rotation: the [`SeedSchedule`].
//!
//! Every hash family in this crate is fully determined by one `u64`
//! seed — which is exactly what an *adaptive* adversary exploits: once
//! query answers feed back into the stream, the seed can be learned
//! one probe at a time and the (ε, δ) analysis (which assumes the
//! input is independent of the hash functions) stops applying. The
//! ROADMAP's mitigation is to bound every seed's lifetime: the
//! rotation driver (`bas_pipeline::RotatingIngest`) reseeds the live
//! plane at every interval boundary, so no hash configuration survives
//! longer than the serving window.
//!
//! A [`SeedSchedule`] is the deterministic half of that story: a pure
//! `rotation → seed` derivation from one master seed, with no state to
//! persist and no coordination to run. Two parties that share the
//! master (a distributed site and its coordinator, a test and its
//! reference) derive identical per-rotation seeds forever — the same
//! "common knowledge" property the master seed itself has, extended
//! along the time axis. The derivations are frozen by golden vectors
//! in `tests/hash_golden.rs`: they are wire format, not an
//! implementation detail.

use crate::seed::mix64;

/// Odd salt separating the rotation-derivation domain from every other
/// use of [`mix64`] in the workspace (sketches derive their families
/// from `seed ^ 0xC0DE_000x`; rotations must not collide with that).
const ROTATION_SALT: u64 = 0x5EED_5EED_0B5E_55ED;

/// A deterministic per-rotation seed derivation from one master seed.
///
/// * `seed_for(0)` **is the master seed**: a rotating engine starts
///   bit-for-bit identical to the fixed-seed engine it hardens, so
///   enabling rotation changes nothing until the first boundary.
/// * `seed_for(k)` for `k > 0` is an `O(1)` [`mix64`] chain — no
///   iteration over earlier rotations, so a reader joining at rotation
///   ten million pays the same as one joining at rotation one.
/// * Distinct rotations get distinct derived seeds: the salt is odd,
///   so `k ↦ k·salt` is a bijection of `u64`, and [`mix64`] is a
///   bijection on top of it. (The master itself could in principle
///   collide with some derived seed — a `2⁻⁶⁴`-per-rotation
///   coincidence, not a structural weakness.)
///
/// ```
/// use bas_hash::SeedSchedule;
///
/// let schedule = SeedSchedule::new(42);
/// assert_eq!(schedule.seed_for(0), 42); // rotation 0 = the master
/// assert_ne!(schedule.seed_for(1), schedule.seed_for(2));
/// // Pure derivation: any party with the master agrees.
/// assert_eq!(SeedSchedule::new(42).seed_for(7), schedule.seed_for(7));
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSchedule {
    master: u64,
}

impl SeedSchedule {
    /// A schedule rooted at `master`.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed (`seed_for(0)`).
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The seed for rotation `rotation`. Rotation 0 returns the master
    /// seed unchanged; later rotations are derived by a fixed
    /// [`mix64`] chain (see the type docs for the properties).
    pub fn seed_for(&self, rotation: u64) -> u64 {
        if rotation == 0 {
            self.master
        } else {
            mix64(self.master ^ mix64(rotation.wrapping_mul(ROTATION_SALT)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_zero_is_the_master() {
        for master in [0u64, 1, 42, u64::MAX] {
            assert_eq!(SeedSchedule::new(master).seed_for(0), master);
        }
    }

    #[test]
    fn derivations_are_deterministic_and_distinct() {
        let schedule = SeedSchedule::new(0xFEED);
        let seeds: Vec<u64> = (0..1_000).map(|k| schedule.seed_for(k)).collect();
        // Deterministic: an independent schedule agrees on every seed.
        let again = SeedSchedule::new(0xFEED);
        for (k, &s) in seeds.iter().enumerate() {
            assert_eq!(again.seed_for(k as u64), s);
        }
        // Distinct: no seed repeats across the first thousand rotations.
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len());
    }

    #[test]
    fn different_masters_diverge_immediately() {
        let a = SeedSchedule::new(1);
        let b = SeedSchedule::new(2);
        for k in 1..100u64 {
            assert_ne!(a.seed_for(k), b.seed_for(k), "rotation {k}");
        }
    }

    #[test]
    fn derivation_is_o1_not_a_chain() {
        // Jumping straight to a huge rotation must agree with the same
        // direct computation — there is no hidden iterative state.
        let schedule = SeedSchedule::new(9);
        let far = schedule.seed_for(u64::MAX);
        assert_eq!(schedule.seed_for(u64::MAX), far);
        assert_ne!(far, schedule.seed_for(u64::MAX - 1));
    }
}
