//! # bas-hash — hashing substrate for bias-aware sketches
//!
//! Every sketch in this workspace needs families of cheap, seedable hash
//! functions with provable independence guarantees. The analysis in
//! *Bias-Aware Sketches* (Chen & Zhang, VLDB 2017) — like the analyses of
//! Count-Median and Count-Sketch it builds on — only uses second moments,
//! so **2-universal (pairwise independent)** families suffice (paper,
//! §4.2.1 and §4.4). This crate implements those families from scratch:
//!
//! * [`CarterWegman`] — the classic `((a·x + b) mod p) mod s` family over
//!   the Mersenne prime `p = 2^61 − 1`, for arbitrary bucket counts `s`.
//! * [`PolynomialHash`] — degree-`(t−1)` polynomials over the same prime,
//!   giving `t`-wise independence when more than pairwise is wanted.
//! * [`MultiplyShift`] — Dietzfelbinger's multiply-shift scheme for
//!   power-of-two ranges; the fastest option when `s = 2^m`.
//! * [`Tabulation`] — simple tabulation hashing, 3-wise independent with
//!   strong practical behaviour (Pătraşcu–Thorup).
//! * [`SignHash`] — pairwise-independent `{−1, +1}` signs for
//!   Count-Sketch-style cancellation.
//!
//! Seeding is deterministic and splittable via [`SplitMix64`], so an
//! entire sketch (and its distributed replicas) can be reconstructed from
//! one `u64` master seed — the paper's "common knowledge" hash functions
//! shared between the sketching and recovery phases.
//!
//! ```
//! use bas_hash::{BucketHasher, HashFamily, SplitMix64};
//!
//! let mut seeder = SplitMix64::new(42);
//! let mut family = HashFamily::carter_wegman(&mut seeder, /* buckets = */ 1024);
//! let h = family.sample();
//! assert!(h.bucket(12345) < 1024);
//! ```

// The `simd` feature compiles `core::arch` intrinsics (inherently
// `unsafe`) inside the `simd` module; everything else stays forbidden.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

mod carter_wegman;
mod family;
mod multiply_shift;
mod prime;
mod row_deriver;
mod schedule;
mod seed;
mod sign;
pub mod simd;
mod tabulation;

pub use carter_wegman::{CarterWegman, PolynomialHash};
pub use family::{
    bucket_rows_each, AnyBucketHasher, BucketHasher, HashFamily, HashKind, SignHasher,
};
pub use multiply_shift::MultiplyShift;
pub use prime::{add_mod_p61, mul_mod_p61, reduce_p61, P61};
pub use row_deriver::{DerivedRow, RowDeriver};
pub use schedule::SeedSchedule;
pub use seed::{mix64, SplitMix64};
pub use sign::SignHash;
pub use simd::{set_force_scalar, simd_active};
pub use tabulation::Tabulation;
