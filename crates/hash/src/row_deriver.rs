//! One-hash row derivation: digest each item once, re-key per row.
//!
//! The classical update path evaluates `d` independent hash functions
//! per item — `d` modular reductions over `2^61 − 1` for the default
//! Carter–Wegman family. The one-hash trick replaces that with
//!
//! 1. **one** strong 64-bit digest per item, `g(x) = mix64(x ^ key)`
//!    with a per-family random `key` (so distinct seeds give
//!    independent digest streams), and
//! 2. a Dietzfelbinger multiply-shift **re-keying** per row:
//!    `h_r(x) = (a_r · g(x) + b_r) >> (64 − m)` with independent odd
//!    multipliers `a_r`, plus an independent odd multiplier `s_r`
//!    whose top bit supplies the Count-Sketch sign.
//!
//! Since `mix64` is a bijection, each `h_r` is exactly a multiply-shift
//! function over a permuted key space: pairwise independence (and the
//! second-moment analyses of Theorems 1–2) carry over unchanged. What
//! changes is cost: the `d` field reductions collapse into one mix and
//! `d` integer multiplies — and a batch kernel can hoist the digest out
//! of the row loop entirely, which is what [`RowDeriver`] exists for.
//!
//! [`DerivedRow`] is the per-row hash function (a plain
//! [`BucketHasher`], so every item-at-a-time path works unchanged);
//! [`RowDeriver`] is the batch-side view over a sketch's row slice that
//! exposes the shared digest explicitly.

use crate::family::{AnyBucketHasher, BucketHasher, SignHasher};
use crate::seed::{mix64, SplitMix64};

/// One derived row `h_r(x) = (a·mix64(x ^ key) + b) >> shift`, plus a
/// sign channel from an independent odd multiplier.
///
/// All rows sampled from one [`crate::HashFamily`] share `key` (the
/// digest is computed once per item in batch kernels) while `a`, `b`
/// and `sign_a` are independent per row.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DerivedRow {
    key: u64,
    a: u64,
    b: u64,
    sign_a: u64,
    shift: u32,
    buckets: usize,
}

impl DerivedRow {
    /// Samples one row's re-keying parameters. The `key` is the
    /// family-wide digest key (shared by every row of one sketch).
    ///
    /// # Panics
    /// Panics if `buckets` is zero or not a power of two.
    pub fn sample(seeder: &mut SplitMix64, key: u64, buckets: usize) -> Self {
        assert!(
            buckets.is_power_of_two(),
            "one-hash derivation needs a power-of-two range, got {buckets}"
        );
        let m = buckets.trailing_zeros();
        let a = seeder.next_u64() | 1; // odd multiplier
        let b = seeder.next_u64();
        let sign_a = seeder.next_u64() | 1; // odd sign multiplier
        Self {
            key,
            a,
            b,
            sign_a,
            shift: 64 - m,
            buckets,
        }
    }

    /// The family-wide digest key this row re-keys.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The shared per-item digest `mix64(item ^ key)`.
    #[inline]
    pub fn digest(&self, item: u64) -> u64 {
        mix64(item ^ self.key)
    }

    /// Bucket index from an already-computed digest (the batch-kernel
    /// entry point; [`BucketHasher::bucket`] is `digest` + this).
    #[inline]
    pub fn bucket_of_digest(&self, digest: u64) -> usize {
        if self.shift == 64 {
            // 2^0 = 1 bucket: everything collides by definition.
            return 0;
        }
        (self.a.wrapping_mul(digest).wrapping_add(self.b) >> self.shift) as usize
    }

    /// Sign (`±1`) from an already-computed digest: the top bit of an
    /// independent odd-multiplier product.
    #[inline]
    pub fn sign_of_digest(&self, digest: u64) -> i8 {
        if (self.sign_a.wrapping_mul(digest)) >> 63 == 0 {
            1
        } else {
            -1
        }
    }
}

impl BucketHasher for DerivedRow {
    #[inline]
    fn bucket(&self, item: u64) -> usize {
        self.bucket_of_digest(self.digest(item))
    }

    fn num_buckets(&self) -> usize {
        self.buckets
    }
}

impl SignHasher for DerivedRow {
    #[inline]
    fn sign(&self, item: u64) -> i8 {
        self.sign_of_digest(self.digest(item))
    }
}

/// Batch-side view over a sketch's row hashers when they are all
/// [`DerivedRow`]s sharing one digest key: computes the digest **once**
/// per item and derives every row's bucket (and sign) from it.
///
/// Built per batch via [`RowDeriver::from_hashers`]; returns `None` for
/// any other family, so callers fall back to the generic path:
///
/// ```
/// use bas_hash::{HashFamily, HashKind, RowDeriver, SplitMix64, BucketHasher};
///
/// let mut seeder = SplitMix64::new(7);
/// let mut fam = HashFamily::new(HashKind::OneHash, &mut seeder, 1024);
/// let rows = fam.sample_many(4);
/// let rd = RowDeriver::from_hashers(&rows).expect("homogeneous derived rows");
/// let digest = rd.digest(12345);
/// for r in 0..rd.depth() {
///     assert_eq!(rd.bucket_of_digest(r, digest), rows[r].bucket(12345));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RowDeriver {
    key: u64,
    rows: Vec<DerivedRow>,
}

impl RowDeriver {
    /// Builds the deriver if (and only if) every hasher in the slice is
    /// a [`DerivedRow`] with the same digest key.
    pub fn from_hashers(hashers: &[AnyBucketHasher]) -> Option<Self> {
        let first = match hashers.first()? {
            AnyBucketHasher::Derived(r) => r,
            _ => return None,
        };
        let key = first.key;
        let mut rows = Vec::with_capacity(hashers.len());
        for h in hashers {
            match h {
                AnyBucketHasher::Derived(r) if r.key == key => rows.push(*r),
                _ => return None,
            }
        }
        Some(Self { key, rows })
    }

    /// Number of rows `d`.
    #[inline]
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// The shared per-item digest.
    #[inline]
    pub fn digest(&self, item: u64) -> u64 {
        mix64(item ^ self.key)
    }

    /// Row `row`'s bucket for a precomputed digest.
    #[inline]
    pub fn bucket_of_digest(&self, row: usize, digest: u64) -> usize {
        self.rows[row].bucket_of_digest(digest)
    }

    /// Row `row`'s sign for a precomputed digest.
    #[inline]
    pub fn sign_of_digest(&self, row: usize, digest: u64) -> i8 {
        self.rows[row].sign_of_digest(digest)
    }

    /// Fills `out[0..depth]` with the item's bucket index per row
    /// (digest computed once).
    #[inline]
    pub fn buckets_into(&self, item: u64, out: &mut [usize]) {
        let digest = self.digest(item);
        for (o, r) in out.iter_mut().zip(self.rows.iter()) {
            *o = r.bucket_of_digest(digest);
        }
    }

    /// Fills `out[i] = mix64(items[i] ^ key)` for a whole block — the
    /// SIMD entry point of the blocked ingest kernel. Dispatches to the
    /// vectorized path when [`crate::simd_active`] and is bit-for-bit
    /// identical to calling [`RowDeriver::digest`] per item either way.
    pub fn digests_into(&self, items: &[u64], out: &mut [u64]) {
        crate::simd::mix64_batch(self.key, items, out);
    }

    /// Fills `out[i]` with row `row`'s bucket for each precomputed
    /// digest (the block-wide form of [`RowDeriver::bucket_of_digest`]).
    pub fn buckets_of_digests(&self, row: usize, digests: &[u64], out: &mut [usize]) {
        let r = &self.rows[row];
        if r.shift == 64 {
            // 2^0 = 1 bucket: everything collides by definition.
            out.fill(0);
            return;
        }
        crate::simd::multiply_shift_batch(r.a, r.b, r.shift, digests, out);
    }

    /// Fills `out[i] = sign_row(digests[i]) · deltas[i]` — the
    /// Count-Sketch signed value for each item of a block, computed as
    /// a sign-bit XOR (bit-identical to multiplying by `±1.0` for every
    /// finite or infinite delta).
    pub fn signed_deltas_of_digests(
        &self,
        row: usize,
        digests: &[u64],
        deltas: &[f64],
        out: &mut [f64],
    ) {
        crate::simd::signed_delta_batch(self.rows[row].sign_a, digests, deltas, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{HashFamily, HashKind};

    #[test]
    fn derived_row_range_is_respected() {
        let mut seeder = SplitMix64::new(21);
        for m in [0u32, 1, 4, 10, 16] {
            let buckets = 1usize << m;
            let r = DerivedRow::sample(&mut seeder, 0xFEED, buckets);
            for x in 0..2000u64 {
                assert!(r.bucket(x) < buckets, "m = {m}");
            }
            assert_eq!(r.num_buckets(), buckets);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        DerivedRow::sample(&mut SplitMix64::new(0), 0, 100);
    }

    #[test]
    fn rows_from_one_family_share_the_digest_key() {
        let mut seeder = SplitMix64::new(3);
        let mut fam = HashFamily::new(HashKind::OneHash, &mut seeder, 256);
        let rows = fam.sample_many(5);
        let rd = RowDeriver::from_hashers(&rows).expect("homogeneous");
        assert_eq!(rd.depth(), 5);
        for x in [0u64, 1, 42, 1_000_003, u64::MAX] {
            let digest = rd.digest(x);
            for (row, h) in rows.iter().enumerate() {
                assert_eq!(rd.bucket_of_digest(row, digest), h.bucket(x));
            }
        }
    }

    #[test]
    fn rows_are_mutually_independent_in_practice() {
        // Distinct rows must disagree on most items (independent a/b).
        let mut seeder = SplitMix64::new(9);
        let mut fam = HashFamily::new(HashKind::OneHash, &mut seeder, 128);
        let rows = fam.sample_many(2);
        let disagreements = (0..1000u64)
            .filter(|&x| rows[0].bucket(x) != rows[1].bucket(x))
            .count();
        assert!(disagreements > 900, "{disagreements}");
    }

    #[test]
    fn from_hashers_rejects_other_families_and_mixed_keys() {
        let mut seeder = SplitMix64::new(4);
        let mut cw = HashFamily::new(HashKind::CarterWegman, &mut seeder, 64);
        assert!(RowDeriver::from_hashers(&cw.sample_many(3)).is_none());
        assert!(RowDeriver::from_hashers(&[]).is_none());

        let a = AnyBucketHasher::Derived(DerivedRow::sample(&mut seeder, 1, 64));
        let b = AnyBucketHasher::Derived(DerivedRow::sample(&mut seeder, 2, 64));
        assert!(RowDeriver::from_hashers(&[a, b]).is_none());
    }

    #[test]
    fn signs_are_balanced_and_match_digest_path() {
        let mut seeder = SplitMix64::new(33);
        let r = DerivedRow::sample(&mut seeder, 0xABCD, 2);
        let n = 20_000u64;
        let pos = (0..n).filter(|&x| r.sign(x) == 1).count() as f64;
        let frac = pos / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "positive fraction = {frac}");
        for x in 0..100u64 {
            assert_eq!(r.sign(x), r.sign_of_digest(r.digest(x)));
        }
    }

    #[test]
    fn buckets_into_matches_per_row_bucket() {
        let mut seeder = SplitMix64::new(5);
        let mut fam = HashFamily::new(HashKind::OneHash, &mut seeder, 512);
        let rows = fam.sample_many(7);
        let rd = RowDeriver::from_hashers(&rows).unwrap();
        let mut out = [0usize; 7];
        for x in (0..5_000u64).step_by(13) {
            rd.buckets_into(x, &mut out);
            for (row, h) in rows.iter().enumerate() {
                assert_eq!(out[row], h.bucket(x), "x={x} row={row}");
            }
        }
    }

    #[test]
    fn block_helpers_match_per_item_path() {
        let mut seeder = SplitMix64::new(11);
        let mut fam = HashFamily::new(HashKind::OneHash, &mut seeder, 256);
        let rows = fam.sample_many(4);
        let rd = RowDeriver::from_hashers(&rows).unwrap();
        let items: Vec<u64> = (0..301u64)
            .map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D))
            .collect();
        let deltas: Vec<f64> = (0..301).map(|i| (i as f64) * 0.5 - 40.0).collect();

        let mut digests = vec![0u64; items.len()];
        rd.digests_into(&items, &mut digests);
        let mut buckets = vec![0usize; items.len()];
        let mut vals = vec![0f64; items.len()];
        for row in 0..rd.depth() {
            rd.buckets_of_digests(row, &digests, &mut buckets);
            rd.signed_deltas_of_digests(row, &digests, &deltas, &mut vals);
            for (i, &x) in items.iter().enumerate() {
                assert_eq!(digests[i], rd.digest(x));
                assert_eq!(buckets[i], rd.bucket_of_digest(row, digests[i]));
                let want = rd.sign_of_digest(row, digests[i]) as f64 * deltas[i];
                assert_eq!(vals[i].to_bits(), want.to_bits(), "row {row} item {i}");
            }
        }
    }

    #[test]
    fn block_helpers_single_bucket_row_is_zero() {
        let mut seeder = SplitMix64::new(2);
        let row = DerivedRow::sample(&mut seeder, 0xAA, 1);
        let rd = RowDeriver::from_hashers(&[AnyBucketHasher::Derived(row)]).unwrap();
        let digests = [1u64, 2, u64::MAX];
        let mut out = [7usize; 3];
        rd.buckets_of_digests(0, &digests, &mut out);
        assert_eq!(out, [0, 0, 0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut seeder = SplitMix64::new(77);
            let mut fam = HashFamily::new(HashKind::OneHash, &mut seeder, 1024);
            fam.sample_many(4)
        };
        let (r1, r2) = (mk(), mk());
        for x in 0..512u64 {
            for row in 0..4 {
                assert_eq!(r1[row].bucket(x), r2[row].bucket(x));
            }
        }
    }
}
