//! Vectorized batch kernels for one-hash row derivation.
//!
//! The blocked ingest kernel (PR 8) stages each 256-item block's bucket
//! indices and values in scratch before sweeping the grid row by row.
//! Filling that scratch is three data-parallel maps over the block:
//!
//! 1. `digest_i = mix64(item_i ^ key)` — the shared one-hash digest,
//! 2. `bucket_i = (a·digest_i + b) >> shift` — per-row multiply-shift,
//! 3. `val_i = sign_r(digest_i) · delta_i` — per-row Count-Sketch sign,
//!    computed as a sign-bit XOR (`±1.0 · x` is exactly a sign-bit flip
//!    for every finite or infinite `x`).
//!
//! All three are pure 64-bit integer lane math, so they vectorize with
//! plain AVX2 (4 lanes of `u64`; the missing 64×64 multiply is emulated
//! from `_mm256_mul_epu32` cross products). The intrinsics live behind
//! the `simd` cargo feature and a runtime `avx2` detection check; the
//! scalar fallback below each dispatch point performs the *same*
//! wrapping integer operations, so results are bit-for-bit identical —
//! a property the workspace's scalar-equivalence suite pins under both
//! feature configurations.
//!
//! [`set_force_scalar`] lets benchmarks and tests measure/compare both
//! paths from one binary even when AVX2 is available.

#![cfg_attr(feature = "simd", allow(unsafe_code))]

use core::sync::atomic::{AtomicBool, Ordering};

use crate::seed::mix64;

/// When set, batch kernels take the scalar path even if the `simd`
/// feature is enabled and the CPU supports it.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Forces (or un-forces) the scalar fallback at runtime.
///
/// Used by the equivalence suite and benchmarks to exercise both paths
/// in one process; has no effect when the `simd` feature is disabled
/// (the scalar path is then the only one compiled).
pub fn set_force_scalar(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

/// Whether the vectorized kernels will actually run: the `simd` feature
/// is compiled in, the CPU reports AVX2, and scalar mode is not forced.
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        !FORCE_SCALAR.load(Ordering::Relaxed) && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        // Keep the flag "used" so the scalar-only build stays warning-free.
        let _ = FORCE_SCALAR.load(Ordering::Relaxed);
        false
    }
}

/// Fills `out[i] = mix64(items[i] ^ key)` — the family-wide one-hash
/// digest for a whole block.
pub(crate) fn mix64_batch(key: u64, items: &[u64], out: &mut [u64]) {
    debug_assert_eq!(items.len(), out.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: guarded by the runtime AVX2 detection in `simd_active`.
        unsafe { avx2::mix64_batch(key, items, out) };
        return;
    }
    for (o, &x) in out.iter_mut().zip(items) {
        *o = mix64(x ^ key);
    }
}

/// Fills `out[i] = (a·digests[i] + b) >> shift` (wrapping), the
/// multiply-shift bucket for one derived row. `shift` must be in
/// `1..=63`; the degenerate one-bucket case (`shift == 64`) is handled
/// by the caller.
pub(crate) fn multiply_shift_batch(a: u64, b: u64, shift: u32, digests: &[u64], out: &mut [usize]) {
    debug_assert_eq!(digests.len(), out.len());
    debug_assert!((1..=63).contains(&shift));
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // usize is 64-bit on x86_64: reinterpret the output slice so the
        // vector store writes bucket indices directly.
        // SAFETY: same length, and u64/usize share size and alignment here.
        let out64 =
            unsafe { core::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<u64>(), out.len()) };
        // SAFETY: guarded by the runtime AVX2 detection in `simd_active`.
        unsafe { avx2::multiply_shift_batch(a, b, shift, digests, out64) };
        return;
    }
    for (o, &d) in out.iter_mut().zip(digests) {
        *o = (a.wrapping_mul(d).wrapping_add(b) >> shift) as usize;
    }
}

/// Fills `out[i] = sign(digests[i]) · deltas[i]` for one derived row,
/// where the sign is the top bit of `sign_a · digest` — computed as a
/// sign-bit XOR, which is bit-identical to multiplying by `±1.0` for
/// every finite or infinite delta.
pub(crate) fn signed_delta_batch(sign_a: u64, digests: &[u64], deltas: &[f64], out: &mut [f64]) {
    debug_assert_eq!(digests.len(), deltas.len());
    debug_assert_eq!(digests.len(), out.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: guarded by the runtime AVX2 detection in `simd_active`.
        unsafe { avx2::signed_delta_batch(sign_a, digests, deltas, out) };
        return;
    }
    for ((o, &d), &delta) in out.iter_mut().zip(digests).zip(deltas) {
        let sign_bit = sign_a.wrapping_mul(d) & (1u64 << 63);
        *o = f64::from_bits(delta.to_bits() ^ sign_bit);
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    //! AVX2 lane kernels. Every function here carries
    //! `#[target_feature(enable = "avx2")]` and must only be reached
    //! through the runtime-detected dispatch above.

    use core::arch::x86_64::*;

    use crate::seed::mix64;

    /// Full 64×64→64 wrapping multiply per lane, emulated from the
    /// 32×32→64 `vpmuludq` cross products (AVX2 has no `vpmullq`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul64(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mix64_batch(key: u64, items: &[u64], out: &mut [u64]) {
        const GOLDEN: i64 = 0x9E37_79B9_7F4A_7C15_u64 as i64;
        const M1: i64 = 0xBF58_476D_1CE4_E5B9_u64 as i64;
        const M2: i64 = 0x94D0_49BB_1331_11EB_u64 as i64;
        let golden = _mm256_set1_epi64x(GOLDEN);
        let m1 = _mm256_set1_epi64x(M1);
        let m2 = _mm256_set1_epi64x(M2);
        let keyv = _mm256_set1_epi64x(key as i64);
        let lanes = items.len() & !3;
        let mut i = 0;
        while i < lanes {
            let x = _mm256_loadu_si256(items.as_ptr().add(i).cast());
            let mut z = _mm256_add_epi64(_mm256_xor_si256(x, keyv), golden);
            z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64::<30>(z)), m1);
            z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64::<27>(z)), m2);
            z = _mm256_xor_si256(z, _mm256_srli_epi64::<31>(z));
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), z);
            i += 4;
        }
        for j in lanes..items.len() {
            out[j] = mix64(items[j] ^ key);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn multiply_shift_batch(
        a: u64,
        b: u64,
        shift: u32,
        digests: &[u64],
        out: &mut [u64],
    ) {
        let av = _mm256_set1_epi64x(a as i64);
        let bv = _mm256_set1_epi64x(b as i64);
        let sh = _mm_cvtsi32_si128(shift as i32);
        let lanes = digests.len() & !3;
        let mut i = 0;
        while i < lanes {
            let d = _mm256_loadu_si256(digests.as_ptr().add(i).cast());
            let h = _mm256_srl_epi64(_mm256_add_epi64(mul64(av, d), bv), sh);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), h);
            i += 4;
        }
        for j in lanes..digests.len() {
            out[j] = a.wrapping_mul(digests[j]).wrapping_add(b) >> shift;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn signed_delta_batch(
        sign_a: u64,
        digests: &[u64],
        deltas: &[f64],
        out: &mut [f64],
    ) {
        let sv = _mm256_set1_epi64x(sign_a as i64);
        let sign_mask = _mm256_set1_epi64x(i64::MIN);
        let lanes = digests.len() & !3;
        let mut i = 0;
        while i < lanes {
            let d = _mm256_loadu_si256(digests.as_ptr().add(i).cast());
            let bits = _mm256_and_si256(mul64(sv, d), sign_mask);
            let v = _mm256_loadu_si256(deltas.as_ptr().add(i).cast());
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), _mm256_xor_si256(v, bits));
            i += 4;
        }
        for j in lanes..digests.len() {
            let sign_bit = sign_a.wrapping_mul(digests[j]) & (1u64 << 63);
            out[j] = f64::from_bits(deltas[j].to_bits() ^ sign_bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_digests(n: usize) -> Vec<u64> {
        let mut g = crate::SplitMix64::new(0xD1D1);
        (0..n).map(|_| g.next_u64()).collect()
    }

    #[test]
    fn mix64_batch_matches_scalar_mix() {
        let items: Vec<u64> = (0..261).map(|i| i * i * 2_654_435_761 + 17).collect();
        let mut out = vec![0u64; items.len()];
        mix64_batch(0xC0FFEE, &items, &mut out);
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(out[i], mix64(x ^ 0xC0FFEE), "lane {i}");
        }
    }

    #[test]
    fn multiply_shift_batch_matches_scalar() {
        let digests = sample_digests(259);
        let (a, b, shift) = (0x9E37_79B9_7F4A_7C15 | 1, 0x1234_5678_9ABC_DEF0, 54u32);
        let mut out = vec![0usize; digests.len()];
        multiply_shift_batch(a, b, shift, &digests, &mut out);
        for (i, &d) in digests.iter().enumerate() {
            assert_eq!(
                out[i],
                (a.wrapping_mul(d).wrapping_add(b) >> shift) as usize
            );
        }
    }

    #[test]
    fn signed_delta_batch_matches_sign_multiplication() {
        let digests = sample_digests(258);
        let sign_a = 0xABCD_EF01_2345_6789 | 1;
        let deltas: Vec<f64> = (0..digests.len()).map(|i| (i as f64) - 100.5).collect();
        let mut out = vec![0f64; digests.len()];
        signed_delta_batch(sign_a, &digests, &deltas, &mut out);
        for i in 0..digests.len() {
            let sign = if sign_a.wrapping_mul(digests[i]) >> 63 == 0 {
                1.0
            } else {
                -1.0
            };
            assert_eq!(out[i].to_bits(), (sign * deltas[i]).to_bits(), "lane {i}");
        }
    }

    #[test]
    fn forced_scalar_is_bit_identical_to_dispatch() {
        let digests = sample_digests(300);
        let items: Vec<u64> = (0..300).map(|i| i * 7 + 3).collect();
        let deltas: Vec<f64> = (0..300).map(|i| 0.25 * i as f64 - 31.0).collect();
        let (a, b, shift, sign_a, key) = (21u64 | 1, 99u64, 40u32, 77u64 | 1, 0xFEED_u64);

        let mut dig_a = vec![0u64; 300];
        let mut buck_a = vec![0usize; 300];
        let mut val_a = vec![0f64; 300];
        mix64_batch(key, &items, &mut dig_a);
        multiply_shift_batch(a, b, shift, &digests, &mut buck_a);
        signed_delta_batch(sign_a, &digests, &deltas, &mut val_a);

        set_force_scalar(true);
        let mut dig_b = vec![0u64; 300];
        let mut buck_b = vec![0usize; 300];
        let mut val_b = vec![0f64; 300];
        mix64_batch(key, &items, &mut dig_b);
        multiply_shift_batch(a, b, shift, &digests, &mut buck_b);
        signed_delta_batch(sign_a, &digests, &deltas, &mut val_b);
        set_force_scalar(false);

        assert_eq!(dig_a, dig_b);
        assert_eq!(buck_a, buck_b);
        assert_eq!(
            val_a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            val_b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
