//! Dietzfelbinger multiply-shift hashing for power-of-two ranges.

use crate::family::BucketHasher;
use crate::seed::SplitMix64;

/// A 2-universal hash function `h : u64 → [2^m]` computed as
/// `(a·x + b) >> (64 − m)` with a random odd multiplier `a` and random
/// offset `b` (Dietzfelbinger et al., "A reliable randomized algorithm
/// for the closest-pair problem").
///
/// This avoids the modular reduction of [`crate::CarterWegman`] entirely
/// — a single `wrapping_mul` plus a shift — at the cost of restricting
/// the number of buckets to a power of two. The `ablation_hashing` bench
/// quantifies the speed difference; accuracy of the sketches is
/// indistinguishable (both families are pairwise independent).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplyShift {
    a: u64,
    b: u64,
    shift: u32,
    buckets: usize,
}

impl MultiplyShift {
    /// Samples a random function with range `[0, buckets)`.
    ///
    /// # Panics
    /// Panics if `buckets` is zero or not a power of two.
    pub fn sample(seeder: &mut SplitMix64, buckets: usize) -> Self {
        assert!(
            buckets.is_power_of_two(),
            "multiply-shift needs a power-of-two range, got {buckets}"
        );
        let m = buckets.trailing_zeros();
        let a = seeder.next_u64() | 1; // odd multiplier
        let b = seeder.next_u64();
        Self {
            a,
            b,
            shift: 64 - m,
            buckets,
        }
    }

    /// Rounds `want` up to the nearest valid (power-of-two) bucket count.
    pub fn round_up_buckets(want: usize) -> usize {
        want.next_power_of_two()
    }
}

impl BucketHasher for MultiplyShift {
    #[inline]
    fn bucket(&self, item: u64) -> usize {
        if self.shift == 64 {
            // 2^0 = 1 bucket: everything collides by definition.
            return 0;
        }
        (self.a.wrapping_mul(item).wrapping_add(self.b) >> self.shift) as usize
    }

    fn num_buckets(&self) -> usize {
        self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_is_respected() {
        let mut seeder = SplitMix64::new(11);
        for m in [0u32, 1, 4, 10, 16] {
            let buckets = 1usize << m;
            let h = MultiplyShift::sample(&mut seeder, buckets);
            for x in 0..2000u64 {
                assert!(h.bucket(x) < buckets, "m = {m}");
            }
        }
    }

    #[test]
    fn one_bucket_always_zero() {
        let h = MultiplyShift::sample(&mut SplitMix64::new(1), 1);
        for x in [0u64, 5, u64::MAX] {
            assert_eq!(h.bucket(x), 0);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        MultiplyShift::sample(&mut SplitMix64::new(0), 100);
    }

    #[test]
    fn round_up() {
        assert_eq!(MultiplyShift::round_up_buckets(1), 1);
        assert_eq!(MultiplyShift::round_up_buckets(100), 128);
        assert_eq!(MultiplyShift::round_up_buckets(1024), 1024);
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential keys are the common case for frequency vectors
        // indexed [0, n); the top bits after multiplication must spread.
        let mut seeder = SplitMix64::new(123);
        let buckets = 256usize;
        let h = MultiplyShift::sample(&mut seeder, buckets);
        let n = 25_600u64;
        let mut counts = vec![0u64; buckets];
        for x in 0..n {
            counts[h.bucket(x)] += 1;
        }
        let expect = n as f64 / buckets as f64;
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max < 2.5 * expect, "max bucket load {max}, expect {expect}");
        assert!(min > 0.2 * expect, "min bucket load {min}, expect {expect}");
    }

    #[test]
    fn deterministic_given_seed() {
        let h1 = MultiplyShift::sample(&mut SplitMix64::new(8), 64);
        let h2 = MultiplyShift::sample(&mut SplitMix64::new(8), 64);
        for x in 0..512u64 {
            assert_eq!(h1.bucket(x), h2.bucket(x));
        }
    }
}
