//! Common traits and a runtime-selectable hash family.

use crate::carter_wegman::CarterWegman;
use crate::multiply_shift::MultiplyShift;
use crate::row_deriver::{DerivedRow, RowDeriver};
use crate::seed::SplitMix64;
use crate::tabulation::Tabulation;

/// A hash function mapping items to buckets `[0, num_buckets)`.
///
/// Implementations must be pure: the same item always maps to the same
/// bucket for the lifetime of the value. Sketches rely on this to use one
/// function for both updates and queries.
pub trait BucketHasher {
    /// Maps an item to its bucket.
    fn bucket(&self, item: u64) -> usize;
    /// Number of buckets `s` in the range.
    fn num_buckets(&self) -> usize;
}

/// A hash function mapping items to signs `{−1, +1}`.
pub trait SignHasher {
    /// Maps an item to `+1` or `−1`.
    fn sign(&self, item: u64) -> i8;
}

/// Which concrete family a [`HashFamily`] samples from.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashKind {
    /// Carter–Wegman `((a·x+b) mod p) mod s` — the default; matches the
    /// paper's analysis and supports arbitrary `s`.
    CarterWegman,
    /// Multiply-shift; rounds `s` up to a power of two.
    MultiplyShift,
    /// Simple tabulation hashing.
    Tabulation,
    /// One-hash row derivation: one `mix64` digest per item, all rows
    /// re-keyed from it by independent multiply-shifts (the batch
    /// kernels hoist the digest out of the row loop — see
    /// [`crate::RowDeriver`]). Rounds `s` up to a power of two.
    OneHash,
}

/// A runtime-dispatched bucket hash, so sketches can be configured with
/// any of the implemented families (exercised by `ablation_hashing`).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone)]
pub enum AnyBucketHasher {
    /// Carter–Wegman instance.
    CarterWegman(CarterWegman),
    /// Multiply-shift instance.
    MultiplyShift(MultiplyShift),
    /// Tabulation instance.
    Tabulation(Tabulation),
    /// One-hash derived row (shared digest, per-row re-keying).
    Derived(DerivedRow),
}

impl AnyBucketHasher {
    /// Hashes every `(key, payload)` pair, calling
    /// `f(key, bucket(key), payload)` in slice order.
    ///
    /// Dispatches on the concrete family **once per call** instead of
    /// once per key, so the inner loop is monomorphized against the
    /// family's `bucket` implementation. The sketches' `update_batch`
    /// hot path uses the all-rows sibling [`bucket_rows_each`] (one
    /// pass over the batch); this single-row form is the building
    /// block for per-row sweeps — the right shape when one row of
    /// counters is much larger than cache and must be pinned while a
    /// batch streams through.
    #[inline]
    pub fn bucket_each<T, F>(&self, items: &[(u64, T)], f: F)
    where
        T: Copy,
        F: FnMut(u64, usize, T),
    {
        #[inline]
        fn each<H, T, F>(h: &H, items: &[(u64, T)], mut f: F)
        where
            H: BucketHasher,
            T: Copy,
            F: FnMut(u64, usize, T),
        {
            for &(x, payload) in items {
                f(x, h.bucket(x), payload);
            }
        }
        match self {
            AnyBucketHasher::CarterWegman(h) => each(h, items, f),
            AnyBucketHasher::MultiplyShift(h) => each(h, items, f),
            AnyBucketHasher::Tabulation(h) => each(h, items, f),
            AnyBucketHasher::Derived(h) => each(h, items, f),
        }
    }
}

impl BucketHasher for AnyBucketHasher {
    #[inline]
    fn bucket(&self, item: u64) -> usize {
        match self {
            AnyBucketHasher::CarterWegman(h) => h.bucket(item),
            AnyBucketHasher::MultiplyShift(h) => h.bucket(item),
            AnyBucketHasher::Tabulation(h) => h.bucket(item),
            AnyBucketHasher::Derived(h) => h.bucket(item),
        }
    }

    fn num_buckets(&self) -> usize {
        match self {
            AnyBucketHasher::CarterWegman(h) => h.num_buckets(),
            AnyBucketHasher::MultiplyShift(h) => h.num_buckets(),
            AnyBucketHasher::Tabulation(h) => h.num_buckets(),
            AnyBucketHasher::Derived(h) => h.num_buckets(),
        }
    }
}

/// Hashes every `(key, payload)` pair against every row hasher,
/// item-major: for each item in slice order, `f(row, key, bucket,
/// payload)` is called for rows `0..hashers.len()`.
///
/// All of a sketch's rows are sampled from one [`HashFamily`], so the
/// slice is homogeneous in practice; this function downcasts it to the
/// concrete family **once per batch** and runs a fully monomorphized
/// double loop — no enum dispatch in the hot loop at all. (A mixed
/// slice still works through the generic fallback.)
///
/// This is the primitive under the sketches' `update_batch`
/// specializations. Item-major order is deliberate: the counter grids
/// are small enough to stay cache-resident, so sweeping rows over the
/// batch (re-streaming the batch once per row) measurably *loses* to a
/// single pass — the batch win is the hoisted dispatch, not write
/// locality. For per-row sweeps (e.g. grids much larger than cache)
/// use [`AnyBucketHasher::bucket_each`] instead.
#[inline]
pub fn bucket_rows_each<T, F>(hashers: &[AnyBucketHasher], items: &[(u64, T)], mut f: F)
where
    T: Copy,
    F: FnMut(usize, u64, usize, T),
{
    #[inline]
    fn run<H, T, F>(rows: &[&H], items: &[(u64, T)], f: &mut F)
    where
        H: BucketHasher,
        T: Copy,
        F: FnMut(usize, u64, usize, T),
    {
        for &(x, payload) in items {
            for (row, h) in rows.iter().enumerate() {
                f(row, x, h.bucket(x), payload);
            }
        }
    }

    macro_rules! homogeneous {
        ($variant:ident) => {{
            let mut rows = Vec::with_capacity(hashers.len());
            for h in hashers {
                match h {
                    AnyBucketHasher::$variant(x) => rows.push(x),
                    _ => {
                        rows.clear();
                        break;
                    }
                }
            }
            if rows.len() == hashers.len() {
                run(&rows, items, &mut f);
                return;
            }
        }};
    }

    match hashers.first() {
        None => {}
        Some(AnyBucketHasher::CarterWegman(_)) => homogeneous!(CarterWegman),
        Some(AnyBucketHasher::MultiplyShift(_)) => homogeneous!(MultiplyShift),
        Some(AnyBucketHasher::Tabulation(_)) => homogeneous!(Tabulation),
        Some(AnyBucketHasher::Derived(_)) => {
            // One-hash rows: compute the shared digest once per item
            // and derive every row's bucket from it — the whole point
            // of the family (mixed digest keys fall through).
            if let Some(rd) = RowDeriver::from_hashers(hashers) {
                for &(x, payload) in items {
                    let digest = rd.digest(x);
                    for row in 0..rd.depth() {
                        f(row, x, rd.bucket_of_digest(row, digest), payload);
                    }
                }
                return;
            }
        }
    }
    // Mixed families (never produced by one HashFamily): dispatch per
    // call, exactly like the one-by-one update path.
    for &(x, payload) in items {
        for (row, h) in hashers.iter().enumerate() {
            f(row, x, h.bucket(x), payload);
        }
    }
}

/// A factory that samples i.i.d. hash functions of a chosen family with a
/// fixed bucket count — the "d independent random hash functions
/// h_1, …, h_d" of Theorems 1 and 2.
#[derive(Debug)]
pub struct HashFamily {
    kind: HashKind,
    buckets: usize,
    seeder: SplitMix64,
    /// Family-wide digest key for [`HashKind::OneHash`] rows (drawn
    /// once so every sampled row shares it); zero and never drawn for
    /// the other kinds, keeping their sampling streams — and the frozen
    /// golden vectors built on them — untouched.
    derive_key: u64,
}

impl HashFamily {
    /// Creates a Carter–Wegman family with range `[0, buckets)`.
    pub fn carter_wegman(seeder: &mut SplitMix64, buckets: usize) -> Self {
        Self {
            kind: HashKind::CarterWegman,
            buckets,
            seeder: seeder.split(),
            derive_key: 0,
        }
    }

    /// Creates a family of the given kind. Multiply-shift and one-hash
    /// derivation round the bucket count up to the next power of two.
    pub fn new(kind: HashKind, seeder: &mut SplitMix64, buckets: usize) -> Self {
        let buckets = match kind {
            HashKind::MultiplyShift | HashKind::OneHash => MultiplyShift::round_up_buckets(buckets),
            _ => buckets,
        };
        let mut seeder = seeder.split();
        let derive_key = match kind {
            HashKind::OneHash => seeder.next_u64(),
            _ => 0,
        };
        Self {
            kind,
            buckets,
            seeder,
            derive_key,
        }
    }

    /// The (possibly rounded) bucket count functions of this family use.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Samples the next independent function from the family.
    pub fn sample(&mut self) -> AnyBucketHasher {
        match self.kind {
            HashKind::CarterWegman => {
                AnyBucketHasher::CarterWegman(CarterWegman::sample(&mut self.seeder, self.buckets))
            }
            HashKind::MultiplyShift => AnyBucketHasher::MultiplyShift(MultiplyShift::sample(
                &mut self.seeder,
                self.buckets,
            )),
            HashKind::Tabulation => {
                AnyBucketHasher::Tabulation(Tabulation::sample(&mut self.seeder, self.buckets))
            }
            HashKind::OneHash => AnyBucketHasher::Derived(DerivedRow::sample(
                &mut self.seeder,
                self.derive_key,
                self.buckets,
            )),
        }
    }

    /// Samples `d` independent functions at once.
    pub fn sample_many(&mut self, d: usize) -> Vec<AnyBucketHasher> {
        (0..d).map(|_| self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_samples_independent_functions() {
        let mut seeder = SplitMix64::new(1);
        let mut fam = HashFamily::carter_wegman(&mut seeder, 128);
        let hs = fam.sample_many(4);
        assert_eq!(hs.len(), 4);
        // Functions should disagree somewhere.
        let disagreements = (0..1000u64)
            .filter(|&x| hs[0].bucket(x) != hs[1].bucket(x))
            .count();
        assert!(disagreements > 900);
    }

    #[test]
    fn multiply_shift_rounds_buckets() {
        let mut seeder = SplitMix64::new(2);
        let fam = HashFamily::new(HashKind::MultiplyShift, &mut seeder, 100);
        assert_eq!(fam.buckets(), 128);
    }

    #[test]
    fn all_kinds_produce_in_range_functions() {
        let mut seeder = SplitMix64::new(3);
        for kind in [
            HashKind::CarterWegman,
            HashKind::MultiplyShift,
            HashKind::Tabulation,
            HashKind::OneHash,
        ] {
            let mut fam = HashFamily::new(kind, &mut seeder, 64);
            let h = fam.sample();
            for x in 0..500u64 {
                assert!(h.bucket(x) < fam.buckets(), "{kind:?}");
            }
        }
    }

    #[test]
    fn bucket_each_matches_bucket() {
        let mut seeder = SplitMix64::new(4);
        for kind in [
            HashKind::CarterWegman,
            HashKind::MultiplyShift,
            HashKind::Tabulation,
            HashKind::OneHash,
        ] {
            let mut fam = HashFamily::new(kind, &mut seeder, 64);
            let h = fam.sample();
            let items: Vec<(u64, f64)> =
                (0..300u64).map(|x| (x * 17 + 3, x as f64 * 0.5)).collect();
            let mut seen = Vec::new();
            h.bucket_each(&items, |key, b, payload| seen.push((key, b, payload)));
            assert_eq!(seen.len(), items.len(), "{kind:?}");
            for (i, &(key, b, payload)) in seen.iter().enumerate() {
                assert_eq!(key, items[i].0, "{kind:?} key order {i}");
                assert_eq!(b, h.bucket(key), "{kind:?} bucket {i}");
                assert_eq!(payload, items[i].1, "{kind:?} payload {i}");
            }
        }
    }

    #[test]
    fn bucket_rows_each_matches_per_row_buckets() {
        let mut seeder = SplitMix64::new(5);
        for kind in [
            HashKind::CarterWegman,
            HashKind::MultiplyShift,
            HashKind::Tabulation,
            HashKind::OneHash,
        ] {
            let mut fam = HashFamily::new(kind, &mut seeder, 32);
            let hashers = fam.sample_many(4);
            let items: Vec<(u64, f64)> = (0..100u64).map(|x| (x * 3, x as f64)).collect();
            let mut calls = Vec::new();
            super::bucket_rows_each(&hashers, &items, |row, key, b, payload: f64| {
                calls.push((row, key, b, payload));
            });
            assert_eq!(calls.len(), items.len() * 4, "{kind:?}");
            for (c, &(row, key, b, payload)) in calls.iter().enumerate() {
                let (item_idx, expect_row) = (c / 4, c % 4);
                assert_eq!(row, expect_row, "{kind:?} call {c}");
                assert_eq!(key, items[item_idx].0, "{kind:?} call {c}");
                assert_eq!(b, hashers[row].bucket(key), "{kind:?} call {c}");
                assert_eq!(payload, items[item_idx].1, "{kind:?} call {c}");
            }
        }
    }

    #[test]
    fn bucket_rows_each_mixed_families_fallback() {
        let mut seeder = SplitMix64::new(6);
        let mut cw = HashFamily::new(HashKind::CarterWegman, &mut seeder, 16);
        let mut tab = HashFamily::new(HashKind::Tabulation, &mut seeder, 16);
        let hashers = vec![cw.sample(), tab.sample()];
        let items = [(5u64, 1.0f64), (9, 2.0)];
        let mut calls = Vec::new();
        super::bucket_rows_each(&hashers, &items, |row, key, b, _| calls.push((row, key, b)));
        assert_eq!(
            calls,
            vec![
                (0, 5, hashers[0].bucket(5)),
                (1, 5, hashers[1].bucket(5)),
                (0, 9, hashers[0].bucket(9)),
                (1, 9, hashers[1].bucket(9)),
            ]
        );
    }

    #[test]
    fn bucket_rows_each_empty_rows_is_noop() {
        let mut calls = 0;
        super::bucket_rows_each(&[], &[(1u64, 1.0f64)], |_, _, _, _| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn reproducible_from_equal_seeders() {
        let mut s1 = SplitMix64::new(10);
        let mut s2 = SplitMix64::new(10);
        let mut f1 = HashFamily::carter_wegman(&mut s1, 32);
        let mut f2 = HashFamily::carter_wegman(&mut s2, 32);
        let h1 = f1.sample();
        let h2 = f2.sample();
        for x in 0..200u64 {
            assert_eq!(h1.bucket(x), h2.bucket(x));
        }
    }
}
