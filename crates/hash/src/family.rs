//! Common traits and a runtime-selectable hash family.

use crate::carter_wegman::CarterWegman;
use crate::multiply_shift::MultiplyShift;
use crate::seed::SplitMix64;
use crate::tabulation::Tabulation;

/// A hash function mapping items to buckets `[0, num_buckets)`.
///
/// Implementations must be pure: the same item always maps to the same
/// bucket for the lifetime of the value. Sketches rely on this to use one
/// function for both updates and queries.
pub trait BucketHasher {
    /// Maps an item to its bucket.
    fn bucket(&self, item: u64) -> usize;
    /// Number of buckets `s` in the range.
    fn num_buckets(&self) -> usize;
}

/// A hash function mapping items to signs `{−1, +1}`.
pub trait SignHasher {
    /// Maps an item to `+1` or `−1`.
    fn sign(&self, item: u64) -> i8;
}

/// Which concrete family a [`HashFamily`] samples from.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashKind {
    /// Carter–Wegman `((a·x+b) mod p) mod s` — the default; matches the
    /// paper's analysis and supports arbitrary `s`.
    CarterWegman,
    /// Multiply-shift; rounds `s` up to a power of two.
    MultiplyShift,
    /// Simple tabulation hashing.
    Tabulation,
}

/// A runtime-dispatched bucket hash, so sketches can be configured with
/// any of the implemented families (exercised by `ablation_hashing`).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone)]
pub enum AnyBucketHasher {
    /// Carter–Wegman instance.
    CarterWegman(CarterWegman),
    /// Multiply-shift instance.
    MultiplyShift(MultiplyShift),
    /// Tabulation instance.
    Tabulation(Tabulation),
}

impl BucketHasher for AnyBucketHasher {
    #[inline]
    fn bucket(&self, item: u64) -> usize {
        match self {
            AnyBucketHasher::CarterWegman(h) => h.bucket(item),
            AnyBucketHasher::MultiplyShift(h) => h.bucket(item),
            AnyBucketHasher::Tabulation(h) => h.bucket(item),
        }
    }

    fn num_buckets(&self) -> usize {
        match self {
            AnyBucketHasher::CarterWegman(h) => h.num_buckets(),
            AnyBucketHasher::MultiplyShift(h) => h.num_buckets(),
            AnyBucketHasher::Tabulation(h) => h.num_buckets(),
        }
    }
}

/// A factory that samples i.i.d. hash functions of a chosen family with a
/// fixed bucket count — the "d independent random hash functions
/// h_1, …, h_d" of Theorems 1 and 2.
#[derive(Debug)]
pub struct HashFamily {
    kind: HashKind,
    buckets: usize,
    seeder: SplitMix64,
}

impl HashFamily {
    /// Creates a Carter–Wegman family with range `[0, buckets)`.
    pub fn carter_wegman(seeder: &mut SplitMix64, buckets: usize) -> Self {
        Self {
            kind: HashKind::CarterWegman,
            buckets,
            seeder: seeder.split(),
        }
    }

    /// Creates a family of the given kind. Multiply-shift rounds the
    /// bucket count up to the next power of two.
    pub fn new(kind: HashKind, seeder: &mut SplitMix64, buckets: usize) -> Self {
        let buckets = match kind {
            HashKind::MultiplyShift => MultiplyShift::round_up_buckets(buckets),
            _ => buckets,
        };
        Self {
            kind,
            buckets,
            seeder: seeder.split(),
        }
    }

    /// The (possibly rounded) bucket count functions of this family use.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Samples the next independent function from the family.
    pub fn sample(&mut self) -> AnyBucketHasher {
        match self.kind {
            HashKind::CarterWegman => {
                AnyBucketHasher::CarterWegman(CarterWegman::sample(&mut self.seeder, self.buckets))
            }
            HashKind::MultiplyShift => AnyBucketHasher::MultiplyShift(MultiplyShift::sample(
                &mut self.seeder,
                self.buckets,
            )),
            HashKind::Tabulation => {
                AnyBucketHasher::Tabulation(Tabulation::sample(&mut self.seeder, self.buckets))
            }
        }
    }

    /// Samples `d` independent functions at once.
    pub fn sample_many(&mut self, d: usize) -> Vec<AnyBucketHasher> {
        (0..d).map(|_| self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_samples_independent_functions() {
        let mut seeder = SplitMix64::new(1);
        let mut fam = HashFamily::carter_wegman(&mut seeder, 128);
        let hs = fam.sample_many(4);
        assert_eq!(hs.len(), 4);
        // Functions should disagree somewhere.
        let disagreements = (0..1000u64)
            .filter(|&x| hs[0].bucket(x) != hs[1].bucket(x))
            .count();
        assert!(disagreements > 900);
    }

    #[test]
    fn multiply_shift_rounds_buckets() {
        let mut seeder = SplitMix64::new(2);
        let fam = HashFamily::new(HashKind::MultiplyShift, &mut seeder, 100);
        assert_eq!(fam.buckets(), 128);
    }

    #[test]
    fn all_kinds_produce_in_range_functions() {
        let mut seeder = SplitMix64::new(3);
        for kind in [
            HashKind::CarterWegman,
            HashKind::MultiplyShift,
            HashKind::Tabulation,
        ] {
            let mut fam = HashFamily::new(kind, &mut seeder, 64);
            let h = fam.sample();
            for x in 0..500u64 {
                assert!(h.bucket(x) < fam.buckets(), "{kind:?}");
            }
        }
    }

    #[test]
    fn reproducible_from_equal_seeders() {
        let mut s1 = SplitMix64::new(10);
        let mut s2 = SplitMix64::new(10);
        let mut f1 = HashFamily::carter_wegman(&mut s1, 32);
        let mut f2 = HashFamily::carter_wegman(&mut s2, 32);
        let h1 = f1.sample();
        let h2 = f2.sample();
        for x in 0..200u64 {
            assert_eq!(h1.bucket(x), h2.bucket(x));
        }
    }
}
