//! **Extension** — BOMP (Yan et al., SIGMOD'15) vs `l2-S/R`,
//! substantiating the paper's §2 critique: OMP-based recovery is
//! accurate *on its model* (exact bias + k outliers) but orders of
//! magnitude slower, degrades off-model, and cannot answer point
//! queries without decoding everything.

use bas_bomp::Bomp;
use bas_core::{L2Config, L2SketchRecover};
use bas_data::dist::{self, Normal};
use bas_eval::{ErrorReport, ResultTable};
use bas_hash::SplitMix64;
use bas_sketch::PointQuerySketch;
use std::time::Instant;

fn main() {
    let n = 4_096usize;
    let k = 8usize;
    println!("================ Extension: BOMP vs l2-S/R ================");
    println!("n = {n}, k = {k} planted outliers\n");

    // On-model input: exact bias + outliers. Off-model: Gaussian noise
    // around the bias (the realistic case the paper targets).
    let mut rng = SplitMix64::new(0xB0B0);
    let mut nrm = Normal::new();
    let mut scenarios: Vec<(&str, Vec<f64>)> = Vec::new();
    let mut on_model = vec![120.0f64; n];
    let mut off_model: Vec<f64> = (0..n).map(|_| nrm.sample(&mut rng, 120.0, 10.0)).collect();
    for i in 0..k {
        let pos = (i * 509) % n;
        let val = 5_000.0 + 1_000.0 * i as f64;
        on_model[pos] = val;
        off_model[pos] = val;
    }
    scenarios.push(("on-model (exact bias)", on_model));
    scenarios.push(("off-model (noisy bias)", off_model));

    let mut table = ResultTable::new(
        "BOMP (t = 512 Gaussian rows) vs l2-S/R (s = 64, d = 7; ~512 words)",
        &[
            "scenario",
            "algorithm",
            "sketch ms",
            "recover ms",
            "avg err",
            "max err",
        ],
    );

    for (name, x) in &scenarios {
        // BOMP: t measurements comparable to the hashing sketch's words.
        let bomp = Bomp::new(n, 512, 3);
        let t0 = Instant::now();
        let y = bomp.sketch(x);
        let bomp_sketch_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let rec = bomp.recover(&y, k);
        let bomp_recover_ms = t1.elapsed().as_secs_f64() * 1e3;
        let e = ErrorReport::compare(x, &rec);
        table.push_row(vec![
            name.to_string(),
            "BOMP".to_string(),
            format!("{bomp_sketch_ms:.2}"),
            format!("{bomp_recover_ms:.2}"),
            format!("{:.3}", e.avg_err),
            format!("{:.1}", e.max_err),
        ]);

        for width in [64usize, 256] {
            let cfg = L2Config::new(n as u64, width, 7).with_seed(3);
            let mut sk = L2SketchRecover::new(&cfg);
            let t2 = Instant::now();
            sk.ingest_vector(x);
            let l2_sketch_ms = t2.elapsed().as_secs_f64() * 1e3;
            let t3 = Instant::now();
            let rec = sk.recover_all();
            let l2_recover_ms = t3.elapsed().as_secs_f64() * 1e3;
            let e = ErrorReport::compare(x, &rec);
            table.push_row(vec![
                name.to_string(),
                if width == 64 {
                    "l2-S/R s=64"
                } else {
                    "l2-S/R s=256"
                }
                .to_string(),
                format!("{l2_sketch_ms:.2}"),
                format!("{l2_recover_ms:.2}"),
                format!("{:.3}", e.avg_err),
                format!("{:.1}", e.max_err),
            ]);
        }
    }
    println!("{}", table.to_text());

    // Point-query cost: BOMP must decode everything; l2-S/R touches d
    // buckets.
    let x = &scenarios[1].1;
    let bomp = Bomp::new(n, 512, 3);
    let y = bomp.sketch(x);
    let t0 = Instant::now();
    let rec = bomp.recover(&y, k);
    let bomp_point_ms = t0.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(rec[7]);

    let cfg = L2Config::new(n as u64, 64, 7).with_seed(3);
    let mut sk = L2SketchRecover::new(&cfg);
    sk.ingest_vector(x);
    let t1 = Instant::now();
    let est = sk.estimate(7);
    let l2_point_us = t1.elapsed().as_secs_f64() * 1e6;
    std::hint::black_box(est);
    println!(
        "single point query: BOMP {bomp_point_ms:.2} ms (full decode) vs \
         l2-S/R {l2_point_us:.2} us — the paper's 'cannot answer point \
         query without decoding the whole vector'."
    );

    // How dist::* is exercised here keeps the comparison honest: both
    // see identical inputs.
    let _ = dist::uniform(&mut rng);
}
