//! **Figure 6** — Hudong streaming experiment: (a) average error,
//! (b) maximum error, (c) per-update time, (d) per-query time, with the
//! sketch maintained online over the edge stream.
//!
//! Paper setup: 18.8M timestamped edges over 2.45M articles, `x` =
//! out-degrees. Default here: preferential-attachment stand-in with
//! 2.5M edges over 250k articles (`BAS_SCALE` to grow).
//!
//! Expected shape (paper §5.5): CS error ≥2x `l2-S/R`; the others worse
//! still (CM-CU ≈ CML-CU ≈ `l1-S/R`); all six algorithms within small
//! constant factors on update/query time — the Bias-Heap overhead keeps
//! `l2-S/R` within ~2x of CS per update and `l1-S/R` within ~1.5x of CM.

use bas_bench::{scale, scaled};
use bas_data::GraphStreamGen;
use bas_eval::{run_stream_experiment, Algorithm, ResultTable};

fn main() {
    let nodes = scaled(250_000);
    let edges = (2_500_000.0 * scale()) as usize;
    let gen = GraphStreamGen::hudong_scaled(nodes, edges);
    println!("================ Figure 6: Hudong stream ================");
    println!("stream: {edges} edges over {nodes} articles (out-degree vector)");
    let stream = gen.stream(0xF166);

    let widths = [1_000usize, 2_000, 4_000];
    let results = run_stream_experiment(
        &stream,
        nodes as u64,
        &Algorithm::MAIN_SET,
        &widths,
        9,
        0xF166,
    );

    let mut acc = ResultTable::new(
        "Figure 6a-b — accuracy after the stream",
        &["algorithm", "s", "avg err", "max err"],
    );
    let mut time = ResultTable::new(
        "Figure 6c-d — streaming cost",
        &["algorithm", "s", "update ns", "query ns"],
    );
    for r in &results {
        acc.push_row(vec![
            r.algorithm.to_string(),
            r.width.to_string(),
            format!("{:.4}", r.errors.avg_err),
            format!("{:.1}", r.errors.max_err),
        ]);
        time.push_row(vec![
            r.algorithm.to_string(),
            r.width.to_string(),
            format!("{:.0}", r.update_ns),
            format!("{:.0}", r.query_ns),
        ]);
    }
    println!("{}", acc.to_text());
    println!("{}", time.to_text());
}
