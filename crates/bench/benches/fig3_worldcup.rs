//! **Figure 3** — WorldCup '98 requests-per-second: average/maximum
//! error vs sketch width.
//!
//! Paper setup: `n = 86 400` (one day), ≈3.2M requests — small enough
//! that this bench runs at full paper scale by default.
//!
//! Expected shape (paper §5.2): `l2-S/R` best on average error with CS
//! and `l1-S/R` following closely; CM ~4x worse than everyone on max
//! error; CM-CU/CML-CU trail the linear sketches on average error.

use bas_bench::{print_dataset_summary, print_sweep_tables, trials};
use bas_data::{VectorGenerator, WebTrafficGen};
use bas_eval::{run_width_sweep, Algorithm, SweepConfig};

fn main() {
    let x = WebTrafficGen::worldcup().generate(0xF163);
    println!("================ Figure 3: WorldCup ================");
    print_dataset_summary("WorldCup", &x, 125);
    let cfg = SweepConfig {
        widths: vec![500, 1_000, 2_000, 4_000],
        depth: 9,
        trials: trials(),
        seed: 0xF163,
    };
    let results = run_width_sweep(&x, &Algorithm::MAIN_SET, &cfg);
    print_sweep_tables("Figure 3 (WorldCup, full scale)", &results, "s");
}
