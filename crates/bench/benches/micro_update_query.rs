//! Criterion micro-benchmarks: per-update and per-point-query latency
//! for every algorithm at a fixed configuration — the quantitative
//! backing for Figure 6c–d's "the differences ... are not significant"
//! and "the overhead introduced by the components used to estimate the
//! bias is fairly low" (§5.6).

use bas_eval::Algorithm;
use bas_hash::SplitMix64;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

const N: u64 = 100_000;
const WIDTH: usize = 2_000;
const DEPTH: usize = 9;

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("update");
    group.sample_size(20);
    let mut rng = SplitMix64::new(42);
    let updates: Vec<(u64, f64)> = (0..10_000)
        .map(|_| (rng.next_below(N), 1.0 + (rng.next_below(9) as f64)))
        .collect();
    for algo in Algorithm::MAIN_SET {
        group.bench_function(algo.label(), |b| {
            b.iter_batched(
                || algo.build(N, WIDTH, DEPTH, 7),
                |mut sk| {
                    for &(i, d) in &updates {
                        sk.update(i, d);
                    }
                    sk
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_query");
    group.sample_size(20);
    let mut rng = SplitMix64::new(43);
    for algo in Algorithm::MAIN_SET {
        let mut sk = algo.build(N, WIDTH, DEPTH, 7);
        for _ in 0..200_000 {
            sk.update(rng.next_below(N), 1.0);
        }
        let probes: Vec<u64> = (0..1_000).map(|_| rng.next_below(N)).collect();
        group.bench_function(algo.label(), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &p in &probes {
                    acc += sk.estimate(p);
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates, bench_queries);
criterion_main!(benches);
