//! **Ingest throughput** — items/sec for the single-node ingest paths:
//! single-item `update`, batched `update_batch` (the dispatch-hoisted
//! fast path of `bas_hash::bucket_rows_each`), the chunked stream
//! driver, `ShardedIngest` across 2/4/8 worker threads (k same-seed
//! shard copies, k× memory, merged at the end), and `ConcurrentIngest`
//! across the same thread counts (**one** shared `Atomic`-backed
//! sketch, 1× memory, lock-free fetch-adds) — the sharded-vs-shared
//! comparison behind the storage-layer refactor. The `single` row
//! doubles as the `Dense`-backend abstraction-cost gate: it runs the
//! same code path as before the `CounterMatrix` extraction, so a
//! regression there is a regression of the storage layer itself.
//!
//! This is the measurement behind the batching/sharding refactor: the
//! speedups are reported, not asserted (except in the exactness
//! spot-check — all paths must produce identical sketches on this
//! integer-delta stream). Sketch construction happens off the clock,
//! and each path reports the best of several passes to suppress
//! virtualization noise.
//!
//! Design note, recorded because we measured it: the first cut of
//! `update_batch` swept the batch **row-major** (per row, stream all
//! items) for write locality, and *lost* to the single-item loop by
//! ~25% at this configuration — the counter grid (288 KiB) is already
//! cache-resident, so re-streaming the 16 MiB batch once per row costs
//! more than the write locality saves. The shipped fast path keeps the
//! single pass over the batch and instead hoists the hash-family enum
//! dispatch out of the loop (downcast once per batch, monomorphized
//! item×row inner loop). Sharding numbers depend on available cores;
//! on a single-core host the sharded paths report the thread overhead
//! honestly.
//!
//! Knobs: `BAS_SCALE` scales the update count (e.g. `BAS_SCALE=10` for
//! 10M); `--test` (the CI smoke mode) shrinks the run to 100k updates
//! and single passes so the harness stays green in seconds.

use bas_bench::report::BenchReport;
use bas_core::{L2Config, L2SketchRecover};
use bas_hash::HashKind;
use bas_pipeline::{ConcurrentIngest, ShardedIngest};
use bas_sketch::{
    AtomicCountMedian, AtomicCountSketch, CountMedian, CountSketch, MergeableSketch,
    PointQuerySketch, SharedSketch, SketchParams,
};
use bas_stream::{drive_chunked, StreamUpdate, DEFAULT_CHUNK_SIZE};
use std::hint::black_box;
use std::time::Instant;

const WIDTH: usize = 4_096;
const DEPTH: usize = 9;
const CHUNK: usize = DEFAULT_CHUNK_SIZE;

struct Run {
    label: String,
    items_per_sec: f64,
    speedup_vs_single: f64,
}

/// Best-of-`passes` timing of `ingest` over fresh sketches;
/// construction stays off the clock. Returns (secs, last sketch).
fn time_passes<S, F, G>(passes: usize, mut make: F, mut ingest: G) -> (f64, S)
where
    S: PointQuerySketch,
    F: FnMut() -> S,
    G: FnMut(&mut S),
{
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..passes {
        let mut sk = make();
        let t = Instant::now();
        ingest(&mut sk);
        best = best.min(t.elapsed().as_secs_f64());
        result = Some(sk);
    }
    (best, black_box(result.expect("at least one pass")))
}

fn bench_sketch<S, F>(
    name: &str,
    updates: &[(u64, f64)],
    passes: usize,
    make: F,
    shard_counts: &[usize],
) -> (Vec<Run>, f64, S)
where
    S: MergeableSketch + Send,
    F: Fn() -> S + Copy,
{
    let n_items = updates.len() as f64;
    let mut runs = Vec::new();

    let (single_secs, single) = time_passes(passes, make, |sk| {
        for &(i, d) in updates {
            sk.update(i, d);
        }
    });
    runs.push(Run {
        label: "single".into(),
        items_per_sec: n_items / single_secs,
        speedup_vs_single: 1.0,
    });

    // The whole stream handed over as one materialized batch — how
    // distributed sites and ShardedIngest shards consume their shards.
    let (batched_secs, batched) = time_passes(passes, make, |sk| {
        sk.update_batch(updates);
    });
    runs.push(Run {
        label: "batched".into(),
        items_per_sec: n_items / batched_secs,
        speedup_vs_single: single_secs / batched_secs,
    });

    // Updates arriving one at a time (a live stream): drive_chunked
    // stages them into chunks, so the fast path's win has to pay for
    // one extra copy per update.
    let (driver_secs, driven) = time_passes(passes, make, |sk| {
        let stream = updates.iter().map(|&(i, d)| StreamUpdate::new(i, d));
        drive_chunked(stream, CHUNK, |chunk| sk.update_batch(chunk));
    });
    runs.push(Run {
        label: format!("driver ({}k)", CHUNK / 1024),
        items_per_sec: n_items / driver_secs,
        speedup_vs_single: single_secs / driver_secs,
    });

    let mut sharded_sketches = Vec::new();
    for &shards in shard_counts {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..passes {
            let mut ingest = ShardedIngest::new(shards, make);
            let t = Instant::now();
            ingest.extend_from_slice(updates);
            let sk = ingest.finish();
            best = best.min(t.elapsed().as_secs_f64());
            result = Some(sk);
        }
        let sk = black_box(result.expect("at least one pass"));
        runs.push(Run {
            label: format!("sharded-{shards}"),
            items_per_sec: n_items / best,
            speedup_vs_single: single_secs / best,
        });
        sharded_sketches.push(sk);
    }

    // Exactness spot-check: integer deltas => every path agrees
    // bit-for-bit with the single-item reference.
    for j in (0..single.universe()).step_by(97_003) {
        assert_eq!(batched.estimate(j), single.estimate(j), "{name} item {j}");
        assert_eq!(driven.estimate(j), single.estimate(j), "{name} item {j}");
        for sk in &sharded_sketches {
            assert_eq!(sk.estimate(j), single.estimate(j), "{name} item {j}");
        }
    }

    println!("--- {name} ---");
    for r in &runs {
        println!(
            "  {:>20}: {:>7.2} M items/s   ({:.2}x vs single)",
            r.label,
            r.items_per_sec / 1e6,
            r.speedup_vs_single
        );
    }
    (runs, single_secs, single)
}

/// The concurrent-shared path: `workers` threads feeding **one**
/// `Atomic`-backed sketch, measured against the same single-item
/// reference (integer deltas => bit-for-bit agreement is asserted).
fn bench_concurrent<S, R, F>(
    name: &str,
    updates: &[(u64, f64)],
    passes: usize,
    make_shared: F,
    worker_counts: &[usize],
    single_secs: f64,
    reference: &R,
) -> Vec<Run>
where
    S: SharedSketch + Send,
    R: PointQuerySketch,
    F: Fn() -> S + Copy,
{
    let n_items = updates.len() as f64;
    let mut runs = Vec::new();
    for &workers in worker_counts {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..passes {
            let mut ingest = ConcurrentIngest::new(workers, make_shared());
            let t = Instant::now();
            ingest.extend_from_slice(updates);
            let sk = ingest.finish();
            best = best.min(t.elapsed().as_secs_f64());
            result = Some(sk);
        }
        let sk = black_box(result.expect("at least one pass"));
        // Exactness spot-check: atomic f64 adds of integer deltas are
        // exact, hence order-independent — the shared sketch must match
        // the single-item reference bit-for-bit.
        for j in (0..reference.universe()).step_by(97_003) {
            assert_eq!(sk.estimate(j), reference.estimate(j), "{name} item {j}");
        }
        runs.push(Run {
            label: format!("concurrent-shared-{workers}"),
            items_per_sec: n_items / best,
            speedup_vs_single: single_secs / best,
        });
    }
    println!("--- {name} (one shared atomic-backed sketch) ---");
    for r in &runs {
        println!(
            "  {:>20}: {:>7.2} M items/s   ({:.2}x vs single)",
            r.label,
            r.items_per_sec / 1e6,
            r.speedup_vs_single
        );
    }
    runs
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let scale = std::env::var("BAS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let total = if smoke {
        100_000
    } else {
        (1_000_000f64 * scale) as usize
    };
    let passes = if smoke { 1 } else { 3 };
    let n = 1_000_000u64;

    println!("================ ingest throughput ================");
    println!(
        "{total} updates, universe {n}, width {WIDTH}, depth {DEPTH}, best of {passes} pass(es){}",
        if smoke { " [smoke]" } else { "" }
    );

    // Integer-delta traffic (the arrival model) so all paths agree
    // exactly; xorshift keeps generation off the measured clock.
    let mut state = 0x0DDB_1A5E5u64;
    let updates: Vec<(u64, f64)> = (0..total)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % n, (1 + state % 4) as f64)
        })
        .collect();

    let shard_counts: &[usize] = if smoke { &[2] } else { &[2, 4, 8] };
    let params = SketchParams::new(n, WIDTH, DEPTH).with_seed(7);
    let mut report = BenchReport::new("throughput_ingest", smoke);
    let record = |report: &mut BenchReport, name: &str, runs: &[Run]| {
        for r in runs {
            report.record(
                &format!("{name}/{}", r.label),
                "items_per_sec",
                r.items_per_sec,
            );
        }
    };

    let (cm_runs, cm_single_secs, cm_single) = bench_sketch(
        "Count-Median",
        &updates,
        passes,
        || CountMedian::new(&params),
        shard_counts,
    );
    record(&mut report, "Count-Median", &cm_runs);
    let cm_shared = bench_concurrent(
        "Count-Median",
        &updates,
        passes,
        || AtomicCountMedian::with_backend(&params),
        shard_counts,
        cm_single_secs,
        &cm_single,
    );
    record(&mut report, "Count-Median", &cm_shared);
    let (cs_runs, cs_single_secs, cs_single) = bench_sketch(
        "Count-Sketch",
        &updates,
        passes,
        || CountSketch::new(&params),
        shard_counts,
    );
    record(&mut report, "Count-Sketch", &cs_runs);
    let cs_shared = bench_concurrent(
        "Count-Sketch",
        &updates,
        passes,
        || AtomicCountSketch::with_backend(&params),
        shard_counts,
        cs_single_secs,
        &cs_single,
    );
    record(&mut report, "Count-Sketch", &cs_shared);
    let l2_cfg = L2Config::new(n, WIDTH, DEPTH).with_seed(7);
    // No concurrent-shared row for l2-S/R: its bias maintainers are
    // inherently sequential (no SharedSketch impl), so its multi-core
    // story is ShardedIngest only.
    let (l2_runs, _, _) = bench_sketch(
        "l2-S/R",
        &updates,
        passes,
        || L2SketchRecover::new(&l2_cfg),
        shard_counts,
    );
    record(&mut report, "l2-S/R", &l2_runs);

    // --- The PR 10 hot path: one-hash kernels on this machine ---
    //
    // Everything above measures the classical Carter–Wegman rows; the
    // serving stack's default is now `HashKind::OneHash`, whose batch
    // kernels this section measures: the blocked row-major kernel
    // (`kernel-batch`), the same kernel with the vectorized digest /
    // bucket / sign maps forced off (`kernel-scalar` — identical math,
    // scalar lanes), and the shared-reference coalescing kernel driven
    // single-threaded (`shared-batch`: per block, duplicate hits on a
    // cell collapse into one atomic RMW). Integer deltas keep every
    // row bit-for-bit comparable, so the exactness gates hold here too.
    let one_hash = params.with_hash_kind(HashKind::OneHash);
    let mut hot_runs = Vec::new();

    bas_hash::set_force_scalar(true);
    let (scalar_secs, kernel_scalar) = time_passes(
        passes,
        || CountMedian::new(&one_hash),
        |sk| {
            sk.update_batch(&updates);
        },
    );
    bas_hash::set_force_scalar(false);
    let (simd_secs, kernel_simd) = time_passes(
        passes,
        || CountMedian::new(&one_hash),
        |sk| {
            sk.update_batch(&updates);
        },
    );
    hot_runs.push(Run {
        label: "kernel-scalar".into(),
        items_per_sec: total as f64 / scalar_secs,
        speedup_vs_single: cm_single_secs / scalar_secs,
    });
    hot_runs.push(Run {
        label: if bas_hash::simd_active() {
            "kernel-simd".into()
        } else {
            "kernel-simd (scalar fallback)".into()
        },
        items_per_sec: total as f64 / simd_secs,
        speedup_vs_single: cm_single_secs / simd_secs,
    });

    let mut shared_best = f64::INFINITY;
    let mut shared_result = None;
    for _ in 0..passes {
        let sk = AtomicCountMedian::with_backend(&one_hash);
        let t = Instant::now();
        sk.update_batch_shared(&updates);
        shared_best = shared_best.min(t.elapsed().as_secs_f64());
        shared_result = Some(sk);
    }
    let shared_sketch = black_box(shared_result.expect("at least one pass"));
    hot_runs.push(Run {
        label: "shared-batch".into(),
        items_per_sec: total as f64 / shared_best,
        speedup_vs_single: cm_single_secs / shared_best,
    });

    // Exactness gates: both kernel paths and the shared path must be
    // bit-for-bit (the SIMD lanes perform the same wrapping integer
    // ops; integer deltas make the shared adds order-independent).
    for j in (0..kernel_scalar.universe()).step_by(97_003) {
        assert_eq!(
            kernel_simd.estimate(j),
            kernel_scalar.estimate(j),
            "one-hash simd/scalar item {j}"
        );
        assert_eq!(
            shared_sketch.estimate(j),
            kernel_scalar.estimate(j),
            "one-hash shared item {j}"
        );
    }

    println!(
        "--- Count-Median (one-hash hot path, simd {}) ---",
        if bas_hash::simd_active() {
            "active"
        } else {
            "inactive"
        }
    );
    for r in &hot_runs {
        println!(
            "  {:>28}: {:>7.2} M items/s   ({:.2}x vs single)",
            r.label,
            r.items_per_sec / 1e6,
            r.speedup_vs_single
        );
    }
    record(&mut report, "Count-Median", &hot_runs);
    report.record(
        "Count-Median/kernel",
        "simd_speedup_vs_scalar",
        scalar_secs / simd_secs,
    );

    // Verdict over all three sketches (geometric mean of the batched
    // speedups), so one noisy series cannot flip the report.
    let ratios = [
        cm_runs[1].speedup_vs_single,
        cs_runs[1].speedup_vs_single,
        l2_runs[1].speedup_vs_single,
    ];
    let geomean = ratios
        .iter()
        .product::<f64>()
        .powf(1.0 / ratios.len() as f64);
    println!("---------------------------------------------------");
    println!(
        "batched vs single: CM {:.2}x, CS {:.2}x, l2-S/R {:.2}x — geomean {geomean:.2}x{}",
        ratios[0],
        ratios[1],
        ratios[2],
        if geomean > 1.0 {
            " (batching wins)"
        } else {
            " (WARNING: batching did not win on this machine/run)"
        }
    );
    report.record("geomean", "batched_speedup_vs_single", geomean);
    match report.write() {
        Ok(path) => println!("machine-readable summary: {}", path.display()),
        Err(e) => println!("WARNING: could not write bench summary: {e}"),
    }
}
