//! **Figure 7** — effect of sketch depth: Higgs dataset, fixed width,
//! vary `d`; average/maximum error.
//!
//! Paper setup: `s = 50 000` fixed at `n = 1.1·10^7` (load ≈ 220);
//! default here: `s = 2 000` at `n = 300 000` (load 150), `d` from 1
//! to 12. Depths are the bias-aware depths; baselines use `d + 1` as in
//! §5.1's sizing.
//!
//! Expected shape (paper §5.3): accuracy improves with `d` for every
//! algorithm; CML-CU is the most depth-sensitive; `l2-S/R` stays best
//! throughout.

use bas_bench::{print_dataset_summary, print_sweep_tables, scaled, trials};
use bas_data::{KinematicGen, VectorGenerator};
use bas_eval::claims::{check_monotone_improvement, report};
use bas_eval::{run_depth_sweep, Algorithm};

fn main() {
    let n = scaled(300_000);
    let x = KinematicGen::new(n).generate(0xF167);
    println!("================ Figure 7: depth sweep (Higgs) ================");
    print_dataset_summary("Higgs-like", &x, 500);
    let results = run_depth_sweep(
        &x,
        &Algorithm::MAIN_SET,
        2_000,
        &[1, 2, 4, 6, 9, 12],
        trials(),
        0xF167,
    );
    print_sweep_tables("Figure 7 (fixed s = 2000)", &results, "d");
    // §5.3: "for all algorithms we tested, increasing d will improve the
    // accuracy" (CM is flat because its error is dominated by the huge
    // un-debiased tail, as in the paper's log-scale plots).
    report(&[
        check_monotone_improvement(&results, "l2-S/R", true, "Fig7 §5.3"),
        check_monotone_improvement(&results, "CS", true, "Fig7 §5.3"),
        check_monotone_improvement(&results, "CM-CU", true, "Fig7 §5.3"),
        check_monotone_improvement(&results, "CML-CU", true, "Fig7 §5.3"),
    ]);
}
