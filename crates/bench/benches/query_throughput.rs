//! **Query-plane throughput** — queries/sec for the live query plane,
//! quiescent and under concurrent ingest, reported next to the
//! writer's items/sec.
//!
//! The scenario is the telemetry-server shape: one `QueryEngine`
//! (Count-Median, width 4096 × depth 9 — the `throughput_ingest`
//! configuration) fed by a producer whose flushes fan across W worker
//! threads, while M = 2 reader threads serve:
//!
//! * **live point queries** — lock-free single-item reads off the
//!   atomic cells;
//! * **snapshot point queries** — reads from an epoch-pinned dense
//!   view, re-pinned (allocation-free `refresh`) every 1024 queries;
//! * **heavy-hitter scans** — full-universe sweeps over a pinned
//!   snapshot (full mode only; reported as scans/sec).
//!
//! The quiescent pass is the baseline; the concurrent passes (1 and 4
//! writers) show what reader throughput costs when the counter plane
//! is being written underneath. The acceptance target from the
//! query-plane issue — readers within 2× of quiescent at 4 writers —
//! is *reported* (with a WARNING when missed, since shared CI runners
//! and single-core hosts make wall-clock gates meaningless there), and
//! the **exactness gate is asserted**: after quiescing, the final
//! snapshot must equal a single-threaded sketch of everything pushed,
//! bit for bit. That gate is what CI's smoke mode (`--test`) runs.
//!
//! Knobs: `BAS_SCALE` scales the preload/query counts; `--test` (CI
//! smoke) shrinks everything to run in seconds.

use bas_bench::report::BenchReport;
use bas_pipeline::EpochHandle;
use bas_serve::{QueryEngine, QueryHandle};
use bas_sketch::{AtomicCountMedian, CountMedian, PointQuerySketch, SketchParams, Snapshottable};
use std::hint::black_box;
use std::time::Instant;

const WIDTH: usize = 4_096;
const DEPTH: usize = 9;
const READERS: usize = 2;
const REFRESH_EVERY: usize = 1_024;

/// Deterministic integer-delta stream (same generator family as
/// `throughput_ingest`, so the two benches describe one workload).
fn make_updates(total: usize, n: u64) -> Vec<(u64, f64)> {
    let mut state = 0x0DDB_1A5E5u64;
    (0..total)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % n, (1 + state % 4) as f64)
        })
        .collect()
}

/// One reader's workload: `live_q` live reads and `snap_q` snapshot
/// reads (with periodic refresh). Returns (queries, seconds).
fn reader_pass(
    handle: &QueryHandle<AtomicCountMedian>,
    n: u64,
    live_q: usize,
    snap_q: usize,
) -> (u64, f64) {
    let t = Instant::now();
    let mut item = 0xBEEFu64;
    let mut acc = 0.0;
    for _ in 0..live_q {
        item = item.wrapping_mul(6364136223846793005).wrapping_add(1);
        acc += handle.estimate_live(item % n);
    }
    let mut snap = handle.pin();
    for q in 0..snap_q {
        if q % REFRESH_EVERY == 0 {
            snap.refresh();
        }
        item = item.wrapping_mul(6364136223846793005).wrapping_add(1);
        acc += snap.estimate(item % n);
    }
    black_box(acc);
    ((live_q + snap_q) as u64, t.elapsed().as_secs_f64())
}

struct Pass {
    label: String,
    queries_per_sec: f64,
    items_per_sec: f64,
}

/// Runs READERS reader threads against `engine` while the producer
/// pushes `write_rounds` copies of `updates` (0 = quiescent pass).
/// Both sides do **bounded** work, so the pass terminates even on a
/// single-core host where readers and the flush workers timeshare;
/// on such hosts the tail of the reader quota may run after the
/// writer drains, which the report calls out rather than hiding.
fn run_pass(
    label: &str,
    engine: &mut QueryEngine<AtomicCountMedian>,
    n: u64,
    updates: &[(u64, f64)],
    write_rounds: usize,
    live_q: usize,
    snap_q: usize,
) -> (Pass, u64) {
    let mut pushed = 0u64;
    let (mut queries, mut reader_secs) = (0u64, 0.0f64);
    let wall = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let handle = engine.handle();
                scope.spawn(move || reader_pass(&handle, n, live_q, snap_q))
            })
            .collect();
        for _ in 0..write_rounds {
            engine.extend_from_slice(updates);
            pushed += updates.len() as u64;
        }
        engine.flush();
        for h in handles {
            let (q, secs) = h.join().expect("reader panicked");
            queries += q;
            reader_secs += secs;
        }
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    let pass = Pass {
        label: label.to_string(),
        // Aggregate throughput: queries issued per second of reader time,
        // summed over the reader threads.
        queries_per_sec: queries as f64 / (reader_secs / READERS as f64),
        items_per_sec: if write_rounds > 0 {
            pushed as f64 / wall_secs
        } else {
            0.0
        },
    };
    (pass, pushed)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let scale = std::env::var("BAS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let n = 1_000_000u64;
    let preload = if smoke {
        100_000
    } else {
        (1_000_000f64 * scale) as usize
    };
    let live_q = if smoke {
        40_000
    } else {
        (400_000f64 * scale) as usize
    };
    let snap_q = if smoke {
        20_000
    } else {
        (200_000f64 * scale) as usize
    };

    println!("================ query-plane throughput ================");
    println!(
        "universe {n}, width {WIDTH}, depth {DEPTH}; preload {preload} updates; \
         {READERS} readers x ({live_q} live + {snap_q} snapshot queries){}",
        if smoke { " [smoke]" } else { "" }
    );

    let params = SketchParams::new(n, WIDTH, DEPTH).with_seed(7);
    let updates = make_updates(preload, n);
    let mut engine = QueryEngine::new(4, AtomicCountMedian::with_backend(&params));
    engine.extend_from_slice(&updates);
    engine.flush();

    let write_rounds = if smoke { 4 } else { 10 };
    let mut passes = Vec::new();
    let (quiescent, _) = run_pass("quiescent", &mut engine, n, &updates, 0, live_q, snap_q);
    passes.push(quiescent);
    let mut total_pushed = updates.len() as u64;
    for writers in [1usize, 4] {
        let (pass, pushed) = {
            let mut w_engine = QueryEngine::new(writers, AtomicCountMedian::with_backend(&params));
            w_engine.extend_from_slice(&updates);
            w_engine.flush();
            let out = run_pass(
                &format!("{writers} writer(s)"),
                &mut w_engine,
                n,
                &updates,
                write_rounds,
                live_q,
                snap_q,
            );
            // Exactness gate: quiesced snapshot == single-threaded
            // reference over exactly the pushed prefix (integer deltas
            // make every path bit-exact).
            let applied = w_engine.applied();
            let rounds = (applied as usize) / updates.len();
            assert_eq!(rounds, 1 + write_rounds, "unexpected stream position");
            assert_eq!(
                applied as usize % updates.len(),
                0,
                "partial flush left behind"
            );
            let mut reference = CountMedian::new(&params);
            for _ in 0..rounds {
                reference.update_batch(&updates);
            }
            let snap = w_engine.pin();
            for j in (0..n).step_by(97_003) {
                assert_eq!(
                    snap.estimate(j),
                    reference.estimate(j),
                    "exactness gate failed at item {j} ({writers} writers)"
                );
                assert_eq!(
                    w_engine.sketch().estimate_in(snap.snapshot(), j),
                    reference.estimate(j),
                );
            }
            out
        };
        total_pushed += pushed;
        passes.push(pass);
    }

    let mut report = BenchReport::new("query_throughput", smoke);

    // Heavy-hitter scan rate over a pinned snapshot (full mode only —
    // a universe sweep is deliberately not a smoke-sized operation).
    if !smoke {
        let scans = 3;
        let shared: EpochHandle<AtomicCountMedian> = {
            let mut e = QueryEngine::new(4, AtomicCountMedian::with_backend(&params));
            e.extend_from_slice(&updates);
            e.finish()
        };
        let snap = shared.pin();
        let t = Instant::now();
        let mut found = 0usize;
        for _ in 0..scans {
            let threshold = 1e-4 * snap.mass();
            found += (0..n)
                .filter(|&j| shared.sketch().estimate_in(snap.snapshot(), j) >= threshold)
                .count();
        }
        let secs = t.elapsed().as_secs_f64();
        black_box(found);
        println!(
            "  heavy-hitter scans: {:.2} scans/s over the {n}-item universe",
            scans as f64 / secs
        );
        report.record("heavy-hitter-scan", "scans_per_sec", scans as f64 / secs);
    }

    println!("--------------------------------------------------------");
    let baseline = passes[0].queries_per_sec;
    for p in &passes {
        println!(
            "  {:>12}: {:>7.2} M queries/s ({:.2}x vs quiescent){}",
            p.label,
            p.queries_per_sec / 1e6,
            p.queries_per_sec / baseline,
            if p.items_per_sec > 0.0 {
                format!("   | ingest {:.2} M items/s", p.items_per_sec / 1e6)
            } else {
                String::new()
            }
        );
        report.record(&p.label, "queries_per_sec", p.queries_per_sec);
        if p.items_per_sec > 0.0 {
            report.record(&p.label, "items_per_sec", p.items_per_sec);
        }
    }
    let at4 = passes.last().expect("4-writer pass exists").queries_per_sec;
    println!(
        "reader throughput at 4 writers: {:.2}x of quiescent{}",
        at4 / baseline,
        if at4 * 2.0 >= baseline {
            " (within the 2x acceptance envelope)"
        } else {
            " (WARNING: below the 2x envelope on this host/run)"
        }
    );
    println!("total updates pushed across passes: {total_pushed}");
    match report.write() {
        Ok(path) => println!("machine-readable summary: {}", path.display()),
        Err(e) => println!("WARNING: could not write bench summary: {e}"),
    }
}
