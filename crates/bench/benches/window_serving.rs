//! **Windowed serving throughput** — what the time-scoped query plane
//! costs next to the since-boot one.
//!
//! The scenario is the windowed telemetry shape: one Count-Median
//! `QueryEngine` under `Sliding(K)`, fed a timestamped Zipf stream
//! (`bas_data::TimestampedStreamGen`, the same generator the window
//! conformance suite uses) through `bas_stream::drive_timestamped`,
//! whose interval boundaries drive `advance_interval()`. Three
//! measurements:
//!
//! * **ingest + rotation** — items/sec for the full windowed write
//!   path (chunked driving, concurrent flushes, one seal per
//!   interval), next to the identical stream pushed into an unbounded
//!   engine: the difference is the whole cost of rotation;
//! * **window point queries** — queries/sec against a pinned
//!   [`WindowSnapshot`] with periodic allocation-free
//!   `refresh_window`, next to unbounded snapshot queries at the same
//!   cadence: the marginal cost of the per-refresh plane subtraction;
//! * **estimate-space window serving** — the same stream through a
//!   seed-rotating [`RotatingEngine`] (one hasher config per
//!   interval): ingest + rotation items/sec, and `window_estimate`
//!   queries/sec, where each answer sums one estimate per window
//!   generation instead of reading one merged counter plane. The gap
//!   to the counter-space numbers is the measured price of
//!   adaptive-adversary robustness;
//! * **window heavy-hitter scans** — full-universe sweeps over the
//!   window plane (full mode only; scans/sec);
//! * **batched hot-path kernels** — the same update stream pushed
//!   single-threaded through `update_batch` on Dense sketches built
//!   over `HashKind::OneHash`: one `mix64` digest per item derives
//!   all bucket indices (and Count-Sketch signs), and the counter
//!   writes sweep row-major in blocks (`CounterMatrix::apply_rows`).
//!   One row per sketch (`ingest/kernel-batch/<sketch>`) plus a
//!   scalar one-by-one row under the same hash kind; compare with
//!   `ingest/unbounded` for the kernel-vs-engine picture;
//! * **multi-tenant fabric serving** — the same stream fanned across
//!   a `bas_server::Fabric` at 4 / 16 / 64 tenants (each tenant its
//!   own seed, four shards): ingest items/sec through admission
//!   control and point queries/sec through request dispatch. The gap
//!   to the single-engine numbers is the fabric's per-request tax;
//! * **socket-path serving** — the same fabric behind the
//!   `bas_server::Daemon` on a loopback TCP socket, driven through the
//!   reconnecting `Client`: ingest items/sec in framed batches and
//!   point queries/sec with one round trip per query. The gap to the
//!   in-process fabric rows is the whole wire tax (serde framing +
//!   syscalls + loopback latency), with a bit-for-bit gate comparing
//!   socket answers against in-process dispatch on the same daemon.
//!
//! Throughput numbers are *reported*; the **exactness gates are
//! asserted** in every mode: after the stream drains, the pinned
//! window must equal a single-threaded sketch of exactly the last
//! `K` intervals' updates, bit for bit (integer deltas), and the
//! rotating engine's window answers must equal the sum of
//! single-threaded per-generation references built under the
//! schedule's seeds. That is what CI's smoke mode (`--test`) runs.
//!
//! Knobs: `BAS_SCALE` scales the stream; `--test` (CI smoke) shrinks
//! everything to run in seconds.

use bas_bench::report::BenchReport;
use bas_data::TimestampedStreamGen;
use bas_hash::{HashKind, SeedSchedule};
use bas_serve::{QueryEngine, RotatingEngine, Sliding, WindowSnapshot};
use bas_server::wire::{IngestFrame, PointQuery, TenantRef};
use bas_server::{
    Client, Daemon, DaemonConfig, Fabric, FabricConfig, IngestBatcher, Request, Response,
    RetryPolicy, TenantSpec, MAX_FRAME_BYTES,
};
use bas_sketch::{
    AtomicCountMedian, CountMedian, CountMin, CountSketch, PointQuerySketch, SketchParams,
    UpdatePolicy,
};
use bas_stream::drive_timestamped;
use std::hint::black_box;
use std::time::Instant;

const WIDTH: usize = 4_096;
const DEPTH: usize = 9;
const WINDOW: usize = 8; // sliding window length in intervals
const CHUNK: usize = 8_192;
const REFRESH_EVERY: usize = 1_024;
/// Client-side ingest frame size for the socket rows: the
/// `IngestBatcher` coalesces the arrival stream into frames this big,
/// so the wire round-trip tax amortizes over `MAX_BATCH` updates.
const MAX_BATCH: usize = 65_536;

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let scale = std::env::var("BAS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let n = 100_000u64;
    let intervals = 24u64; // 3 windows' worth of rotation
    let per_interval = if smoke {
        8_000
    } else {
        (80_000f64 * scale) as usize
    };
    let queries = if smoke {
        40_000
    } else {
        (400_000f64 * scale) as usize
    };
    let workers = 4;

    println!("================ windowed serving throughput ================");
    println!(
        "universe {n}, width {WIDTH}, depth {DEPTH}; sliding({WINDOW}) over {intervals} \
         intervals x {per_interval} updates; {queries} point queries{}",
        if smoke { " [smoke]" } else { "" }
    );

    let params = SketchParams::new(n, WIDTH, DEPTH).with_seed(7);
    let gen = TimestampedStreamGen::zipf(n, intervals, per_interval, 1.1)
        .with_seed(11)
        .with_max_delta(4);
    let stream = gen.generate();
    let total_updates = stream.len() as f64;
    let mut report = BenchReport::new("window_serving", smoke);

    // ---- ingest + rotation vs unbounded ingest ----
    let policy = Sliding::new(WINDOW).expect("non-zero window");
    // RefCell because the sink and the boundary callback both drive the
    // same engine (one buffers, one rotates) — single-threaded, so the
    // dynamic borrows never overlap.
    let engine = std::cell::RefCell::new(QueryEngine::with_policy(
        workers,
        AtomicCountMedian::with_backend(&params),
        policy,
    ));
    let t = Instant::now();
    drive_timestamped(
        stream.iter().copied(),
        CHUNK,
        |chunk| engine.borrow_mut().extend_from_slice(chunk),
        |_| {
            engine.borrow_mut().advance_interval();
        },
    );
    let mut engine = engine.into_inner();
    engine.flush();
    let windowed_secs = t.elapsed().as_secs_f64();

    let mut unbounded = QueryEngine::new(workers, AtomicCountMedian::with_backend(&params));
    let t = Instant::now();
    drive_timestamped(
        stream.iter().copied(),
        CHUNK,
        |chunk| unbounded.extend_from_slice(chunk),
        |_| {}, // same boundaries, no rotation
    );
    unbounded.flush();
    let unbounded_secs = t.elapsed().as_secs_f64();

    println!(
        "  ingest: windowed {:.2} M items/s vs unbounded {:.2} M items/s \
         (rotation overhead {:.1}%)",
        total_updates / windowed_secs / 1e6,
        total_updates / unbounded_secs / 1e6,
        (windowed_secs / unbounded_secs - 1.0) * 100.0
    );
    report.record(
        "ingest/windowed",
        "items_per_sec",
        total_updates / windowed_secs,
    );
    report.record(
        "ingest/unbounded",
        "items_per_sec",
        total_updates / unbounded_secs,
    );

    // ---- batched hot-path kernels: one-hash rows + row-major sweep ----
    // The same update stream, single-threaded, through `update_batch`
    // on Dense sketches built over `HashKind::OneHash`: one mix64
    // digest per item yields all DEPTH bucket indices (and the
    // Count-Sketch signs), and the counter writes sweep row-major in
    // 256-item blocks (`CounterMatrix::apply_rows`). The scalar row
    // feeds the identical sketch configuration one update at a time —
    // the gap is the kernel's whole win — and doubles as the
    // exactness gate: kernel and scalar estimates must match bit for
    // bit at every probed point.
    {
        let updates: Vec<(u64, f64)> = stream.iter().map(|u| (u.item, u.delta)).collect();
        let kernel_params = params.with_hash_kind(HashKind::OneHash);
        let mut kernel_bench = |label: &str, build: &dyn Fn() -> Box<dyn PointQuerySketch>| {
            let mut batched = build();
            let t = Instant::now();
            for chunk in updates.chunks(CHUNK) {
                batched.update_batch(chunk);
            }
            let kernel_rate = total_updates / t.elapsed().as_secs_f64();

            let mut scalar = build();
            let t = Instant::now();
            for &(item, delta) in &updates {
                scalar.update(item, delta);
            }
            let scalar_rate = total_updates / t.elapsed().as_secs_f64();

            for j in (0..n).step_by(997) {
                assert_eq!(
                    batched.estimate(j),
                    scalar.estimate(j),
                    "kernel exactness gate failed for {label} at item {j}"
                );
            }
            println!(
                "  kernel ingest [{label}]: batched {:.2} M items/s vs scalar {:.2} M items/s \
                 ({:.2}x)",
                kernel_rate / 1e6,
                scalar_rate / 1e6,
                kernel_rate / scalar_rate
            );
            report.record(
                &format!("ingest/kernel-batch/{label}"),
                "items_per_sec",
                kernel_rate,
            );
            report.record(
                &format!("ingest/scalar-loop/{label}"),
                "items_per_sec",
                scalar_rate,
            );
        };
        kernel_bench("count-median", &|| {
            Box::new(CountMedian::new(&kernel_params))
        });
        kernel_bench("count-sketch", &|| {
            Box::new(CountSketch::new(&kernel_params))
        });
        kernel_bench("count-min", &|| {
            Box::new(CountMin::new(&kernel_params, UpdatePolicy::Plain))
        });
    }

    // ---- exactness gate: window == reference over the last K-1 closed
    // intervals + the in-progress one (Sliding(K) covers intervals
    // current-K+1 ..= current; the final interval `intervals - 1` is
    // still in progress because drive_timestamped never closes it). ----
    let window = engine.pin_window();
    let current = engine.interval();
    assert_eq!(current, intervals - 1, "final interval stays open");
    assert_eq!(window.start_interval(), current - (WINDOW as u64 - 1));
    let mut reference = CountMedian::new(&params);
    let window_updates: Vec<(u64, f64)> = stream
        [(window.start_interval() as usize * per_interval)..]
        .iter()
        .map(|u| (u.item, u.delta))
        .collect();
    reference.update_batch(&window_updates);
    assert_eq!(window.applied(), window_updates.len() as u64);
    for j in (0..n).step_by(9_973) {
        assert_eq!(
            window.estimate(j),
            reference.estimate(j),
            "window exactness gate failed at item {j}"
        );
    }

    // ---- window point queries vs unbounded snapshot queries ----
    let run_queries = |mut estimate: Box<dyn FnMut(usize, u64) -> f64>| -> f64 {
        let t = Instant::now();
        let mut item = 0xBEEFu64;
        let mut acc = 0.0;
        for q in 0..queries {
            item = item.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc += estimate(q, item % n);
        }
        black_box(acc);
        queries as f64 / t.elapsed().as_secs_f64()
    };

    let mut win: WindowSnapshot<AtomicCountMedian> = engine.pin_window();
    let engine_ref = &engine;
    let window_qps = run_queries(Box::new(move |q, item| {
        if q % REFRESH_EVERY == 0 {
            engine_ref.refresh_window(&mut win);
        }
        win.estimate(item)
    }));
    let mut snap = unbounded.pin();
    let snapshot_qps = run_queries(Box::new(move |q, item| {
        if q % REFRESH_EVERY == 0 {
            snap.refresh(); // same cadence, allocation-free re-pin
        }
        snap.estimate(item)
    }));
    println!(
        "  point queries: windowed {:.2} M qps vs unbounded snapshot {:.2} M qps \
         (refresh every {REFRESH_EVERY})",
        window_qps / 1e6,
        snapshot_qps / 1e6
    );
    report.record("queries/window", "queries_per_sec", window_qps);
    report.record(
        "queries/unbounded-snapshot",
        "queries_per_sec",
        snapshot_qps,
    );

    // ---- estimate-space window serving: the rotating engine ----
    // Same stream, same boundaries, but every interval runs under its
    // own hasher seed; window answers sum one estimate per generation.
    let schedule = SeedSchedule::new(7);
    let rotating = std::cell::RefCell::new(
        RotatingEngine::new(
            workers,
            AtomicCountMedian::with_backend(&params),
            schedule,
            WINDOW,
        )
        .expect("non-zero window"),
    );
    let t = Instant::now();
    drive_timestamped(
        stream.iter().copied(),
        CHUNK,
        |chunk| rotating.borrow_mut().extend_from_slice(chunk),
        |_| {
            rotating.borrow_mut().advance_interval();
        },
    );
    let mut rotating = rotating.into_inner();
    rotating.flush();
    let rotating_secs = t.elapsed().as_secs_f64();
    println!(
        "  ingest: rotating {:.2} M items/s (vs windowed counter-space {:.2} M items/s)",
        total_updates / rotating_secs / 1e6,
        total_updates / windowed_secs / 1e6,
    );
    report.record(
        "ingest/rotating",
        "items_per_sec",
        total_updates / rotating_secs,
    );

    // Exactness gate: each window generation must equal a
    // single-threaded reference built under the schedule's seed for
    // that interval, so the engine's window answer is the sum of the
    // per-generation reference estimates (integer deltas → exact sums).
    assert_eq!(rotating.interval(), intervals - 1);
    let generation_reference = |g: u64| {
        let mut reference =
            CountMedian::new(&SketchParams::new(n, WIDTH, DEPTH).with_seed(schedule.seed_for(g)));
        let start = g as usize * per_interval;
        let end = stream.len().min(start + per_interval);
        let updates: Vec<(u64, f64)> = stream[start..end]
            .iter()
            .map(|u| (u.item, u.delta))
            .collect();
        reference.update_batch(&updates);
        reference
    };
    let window_start = intervals - WINDOW as u64;
    let references: Vec<CountMedian> = (window_start..intervals)
        .map(generation_reference)
        .collect();
    for j in (0..n).step_by(9_973) {
        let expected: f64 = references.iter().map(|r| r.estimate(j)).sum();
        assert_eq!(
            rotating.window_estimate(j),
            expected,
            "rotating window exactness gate failed at item {j}"
        );
    }

    let rotating_ref = &rotating;
    let estimate_space_qps =
        run_queries(Box::new(move |_q, item| rotating_ref.window_estimate(item)));
    println!(
        "  point queries: estimate-space window {:.2} M qps vs counter-space window {:.2} M qps \
         ({WINDOW} generations per answer)",
        estimate_space_qps / 1e6,
        window_qps / 1e6
    );
    report.record(
        "queries/window-estimate-space",
        "queries_per_sec",
        estimate_space_qps,
    );

    // ---- window heavy-hitter scans (full mode only) ----
    if !smoke {
        let scans = 3;
        let win = engine.pin_window();
        let t = Instant::now();
        let mut found = 0usize;
        for _ in 0..scans {
            found += win.heavy_hitters(1e-3).expect("valid phi").len();
        }
        let secs = t.elapsed().as_secs_f64();
        black_box(found);
        println!(
            "  window heavy-hitter scans: {:.2} scans/s over the {n}-item universe",
            scans as f64 / secs
        );
        report.record(
            "heavy-hitter-scan/window",
            "scans_per_sec",
            scans as f64 / secs,
        );
    }

    // ---- multi-tenant fabric serving at 4 / 16 / 64 tenants ----
    // Each tenant gets its own seed (hash isolation); the stream is
    // fanned round-robin in CHUNK-sized ingest frames through the
    // fabric's admission path, then queried round-robin through
    // request dispatch.
    for &tenants in &[4u64, 16, 64] {
        let mut fabric = Fabric::new(FabricConfig::new(params.clone()).with_workers(workers));
        for shard in 0..4 {
            fabric.add_shard(shard, 1.0).expect("fresh shard id");
        }
        for tenant in 0..tenants {
            fabric
                .register_tenant(TenantSpec::frequency(tenant, 1_000 + tenant))
                .expect("fresh tenant id");
        }

        let t = Instant::now();
        for (i, chunk) in stream.chunks(CHUNK).enumerate() {
            let updates: Vec<(u64, f64)> = chunk.iter().map(|u| (u.item, u.delta)).collect();
            let frame = IngestFrame {
                tenant: i as u64 % tenants,
                updates,
            };
            match fabric.handle(Request::Ingest(frame)) {
                Response::Admitted(_) => {}
                other => panic!("fabric refused ingest: {other:?}"),
            }
        }
        for tenant in 0..tenants {
            fabric.handle(Request::Flush(TenantRef { tenant }));
        }
        let fabric_ingest = total_updates / t.elapsed().as_secs_f64();

        let t = Instant::now();
        let mut item = 0xBEEFu64;
        let mut acc = 0.0;
        for q in 0..queries {
            item = item.wrapping_mul(6364136223846793005).wrapping_add(1);
            let query = PointQuery {
                tenant: q as u64 % tenants,
                item: item % n,
            };
            match fabric.handle(Request::Point(query)) {
                Response::Value(v) => acc += v.value,
                other => panic!("fabric refused query: {other:?}"),
            }
        }
        black_box(acc);
        let fabric_qps = queries as f64 / t.elapsed().as_secs_f64();

        println!(
            "  fabric x{tenants}: ingest {:.2} M items/s, point queries {:.2} M qps \
             (4 shards, per-tenant seeds)",
            fabric_ingest / 1e6,
            fabric_qps / 1e6
        );
        report.record(
            &format!("fabric/ingest/{tenants}-tenants"),
            "items_per_sec",
            fabric_ingest,
        );
        report.record(
            &format!("fabric/queries/{tenants}-tenants"),
            "queries_per_sec",
            fabric_qps,
        );
    }

    // ---- socket-path serving: the same fabric behind the daemon ----
    // Four tenants, four shards, loopback TCP through the framed wire
    // protocol. Queries pay one full round trip each, so the query
    // count is trimmed; the rows land next to `fabric/*` so the wire
    // tax reads off directly.
    {
        let tenants = 4u64;
        let mut fabric = Fabric::new(FabricConfig::new(params.clone()).with_workers(workers));
        for shard in 0..4 {
            fabric.add_shard(shard, 1.0).expect("fresh shard id");
        }
        for tenant in 0..tenants {
            fabric
                .register_tenant(TenantSpec::frequency(tenant, 1_000 + tenant))
                .expect("fresh tenant id");
        }
        let daemon = Daemon::bind_tcp("127.0.0.1:0", fabric, None, DaemonConfig::new())
            .expect("bind loopback daemon");
        let addr = daemon.local_addr().expect("tcp address");
        let mut client = Client::new(
            move || {
                let s = std::net::TcpStream::connect(addr)?;
                s.set_nodelay(true)?; // one frame per round trip
                Ok(s)
            },
            RetryPolicy::new(),
            MAX_FRAME_BYTES,
        );

        // The arrival stream still lands in CHUNK-sized pieces, but
        // the per-tenant `IngestBatcher` coalesces them into
        // MAX_BATCH-update frames, so the round-trip tax amortizes and
        // the server sees batches big enough for its blocked kernels.
        let mut batchers: Vec<IngestBatcher> = (0..tenants)
            .map(|tenant| IngestBatcher::new(tenant, MAX_BATCH))
            .collect();
        let t = Instant::now();
        for (i, chunk) in stream.chunks(CHUNK).enumerate() {
            let updates: Vec<(u64, f64)> = chunk.iter().map(|u| (u.item, u.delta)).collect();
            let batcher = &mut batchers[(i as u64 % tenants) as usize];
            for resp in batcher
                .extend(&mut client, &updates)
                .expect("socket ingest")
            {
                match resp {
                    Response::Admitted(_) => {}
                    other => panic!("daemon refused ingest: {other:?}"),
                }
            }
        }
        for batcher in &mut batchers {
            if let Some(resp) = batcher.finish(&mut client).expect("socket ingest tail") {
                match resp {
                    Response::Admitted(_) => {}
                    other => panic!("daemon refused ingest tail: {other:?}"),
                }
            }
        }
        for tenant in 0..tenants {
            client
                .call(&Request::Flush(TenantRef { tenant }))
                .expect("socket flush");
        }
        let socket_ingest = total_updates / t.elapsed().as_secs_f64();

        let socket_queries = (queries / 4).max(1_000);
        let t = Instant::now();
        let mut item = 0xBEEFu64;
        let mut acc = 0.0;
        for q in 0..socket_queries {
            item = item.wrapping_mul(6364136223846793005).wrapping_add(1);
            let query = PointQuery {
                tenant: q as u64 % tenants,
                item: item % n,
            };
            match client.call(&Request::Point(query)).expect("socket query") {
                Response::Value(v) => acc += v.value,
                other => panic!("daemon refused query: {other:?}"),
            }
        }
        black_box(acc);
        let socket_qps = socket_queries as f64 / t.elapsed().as_secs_f64();

        // Exactness gate: socket answers are in-process answers.
        for probe in (0..n).step_by(997) {
            let query = PointQuery {
                tenant: probe % tenants,
                item: probe,
            };
            let over_wire = match client.call(&Request::Point(query.clone())).unwrap() {
                Response::Value(v) => v.value,
                other => panic!("daemon refused probe: {other:?}"),
            };
            let in_process = match daemon.fabric().handle(Request::Point(query)) {
                Response::Value(v) => v.value,
                other => panic!("fabric refused probe: {other:?}"),
            };
            assert_eq!(
                over_wire.to_bits(),
                in_process.to_bits(),
                "socket exactness gate failed at item {probe}"
            );
        }

        println!(
            "  daemon (loopback tcp) x{tenants}: ingest {:.2} M items/s, point queries {:.1} K qps \
             (1 round trip per query)",
            socket_ingest / 1e6,
            socket_qps / 1e3
        );
        report.record("daemon/ingest/tcp", "items_per_sec", socket_ingest);
        report.record("daemon/queries/tcp", "queries_per_sec", socket_qps);
        drop(client);
        daemon.shutdown().expect("daemon shutdown");
    }

    match report.write() {
        Ok(path) => println!("machine-readable summary: {}", path.display()),
        Err(e) => println!("WARNING: could not write bench summary: {e}"),
    }
    println!(
        "window exactness gate passed ({} window updates)",
        window_updates.len()
    );
}
