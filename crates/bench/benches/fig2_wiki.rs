//! **Figure 2** — Wiki pageviews-per-second: average/maximum error vs
//! sketch width.
//!
//! Paper setup: `n = 3 513 600` seconds, ≈1.3·10^10 views (mean
//! ≈3 700/s). Default here: the same diurnal+burst structure at
//! `n = 300 000`, mean 40/s (`WebTrafficGen::wiki_scaled`; the paper's
//! totals make the CML-CU unit-increment model prohibitively slow at
//! full scale — see EXPERIMENTS.md).
//!
//! Expected shape (paper §5.2): `l2-S/R` best everywhere (≤1/10 of the
//! others' average error at s = 20 000); `l1-S/R` ≈ CS on average but
//! ~2x better on max error; CM far off the chart.

use bas_bench::{print_dataset_summary, print_sweep_tables, scaled, trials};
use bas_data::{VectorGenerator, WebTrafficGen};
use bas_eval::claims::{check_dominance, check_monotone_improvement, report};
use bas_eval::{run_width_sweep, Algorithm, SweepConfig};

fn main() {
    let n = scaled(300_000);
    let x = WebTrafficGen::wiki_scaled(n, 40.0).generate(0xF162);
    println!("================ Figure 2: Wiki ================");
    print_dataset_summary("Wiki-like", &x, 125);
    let cfg = SweepConfig {
        widths: vec![500, 1_000, 2_000, 4_000],
        depth: 9,
        trials: trials(),
        seed: 0xF162,
    };
    let results = run_width_sweep(&x, &Algorithm::MAIN_SET, &cfg);
    print_sweep_tables("Figure 2 (Wiki)", &results, "s");
    // §5.2: "l2-S/R always achieves the best recovery quality"; CM far
    // worse than everything.
    report(&[
        check_dominance(&results, "l2-S/R", "CS", 1.0, "Fig2 §5.2"),
        check_dominance(&results, "l2-S/R", "CM-CU", 3.0, "Fig2 §5.2"),
        check_dominance(&results, "l2-S/R", "CM", 20.0, "Fig2 §5.2"),
        check_monotone_improvement(&results, "l2-S/R", false, "Fig2"),
        check_monotone_improvement(&results, "CS", false, "Fig2"),
    ]);
}
