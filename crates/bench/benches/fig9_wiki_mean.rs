//! **Figure 9** — Wiki dataset, paper estimators vs mean heuristics.
//!
//! Expected shape (paper §5.4): `l2-S/R`, `l1-mean` and `l2-mean` have
//! similar performance and all beat `l1-S/R` — real pageview data has
//! no adversarial outliers, so the mean is an adequate (and cheap) bias
//! estimate there.

use bas_bench::{print_dataset_summary, print_sweep_tables, scaled, trials};
use bas_data::{VectorGenerator, WebTrafficGen};
use bas_eval::claims::{check_dominance, report};
use bas_eval::{run_width_sweep, Algorithm, SweepConfig};

fn main() {
    let n = scaled(300_000);
    let x = WebTrafficGen::wiki_scaled(n, 40.0).generate(0xF169);
    println!("================ Figure 9: Wiki, mean heuristics ================");
    print_dataset_summary("Wiki-like", &x, 125);
    let cfg = SweepConfig {
        widths: vec![500, 1_000, 2_000, 4_000],
        depth: 9,
        trials: trials(),
        seed: 0xF169,
    };
    let results = run_width_sweep(&x, &Algorithm::MEAN_SET, &cfg);
    print_sweep_tables("Figure 9 (Wiki)", &results, "s");
    // §5.4: "l2-S/R, l1-mean and l2-mean have similar performance and
    // all of them outperform l1-S/R".
    report(&[
        check_dominance(&results, "l2-S/R", "l1-S/R", 2.0, "Fig9 §5.4"),
        check_dominance(&results, "l2-mean", "l1-S/R", 2.0, "Fig9 §5.4"),
        check_dominance(&results, "l1-mean", "l1-S/R", 1.5, "Fig9 §5.4"),
    ]);
}
