//! **Ablation** — bias-maintenance structures for the `ℓ2` sketch:
//! the paper's Bias-Heap (Algorithm 5) vs an order-statistic treap vs
//! lazy re-sorting at query time.
//!
//! All three produce identical biases (enforced by property tests); the
//! question is cost. Expected: heap and tree give `O(log s)` updates
//! with `O(1)`/`O(log s)` bias reads; re-sort gives free updates but
//! `O(s log s)` per bias read — unusable for the paper's real-time
//! point queries (§4.1), fine for one-shot offline recovery.

use bas_core::{L2BiasMaintenance, L2Config, L2SketchRecover};
use bas_eval::ResultTable;
use bas_hash::SplitMix64;
use bas_sketch::PointQuerySketch;
use std::time::Instant;

fn run_mode(
    mode: L2BiasMaintenance,
    n: u64,
    width: usize,
    updates: &[(u64, f64)],
    queries: usize,
) -> (f64, f64, f64) {
    let cfg = L2Config::new(n, width, 9)
        .with_seed(1)
        .with_maintenance(mode);
    let mut sk = L2SketchRecover::new(&cfg);
    let t0 = Instant::now();
    for &(i, d) in updates {
        sk.update(i, d);
    }
    let update_ns = t0.elapsed().as_nanos() as f64 / updates.len() as f64;

    let t1 = Instant::now();
    let mut sink = 0.0;
    for _ in 0..queries {
        sink += sk.bias();
    }
    let bias_ns = t1.elapsed().as_nanos() as f64 / queries as f64;

    let t2 = Instant::now();
    for j in 0..queries as u64 {
        sink += sk.estimate(j % n);
    }
    let point_ns = t2.elapsed().as_nanos() as f64 / queries as f64;
    std::hint::black_box(sink);
    (update_ns, bias_ns, point_ns)
}

fn main() {
    let n = 200_000u64;
    let num_updates = 1_000_000usize;
    let mut rng = SplitMix64::new(99);
    let updates: Vec<(u64, f64)> = (0..num_updates)
        .map(|_| (rng.next_below(n), (rng.next_below(100) as f64) / 10.0))
        .collect();
    println!("================ Ablation: l2 bias maintenance ================");
    println!("{num_updates} updates over n = {n}, then repeated bias/point queries\n");

    for width in [1_000usize, 4_000, 16_000] {
        let mut table = ResultTable::new(
            format!("s = {width}"),
            &["structure", "update ns", "bias-query ns", "point-query ns"],
        );
        for (name, mode) in [
            ("BiasHeap (Alg. 5)", L2BiasMaintenance::BiasHeap),
            ("OrderStatTree", L2BiasMaintenance::OrderStatTree),
            ("Resort-on-query", L2BiasMaintenance::Resort),
        ] {
            let (u, b, p) = run_mode(mode, n, width, &updates, 2_000);
            table.push_row(vec![
                name.to_string(),
                format!("{u:.0}"),
                format!("{b:.0}"),
                format!("{p:.0}"),
            ]);
        }
        println!("{}", table.to_text());
    }
    println!(
        "check: Resort's bias/point-query cost should grow ~linearly in s \
         while the incremental structures stay flat — the reason the paper \
         rejects post-processing for streaming queries."
    );
}
