//! **Figure 5** — Meme lengths: average/maximum error vs sketch width.
//!
//! Paper setup: `x_i` = word count of meme `i`, `n ≈ 2.11·10^8`.
//! Default here: the discretized-lognormal stand-in at `n = 600 000`
//! (`BAS_SCALE` to grow).
//!
//! Expected shape (paper §5.2): `l2-S/R` best; CS ≈ 30% worse; both far
//! ahead of the rest; CM and CML-CU off the chart.

use bas_bench::{print_dataset_summary, print_sweep_tables, scaled, trials};
use bas_data::{MemeLengthGen, VectorGenerator};
use bas_eval::claims::{check_dominance, report};
use bas_eval::{run_width_sweep, Algorithm, SweepConfig};

fn main() {
    let n = scaled(600_000);
    let x = MemeLengthGen::new(n).generate(0xF165);
    println!("================ Figure 5: Meme ================");
    print_dataset_summary("Meme-like", &x, 125);
    let cfg = SweepConfig {
        widths: vec![500, 1_000, 2_000, 4_000],
        depth: 9,
        trials: trials(),
        seed: 0xF165,
    };
    let results = run_width_sweep(&x, &Algorithm::MAIN_SET, &cfg);
    print_sweep_tables("Figure 5 (Meme)", &results, "s");
    // §5.2: "l2-S/R achieves the best recovery quality. The errors of CS
    // are about 30% larger ... Both outperform other algorithms
    // significantly."
    report(&[
        check_dominance(&results, "l2-S/R", "CS", 1.2, "Fig5 §5.2"),
        check_dominance(&results, "CS", "CM-CU", 5.0, "Fig5 §5.2"),
        check_dominance(&results, "l2-S/R", "CM", 50.0, "Fig5 §5.2"),
    ]);
}
