//! **Figure 4** — Higgs kinematic feature: average/maximum error vs
//! sketch width.
//!
//! Paper setup: the 4th kinematic feature of `n = 1.1·10^7` Monte-Carlo
//! events (non-negative, unimodal, long right tail). Default here: the
//! gamma-mixture stand-in at `n = 600 000` (`BAS_SCALE` to grow).
//!
//! Expected shape (paper §5.2): `l2-S/R` smallest average error, CS
//! second; CML-CU approaches `l2-S/R` on max error at large `s`; CM
//! worst overall. The asymmetric (one-sided) noise is what separates
//! `l2-S/R` from `l1-S/R` here.

use bas_bench::{print_dataset_summary, print_sweep_tables, scaled, trials};
use bas_data::{KinematicGen, VectorGenerator};
use bas_eval::claims::{check_dominance, report};
use bas_eval::{run_width_sweep, Algorithm, SweepConfig};

fn main() {
    let n = scaled(600_000);
    let x = KinematicGen::new(n).generate(0xF164);
    println!("================ Figure 4: Higgs ================");
    print_dataset_summary("Higgs-like", &x, 125);
    let cfg = SweepConfig {
        widths: vec![500, 1_000, 2_000, 4_000],
        depth: 9,
        trials: trials(),
        seed: 0xF164,
    };
    let results = run_width_sweep(&x, &Algorithm::MAIN_SET, &cfg);
    print_sweep_tables("Figure 4 (Higgs)", &results, "s");
    // §5.2: "for average error, l2-S/R again achieves the smallest
    // error. The average error of CS is typically larger than that of
    // l2-S/R and much smaller than that of other algorithms"; the
    // asymmetric tail separates l2-S/R from l1-S/R.
    report(&[
        check_dominance(&results, "l2-S/R", "CS", 1.0, "Fig4 §5.2"),
        check_dominance(&results, "CS", "CML-CU", 1.5, "Fig4 §5.2"),
        check_dominance(&results, "l2-S/R", "l1-S/R", 3.0, "Fig4 §5.2"),
        check_dominance(&results, "l2-S/R", "CM", 40.0, "Fig4 §5.2"),
    ]);
}
