//! **Ablation** — hash families: Carter–Wegman (the paper's analysis
//! family) vs multiply-shift vs tabulation, inside Count-Sketch and
//! `l2-S/R`.
//!
//! All three are (at least) pairwise independent, so accuracy should be
//! statistically indistinguishable; the trade is pure speed (modular
//! reduction vs one multiply vs 8 table lookups).

use bas_core::{L2Config, L2SketchRecover};
use bas_data::{GaussianGen, VectorGenerator};
use bas_eval::{ErrorReport, ResultTable};
use bas_hash::HashKind;
use bas_sketch::{CountSketch, PointQuerySketch, SketchParams};
use std::time::Instant;

fn main() {
    let n = 200_000usize;
    let x = GaussianGen::new(n, 100.0, 15.0).generate(0xAB1A);
    println!("================ Ablation: hash families ================");

    let mut table = ResultTable::new(
        "Count-Sketch / l2-S/R with each family (s = 2000, d = 9)",
        &[
            "family",
            "CS ingest ns/upd",
            "CS avg err",
            "l2-S/R ingest ns/upd",
            "l2-S/R avg err",
        ],
    );
    for (name, kind) in [
        ("Carter-Wegman", HashKind::CarterWegman),
        ("Multiply-shift", HashKind::MultiplyShift),
        ("Tabulation", HashKind::Tabulation),
    ] {
        // Count-Sketch timing + error.
        let params = SketchParams::new(n as u64, 2_000, 10)
            .with_seed(7)
            .with_hash_kind(kind);
        let mut cs = CountSketch::new(&params);
        let t0 = Instant::now();
        cs.ingest_vector(&x);
        let cs_ns = t0.elapsed().as_nanos() as f64 / n as f64;
        let cs_err = ErrorReport::compare(&x, &cs.recover_all()).avg_err;

        // l2-S/R timing + error.
        let cfg = L2Config::new(n as u64, 2_000, 9)
            .with_seed(7)
            .with_hash_kind(kind);
        let mut l2 = L2SketchRecover::new(&cfg);
        let t1 = Instant::now();
        l2.ingest_vector(&x);
        let l2_ns = t1.elapsed().as_nanos() as f64 / n as f64;
        let l2_err = ErrorReport::compare(&x, &l2.recover_all()).avg_err;

        table.push_row(vec![
            name.to_string(),
            format!("{cs_ns:.0}"),
            format!("{cs_err:.3}"),
            format!("{l2_ns:.0}"),
            format!("{l2_err:.3}"),
        ]);
    }
    println!("{}", table.to_text());
    println!(
        "check: errors should agree within noise across families \
         (all pairwise independent); speed is the only trade. \
         Multiply-shift rounds s up to 2048."
    );
}
