//! **Figure 8** — Gaussian-2: the paper's estimators vs the mean
//! heuristics, on clean data (panels a–b) and with shifted entries
//! (panels c–d).
//!
//! Paper setup: `n = 5·10^6` from `N(100, 15²)`; panels c–d shift 500
//! entries by `+10^5`. Default here: `n = 500 000` with the shift count
//! scaled (100) to keep the same mean displacement (`BAS_SCALE` to
//! grow).
//!
//! Expected shape (paper §5.4): all four algorithms tie on the clean
//! data; with shifted entries, `l1-mean`/`l2-mean` blow up (the global
//! mean moves by shift·count/n) while `l1-S/R`/`l2-S/R` are unaffected.

use bas_bench::{print_dataset_summary, print_sweep_tables, scaled, trials};
use bas_data::{ShiftedGaussianGen, VectorGenerator};
use bas_eval::claims::{check_degradation, check_dominance, check_invariance, report};
use bas_eval::{run_width_sweep, Algorithm, SweepConfig};

fn main() {
    let n = scaled(500_000);
    // Keep the paper's *fraction* of shifted entries (500/5e6 = 1e-4)
    // so the outlier count stays safely below k = s/4 at every width and
    // the S/R sketches can absorb them, as in the paper. The shift is
    // scaled up (1e5 -> 1e6) so the mean displacement (count·shift/n =
    // 100) stays visible against sketch noise at the smaller default n.
    let shifted = (n as f64 * 1e-4).round() as usize;
    let shift = 1_000_000.0;
    let mut panels = Vec::new();
    for (panel, count) in [("a-b", 0usize), ("c-d", shifted)] {
        let x = ShiftedGaussianGen::new(n, count, shift).generate(0xF168);
        println!(
            "\n================ Figure 8{panel}: Gaussian-2, {count} entries shifted ================"
        );
        print_dataset_summary("Gaussian-2", &x, 1_000);
        let cfg = SweepConfig {
            widths: vec![500, 1_000, 2_000, 4_000],
            depth: 9,
            trials: trials(),
            seed: 0xF168,
        };
        let results = run_width_sweep(&x, &Algorithm::MEAN_SET, &cfg);
        print_sweep_tables(&format!("Figure 8{panel}"), &results, "s");
        panels.push(results);
    }
    // §5.4: "all algorithms have similar performance" on clean data;
    // with shifted entries "errors of both l1-mean and l2-mean increase
    // significantly" while the S/R estimators are barely affected.
    let (clean, dirty) = (&panels[0], &panels[1]);
    report(&[
        check_invariance(clean, dirty, "l2-S/R", 0.5, "Fig8c-d"),
        check_degradation(clean, dirty, "l2-mean", 2.0, "Fig8c-d"),
        check_degradation(clean, dirty, "l1-mean", 2.0, "Fig8c-d"),
        check_dominance(dirty, "l2-S/R", "l2-mean", 2.0, "Fig8c-d"),
    ]);
}
