//! **Figure 1** — Gaussian dataset: average/maximum error vs sketch
//! width `s`, for `b = 100` (panels a–b) and `b = 500` (panels c–d).
//!
//! Paper setup: `n = 5·10^8`, `σ = 15`, six algorithms, `d = 9` (+1 for
//! baselines). Default here: `n = 200 000` (scale with `BAS_SCALE`);
//! the collision regime (`n/s` between 50 and 400) brackets the paper's.
//!
//! Expected shape (paper §5.2): `l1-S/R` and `l2-S/R` are an order of
//! magnitude better than everything else (≤1/5 of CS, ≤1/20 of CML-CU,
//! ≤1/50 of CM-CU, ≤1/200 of CM), and — panels c–d — their error does
//! NOT grow when `b` goes from 100 to 500, while all baselines degrade.

use bas_bench::{print_dataset_summary, print_sweep_tables, print_timing_table, scaled, trials};
use bas_data::{GaussianGen, VectorGenerator};
use bas_eval::claims::{check_degradation, check_dominance, check_invariance, report};
use bas_eval::{run_width_sweep, Algorithm, SweepConfig};

fn main() {
    let n = scaled(200_000);
    let widths = vec![500, 1_000, 2_000, 4_000];
    let mut panels = Vec::new();
    for (panel, b) in [("a-b", 100.0), ("c-d", 500.0)] {
        let x = GaussianGen::new(n, b, 15.0).generate(0xF161);
        println!("\n================ Figure 1{panel}: Gaussian b = {b} ================");
        print_dataset_summary("Gaussian", &x, widths[0] / 4);
        let cfg = SweepConfig {
            widths: widths.clone(),
            depth: 9,
            trials: trials(),
            seed: 0xF161,
        };
        let results = run_width_sweep(&x, &Algorithm::MAIN_SET, &cfg);
        print_sweep_tables(&format!("Figure 1{panel} (b = {b})"), &results, "s");
        print_timing_table(&format!("Figure 1{panel} (b = {b})"), &results);
        panels.push(results);
    }
    // §5.2: "the errors of l1-S/R and l2-S/R are less than 1/5 of CS,
    // 1/20 of CML-CU, 1/50 of CM-CU and 1/200 of CM"; §5.2: the value
    // of b does not affect the bias-aware sketches but inflates all
    // baselines.
    let (b100, b500) = (&panels[0], &panels[1]);
    report(&[
        check_dominance(b100, "l2-S/R", "CS", 4.0, "Fig1 §5.2"),
        check_dominance(b100, "l2-S/R", "CML-CU", 5.0, "Fig1 §5.2"),
        check_dominance(b100, "l2-S/R", "CM-CU", 30.0, "Fig1 §5.2"),
        check_dominance(b100, "l2-S/R", "CM", 100.0, "Fig1 §5.2"),
        check_invariance(b100, b500, "l1-S/R", 0.10, "Fig1c-d"),
        check_invariance(b100, b500, "l2-S/R", 0.10, "Fig1c-d"),
        check_degradation(b100, b500, "CS", 2.5, "Fig1c-d"),
        check_degradation(b100, b500, "CM", 3.0, "Fig1c-d"),
        check_degradation(b100, b500, "CM-CU", 3.0, "Fig1c-d"),
    ]);
}
