//! Machine-readable bench summaries: `BENCH_PR10.json`.
//!
//! Bench stdout is great for humans and useless for trend tracking:
//! once the terminal scrolls away, the perf trajectory across PRs is
//! gone. Each throughput-style bench therefore also emits its rows
//! through a [`BenchReport`], which
//!
//! 1. writes the bench's own section as a *fragment* file under a
//!    sections directory (`target/bench-sections/<bench>.json` by
//!    default), and
//! 2. regenerates the combined summary (`BENCH_PR10.json` by default)
//!    from **every** fragment present — so the three throughput
//!    benches can run in any order, each refreshing only its own
//!    section, and the combined file always holds the latest row set
//!    of each.
//!
//! The JSON is hand-assembled (the vendored `serde_json` subset has no
//! `Value` tree), with escaping for the label strings; a unit test
//! round-trips the output through the vendored parser to keep it
//! honest. Knobs: `BAS_BENCH_JSON` overrides the combined path,
//! `BAS_BENCH_JSON_DIR` the fragment directory.
//!
//! Combined format, one top-level key per bench:
//!
//! ```json
//! {
//!   "throughput_ingest": {
//!     "mode": "full",
//!     "rows": [
//!       {"label": "Count-Median/single", "metric": "items_per_sec", "value": 2.1e7}
//!     ]
//!   }
//! }
//! ```

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Default combined summary filename (resolved against the workspace
/// root, not the bench's cwd — cargo runs bench binaries from the
/// package directory).
pub const DEFAULT_COMBINED_NAME: &str = "BENCH_PR10.json";

/// Default fragment directory name under the workspace `target/`.
pub const DEFAULT_SECTIONS_DIR: &str = "bench-sections";

/// The workspace root, derived from this crate's manifest directory
/// (`crates/bench` → two levels up). Keeps the default output location
/// stable no matter which directory the bench binary runs from.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// One bench's summary rows, accumulated during the run and written at
/// the end.
#[derive(Debug)]
pub struct BenchReport {
    bench: String,
    mode: String,
    rows: Vec<Row>,
}

#[derive(Debug)]
struct Row {
    label: String,
    metric: String,
    value: f64,
}

/// Escapes a string for a JSON string literal (quotes, backslashes,
/// control characters — the label alphabet here is tame, but the
/// writer should not rely on that).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (JSON has no NaN/∞, so non-finite
/// values become `null`).
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl BenchReport {
    /// A report for the named bench, in `"smoke"` or `"full"` mode.
    pub fn new(bench: &str, smoke: bool) -> Self {
        Self {
            bench: bench.to_string(),
            mode: if smoke { "smoke" } else { "full" }.to_string(),
            rows: Vec::new(),
        }
    }

    /// Records one measured value (e.g. label `"Count-Median/single"`,
    /// metric `"items_per_sec"`).
    pub fn record(&mut self, label: &str, metric: &str, value: f64) {
        self.rows.push(Row {
            label: label.to_string(),
            metric: metric.to_string(),
            value,
        });
    }

    /// This bench's section as a JSON object.
    fn section_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    r#"    {{"label": "{}", "metric": "{}", "value": {}}}"#,
                    escape(&r.label),
                    escape(&r.metric),
                    number(r.value)
                )
            })
            .collect();
        format!(
            "{{\n  \"mode\": \"{}\",\n  \"rows\": [\n{}\n  ]\n}}",
            escape(&self.mode),
            rows.join(",\n")
        )
    }

    /// Writes this bench's fragment and regenerates the combined
    /// summary from all fragments present. Returns the combined path.
    ///
    /// # Errors
    /// Propagates filesystem errors (unwritable directories).
    pub fn write(&self) -> io::Result<PathBuf> {
        let root = workspace_root();
        let dir = std::env::var("BAS_BENCH_JSON_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| root.join("target").join(DEFAULT_SECTIONS_DIR));
        let combined = std::env::var("BAS_BENCH_JSON")
            .map(PathBuf::from)
            .unwrap_or_else(|_| root.join(DEFAULT_COMBINED_NAME));
        self.write_to(&dir, &combined)
    }

    /// [`write`](BenchReport::write) with explicit paths (for tests).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to(&self, sections_dir: &Path, combined: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(sections_dir)?;
        fs::write(
            sections_dir.join(format!("{}.json", self.bench)),
            self.section_json(),
        )?;

        // Regenerate the combined file from every fragment present.
        let mut sections: Vec<(String, String)> = Vec::new();
        for entry in fs::read_dir(sections_dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            sections.push((name.to_string(), fs::read_to_string(&path)?));
        }
        sections.sort_by(|a, b| a.0.cmp(&b.0));
        let body: Vec<String> = sections
            .iter()
            .map(|(name, json)| {
                // Indent the section under its key.
                let indented = json.replace('\n', "\n  ");
                format!("  \"{}\": {indented}", escape(name))
            })
            .collect();
        fs::write(combined, format!("{{\n{}\n}}\n", body.join(",\n")))?;
        Ok(combined.to_path_buf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bas-bench-report-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn combined_file_merges_sections_and_parses() {
        let dir = temp_dir("merge");
        let sections = dir.join("sections");
        let combined = dir.join("BENCH_PR6.json");

        let mut a = BenchReport::new("throughput_ingest", false);
        a.record("Count-Median/single", "items_per_sec", 2.1e7);
        a.record("Count-Median/concurrent-shared-4", "items_per_sec", 3.9e7);
        a.write_to(&sections, &combined).unwrap();

        let mut b = BenchReport::new("query_throughput", true);
        b.record("quiescent", "queries_per_sec", 5.0e6);
        b.write_to(&sections, &combined).unwrap();

        let text = fs::read_to_string(&combined).unwrap();
        // The vendored serde_json parses it (validity check) and both
        // sections survive the second write.
        #[derive(serde::Deserialize)]
        struct Row {
            label: String,
            metric: String,
            value: Option<f64>,
        }
        #[derive(serde::Deserialize)]
        struct Section {
            mode: String,
            rows: Vec<Row>,
        }
        #[derive(serde::Deserialize)]
        struct Combined {
            throughput_ingest: Section,
            query_throughput: Section,
        }
        let parsed: Combined = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed.throughput_ingest.mode, "full");
        assert_eq!(parsed.throughput_ingest.rows.len(), 2);
        assert_eq!(
            parsed.throughput_ingest.rows[0].label,
            "Count-Median/single"
        );
        assert_eq!(parsed.throughput_ingest.rows[0].metric, "items_per_sec");
        assert_eq!(parsed.throughput_ingest.rows[0].value, Some(2.1e7));
        assert_eq!(parsed.query_throughput.mode, "smoke");
        assert_eq!(parsed.query_throughput.rows[0].value, Some(5.0e6));

        // Re-running a bench refreshes only its own section.
        let mut a2 = BenchReport::new("throughput_ingest", true);
        a2.record("Count-Median/single", "items_per_sec", 1.0e7);
        a2.write_to(&sections, &combined).unwrap();
        let parsed: Combined =
            serde_json::from_str(&fs::read_to_string(&combined).unwrap()).unwrap();
        assert_eq!(parsed.throughput_ingest.rows.len(), 1);
        assert_eq!(parsed.query_throughput.rows.len(), 1, "other section kept");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_and_nonfinite_values() {
        let dir = temp_dir("escape");
        let sections = dir.join("sections");
        let combined = dir.join("combined.json");
        let mut r = BenchReport::new("weird", false);
        r.record("label \"with\" quotes\\and\nnewline", "qps", f64::NAN);
        r.write_to(&sections, &combined).unwrap();
        let text = fs::read_to_string(&combined).unwrap();
        assert!(text.contains("\\\"with\\\""));
        assert!(text.contains("\"value\": null"));
        let _ = fs::remove_dir_all(&dir);
    }
}
