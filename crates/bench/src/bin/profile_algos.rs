//! Quick per-algorithm cost profile on the WorldCup workload — a
//! developer utility for spotting ingest/recovery regressions without
//! running a full figure bench.
//!
//! Run with: `cargo run --release -p bas-bench --bin profile_algos`

use bas_data::{VectorGenerator, WebTrafficGen};
use bas_eval::{run_width_sweep, Algorithm, SweepConfig};
use std::time::Instant;

fn main() {
    let x = WebTrafficGen::worldcup().generate(1);
    for algo in Algorithm::MAIN_SET {
        let t = Instant::now();
        let cfg = SweepConfig {
            widths: vec![2000],
            depth: 9,
            trials: 1,
            seed: 1,
        };
        let r = run_width_sweep(&x, &[algo], &cfg);
        println!(
            "{:>8}: total {:?} (ingest {:.2}s recover {:.2}s, avg err {:.2})",
            algo.label(),
            t.elapsed(),
            r[0].build_secs,
            r[0].recover_secs,
            r[0].errors.avg_err
        );
    }
}
