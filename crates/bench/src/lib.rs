//! # bas-bench — shared plumbing for the figure-reproduction benches
//!
//! Every figure of the paper's evaluation (§5, Figures 1–9) has a bench
//! target under `benches/` that regenerates the figure's series as a
//! table: same datasets (via the generators of `bas-data`), same
//! algorithm set, same axes (average error `‖x−x̂‖₁/n` and maximum error
//! `‖x−x̂‖∞` versus sketch width `s` or depth `d`).
//!
//! Scale knobs (environment variables):
//!
//! * `BAS_SCALE` — multiplies every dataset size (default 1; the
//!   defaults are laptop-sized, see EXPERIMENTS.md for the mapping to
//!   paper-scale runs);
//! * `BAS_TRIALS` — independent trials to average per point (default 1).

#![forbid(unsafe_code)]

use bas_core::oracle;
use bas_eval::table::fmt_err;
use bas_eval::{PointQueryResult, ResultTable};

/// Dataset scale multiplier from `BAS_SCALE`.
pub fn scale() -> f64 {
    std::env::var("BAS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scales a default dataset size by `BAS_SCALE`.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(1_000)
}

/// Trial count from `BAS_TRIALS`.
pub fn trials() -> usize {
    std::env::var("BAS_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Prints the oracle context for a dataset: the best bias `β*` and the
/// de-biased vs plain tail errors at a reference `k`, so the measured
/// sketch errors can be read against the theory.
pub fn print_dataset_summary(name: &str, x: &[f64], k: usize) {
    let n = x.len();
    let mean = x.iter().sum::<f64>() / n as f64;
    let t1 = oracle::min_beta_err_k1(x, k);
    let t2 = oracle::min_beta_err_k2(x, k);
    println!("dataset {name}: n = {n}, mean = {mean:.2}");
    println!(
        "  oracle @ k={k}: beta* = {:.2} | Err_1^k = {} vs min_b = {} | Err_2^k = {} vs min_b = {}",
        t2.beta,
        fmt_err(oracle::err_k_p(x, k, 1)),
        fmt_err(t1.err),
        fmt_err(oracle::err_k_p(x, k, 2)),
        fmt_err(t2.err),
    );
}

/// Renders a width/depth sweep as the two sub-figure tables (average
/// and maximum error), in the paper's orientation: one row per
/// algorithm, one column per x-axis value.
pub fn print_sweep_tables(title: &str, results: &[PointQueryResult], x_axis: &str) {
    let mut xs: Vec<usize> = results
        .iter()
        .map(|r| {
            if x_axis == "d" {
                r.config_depth
            } else {
                r.width
            }
        })
        .collect();
    xs.sort_unstable();
    xs.dedup();
    let mut algos: Vec<&'static str> = Vec::new();
    for r in results {
        if !algos.contains(&r.algorithm) {
            algos.push(r.algorithm);
        }
    }

    for (metric, pick) in [("average error", 0usize), ("maximum error", 1usize)] {
        let mut headers: Vec<String> = vec!["algorithm".to_string()];
        headers.extend(xs.iter().map(|w| format!("{x_axis}={w}")));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = ResultTable::new(format!("{title} — {metric}"), &header_refs);
        for &algo in &algos {
            let mut row = vec![algo.to_string()];
            for &w in &xs {
                let cell = results
                    .iter()
                    .find(|r| {
                        r.algorithm == algo
                            && (if x_axis == "d" {
                                r.config_depth
                            } else {
                                r.width
                            }) == w
                    })
                    .map(|r| {
                        fmt_err(if pick == 0 {
                            r.errors.avg_err
                        } else {
                            r.errors.max_err
                        })
                    })
                    .unwrap_or_else(|| "-".to_string());
                row.push(cell);
            }
            table.push_row(row);
        }
        println!("{}", table.to_text());
    }
}

/// Prints per-point timing (sketching and recovery seconds).
pub fn print_timing_table(title: &str, results: &[PointQueryResult]) {
    let mut table = ResultTable::new(
        format!("{title} — timing"),
        &["algorithm", "s", "ingest (s)", "recover (s)"],
    );
    for r in results {
        table.push_row(vec![
            r.algorithm.to_string(),
            r.width.to_string(),
            format!("{:.3}", r.build_secs),
            format!("{:.3}", r.recover_secs),
        ]);
    }
    println!("{}", table.to_text());
}

pub mod report;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_one() {
        // Cannot assume the env var is unset under `cargo test`, so just
        // check the parser's fallback path with the current environment.
        let s = scale();
        assert!(s > 0.0);
        assert!(scaled(100_000) >= 1_000);
        assert!(trials() >= 1);
    }

    #[test]
    fn sweep_tables_render() {
        use bas_eval::{run_width_sweep, Algorithm, SweepConfig};
        let x: Vec<f64> = (0..2000).map(|i| 50.0 + (i % 5) as f64).collect();
        let cfg = SweepConfig {
            widths: vec![64, 128],
            depth: 3,
            trials: 1,
            seed: 1,
        };
        let res = run_width_sweep(&x, &[Algorithm::L2SR, Algorithm::CountSketch], &cfg);
        // Should not panic; visual output checked by the bench runs.
        print_sweep_tables("unit-test", &res, "s");
        print_timing_table("unit-test", &res);
        print_dataset_summary("unit-test", &x, 16);
    }
}
