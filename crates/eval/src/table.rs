//! Fixed-width result tables for bench output.

/// A simple column-aligned table: the benches print one per figure, with
/// the same rows/series the paper plots.
#[derive(Debug, Clone)]
pub struct ResultTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n", self.title);
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats an error value compactly (fixed for mid-range, scientific for
/// extremes) so table columns stay readable across 6 orders of
/// magnitude.
pub fn fmt_err(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if !(0.001..100_000.0).contains(&v.abs()) {
        format!("{v:.3e}")
    } else if v.abs() < 10.0 {
        format!("{v:.4}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultTable {
        let mut t = ResultTable::new("Figure X", &["algo", "s", "avg"]);
        t.push_row(vec!["l2-S/R".into(), "1000".into(), "0.12".into()]);
        t.push_row(vec!["CS".into(), "1000".into(), "0.55".into()]);
        t
    }

    #[test]
    fn text_is_aligned_and_titled() {
        let txt = sample().to_text();
        assert!(txt.contains("== Figure X =="));
        assert!(txt.contains("l2-S/R"));
        let lines: Vec<&str> = txt.lines().collect();
        // Header, separator, two rows, plus title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_roundtrips_cells() {
        let csv = sample().to_csv();
        assert!(csv.contains("algo,s,avg"));
        assert!(csv.contains("CS,1000,0.55"));
    }

    #[test]
    fn markdown_has_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("| algo | s | avg |"));
        assert!(md.contains("|---|---|---|"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = ResultTable::new("t", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn fmt_err_ranges() {
        assert_eq!(fmt_err(0.0), "0");
        assert_eq!(fmt_err(1.2345), "1.2345"); // changed below if needed
        assert_eq!(fmt_err(123.456), "123.46");
        assert!(fmt_err(1e9).contains('e'));
        assert!(fmt_err(1e-9).contains('e'));
    }

    #[test]
    fn len_and_empty() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(ResultTable::new("e", &["x"]).is_empty());
    }
}
