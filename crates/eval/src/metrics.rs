//! Error metrics between ground truth and sketch recovery.

/// The paper's two point-query measurements (§5.1) plus supporting
/// statistics: average error `‖x − x̂‖₁/n` and maximum error
/// `‖x − x̂‖∞`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorReport {
    /// `‖x − x̂‖₁ / n`.
    pub avg_err: f64,
    /// `‖x − x̂‖∞`.
    pub max_err: f64,
    /// Root-mean-square error `‖x − x̂‖₂ / √n`.
    pub rmse: f64,
    /// Median absolute error.
    pub median_err: f64,
    /// 99th-percentile absolute error.
    pub p99_err: f64,
}

impl ErrorReport {
    /// Compares a recovered vector against ground truth.
    ///
    /// # Panics
    /// Panics if lengths differ or the vectors are empty.
    pub fn compare(truth: &[f64], recovered: &[f64]) -> Self {
        assert_eq!(truth.len(), recovered.len(), "length mismatch");
        assert!(!truth.is_empty(), "empty vectors");
        let n = truth.len();
        let mut abs_errs: Vec<f64> = truth
            .iter()
            .zip(recovered.iter())
            .map(|(t, r)| (t - r).abs())
            .collect();
        let sum: f64 = abs_errs.iter().sum();
        let sq_sum: f64 = abs_errs.iter().map(|e| e * e).sum();
        let max = abs_errs.iter().cloned().fold(0.0, f64::max);
        abs_errs.sort_by(f64::total_cmp);
        let median = abs_errs[n / 2];
        let p99 = abs_errs[((n as f64 * 0.99) as usize).min(n - 1)];
        Self {
            avg_err: sum / n as f64,
            max_err: max,
            rmse: (sq_sum / n as f64).sqrt(),
            median_err: median,
            p99_err: p99,
        }
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recovery_is_zero_error() {
        let x = vec![1.0, 2.0, 3.0];
        let r = ErrorReport::compare(&x, &x);
        assert_eq!(r.avg_err, 0.0);
        assert_eq!(r.max_err, 0.0);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.p99_err, 0.0);
    }

    #[test]
    fn known_errors() {
        let truth = vec![0.0, 0.0, 0.0, 0.0];
        let rec = vec![1.0, -1.0, 3.0, 0.0];
        let r = ErrorReport::compare(&truth, &rec);
        assert_eq!(r.avg_err, 1.25);
        assert_eq!(r.max_err, 3.0);
        assert!((r.rmse - (11.0f64 / 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(r.median_err, 1.0);
    }

    #[test]
    fn avg_le_max() {
        let truth: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let rec: Vec<f64> = truth.iter().map(|v| v + (v % 7.0)).collect();
        let r = ErrorReport::compare(&truth, &rec);
        assert!(r.avg_err <= r.max_err);
        assert!(r.median_err <= r.p99_err);
        assert!(r.p99_err <= r.max_err);
        assert!(r.avg_err <= r.rmse + 1e-12); // Jensen
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        ErrorReport::compare(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
