//! Machine-checked versions of the paper's qualitative claims.
//!
//! The reproduction target is not the paper's absolute numbers (our
//! substrate differs) but the *shape* of each figure: who wins, by
//! roughly what factor, and how curves respond to parameters. This
//! module encodes those shapes as predicates over sweep results; the
//! figure benches evaluate and print them, and EXPERIMENTS.md records
//! the outcomes.

use crate::sweep::PointQueryResult;

/// Outcome of one checked claim.
#[derive(Debug, Clone)]
pub struct ClaimOutcome {
    /// What the paper asserts (§ reference included).
    pub claim: String,
    /// Whether the measured results satisfy it.
    pub holds: bool,
    /// The measured quantity backing the verdict.
    pub evidence: String,
}

impl ClaimOutcome {
    fn new(claim: impl Into<String>, holds: bool, evidence: String) -> Self {
        Self {
            claim: claim.into(),
            holds,
            evidence,
        }
    }
}

/// Mean average-error of one algorithm across all measured widths.
fn mean_avg_err(results: &[PointQueryResult], label: &str) -> Option<f64> {
    let vals: Vec<f64> = results
        .iter()
        .filter(|r| r.algorithm == label)
        .map(|r| r.errors.avg_err)
        .collect();
    (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
}

/// Checks `lhs` is at least `factor`× better (smaller average error)
/// than `rhs`, averaged over the sweep.
pub fn check_dominance(
    results: &[PointQueryResult],
    lhs: &str,
    rhs: &str,
    factor: f64,
    section: &str,
) -> ClaimOutcome {
    match (mean_avg_err(results, lhs), mean_avg_err(results, rhs)) {
        (Some(a), Some(b)) => ClaimOutcome::new(
            format!("{section}: {lhs} ≥ {factor}x more accurate than {rhs}"),
            a * factor <= b,
            format!("{lhs} = {a:.3}, {rhs} = {b:.3}, ratio = {:.1}x", b / a),
        ),
        _ => ClaimOutcome::new(
            format!("{section}: {lhs} vs {rhs}"),
            false,
            "missing algorithm in results".to_string(),
        ),
    }
}

/// Checks an algorithm's error is *invariant* (within `tolerance`
/// relative difference) between two sweeps — e.g. Figure 1's b = 100 vs
/// b = 500 panels for the bias-aware sketches.
pub fn check_invariance(
    a: &[PointQueryResult],
    b: &[PointQueryResult],
    label: &str,
    tolerance: f64,
    section: &str,
) -> ClaimOutcome {
    match (mean_avg_err(a, label), mean_avg_err(b, label)) {
        (Some(ea), Some(eb)) => {
            let ratio = if ea > eb { ea / eb } else { eb / ea };
            ClaimOutcome::new(
                format!("{section}: {label} error unchanged across conditions"),
                ratio <= 1.0 + tolerance,
                format!("{ea:.3} vs {eb:.3} (ratio {ratio:.2})"),
            )
        }
        _ => ClaimOutcome::new(
            format!("{section}: {label} invariance"),
            false,
            "missing algorithm in results".to_string(),
        ),
    }
}

/// Checks an algorithm's error *grows* at least `factor`× between two
/// sweeps — the baselines' response to a bigger bias.
pub fn check_degradation(
    a: &[PointQueryResult],
    b: &[PointQueryResult],
    label: &str,
    factor: f64,
    section: &str,
) -> ClaimOutcome {
    match (mean_avg_err(a, label), mean_avg_err(b, label)) {
        (Some(ea), Some(eb)) => ClaimOutcome::new(
            format!("{section}: {label} error grows ≥ {factor}x"),
            eb >= factor * ea,
            format!("{ea:.3} -> {eb:.3} ({:.1}x)", eb / ea),
        ),
        _ => ClaimOutcome::new(
            format!("{section}: {label} degradation"),
            false,
            "missing algorithm in results".to_string(),
        ),
    }
}

/// Checks that error decreases (weakly, with slack) as the x-axis
/// grows — "increasing d will improve the accuracy" (§5.3), and the
/// width sweeps of every figure.
pub fn check_monotone_improvement(
    results: &[PointQueryResult],
    label: &str,
    by_depth: bool,
    section: &str,
) -> ClaimOutcome {
    let mut pts: Vec<(usize, f64)> = results
        .iter()
        .filter(|r| r.algorithm == label)
        .map(|r| {
            (
                if by_depth { r.config_depth } else { r.width },
                r.errors.avg_err,
            )
        })
        .collect();
    pts.sort_by_key(|p| p.0);
    if pts.len() < 2 {
        return ClaimOutcome::new(
            format!("{section}: {label} improves with size"),
            false,
            "not enough points".to_string(),
        );
    }
    // First vs last must improve; adjacent points may wobble ±20%.
    let ends_improve = pts.last().unwrap().1 <= pts[0].1;
    let no_big_regression = pts.windows(2).all(|w| w[1].1 <= w[0].1 * 1.2);
    ClaimOutcome::new(
        format!("{section}: {label} error shrinks along the sweep"),
        ends_improve && no_big_regression,
        format!(
            "first = {:.3}, last = {:.3}",
            pts[0].1,
            pts.last().unwrap().1
        ),
    )
}

/// Prints claim outcomes as a PASS/FAIL list and returns whether all
/// hold.
pub fn report(outcomes: &[ClaimOutcome]) -> bool {
    let mut all = true;
    println!("paper-claim checks:");
    for o in outcomes {
        let mark = if o.holds { "PASS" } else { "FAIL" };
        all &= o.holds;
        println!("  [{mark}] {} — {}", o.claim, o.evidence);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ErrorReport;

    fn result(algorithm: &'static str, width: usize, avg: f64) -> PointQueryResult {
        PointQueryResult {
            algorithm,
            width,
            depth: 9,
            config_depth: 9,
            words: width * 10,
            errors: ErrorReport {
                avg_err: avg,
                max_err: avg * 3.0,
                rmse: avg * 1.5,
                median_err: avg * 0.8,
                p99_err: avg * 2.0,
            },
            build_secs: 0.0,
            recover_secs: 0.0,
        }
    }

    #[test]
    fn dominance_detects_winner() {
        let res = vec![result("l2-S/R", 100, 1.0), result("CS", 100, 10.0)];
        let c = check_dominance(&res, "l2-S/R", "CS", 5.0, "test");
        assert!(c.holds, "{c:?}");
        let c = check_dominance(&res, "l2-S/R", "CS", 20.0, "test");
        assert!(!c.holds);
    }

    #[test]
    fn dominance_missing_algorithm_fails_gracefully() {
        let res = vec![result("CS", 100, 1.0)];
        let c = check_dominance(&res, "l2-S/R", "CS", 2.0, "test");
        assert!(!c.holds);
        assert!(c.evidence.contains("missing"));
    }

    #[test]
    fn invariance_and_degradation() {
        let a = vec![result("l2-S/R", 100, 1.0), result("CS", 100, 2.0)];
        let b = vec![result("l2-S/R", 100, 1.05), result("CS", 100, 9.0)];
        assert!(check_invariance(&a, &b, "l2-S/R", 0.5, "t").holds);
        assert!(!check_invariance(&a, &b, "CS", 0.5, "t").holds);
        assert!(check_degradation(&a, &b, "CS", 3.0, "t").holds);
        assert!(!check_degradation(&a, &b, "l2-S/R", 3.0, "t").holds);
    }

    #[test]
    fn monotone_improvement() {
        let res = vec![
            result("CS", 100, 10.0),
            result("CS", 200, 6.0),
            result("CS", 400, 3.0),
        ];
        assert!(check_monotone_improvement(&res, "CS", false, "t").holds);
        let bad = vec![result("CS", 100, 1.0), result("CS", 200, 5.0)];
        assert!(!check_monotone_improvement(&bad, "CS", false, "t").holds);
    }

    #[test]
    fn report_aggregates() {
        let outcomes = vec![
            ClaimOutcome::new("a", true, "x".into()),
            ClaimOutcome::new("b", false, "y".into()),
        ];
        assert!(!report(&outcomes));
        assert!(report(&outcomes[..1]));
    }
}
