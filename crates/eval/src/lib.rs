//! # bas-eval — experiment harness for the paper's evaluation
//!
//! Reproduces the measurement methodology of §5: every figure plots
//! point-query **average error** `‖x − x̂‖₁/n` and **maximum error**
//! `‖x − x̂‖∞` against sketch size (or depth), for a fixed set of
//! algorithms. This crate provides:
//!
//! * [`Algorithm`] — the paper's comparison set (ℓ1-S/R, ℓ2-S/R, CM, CS,
//!   CM-CU, CML-CU, ℓ1-mean, ℓ2-mean) behind one constructor, sized the
//!   way the paper sizes them (§5.1: bias-aware sketches get depth `d`
//!   plus `s` extra words; baselines get depth `d + 1`, so everyone uses
//!   `(d+1)·s` words);
//! * [`metrics`] — error reports between ground truth and recovery;
//! * [`sweep`] — offline width/depth sweeps and the streaming
//!   experiment (updates + real-time queries, Figure 6);
//! * [`table`] — fixed-width/CSV/markdown rendering so benches print
//!   the same rows the paper's figures plot;
//! * [`claims`] — the paper's qualitative claims ("l2-S/R ≤ 1/5 of CS",
//!   "errors unaffected by b", …) as machine-checked predicates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
pub mod claims;
pub mod metrics;
pub mod sweep;
pub mod table;

pub use algorithm::Algorithm;
pub use metrics::ErrorReport;
pub use sweep::{
    run_depth_sweep, run_stream_experiment, run_width_sweep, PointQueryResult, StreamResult,
    SweepConfig,
};
pub use table::ResultTable;
