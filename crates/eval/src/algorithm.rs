//! The paper's algorithm comparison set behind a single constructor.

use bas_core::{BiasStrategy, L1Config, L1SketchRecover, L2Config, L2SketchRecover};
use bas_sketch::{CountMedian, CountMin, CountMinLog, CountSketch, PointQuerySketch, SketchParams};

/// Every algorithm evaluated in the paper's experiments (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Bias-aware `ℓ∞/ℓ1` sketch (Algorithms 1–2).
    L1SR,
    /// Bias-aware `ℓ∞/ℓ2` sketch (Algorithms 3–4).
    L2SR,
    /// Count-Median (Theorem 1 baseline).
    CountMedian,
    /// Count-Sketch (Theorem 2 baseline).
    CountSketch,
    /// Count-Min with conservative update.
    CmCu,
    /// Count-Min-Log with conservative update, base 1.00025.
    CmlCu,
    /// `ℓ1` recovery with the global mean as bias (§5.4 heuristic).
    L1Mean,
    /// `ℓ2` recovery with the global mean as bias (§5.4 heuristic).
    L2Mean,
}

impl Algorithm {
    /// The six algorithms of Figures 1–7.
    pub const MAIN_SET: [Algorithm; 6] = [
        Algorithm::L1SR,
        Algorithm::L2SR,
        Algorithm::CountMedian,
        Algorithm::CountSketch,
        Algorithm::CmCu,
        Algorithm::CmlCu,
    ];

    /// The four algorithms of Figures 8–9 (mean-heuristic comparison).
    pub const MEAN_SET: [Algorithm; 4] = [
        Algorithm::L1SR,
        Algorithm::L2SR,
        Algorithm::L1Mean,
        Algorithm::L2Mean,
    ];

    /// Label used in the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::L1SR => "l1-S/R",
            Algorithm::L2SR => "l2-S/R",
            Algorithm::CountMedian => "CM",
            Algorithm::CountSketch => "CS",
            Algorithm::CmCu => "CM-CU",
            Algorithm::CmlCu => "CML-CU",
            Algorithm::L1Mean => "l1-mean",
            Algorithm::L2Mean => "l2-mean",
        }
    }

    /// Builds the sketch with the paper's space accounting: the
    /// bias-aware sketches (and mean variants) use `depth` rows plus `s`
    /// extra words; the baselines use `depth + 1` rows — every algorithm
    /// then occupies `(depth+1)·s` words (§5.1).
    pub fn build(
        &self,
        n: u64,
        width: usize,
        depth: usize,
        seed: u64,
    ) -> Box<dyn PointQuerySketch> {
        let base = SketchParams::new(n, width, depth + 1).with_seed(seed);
        match self {
            Algorithm::L1SR => Box::new(L1SketchRecover::new(
                &L1Config::new(n, width, depth).with_seed(seed),
            )),
            Algorithm::L2SR => Box::new(L2SketchRecover::new(
                &L2Config::new(n, width, depth).with_seed(seed),
            )),
            Algorithm::L1Mean => Box::new(L1SketchRecover::new(
                &L1Config::new(n, width, depth)
                    .with_seed(seed)
                    .with_bias(BiasStrategy::GlobalMean),
            )),
            Algorithm::L2Mean => Box::new(L2SketchRecover::new(
                &L2Config::new(n, width, depth)
                    .with_seed(seed)
                    .with_bias(BiasStrategy::GlobalMean),
            )),
            Algorithm::CountMedian => Box::new(CountMedian::new(&base)),
            Algorithm::CountSketch => Box::new(CountSketch::new(&base)),
            Algorithm::CmCu => Box::new(CountMin::conservative(&base)),
            // CML-CU packs four 16-bit levels per word, so at the same
            // word budget it runs 4x the buckets — the space advantage
            // that lets it beat CM-CU in the paper's figures.
            Algorithm::CmlCu => {
                let mut p = base;
                p.width = width * 4;
                Box::new(CountMinLog::new(&p))
            }
        }
    }

    /// Adapts a raw value to the algorithm's update model:
    /// conservative-update sketches are cash-register only, and CML-CU's
    /// probabilistic counters need integer increments. Linear sketches
    /// take values untouched.
    pub fn sanitize(&self, value: f64) -> f64 {
        match self {
            Algorithm::CmCu => value.max(0.0),
            Algorithm::CmlCu => value.round().max(0.0),
            _ => value,
        }
    }

    /// Whether the sketch is linear (usable in the distributed model).
    pub fn is_linear(&self) -> bool {
        !matches!(self, Algorithm::CmCu | Algorithm::CmlCu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Algorithm::L1SR.label(), "l1-S/R");
        assert_eq!(Algorithm::L2SR.label(), "l2-S/R");
        assert_eq!(Algorithm::CountMedian.label(), "CM");
        assert_eq!(Algorithm::CountSketch.label(), "CS");
        assert_eq!(Algorithm::CmCu.label(), "CM-CU");
        assert_eq!(Algorithm::CmlCu.label(), "CML-CU");
    }

    #[test]
    fn space_accounting_is_comparable() {
        // §5.1: every algorithm should use about (d+1)·s words.
        let (n, s, d) = (10_000u64, 256usize, 9usize);
        for algo in Algorithm::MAIN_SET {
            let sk = algo.build(n, s, d, 1);
            let words = sk.size_in_words();
            let budget = (d + 1) * s;
            // CML-CU runs 4x buckets of quarter-size counters: same
            // budget.
            assert!(
                words <= budget + s && words >= budget / 2,
                "{}: {words} words vs budget {budget}",
                algo.label()
            );
        }
    }

    #[test]
    fn builds_are_usable() {
        for algo in Algorithm::MAIN_SET.iter().chain(Algorithm::MEAN_SET.iter()) {
            let mut sk = algo.build(100, 32, 3, 7);
            sk.update(5, algo.sanitize(10.0));
            let est = sk.estimate(5);
            assert!(est.is_finite(), "{}", algo.label());
        }
    }

    #[test]
    fn sanitize_respects_models() {
        assert_eq!(Algorithm::CmCu.sanitize(-5.0), 0.0);
        assert_eq!(Algorithm::CmlCu.sanitize(3.7), 4.0);
        assert_eq!(Algorithm::CmlCu.sanitize(-1.0), 0.0);
        assert_eq!(Algorithm::CountSketch.sanitize(-5.5), -5.5);
    }

    #[test]
    fn linearity_flags() {
        assert!(Algorithm::L1SR.is_linear());
        assert!(Algorithm::CountSketch.is_linear());
        assert!(!Algorithm::CmCu.is_linear());
        assert!(!Algorithm::CmlCu.is_linear());
    }
}
