//! Parameter sweeps: the measurement loops behind every figure.

use crate::algorithm::Algorithm;
use crate::metrics::ErrorReport;
use std::time::Instant;

/// Sweep configuration shared by the figures.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Widths `s` to sweep (the x-axis of Figures 1–6).
    pub widths: Vec<usize>,
    /// Depth `d` for the bias-aware sketches (baselines get `d + 1`);
    /// the paper uses 9.
    pub depth: usize,
    /// Independent trials to average over (fresh seeds per trial).
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            widths: vec![5_000, 10_000, 20_000, 40_000],
            depth: 9,
            trials: 1,
            seed: 0xBA5EBA11,
        }
    }
}

/// One measured point of an accuracy figure.
#[derive(Debug, Clone)]
pub struct PointQueryResult {
    /// Algorithm label (paper legend name).
    pub algorithm: &'static str,
    /// Width `s`.
    pub width: usize,
    /// Depth actually used by this algorithm (baselines run `d + 1`).
    pub depth: usize,
    /// The configured sweep depth `d` (common x-axis for Figure 7).
    pub config_depth: usize,
    /// Total sketch words.
    pub words: usize,
    /// Errors averaged over trials.
    pub errors: ErrorReport,
    /// Sketching (ingest) seconds per trial.
    pub build_secs: f64,
    /// Full-vector recovery seconds per trial.
    pub recover_secs: f64,
}

fn average_reports(reports: &[ErrorReport]) -> ErrorReport {
    let n = reports.len() as f64;
    ErrorReport {
        avg_err: reports.iter().map(|r| r.avg_err).sum::<f64>() / n,
        max_err: reports.iter().map(|r| r.max_err).sum::<f64>() / n,
        rmse: reports.iter().map(|r| r.rmse).sum::<f64>() / n,
        median_err: reports.iter().map(|r| r.median_err).sum::<f64>() / n,
        p99_err: reports.iter().map(|r| r.p99_err).sum::<f64>() / n,
    }
}

fn run_one(
    x: &[f64],
    algo: Algorithm,
    width: usize,
    depth: usize,
    seed: u64,
) -> (ErrorReport, f64, f64, usize, usize) {
    let n = x.len() as u64;
    let mut sk = algo.build(n, width, depth, seed);
    let t0 = Instant::now();
    for (i, &v) in x.iter().enumerate() {
        let v = algo.sanitize(v);
        if v != 0.0 {
            sk.update(i as u64, v);
        }
    }
    let build_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let recovered = sk.recover_all();
    let recover_secs = t1.elapsed().as_secs_f64();
    // Ground truth must match what the sketch was fed (sanitized).
    let truth: Vec<f64> = x.iter().map(|&v| algo.sanitize(v)).collect();
    let errors = ErrorReport::compare(&truth, &recovered);
    let words = sk.size_in_words();
    // §5.1 sizing: bias-aware variants run `depth` rows (+ s extra
    // words), baselines run `depth + 1` rows.
    let actual_depth = match algo {
        Algorithm::L1SR | Algorithm::L2SR | Algorithm::L1Mean | Algorithm::L2Mean => depth,
        _ => depth + 1,
    };
    (errors, build_secs, recover_secs, words, actual_depth)
}

/// Sweeps sketch width for a fixed dataset — the inner loop of
/// Figures 1–5, 8, 9.
pub fn run_width_sweep(x: &[f64], algos: &[Algorithm], cfg: &SweepConfig) -> Vec<PointQueryResult> {
    let mut out = Vec::new();
    for &width in &cfg.widths {
        for &algo in algos {
            let mut reports = Vec::with_capacity(cfg.trials);
            let mut build = 0.0;
            let mut recover = 0.0;
            let mut words = 0;
            let mut depth_used = cfg.depth;
            for trial in 0..cfg.trials {
                let seed = cfg
                    .seed
                    .wrapping_add(trial as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ width as u64;
                let (r, b, rec, w, d) = run_one(x, algo, width, cfg.depth, seed);
                reports.push(r);
                build += b;
                recover += rec;
                words = w;
                depth_used = d;
            }
            out.push(PointQueryResult {
                algorithm: algo.label(),
                width,
                depth: depth_used,
                config_depth: cfg.depth,
                words,
                errors: average_reports(&reports),
                build_secs: build / cfg.trials as f64,
                recover_secs: recover / cfg.trials as f64,
            });
        }
    }
    out
}

/// Sweeps depth for a fixed width — Figure 7 ("effects of sketch
/// depth": fix `s`, vary `d`).
pub fn run_depth_sweep(
    x: &[f64],
    algos: &[Algorithm],
    width: usize,
    depths: &[usize],
    trials: usize,
    seed: u64,
) -> Vec<PointQueryResult> {
    let mut out = Vec::new();
    for &depth in depths {
        let cfg = SweepConfig {
            widths: vec![width],
            depth,
            trials,
            seed: seed ^ (depth as u64) << 32,
        };
        out.extend(run_width_sweep(x, algos, &cfg));
    }
    out
}

/// One measured point of the streaming experiment (Figure 6).
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Width `s`.
    pub width: usize,
    /// Errors of the full recovery after the stream is consumed.
    pub errors: ErrorReport,
    /// Average nanoseconds per streamed update.
    pub update_ns: f64,
    /// Average nanoseconds per point query.
    pub query_ns: f64,
}

/// Streams unit updates (edge arrivals) through each sketch, then
/// recovers the whole vector and measures point-query latency — the
/// methodology of §5.5 / Figure 6: "We update the sketch at each step,
/// and recover the entire x̂ after feeding in the whole dataset".
pub fn run_stream_experiment(
    stream: &[u32],
    n: u64,
    algos: &[Algorithm],
    widths: &[usize],
    depth: usize,
    seed: u64,
) -> Vec<StreamResult> {
    // Ground truth: exact counts.
    let mut truth = vec![0.0f64; n as usize];
    for &s in stream {
        truth[s as usize] += 1.0;
    }
    let mut out = Vec::new();
    for &width in widths {
        for &algo in algos {
            let mut sk = algo.build(n, width, depth, seed ^ width as u64);
            let t0 = Instant::now();
            for &s in stream {
                sk.update(s as u64, 1.0);
            }
            let update_ns = t0.elapsed().as_nanos() as f64 / stream.len() as f64;
            // Query latency over a deterministic subset, then full
            // recovery for the error measurement.
            let probe: Vec<u64> = (0..n).step_by((n as usize / 10_000).max(1)).collect();
            let t1 = Instant::now();
            let mut sink = 0.0;
            for &j in &probe {
                sink += sk.estimate(j);
            }
            let query_ns = t1.elapsed().as_nanos() as f64 / probe.len() as f64;
            std::hint::black_box(sink);
            let recovered = sk.recover_all();
            let errors = ErrorReport::compare(&truth, &recovered);
            out.push(StreamResult {
                algorithm: algo.label(),
                width,
                errors,
                update_ns,
                query_ns,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn biased_vector(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if i == 7 {
                    5000.0
                } else {
                    100.0 + ((i % 11) as f64 - 5.0)
                }
            })
            .collect()
    }

    #[test]
    fn width_sweep_produces_grid() {
        let x = biased_vector(2000);
        let cfg = SweepConfig {
            widths: vec![64, 128],
            depth: 5,
            trials: 1,
            seed: 3,
        };
        let res = run_width_sweep(&x, &[Algorithm::L2SR, Algorithm::CountSketch], &cfg);
        assert_eq!(res.len(), 4); // 2 widths × 2 algorithms
        for r in &res {
            assert!(r.errors.avg_err.is_finite());
            assert!(r.build_secs >= 0.0);
            assert!(r.words > 0);
        }
    }

    #[test]
    fn bias_aware_beats_baselines_on_biased_data() {
        // The paper's core claim, in miniature.
        let x = biased_vector(4000);
        let cfg = SweepConfig {
            widths: vec![128],
            depth: 7,
            trials: 2,
            seed: 9,
        };
        let res = run_width_sweep(
            &x,
            &[
                Algorithm::L2SR,
                Algorithm::CountMedian,
                Algorithm::CountSketch,
            ],
            &cfg,
        );
        let err = |label: &str| {
            res.iter()
                .find(|r| r.algorithm == label)
                .unwrap()
                .errors
                .avg_err
        };
        assert!(
            err("l2-S/R") < err("CS"),
            "l2-S/R {} vs CS {}",
            err("l2-S/R"),
            err("CS")
        );
        assert!(err("l2-S/R") < err("CM") / 10.0, "CM should be far worse");
    }

    #[test]
    fn depth_sweep_improves_with_depth() {
        let x = biased_vector(3000);
        let res = run_depth_sweep(&x, &[Algorithm::L2SR], 96, &[1, 9], 2, 5);
        assert_eq!(res.len(), 2);
        let e_shallow = res[0].errors.max_err;
        let e_deep = res[1].errors.max_err;
        assert!(
            e_deep <= e_shallow * 1.5,
            "depth 9 ({e_deep}) should not be much worse than depth 1 ({e_shallow})"
        );
    }

    #[test]
    fn stream_experiment_measures_both_axes() {
        let stream: Vec<u32> = (0..20_000u32).map(|i| i % 500).collect();
        let res = run_stream_experiment(
            &stream,
            500,
            &[Algorithm::L2SR, Algorithm::CountSketch],
            &[64],
            5,
            7,
        );
        assert_eq!(res.len(), 2);
        for r in &res {
            assert!(r.update_ns > 0.0);
            assert!(r.query_ns > 0.0);
            assert!(r.errors.avg_err.is_finite());
        }
        // Uniform stream (every count = 40) is exactly the biased case:
        // the de-biased tail is zero, so l2-S/R should be near-exact
        // while CS carries collision noise proportional to the bias.
        let l2 = res.iter().find(|r| r.algorithm == "l2-S/R").unwrap();
        let cs = res.iter().find(|r| r.algorithm == "CS").unwrap();
        assert!(l2.errors.avg_err < 5.0, "l2: {}", l2.errors.avg_err);
        assert!(cs.errors.avg_err < 150.0, "CS: {}", cs.errors.avg_err);
        assert!(l2.errors.avg_err < cs.errors.avg_err);
    }
}
