//! # bas-core — bias-aware sketches (the paper's contribution)
//!
//! Implements the two bias-aware linear sketches of *Bias-Aware Sketches*
//! (Chen & Zhang, VLDB 2017) together with the machinery to verify their
//! guarantees:
//!
//! * [`L1SketchRecover`] — Algorithms 1–2: `d` Count-Median rows plus a
//!   random sampling matrix `Υ`; the bias `β̂` is the median of the
//!   samples, and recovery runs Count-Median on the de-biased buckets.
//!   Theorem 3: `‖x̂ − x‖∞ = O(1/k)·min_β Err_1^k(x − β)` w.h.p.
//! * [`L2SketchRecover`] — Algorithms 3–4: a Count-Median row group
//!   `Π(g)` plus `d` Count-Sketch rows; the bias is the column-weighted
//!   average of the `2k` *median buckets* of `Π(g)x`, and recovery runs
//!   Count-Sketch on the de-biased buckets. Theorem 4:
//!   `‖x̂ − x‖∞ = O(1/√k)·min_β Err_2^k(x − β)` w.h.p.
//! * [`oracle`] — exact computation of `Err_p^k(x)` and
//!   `min_β Err_p^k(x − β)` (with the optimal `β*`), so experiments can
//!   report measured error against the theoretical bound.
//!
//! Both sketches are **streaming-native**: every `update` keeps the bias
//! estimate current (`SortedSampler` for `ℓ1`; the paper's Bias-Heap of
//! Algorithm 5 — or an order-statistic tree, or lazy re-sorting — for
//! `ℓ2`, selectable via [`L2BiasMaintenance`]), which is exactly the
//! streaming implementation of the paper's §4.4 / Algorithm 6. They are
//! also **linear**: sketches with equal configuration merge by addition,
//! enabling the distributed protocol of §5.5.
//!
//! The `ℓ1`-mean / `ℓ2`-mean heuristics of §5.4 (use the global mean as
//! the bias) are provided via [`BiasStrategy::GlobalMean`].
//!
//! ```
//! use bas_core::{L2Config, L2SketchRecover};
//! use bas_sketch::PointQuerySketch;
//!
//! // A heavily biased vector: everything near 100, one outlier.
//! let n = 4096u64;
//! let mut x = vec![100.0f64; n as usize];
//! x[7] = 5000.0;
//!
//! let cfg = L2Config::new(n, 256, 7).with_seed(1);
//! let mut sk = L2SketchRecover::new(&cfg);
//! sk.ingest_vector(&x);
//! assert!((sk.bias() - 100.0).abs() < 5.0);
//! assert!((sk.estimate(7) - 5000.0).abs() < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod l1;
mod l2;
pub mod oracle;

pub use config::{BiasStrategy, L1Config, L2BiasMaintenance, L2Config, SampleCount};
pub use l1::L1SketchRecover;
pub use l2::L2SketchRecover;
