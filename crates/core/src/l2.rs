//! The `ℓ∞/ℓ2` bias-aware sketch (paper, Algorithms 3–6, Theorem 4).

use crate::config::{BiasStrategy, L2BiasMaintenance, L2Config};
use bas_hash::{AnyBucketHasher, BucketHasher, HashFamily, SplitMix64};
use bas_sketch::storage::{CounterBackend, CounterMatrix, Dense};
use bas_sketch::util::median_of_rows;
use bas_sketch::{CountSketch, MergeError, MergeableSketch, PointQuerySketch};
use bas_stream::{BiasHeap, OrderStatTree};

/// Computes the median-bucket average of Algorithm 4 line 2 directly by
/// sorting: order buckets by `w_i/π_i`, take the middle `window` of the
/// `π > 0` buckets (bottom excluded share rounding down), and return
/// `Σw / Σπ` over that window. `O(s log s)`.
///
/// This is the reference the incremental maintainers (Bias-Heap, tree)
/// must agree with, and the "re-sort at query time" strategy itself.
pub(crate) fn median_bucket_average(w: &[f64], pi: &[u64], k: usize) -> f64 {
    let usable: Vec<usize> = (0..pi.len()).filter(|&i| pi[i] > 0).collect();
    let s = usable.len();
    assert!(s > 0, "all buckets empty");
    let window = (2 * k).max(1).min(s);
    let n_a = (s - window) / 2;
    let mut order = usable;
    order.sort_by(|&a, &b| {
        let ka = w[a] / pi[a] as f64;
        let kb = w[b] / pi[b] as f64;
        ka.total_cmp(&kb).then(a.cmp(&b))
    });
    let mut w_sum = 0.0;
    let mut pi_sum = 0.0;
    for &b in &order[n_a..n_a + window] {
        w_sum += w[b];
        pi_sum += pi[b] as f64;
    }
    w_sum / pi_sum
}

/// Order-statistic-tree maintainer: same `O(log s)` updates as the
/// Bias-Heap via remove/re-insert, bias from two prefix-sum queries.
///
/// Its per-bucket rows (current key `w/π`, bucket sum `w`, column count
/// `π`) live in one dense 3×s [`CounterMatrix`] — maintainer state is
/// counter state, and keeping it in the storage layer keeps the crate
/// free of ad-hoc row vectors.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone)]
struct TreeBias {
    tree: OrderStatTree,
    /// Rows [`TreeBias::ROW_KEY`] (current `w/π`, needed to locate
    /// nodes), [`TreeBias::ROW_W`], [`TreeBias::ROW_PI`], over the
    /// dense (π > 0) bucket ids.
    state: CounterMatrix<f64>,
    dense_id: Vec<u32>,
    n_a: u64,
    window: u64,
}

impl TreeBias {
    const ROW_KEY: usize = 0;
    const ROW_W: usize = 1;
    const ROW_PI: usize = 2;

    fn new(pi_g: &CounterMatrix<u64>, k: usize, seed: u64) -> Self {
        let usable: Vec<usize> = (0..pi_g.width()).filter(|&i| pi_g.get(0, i) > 0).collect();
        let s = usable.len();
        assert!(s > 0, "all buckets empty");
        let window = (2 * k).max(1).min(s) as u64;
        let n_a = (s as u64 - window) / 2;
        let mut dense_id = vec![u32::MAX; pi_g.width()];
        let mut tree = OrderStatTree::new(seed);
        let mut state = CounterMatrix::<f64>::new(s, 3);
        for (dense, &orig) in usable.iter().enumerate() {
            dense_id[orig] = dense as u32;
            let p = pi_g.get(0, orig) as f64;
            state.set(Self::ROW_PI, dense, p);
            tree.insert(0.0, dense as u64, 1, 0.0, p);
        }
        Self {
            tree,
            state,
            dense_id,
            n_a,
            window,
        }
    }

    fn update(&mut self, bucket: usize, delta: f64) {
        let id = self.dense_id[bucket];
        assert!(id != u32::MAX, "bucket {bucket} has zero column count");
        let idu = id as usize;
        let removed = self
            .tree
            .remove(self.state.get(Self::ROW_KEY, idu), id as u64);
        debug_assert!(removed);
        self.state.add(Self::ROW_W, idu, delta);
        let w = self.state.get(Self::ROW_W, idu);
        let pi = self.state.get(Self::ROW_PI, idu);
        self.state.set(Self::ROW_KEY, idu, w / pi);
        self.tree.insert(w / pi, id as u64, 1, w, pi);
    }

    fn bias(&self) -> f64 {
        let (w_sum, pi_sum) = self.tree.range_sums(self.n_a, self.n_a + self.window);
        w_sum / pi_sum
    }
}

#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[allow(clippy::large_enum_variant)] // one maintainer per sketch; size is irrelevant
enum Maintainer {
    Heap(BiasHeap),
    Tree(TreeBias),
    Resort,
}

/// The `Π(g)` row group: one Count-Median row dedicated to bias
/// estimation (Algorithm 3 line 1), plus whichever incremental structure
/// keeps its buckets ordered. Its bucket sums `w` are a 1×s
/// [`CounterMatrix`] over the sketch's backend `B`; the column counts
/// `π` are derived read-only state and stay dense.
#[derive(Debug, Clone)]
struct GRow<B: CounterBackend> {
    g: AnyBucketHasher,
    w: CounterMatrix<f64, B>,
    pi: CounterMatrix<u64>,
    k: usize,
    maintainer: Maintainer,
}

#[cfg(feature = "serde")]
bas_sketch::impl_backend_serde!(GRow {
    g,
    w,
    pi,
    k,
    maintainer
});

impl<B: CounterBackend> GRow<B> {
    fn new(cfg: &L2Config, width: usize) -> Self {
        let mut seeder = SplitMix64::new(cfg.seed ^ 0xB1A5_0002);
        let mut family = HashFamily::new(cfg.hash_kind, &mut seeder, width);
        let g = family.sample();
        let width = family.buckets();
        let mut pi = CounterMatrix::<u64>::new(width, 1);
        for j in 0..cfg.n {
            pi.add(0, g.bucket(j), 1);
        }
        let k = cfg.effective_k();
        let maintainer = match cfg.maintenance {
            L2BiasMaintenance::BiasHeap => Maintainer::Heap(BiasHeap::new(&pi.row_snapshot(0), k)),
            L2BiasMaintenance::OrderStatTree => {
                Maintainer::Tree(TreeBias::new(&pi, k, cfg.seed ^ 0xB1A5_0003))
            }
            L2BiasMaintenance::Resort => Maintainer::Resort,
        };
        Self {
            g,
            w: CounterMatrix::new(width, 1),
            pi,
            k,
            maintainer,
        }
    }

    #[inline]
    fn update(&mut self, item: u64, delta: f64) {
        let b = self.g.bucket(item);
        self.w.add(0, b, delta);
        match &mut self.maintainer {
            Maintainer::Heap(h) => h.update(b, delta),
            Maintainer::Tree(t) => t.update(b, delta),
            Maintainer::Resort => {}
        }
    }

    fn bias(&self) -> f64 {
        match &self.maintainer {
            Maintainer::Heap(h) => h.bias(),
            Maintainer::Tree(t) => t.bias(),
            Maintainer::Resort => {
                median_bucket_average(&self.w.row_snapshot(0), &self.pi.row_snapshot(0), self.k)
            }
        }
    }
}

/// `ℓ2`-S/R: bias-aware sketch-and-recover with the
/// `‖x̂ − x‖∞ = O(1/√k)·min_β Err_2^k(x − β)` guarantee.
///
/// **Sketching** (Algorithm 3): one Count-Median row `w = Π(g)x` plus
/// `d` Count-Sketch rows `y_i = Ψ(h_i, r_i)x`.
///
/// **Recovery** (Algorithm 4): sort buckets of `w` by their average
/// `w_i/π_i`; `β̂` is the column-weighted average of the `2k` median
/// buckets; de-bias the CS rows with the signed column sums `ψ_i`
/// (`ỹ_i = y_i − β̂·ψ_i`); run Count-Sketch recovery; add `β̂` back:
///
/// ```text
/// x̂_j = median_{i∈[d]} r_i(j)·( y_i[h_i(j)] − β̂·ψ_i[h_i(j)] ) + β̂
/// ```
///
/// **Streaming** (Algorithms 5–6): with the default
/// [`L2BiasMaintenance::BiasHeap`] the bucket order is maintained
/// incrementally, so updates cost `O(log s + d)` and point queries
/// `O(d)` — this struct *is* Algorithm 6. The
/// [`L2BiasMaintenance::Resort`] mode is the offline variant that sorts
/// at recovery time.
///
/// With [`BiasStrategy::GlobalMean`] the `Π(g)` row is dropped and the
/// exact running mean serves as `β̂` — the `ℓ2`-mean heuristic of §5.4.
///
/// Space: `s·d` Count-Sketch words plus `s` words for the `Π(g)` row
/// (the `(d+1)·s` accounting of §5.1).
///
/// Counters live in the storage layer's
/// [`CounterMatrix`](bas_sketch::storage::CounterMatrix), generic over
/// the backend `B`. Like `ℓ1`-S/R, the sketch does **not** implement
/// `SharedSketch` even with the `Atomic` backend: the Bias-Heap /
/// order-statistic-tree maintainers rearrange themselves after every
/// bucket change under `&mut`, which is inherently sequential (for
/// multi-core ingest of `ℓ2`-S/R use `ShardedIngest`, whose per-shard
/// maintainers merge on finish).
///
/// ```
/// use bas_core::{L2Config, L2SketchRecover};
/// use bas_sketch::PointQuerySketch;
///
/// // Everything hovers near 50; coordinate 9 is an outlier.
/// let updates: Vec<(u64, f64)> = (0..2_000u64)
///     .map(|i| (i, if i == 9 { 4_000.0 } else { 50.0 }))
///     .collect();
/// let cfg = L2Config::new(2_000, 128, 7).with_seed(5);
/// let mut sk = L2SketchRecover::new(&cfg);
/// sk.update_batch(&updates); // batched fast path
/// assert!((sk.bias() - 50.0).abs() < 2.0);
/// assert!((sk.estimate(9) - 4_000.0).abs() < 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct L2SketchRecover<B: CounterBackend = Dense> {
    cfg: L2Config,
    cs: CountSketch<B>,
    /// Signed column sums `ψ_i[b]` — recovery-side state derived from
    /// the shared hash functions. Always dense: read-only after
    /// construction.
    psis: CounterMatrix<f64>,
    g_row: Option<GRow<B>>,
    running_sum: f64,
}

#[cfg(feature = "serde")]
bas_sketch::impl_backend_serde!(L2SketchRecover {
    cfg,
    cs,
    psis,
    g_row,
    running_sum
});

impl L2SketchRecover {
    /// Creates an empty sketch with the default [`Dense`] backend.
    pub fn new(cfg: &L2Config) -> Self {
        Self::with_backend(cfg)
    }
}

impl<B: CounterBackend> L2SketchRecover<B> {
    /// Creates an empty sketch with an explicit counter backend.
    pub fn with_backend(cfg: &L2Config) -> Self {
        let cs = CountSketch::with_backend(&cfg.sketch_params());
        let psis = cs.signed_column_sums();
        let width = cs.params().width;
        let g_row = match cfg.bias {
            BiasStrategy::Paper => Some(GRow::new(cfg, width)),
            BiasStrategy::GlobalMean => None,
        };
        Self {
            cfg: *cfg,
            cs,
            psis,
            g_row,
            running_sum: 0.0,
        }
    }

    /// The configuration this sketch was built with.
    pub fn config(&self) -> &L2Config {
        &self.cfg
    }

    /// The current bias estimate `β̂` (Algorithm 4 line 2 / Algorithm 5
    /// line 19, depending on the maintenance mode).
    pub fn bias(&self) -> f64 {
        match &self.g_row {
            Some(g) => g.bias(),
            None => self.running_sum / self.cfg.n as f64,
        }
    }

    /// Point estimate using an explicit bias value, over the stack
    /// scratch of [`median_of_rows`]: no per-query heap allocation.
    fn estimate_with_bias(&self, item: u64, beta: f64) -> f64 {
        median_of_rows(self.cfg.depth, |row| {
            let b = self.cs.bucket_of(row, item);
            let sign = self.cs.sign_of(row, item);
            sign * (self.cs.bucket_value(row, b) - beta * self.psis.get(row, b))
        }) + beta
    }
}

impl<B: CounterBackend> PointQuerySketch for L2SketchRecover<B> {
    fn update(&mut self, item: u64, delta: f64) {
        debug_assert!(item < self.cfg.n, "item outside universe");
        self.cs.update(item, delta);
        self.running_sum += delta;
        if let Some(g) = &mut self.g_row {
            g.update(item, delta);
        }
    }

    /// Batch update: the Count-Sketch rows take their dispatch-hoisted fast
    /// path; the `Π(g)` bias row stays item-ordered because its
    /// incremental maintainer (Bias-Heap / order-statistic tree)
    /// rearranges its structure after every bucket change. Bit-for-bit
    /// equivalent to the one-by-one loop.
    fn update_batch(&mut self, items: &[(u64, f64)]) {
        self.cs.update_batch(items);
        for &(item, delta) in items {
            self.running_sum += delta;
            if let Some(g) = &mut self.g_row {
                g.update(item, delta);
            }
        }
    }

    fn estimate(&self, item: u64) -> f64 {
        self.estimate_with_bias(item, self.bias())
    }

    fn universe(&self) -> u64 {
        self.cfg.n
    }

    fn size_in_words(&self) -> usize {
        let g_words = self.g_row.as_ref().map_or(1, |g| g.w.len());
        self.cs.size_in_words() + g_words
    }

    fn label(&self) -> &'static str {
        match self.cfg.bias {
            BiasStrategy::Paper => "l2-S/R",
            BiasStrategy::GlobalMean => "l2-mean",
        }
    }

    fn recover_all(&self) -> Vec<f64> {
        let beta = self.bias();
        (0..self.cfg.n)
            .map(|j| self.estimate_with_bias(j, beta))
            .collect()
    }
}

impl<B: CounterBackend> MergeableSketch for L2SketchRecover<B> {
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.cfg != other.cfg {
            return Err(MergeError::ShapeMismatch {
                what: "configurations",
            });
        }
        self.cs.merge_from(&other.cs)?;
        self.running_sum += other.running_sum;
        if let (Some(a), Some(b)) = (&mut self.g_row, &other.g_row) {
            // w rows add; feed the deltas through the maintainer so its
            // incremental state stays consistent.
            for bucket in 0..b.w.width() {
                let delta = b.w.get(0, bucket);
                if delta != 0.0 {
                    a.w.add(0, bucket, delta);
                    match &mut a.maintainer {
                        Maintainer::Heap(h) => h.update(bucket, delta),
                        Maintainer::Tree(t) => t.update(bucket, delta),
                        Maintainer::Resort => {}
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    fn biased_vector(n: usize, bias: f64, outliers: &[(usize, f64)]) -> Vec<f64> {
        let mut x = vec![bias; n];
        for (i, v) in x.iter_mut().enumerate() {
            *v += ((i % 9) as f64 - 4.0) * 0.5;
        }
        for &(i, v) in outliers {
            x[i] = v;
        }
        x
    }

    #[test]
    fn bias_estimate_close_to_true_bias() {
        let x = biased_vector(5000, 100.0, &[(3, 9000.0), (70, -2000.0)]);
        let cfg = L2Config::new(5000, 200, 7).with_seed(3);
        let mut sk = L2SketchRecover::new(&cfg);
        sk.ingest_vector(&x);
        let beta = sk.bias();
        assert!((beta - 100.0).abs() < 3.0, "beta = {beta}");
    }

    #[test]
    fn all_maintenance_modes_agree_on_bias() {
        let n = 2000usize;
        let x = biased_vector(n, 70.0, &[(5, 4000.0), (6, -900.0)]);
        let mut biases = Vec::new();
        for m in [
            L2BiasMaintenance::BiasHeap,
            L2BiasMaintenance::OrderStatTree,
            L2BiasMaintenance::Resort,
        ] {
            let cfg = L2Config::new(n as u64, 128, 5)
                .with_seed(7)
                .with_maintenance(m);
            let mut sk = L2SketchRecover::new(&cfg);
            sk.ingest_vector(&x);
            biases.push(sk.bias());
        }
        assert!(
            (biases[0] - biases[1]).abs() < 1e-9,
            "heap {} vs tree {}",
            biases[0],
            biases[1]
        );
        assert!(
            (biases[0] - biases[2]).abs() < 1e-9,
            "heap {} vs resort {}",
            biases[0],
            biases[2]
        );
    }

    #[test]
    fn recovers_outliers_on_biased_data() {
        let n = 4000usize;
        let x = biased_vector(n, 100.0, &[(11, 5000.0), (222, -1000.0)]);
        let cfg = L2Config::new(n as u64, 256, 9).with_seed(5);
        let mut sk = L2SketchRecover::new(&cfg);
        sk.ingest_vector(&x);
        assert!((sk.estimate(11) - 5000.0).abs() < 50.0);
        assert!((sk.estimate(222) + 1000.0).abs() < 50.0);
        assert!((sk.estimate(500) - x[500]).abs() < 20.0);
    }

    #[test]
    fn error_bound_against_oracle() {
        let n = 3000usize;
        let x = biased_vector(n, 200.0, &[(1, 4000.0), (2, 3500.0), (3, -800.0)]);
        let width = 256;
        let k = width / 4;
        let cfg = L2Config::new(n as u64, width, 9).with_seed(11);
        let mut sk = L2SketchRecover::new(&cfg);
        sk.ingest_vector(&x);
        let xhat = sk.recover_all();
        let max_err = xhat
            .iter()
            .zip(x.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let debiased = oracle::min_beta_err_k2(&x, k).err;
        let plain = oracle::err_k_p(&x, k, 2);
        let bound = debiased / (k as f64).sqrt();
        assert!(
            max_err <= 20.0 * bound + 1e-9,
            "max_err {max_err} vs bound {bound}"
        );
        assert!(max_err < plain / (k as f64).sqrt());
    }

    #[test]
    fn streaming_equals_offline() {
        let n = 600u64;
        let cfg = L2Config::new(n, 64, 5).with_seed(9);
        let x: Vec<f64> = (0..n).map(|i| 80.0 + (i % 4) as f64).collect();
        let mut offline = L2SketchRecover::new(&cfg);
        offline.ingest_vector(&x);
        let mut streaming = L2SketchRecover::new(&cfg);
        for i in (0..n).rev() {
            streaming.update(i, 50.0);
        }
        for i in 0..n {
            streaming.update(i, x[i as usize] - 50.0);
        }
        assert!((offline.bias() - streaming.bias()).abs() < 1e-9);
        for j in (0..n).step_by(29) {
            assert!(
                (offline.estimate(j) - streaming.estimate(j)).abs() < 1e-6,
                "item {j}"
            );
        }
    }

    #[test]
    fn update_batch_matches_one_by_one_exactly() {
        for m in [
            L2BiasMaintenance::BiasHeap,
            L2BiasMaintenance::OrderStatTree,
            L2BiasMaintenance::Resort,
        ] {
            let cfg = L2Config::new(300, 32, 5).with_seed(8).with_maintenance(m);
            let mut batched = L2SketchRecover::new(&cfg);
            let mut looped = L2SketchRecover::new(&cfg);
            let items: Vec<(u64, f64)> = (0..400u64)
                .map(|i| (i * 13 % 300, ((i % 7) as f64 - 3.0) * 1.5))
                .collect();
            batched.update_batch(&items);
            for &(i, d) in &items {
                looped.update(i, d);
            }
            assert_eq!(batched.bias(), looped.bias(), "{m:?}");
            for j in 0..300u64 {
                assert_eq!(batched.estimate(j), looped.estimate(j), "{m:?} {j}");
            }
        }
    }

    #[test]
    fn merge_equals_combined_all_modes() {
        for m in [
            L2BiasMaintenance::BiasHeap,
            L2BiasMaintenance::OrderStatTree,
            L2BiasMaintenance::Resort,
        ] {
            let n = 500u64;
            let cfg = L2Config::new(n, 64, 5).with_seed(13).with_maintenance(m);
            let mut a = L2SketchRecover::new(&cfg);
            let mut b = L2SketchRecover::new(&cfg);
            let mut c = L2SketchRecover::new(&cfg);
            for i in 0..n {
                let (va, vb) = (5.0 + (i % 11) as f64, 20.0 - (i % 3) as f64);
                a.update(i, va);
                b.update(i, vb);
                c.update(i, va + vb);
            }
            a.merge_from(&b).unwrap();
            assert!((a.bias() - c.bias()).abs() < 1e-9, "{m:?}");
            for j in (0..n).step_by(41) {
                assert!((a.estimate(j) - c.estimate(j)).abs() < 1e-6, "{m:?} {j}");
            }
        }
    }

    #[test]
    fn global_mean_variant() {
        let n = 1500usize;
        let x = biased_vector(n, 60.0, &[]);
        let cfg = L2Config::new(n as u64, 128, 7)
            .with_seed(2)
            .with_bias(BiasStrategy::GlobalMean);
        let mut sk = L2SketchRecover::new(&cfg);
        sk.ingest_vector(&x);
        assert_eq!(sk.label(), "l2-mean");
        assert!((sk.bias() - 60.0).abs() < 1.0);
        assert!((sk.estimate(700) - x[700]).abs() < 15.0);
        // Mean variant carries no Π(g) row.
        assert_eq!(sk.size_in_words(), 128 * 7 + 1);
    }

    #[test]
    fn median_bucket_average_excludes_contaminated_buckets() {
        // 12 buckets of π = 5; two carry outlier mass.
        let pi = vec![5u64; 12];
        let mut w: Vec<f64> = vec![50.0; 12]; // all average 10
        w[0] = 100_000.0;
        w[1] = -90_000.0;
        let beta = median_bucket_average(&w, &pi, 2);
        assert!((beta - 10.0).abs() < 1e-9, "beta = {beta}");
    }

    #[test]
    fn turnstile_updates_supported() {
        let cfg = L2Config::new(100, 32, 5).with_seed(1);
        let mut sk = L2SketchRecover::new(&cfg);
        sk.update(5, 10.0);
        sk.update(5, -10.0);
        for j in (0..100).step_by(7) {
            assert!(sk.estimate(j).abs() < 1e-9, "item {j}");
        }
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let sk = L2SketchRecover::new(&L2Config::new(64, 16, 3));
        assert_eq!(sk.bias(), 0.0);
        assert_eq!(sk.estimate(10), 0.0);
    }
}
