//! Configuration types for the bias-aware sketches.

use bas_hash::HashKind;
use bas_sketch::SketchParams;

/// How many rows the sampling matrix `Υ` gets (`ℓ1` sketch only).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleCount {
    /// The paper's theoretical default `t = ⌈20·ln n⌉` (Lemma 3).
    PaperLogN,
    /// `t = s` extra words, matching the paper's experimental setup
    /// (§5.1: "in our implementation we use `s` … extra words", which
    /// also stabilizes the bias estimate).
    #[default]
    MatchWidth,
    /// An explicit row count.
    Explicit(usize),
}

impl SampleCount {
    /// Resolves to a concrete row count.
    pub fn resolve(&self, n: u64, width: usize) -> usize {
        match *self {
            SampleCount::PaperLogN => (((20.0 * (n.max(2) as f64).ln()).ceil()) as usize).max(1),
            SampleCount::MatchWidth => width.max(1),
            SampleCount::Explicit(t) => {
                assert!(t > 0, "explicit sample count must be positive");
                t
            }
        }
    }
}

/// Which bias estimator a sketch uses.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BiasStrategy {
    /// The paper's estimator: sample median for `ℓ1` (Algorithm 2 line
    /// 1), median-bucket average for `ℓ2` (Algorithm 4 line 2).
    #[default]
    Paper,
    /// The `ℓ1`-mean / `ℓ2`-mean heuristics of §5.4: use the global mean
    /// `Σx_i / n`, maintained exactly from the update stream. No
    /// theoretical guarantee (a single huge outlier ruins it — see
    /// Figure 8c–d), but competitive on benign data.
    GlobalMean,
}

/// How the `ℓ2` sketch maintains its bucket ordering for the bias.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum L2BiasMaintenance {
    /// The paper's Bias-Heap (Algorithm 5): `O(log s)` updates, `O(1)`
    /// bias queries. The streaming default.
    #[default]
    BiasHeap,
    /// An order-statistic tree with augmented sums: same complexity,
    /// different constants (compared in `ablation_bias_maintenance`).
    OrderStatTree,
    /// No incremental structure: sort the buckets at every bias query
    /// (`O(s log s)`). This is the "post-processing" strawman the paper
    /// rejects for real-time queries (§4.1) — kept for the ablation and
    /// for one-shot offline recovery where it is perfectly adequate.
    Resort,
}

/// Configuration for the `ℓ∞/ℓ1` bias-aware sketch (Algorithms 1–2).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Universe size `n`.
    pub n: u64,
    /// Buckets per Count-Median row (`s = c_s·k`, `c_s ≥ 4`).
    pub width: usize,
    /// Number of Count-Median rows (`d = Θ(log n)`; 9 in the paper's
    /// experiments).
    pub depth: usize,
    /// Master seed (shared knowledge between sketching and recovery).
    pub seed: u64,
    /// Hash family.
    pub hash_kind: HashKind,
    /// Rows of the sampling matrix `Υ`.
    pub samples: SampleCount,
    /// Bias estimator (paper sampling vs. global-mean heuristic).
    pub bias: BiasStrategy,
}

impl L1Config {
    /// Creates a configuration with paper defaults.
    pub fn new(n: u64, width: usize, depth: usize) -> Self {
        assert!(n > 0 && width > 0 && depth > 0);
        Self {
            n,
            width,
            depth,
            seed: 0,
            hash_kind: HashKind::CarterWegman,
            samples: SampleCount::default(),
            bias: BiasStrategy::default(),
        }
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sampling-matrix row count policy.
    pub fn with_samples(mut self, samples: SampleCount) -> Self {
        self.samples = samples;
        self
    }

    /// Switches to the global-mean bias heuristic (`ℓ1`-mean).
    pub fn with_bias(mut self, bias: BiasStrategy) -> Self {
        self.bias = bias;
        self
    }

    /// Sets the hash family.
    pub fn with_hash_kind(mut self, kind: HashKind) -> Self {
        self.hash_kind = kind;
        self
    }

    /// The underlying Count-Median parameters.
    pub fn sketch_params(&self) -> SketchParams {
        SketchParams::new(self.n, self.width, self.depth)
            .with_seed(self.seed)
            .with_hash_kind(self.hash_kind)
    }
}

/// Configuration for the `ℓ∞/ℓ2` bias-aware sketch (Algorithms 3–4).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Universe size `n`.
    pub n: u64,
    /// Buckets per row, for both `Π(g)` and the Count-Sketch rows.
    pub width: usize,
    /// Number of Count-Sketch rows (9 in the paper's experiments; the
    /// `Π(g)` row group is one extra).
    pub depth: usize,
    /// Master seed.
    pub seed: u64,
    /// Hash family.
    pub hash_kind: HashKind,
    /// Half-width `k` of the `2k` median-bucket window; defaults to
    /// `s/4` as in Algorithm 5 line 2 (i.e. `c_s = 4`).
    pub k: Option<usize>,
    /// Bias estimator (paper median buckets vs. global-mean heuristic).
    pub bias: BiasStrategy,
    /// Incremental structure maintaining the bucket order.
    pub maintenance: L2BiasMaintenance,
}

impl L2Config {
    /// Creates a configuration with paper defaults.
    pub fn new(n: u64, width: usize, depth: usize) -> Self {
        assert!(n > 0 && width > 0 && depth > 0);
        Self {
            n,
            width,
            depth,
            seed: 0,
            hash_kind: HashKind::CarterWegman,
            k: None,
            bias: BiasStrategy::default(),
            maintenance: L2BiasMaintenance::default(),
        }
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the median-window half-width `k` explicitly.
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        self.k = Some(k);
        self
    }

    /// Switches to the global-mean bias heuristic (`ℓ2`-mean).
    pub fn with_bias(mut self, bias: BiasStrategy) -> Self {
        self.bias = bias;
        self
    }

    /// Selects the bias-maintenance structure.
    pub fn with_maintenance(mut self, m: L2BiasMaintenance) -> Self {
        self.maintenance = m;
        self
    }

    /// Sets the hash family.
    pub fn with_hash_kind(mut self, kind: HashKind) -> Self {
        self.hash_kind = kind;
        self
    }

    /// The effective `k` (defaults to `width / 4`, minimum 1).
    pub fn effective_k(&self) -> usize {
        self.k.unwrap_or((self.width / 4).max(1))
    }

    /// The underlying Count-Sketch parameters.
    pub fn sketch_params(&self) -> SketchParams {
        SketchParams::new(self.n, self.width, self.depth)
            .with_seed(self.seed)
            .with_hash_kind(self.hash_kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_count_resolution() {
        assert_eq!(SampleCount::MatchWidth.resolve(1000, 64), 64);
        assert_eq!(SampleCount::Explicit(7).resolve(1000, 64), 7);
        let t = SampleCount::PaperLogN.resolve(1_000_000, 64);
        assert!((270..285).contains(&t), "t = {t}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn explicit_zero_samples_rejected() {
        SampleCount::Explicit(0).resolve(10, 10);
    }

    #[test]
    fn l1_builder_roundtrip() {
        let c = L1Config::new(100, 32, 5)
            .with_seed(9)
            .with_samples(SampleCount::Explicit(11))
            .with_bias(BiasStrategy::GlobalMean);
        assert_eq!(c.seed, 9);
        assert_eq!(c.samples, SampleCount::Explicit(11));
        assert_eq!(c.bias, BiasStrategy::GlobalMean);
        let p = c.sketch_params();
        assert_eq!((p.n, p.width, p.depth, p.seed), (100, 32, 5, 9));
    }

    #[test]
    fn l2_effective_k_defaults_to_quarter_width() {
        let c = L2Config::new(100, 64, 5);
        assert_eq!(c.effective_k(), 16);
        assert_eq!(c.with_k(5).effective_k(), 5);
        // Tiny widths still produce a usable k.
        assert_eq!(L2Config::new(100, 2, 1).effective_k(), 1);
    }

    #[test]
    fn l2_builder_roundtrip() {
        let c = L2Config::new(10, 8, 2)
            .with_maintenance(L2BiasMaintenance::OrderStatTree)
            .with_hash_kind(HashKind::Tabulation);
        assert_eq!(c.maintenance, L2BiasMaintenance::OrderStatTree);
        assert_eq!(c.hash_kind, HashKind::Tabulation);
    }
}
