//! Exact tail-error oracles: `Err_p^k(x)` and `min_β Err_p^k(x − β)`.
//!
//! The paper's guarantees (Theorems 1–4) are stated against these
//! quantities, so the experiment harness computes them exactly and
//! reports measured recovery error next to the theoretical bound. The
//! `min_β` variants also produce the optimal bias `β*` of Equation (5),
//! which lets tests check how close the sketch's `β̂` lands.
//!
//! ## Algorithm
//!
//! `Err_p^k(x)` drops the `k` largest-magnitude coordinates and takes the
//! `ℓp` norm of the rest — a partial sort.
//!
//! For `min_β Err_p^k(x − β)`, observe that for a *fixed* `β` the dropped
//! coordinates are the `k` farthest from `β`, so the kept `n − k`
//! coordinates form a **contiguous window** of the value-sorted vector
//! (the set `{i : |x_i − β| ≤ τ}` is an interval in sorted order). It
//! therefore suffices to scan the `k + 1` windows of length `n − k`:
//!
//! * `p = 1`: the optimal `β` for a window is its median (Lemma 1), and
//!   the window cost `Σ|x_i − med|` comes from prefix sums in `O(1)`;
//! * `p = 2`: the optimal `β` is the window mean (Lemma 4), and the cost
//!   `Σx_i² − (Σx_i)²/m` comes from prefix sums of `x` and `x²`.
//!
//! Total `O(n log n)` for the sort, `O(k)` for the scan. Verified against
//! brute force by property tests, and against the paper's §1 worked
//! example by unit tests.

/// Result of a `min_β Err_p^k` computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasedTail {
    /// The minimal tail error `min_β Err_p^k(x − β)`.
    pub err: f64,
    /// An optimal bias `β*` attaining it (Equation (5); may not be
    /// unique).
    pub beta: f64,
}

/// `Err_p^k(x)`: the `ℓp` norm of `x` with its `k` largest-magnitude
/// coordinates zeroed (paper, §1).
///
/// # Panics
/// Panics unless `p ∈ {1, 2}` and `k ≤ n`.
pub fn err_k_p(x: &[f64], k: usize, p: u32) -> f64 {
    assert!(p == 1 || p == 2, "only p ∈ {{1,2}} supported");
    assert!(k <= x.len(), "k exceeds vector length");
    if k == x.len() {
        return 0.0;
    }
    let mut mags: Vec<f64> = x.iter().map(|v| v.abs()).collect();
    // Keep the n − k smallest magnitudes.
    let keep = x.len() - k;
    mags.select_nth_unstable_by(keep - 1, |a, b| a.total_cmp(b));
    let tail = &mags[..keep];
    match p {
        1 => tail.iter().sum(),
        _ => tail.iter().map(|v| v * v).sum::<f64>().sqrt(),
    }
}

/// `min_β Err_1^k(x − β)` with an optimal `β*` (window-median scan).
///
/// # Panics
/// Panics if `k ≥ n` (an all-dropped vector has error 0 for every `β`,
/// so the problem is degenerate) — except `k = n = 0` is rejected too.
pub fn min_beta_err_k1(x: &[f64], k: usize) -> BiasedTail {
    assert!(!x.is_empty(), "empty vector");
    assert!(k < x.len(), "k must be smaller than the vector length");
    let mut sorted = x.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let m = n - k;
    // prefix[i] = Σ sorted[..i]
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &v in &sorted {
        prefix.push(prefix.last().unwrap() + v);
    }
    let mut best = BiasedTail {
        err: f64::INFINITY,
        beta: 0.0,
    };
    for j in 0..=k {
        // Window sorted[j .. j + m]; median index (lower median).
        let mid = j + (m - 1) / 2;
        let med = if m % 2 == 1 {
            sorted[mid]
        } else {
            0.5 * (sorted[mid] + sorted[mid + 1])
        };
        // Cost around the *lower-median index* split: elements ≤ med on
        // the left of mid, ≥ med on the right. Using the scalar `med`
        // directly is safe because any value between the two middle
        // order statistics minimizes the l1 cost equally.
        let lo_cnt = (mid - j + 1) as f64;
        let hi_cnt = (j + m - mid - 1) as f64;
        let lo_sum = prefix[mid + 1] - prefix[j];
        let hi_sum = prefix[j + m] - prefix[mid + 1];
        let cost = (med * lo_cnt - lo_sum) + (hi_sum - med * hi_cnt);
        if cost < best.err {
            best = BiasedTail {
                err: cost,
                beta: med,
            };
        }
    }
    best
}

/// `min_β Err_2^k(x − β)` with an optimal `β*` (window-mean scan;
/// Lemma 4 equates this with the minimum-variance `(n−k)`-subset).
///
/// # Panics
/// Panics if `k ≥ n`.
pub fn min_beta_err_k2(x: &[f64], k: usize) -> BiasedTail {
    assert!(!x.is_empty(), "empty vector");
    assert!(k < x.len(), "k must be smaller than the vector length");
    let mut sorted = x.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let m = n - k;
    let mut prefix = Vec::with_capacity(n + 1);
    let mut prefix_sq = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    prefix_sq.push(0.0);
    for &v in &sorted {
        prefix.push(prefix.last().unwrap() + v);
        prefix_sq.push(prefix_sq.last().unwrap() + v * v);
    }
    let mut best = BiasedTail {
        err: f64::INFINITY,
        beta: 0.0,
    };
    for j in 0..=k {
        let s = prefix[j + m] - prefix[j];
        let sq = prefix_sq[j + m] - prefix_sq[j];
        let mean = s / m as f64;
        // Guard tiny negative values from float cancellation.
        let cost_sq = (sq - s * s / m as f64).max(0.0);
        let cost = cost_sq.sqrt();
        if cost < best.err {
            best = BiasedTail {
                err: cost,
                beta: mean,
            };
        }
    }
    best
}

/// Convenience dispatcher over `p ∈ {1, 2}`.
pub fn min_beta_err(x: &[f64], k: usize, p: u32) -> BiasedTail {
    match p {
        1 => min_beta_err_k1(x, k),
        2 => min_beta_err_k2(x, k),
        _ => panic!("only p ∈ {{1,2}} supported"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from the paper's §1:
    /// `x = (3, 100, 101, 500, 102, 98, 97, 100, 99, 103)`, `k = 2`.
    const PAPER_X: [f64; 10] = [
        3.0, 100.0, 101.0, 500.0, 102.0, 98.0, 97.0, 100.0, 99.0, 103.0,
    ];

    #[test]
    fn paper_example_err_without_bias() {
        // Paper: Err_1^2 = 700, Err_2^2 = sqrt(69428) ≈ 263.49.
        assert_eq!(err_k_p(&PAPER_X, 2, 1), 700.0);
        let e2 = err_k_p(&PAPER_X, 2, 2);
        assert!((e2 - 69428f64.sqrt()).abs() < 1e-9, "e2 = {e2}");
    }

    #[test]
    fn paper_example_err_with_bias() {
        // Paper: min_β Err_1^2(x − β) = 12 and min_β Err_2^2(x − β) =
        // sqrt(28), both attained at β = 100.
        let t1 = min_beta_err_k1(&PAPER_X, 2);
        assert_eq!(t1.err, 12.0);
        assert_eq!(t1.beta, 100.0);
        let t2 = min_beta_err_k2(&PAPER_X, 2);
        assert!((t2.err - 28f64.sqrt()).abs() < 1e-9, "err = {}", t2.err);
        assert!((t2.beta - 100.0).abs() < 1e-9, "beta = {}", t2.beta);
    }

    #[test]
    fn zero_bias_matches_plain_err_upper_bound() {
        // min_β is never worse than β = 0.
        let x = [5.0, -3.0, 2.0, 8.0, -1.0, 0.5];
        for k in 0..x.len() - 1 {
            for p in [1u32, 2] {
                let with_bias = min_beta_err(&x, k, p).err;
                let without = err_k_p(&x, k, p);
                assert!(
                    with_bias <= without + 1e-9,
                    "k={k} p={p}: {with_bias} > {without}"
                );
            }
        }
    }

    #[test]
    fn k_sparse_vector_after_debias_has_zero_error() {
        // All coordinates equal to 7 except 3 outliers, k = 3: perfect.
        let mut x = vec![7.0; 50];
        x[4] = 100.0;
        x[17] = -20.0;
        x[33] = 55.0;
        for p in [1u32, 2] {
            let t = min_beta_err(&x, 3, p);
            assert!(t.err.abs() < 1e-9, "p={p}: err = {}", t.err);
            assert_eq!(t.beta, 7.0);
        }
    }

    #[test]
    fn err_with_k_equal_n_is_zero() {
        assert_eq!(err_k_p(&[1.0, 2.0], 2, 1), 0.0);
    }

    #[test]
    fn k_zero_forces_whole_vector() {
        let x = [1.0, 2.0, 3.0];
        let t1 = min_beta_err_k1(&x, 0);
        assert_eq!(t1.beta, 2.0); // median
        assert_eq!(t1.err, 2.0); // |1-2| + |3-2|
        let t2 = min_beta_err_k2(&x, 0);
        assert_eq!(t2.beta, 2.0); // mean
        assert!((t2.err - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn infinite_style_outliers_do_not_fool_the_oracle() {
        // The §4.1 "mean fails" example: two huge values, k = 2.
        let x = [1e15, 1e15, 50.0, 50.0, 50.0, 50.0, 50.0, 50.0, 50.0];
        for p in [1u32, 2] {
            let t = min_beta_err(&x, 2, p);
            assert_eq!(t.beta, 50.0, "p = {p}");
            assert!(t.err.abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn brute_force_cross_check_small_vectors() {
        // Exhaustive check against a dense β grid on small random-ish
        // vectors.
        let vectors: Vec<Vec<f64>> = vec![
            vec![1.0, 5.0, 5.0, 5.0, 9.0],
            vec![-3.0, 0.0, 0.5, 2.0, 2.0, 2.5, 40.0],
            vec![10.0, 20.0, 30.0, 40.0],
            vec![2.0, 2.0, 2.0],
        ];
        for x in &vectors {
            for k in 0..x.len().min(3) {
                for p in [1u32, 2] {
                    let oracle = min_beta_err(x, k, p);
                    // Grid over candidate betas: every value and midpoint.
                    let mut best_grid = f64::INFINITY;
                    let mut candidates: Vec<f64> = x.clone();
                    for w in x.windows(2) {
                        candidates.push(0.5 * (w[0] + w[1]));
                    }
                    // Fine grid for p = 2 where optimum is a mean.
                    let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
                    let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    for i in 0..=400 {
                        candidates.push(lo + (hi - lo) * i as f64 / 400.0);
                    }
                    for &beta in &candidates {
                        let shifted: Vec<f64> = x.iter().map(|v| v - beta).collect();
                        best_grid = best_grid.min(err_k_p(&shifted, k, p));
                    }
                    assert!(
                        oracle.err <= best_grid + 1e-6,
                        "oracle must not exceed grid: k={k} p={p} x={x:?}"
                    );
                    // And the grid should get within a hair of the oracle.
                    assert!(
                        best_grid <= oracle.err + 0.05 * (1.0 + oracle.err),
                        "grid {best_grid} far above oracle {} (k={k} p={p})",
                        oracle.err
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be smaller")]
    fn min_beta_rejects_k_equal_n() {
        min_beta_err_k1(&[1.0, 2.0], 2);
    }

    #[test]
    #[should_panic(expected = "only p")]
    fn unsupported_p_rejected() {
        err_k_p(&[1.0], 0, 3);
    }
}
