//! The `ℓ∞/ℓ1` bias-aware sketch (paper, Algorithms 1–2, Theorem 3).

use crate::config::{BiasStrategy, L1Config};
use bas_sketch::storage::{CounterBackend, CounterMatrix, Dense};
use bas_sketch::util::median_of_rows;
use bas_sketch::{CountMedian, MergeError, MergeableSketch, PointQuerySketch};
use bas_stream::SortedSampler;

/// `ℓ1`-S/R: bias-aware sketch-and-recover with the
/// `‖x̂ − x‖∞ = O(1/k)·min_β Err_1^k(x − β)` guarantee.
///
/// **Sketching** (Algorithm 1): `d` Count-Median rows `Π(h_i)x` plus the
/// sample vector `S = Υx` of `t` random coordinates.
///
/// **Recovery** (Algorithm 2): `β̂ = median(S)`; de-bias each bucket with
/// the column counts `π_i` (`ỹ_i = y_i − β̂·π_i`), run Count-Median
/// recovery on `ỹ`, and add `β̂` back:
///
/// ```text
/// x̂_j = median_{i∈[d]} ( y_i[h_i(j)] − β̂·π_i[h_i(j)] ) + β̂
/// ```
///
/// The struct is streaming-native (§4.4): the samples live in an
/// order-statistics structure, so `β̂` is current after every update and
/// point queries cost `O(d)` — no post-processing pass. It is also
/// linear: [`MergeableSketch::merge_from`] adds two sketches built with
/// equal configurations, which is the distributed protocol of §5.5.
///
/// With [`BiasStrategy::GlobalMean`] the sampler is replaced by the
/// exact running mean `Σx_i / n` — the `ℓ1`-mean heuristic of §5.4.
///
/// Space: `s·d` grid words plus `t` sample words (Theorem 3 uses
/// `t = Θ(log n)`; the experiments use `t = s`).
///
/// Counters live in the storage layer's
/// [`CounterMatrix`](bas_sketch::storage::CounterMatrix) through the
/// inner [`CountMedian`], generic over the backend `B`. The sketch does
/// **not** implement `SharedSketch` even with the `Atomic` backend: the
/// sampler and running bias state are updated per item under `&mut`,
/// which is the correct trade — the bias structures are tiny, the grid
/// is the hot plane.
///
/// ```
/// use bas_core::{L1Config, L1SketchRecover};
/// use bas_sketch::PointQuerySketch;
///
/// // Everything hovers near 100; coordinate 3 is an outlier.
/// let updates: Vec<(u64, f64)> = (0..2_000u64)
///     .map(|i| (i, if i == 3 { 5_000.0 } else { 100.0 }))
///     .collect();
/// let cfg = L1Config::new(2_000, 128, 7).with_seed(5);
/// let mut sk = L1SketchRecover::new(&cfg);
/// sk.update_batch(&updates); // batched fast path
/// assert!((sk.bias() - 100.0).abs() < 2.0);
/// assert!((sk.estimate(3) - 5_000.0).abs() < 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct L1SketchRecover<B: CounterBackend = Dense> {
    cfg: L1Config,
    cm: CountMedian<B>,
    /// Column counts `π_i[b]` — recovery-side state derived from the
    /// shared hash functions, not part of the communicated sketch.
    /// Always dense: it is read-only after construction.
    pis: CounterMatrix<u64>,
    sampler: Option<SortedSampler>,
    /// Exact running `Σ deltas` (`= Σ x_i` for streams starting at 0).
    running_sum: f64,
}

#[cfg(feature = "serde")]
bas_sketch::impl_backend_serde!(L1SketchRecover {
    cfg,
    cm,
    pis,
    sampler,
    running_sum
});

impl L1SketchRecover {
    /// Creates an empty sketch with the default [`Dense`] backend.
    pub fn new(cfg: &L1Config) -> Self {
        Self::with_backend(cfg)
    }
}

impl<B: CounterBackend> L1SketchRecover<B> {
    /// Creates an empty sketch with an explicit counter backend.
    pub fn with_backend(cfg: &L1Config) -> Self {
        let cm = CountMedian::with_backend(&cfg.sketch_params());
        let pis = cm.column_counts();
        let sampler = match cfg.bias {
            BiasStrategy::Paper => {
                let t = cfg.samples.resolve(cfg.n, cfg.width);
                Some(SortedSampler::new(cfg.n, t, cfg.seed ^ 0x5EED_1001))
            }
            BiasStrategy::GlobalMean => None,
        };
        Self {
            cfg: *cfg,
            cm,
            pis,
            sampler,
            running_sum: 0.0,
        }
    }

    /// The configuration this sketch was built with.
    pub fn config(&self) -> &L1Config {
        &self.cfg
    }

    /// The current bias estimate `β̂` (Algorithm 2 line 1, kept current
    /// under streaming updates).
    pub fn bias(&self) -> f64 {
        match (&self.cfg.bias, &self.sampler) {
            (BiasStrategy::Paper, Some(s)) => s.median(),
            _ => self.running_sum / self.cfg.n as f64,
        }
    }

    /// Point estimate using an explicit bias value — recovery line 4–5
    /// factored out so `recover_all` computes `β̂` once. Runs over the
    /// stack scratch of [`median_of_rows`]: no per-query heap
    /// allocation.
    fn estimate_with_bias(&self, item: u64, beta: f64) -> f64 {
        median_of_rows(self.cfg.depth, |row| {
            let b = self.cm.bucket_of(row, item);
            self.cm.bucket_value(row, b) - beta * self.pis.get(row, b) as f64
        }) + beta
    }

    /// Number of sampling-matrix rows `t` (0 for the mean heuristic).
    pub fn sample_rows(&self) -> usize {
        self.sampler.as_ref().map_or(0, |s| s.rows())
    }
}

impl<B: CounterBackend> PointQuerySketch for L1SketchRecover<B> {
    fn update(&mut self, item: u64, delta: f64) {
        debug_assert!(item < self.cfg.n, "item outside universe");
        self.cm.update(item, delta);
        self.running_sum += delta;
        if let Some(s) = &mut self.sampler {
            s.update(item, delta);
        }
    }

    /// Batch update: the Count-Median rows take their dispatch-hoisted fast
    /// path; the sampler and running sum (both `O(1)`-ish per update)
    /// stay item-ordered. Bit-for-bit equivalent to the one-by-one
    /// loop.
    fn update_batch(&mut self, items: &[(u64, f64)]) {
        self.cm.update_batch(items);
        for &(item, delta) in items {
            self.running_sum += delta;
            if let Some(s) = &mut self.sampler {
                s.update(item, delta);
            }
        }
    }

    fn estimate(&self, item: u64) -> f64 {
        self.estimate_with_bias(item, self.bias())
    }

    fn universe(&self) -> u64 {
        self.cfg.n
    }

    fn size_in_words(&self) -> usize {
        // Grid + samples (or the single running-sum word).
        self.cm.size_in_words() + self.sampler.as_ref().map_or(1, |s| s.rows())
    }

    fn label(&self) -> &'static str {
        match self.cfg.bias {
            BiasStrategy::Paper => "l1-S/R",
            BiasStrategy::GlobalMean => "l1-mean",
        }
    }

    fn recover_all(&self) -> Vec<f64> {
        let beta = self.bias();
        (0..self.cfg.n)
            .map(|j| self.estimate_with_bias(j, beta))
            .collect()
    }
}

impl<B: CounterBackend> MergeableSketch for L1SketchRecover<B> {
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.cfg != other.cfg {
            return Err(MergeError::ShapeMismatch {
                what: "configurations",
            });
        }
        self.cm.merge_from(&other.cm)?;
        self.running_sum += other.running_sum;
        if let (Some(a), Some(b)) = (&mut self.sampler, &other.sampler) {
            a.merge_from(b).map_err(|_| MergeError::SeedMismatch)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SampleCount;
    use crate::oracle;

    fn biased_vector(n: usize, bias: f64, outliers: &[(usize, f64)]) -> Vec<f64> {
        let mut x = vec![bias; n];
        // Small symmetric perturbation so the vector is not constant.
        for (i, v) in x.iter_mut().enumerate() {
            *v += ((i % 7) as f64 - 3.0) * 0.5;
        }
        for &(i, v) in outliers {
            x[i] = v;
        }
        x
    }

    #[test]
    fn bias_estimate_close_to_true_bias() {
        let x = biased_vector(5000, 100.0, &[(3, 9000.0), (77, -500.0)]);
        let cfg = L1Config::new(5000, 200, 7).with_seed(3);
        let mut sk = L1SketchRecover::new(&cfg);
        sk.ingest_vector(&x);
        let beta = sk.bias();
        assert!((beta - 100.0).abs() < 3.0, "beta = {beta}");
    }

    #[test]
    fn recovers_outliers_on_biased_data() {
        let n = 4000usize;
        let x = biased_vector(n, 100.0, &[(11, 5000.0), (222, -1000.0)]);
        let cfg = L1Config::new(n as u64, 256, 9).with_seed(5);
        let mut sk = L1SketchRecover::new(&cfg);
        sk.ingest_vector(&x);
        assert!((sk.estimate(11) - 5000.0).abs() < 50.0);
        assert!((sk.estimate(222) + 1000.0).abs() < 50.0);
        // Ordinary coordinates recovered near the bias.
        assert!((sk.estimate(500) - x[500]).abs() < 20.0);
    }

    #[test]
    fn error_bound_against_oracle() {
        // Theorem 3 shape: max error ≤ C/k · min_β Err_1^k(x−β) for the
        // k implied by the width. Check the measured max error is far
        // below the *un-debiased* bound and within a generous constant
        // of the debiased one.
        let n = 3000usize;
        let x = biased_vector(n, 200.0, &[(1, 4000.0), (2, 3500.0), (3, -800.0)]);
        let width = 256;
        let k = width / 4;
        let cfg = L1Config::new(n as u64, width, 9).with_seed(11);
        let mut sk = L1SketchRecover::new(&cfg);
        sk.ingest_vector(&x);
        let xhat = sk.recover_all();
        let max_err = xhat
            .iter()
            .zip(x.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let debiased = oracle::min_beta_err_k1(&x, k).err;
        let plain = oracle::err_k_p(&x, k, 1);
        assert!(
            max_err <= 20.0 * debiased / k as f64 + 1e-9,
            "max_err {max_err} vs debiased bound {}",
            debiased / k as f64
        );
        assert!(
            max_err < plain / k as f64,
            "bias-aware error should beat the plain tail bound"
        );
    }

    #[test]
    fn streaming_equals_offline() {
        // Feeding updates one by one must give the same state as the
        // offline ingest (same sketch, same queries).
        let n = 500u64;
        let cfg = L1Config::new(n, 64, 5).with_seed(9);
        let x: Vec<f64> = (0..n).map(|i| 50.0 + (i % 3) as f64).collect();
        let mut offline = L1SketchRecover::new(&cfg);
        offline.ingest_vector(&x);
        let mut streaming = L1SketchRecover::new(&cfg);
        // Split each coordinate into two updates, arbitrary order.
        for i in (0..n).rev() {
            streaming.update(i, 20.0);
        }
        for i in 0..n {
            streaming.update(i, x[i as usize] - 20.0);
        }
        for j in (0..n).step_by(23) {
            assert!(
                (offline.estimate(j) - streaming.estimate(j)).abs() < 1e-6,
                "item {j}"
            );
        }
        assert!((offline.bias() - streaming.bias()).abs() < 1e-9);
    }

    #[test]
    fn update_batch_matches_one_by_one_exactly() {
        for bias in [BiasStrategy::Paper, BiasStrategy::GlobalMean] {
            let cfg = L1Config::new(300, 32, 5).with_seed(8).with_bias(bias);
            let mut batched = L1SketchRecover::new(&cfg);
            let mut looped = L1SketchRecover::new(&cfg);
            let items: Vec<(u64, f64)> = (0..400u64)
                .map(|i| (i * 13 % 300, ((i % 7) as f64 - 3.0) * 1.5))
                .collect();
            batched.update_batch(&items);
            for &(i, d) in &items {
                looped.update(i, d);
            }
            assert_eq!(batched.bias(), looped.bias(), "{bias:?}");
            for j in 0..300u64 {
                assert_eq!(batched.estimate(j), looped.estimate(j), "{bias:?} {j}");
            }
        }
    }

    #[test]
    fn merge_equals_combined() {
        let n = 800u64;
        let cfg = L1Config::new(n, 64, 5).with_seed(21);
        let mut a = L1SketchRecover::new(&cfg);
        let mut b = L1SketchRecover::new(&cfg);
        let mut c = L1SketchRecover::new(&cfg);
        for i in 0..n {
            let (va, vb) = (10.0 + (i % 5) as f64, 30.0);
            a.update(i, va);
            b.update(i, vb);
            c.update(i, va + vb);
        }
        a.merge_from(&b).unwrap();
        assert!((a.bias() - c.bias()).abs() < 1e-9);
        for j in (0..n).step_by(37) {
            assert!((a.estimate(j) - c.estimate(j)).abs() < 1e-6, "item {j}");
        }
    }

    #[test]
    fn merge_rejects_config_mismatch() {
        let mut a = L1SketchRecover::new(&L1Config::new(10, 8, 2).with_seed(1));
        let b = L1SketchRecover::new(&L1Config::new(10, 8, 2).with_seed(2));
        assert!(a.merge_from(&b).is_err());
    }

    #[test]
    fn global_mean_heuristic_on_clean_data() {
        let n = 2000usize;
        let x = biased_vector(n, 100.0, &[]);
        let cfg = L1Config::new(n as u64, 128, 7)
            .with_seed(2)
            .with_bias(BiasStrategy::GlobalMean);
        let mut sk = L1SketchRecover::new(&cfg);
        sk.ingest_vector(&x);
        assert_eq!(sk.label(), "l1-mean");
        assert!((sk.bias() - 100.0).abs() < 1.0);
        assert!((sk.estimate(100) - x[100]).abs() < 20.0);
    }

    #[test]
    fn global_mean_fooled_by_outliers_paper_example() {
        // §4.1: mean fails when extreme values dominate; the sampled
        // median does not.
        let n = 1000usize;
        let mut x = vec![50.0; n];
        x[0] = 1e9;
        x[1] = 1e9;
        let mean_cfg = L1Config::new(n as u64, 128, 7)
            .with_seed(4)
            .with_bias(BiasStrategy::GlobalMean);
        let paper_cfg = L1Config::new(n as u64, 128, 7).with_seed(4);
        let mut mean_sk = L1SketchRecover::new(&mean_cfg);
        let mut paper_sk = L1SketchRecover::new(&paper_cfg);
        mean_sk.ingest_vector(&x);
        paper_sk.ingest_vector(&x);
        assert!((paper_sk.bias() - 50.0).abs() < 1.0, "paper bias robust");
        assert!(
            (mean_sk.bias() - 50.0).abs() > 1e5,
            "mean bias should be dragged away by outliers"
        );
    }

    #[test]
    fn paper_log_n_sample_count() {
        let cfg = L1Config::new(100_000, 64, 5).with_samples(SampleCount::PaperLogN);
        let sk = L1SketchRecover::new(&cfg);
        let t = sk.sample_rows();
        assert!((225..235).contains(&t), "t = {t}");
    }

    #[test]
    fn size_in_words_counts_samples() {
        let cfg = L1Config::new(1000, 64, 5).with_samples(SampleCount::Explicit(33));
        let sk = L1SketchRecover::new(&cfg);
        assert_eq!(sk.size_in_words(), 64 * 5 + 33);
        assert_eq!(sk.label(), "l1-S/R");
        assert_eq!(sk.universe(), 1000);
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let sk = L1SketchRecover::new(&L1Config::new(100, 16, 3));
        assert_eq!(sk.bias(), 0.0);
        for j in [0u64, 50, 99] {
            assert_eq!(sk.estimate(j), 0.0);
        }
    }
}
