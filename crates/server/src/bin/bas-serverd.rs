//! `bas-serverd` — the deployable serving-fabric daemon.
//!
//! Binds the multi-tenant fabric to a real socket, optionally with a
//! durable tenant-spec journal, and serves until told to stop:
//!
//! ```text
//! bas-serverd --listen 127.0.0.1:4242 --shard 0:1.0 --shard 1:1.0 \
//!             --journal /var/lib/bas/fabric.journal
//! ```
//!
//! Lifecycle is driven over **stdin** (no signal-handling dependency):
//! the daemon serves until stdin reaches end-of-file or a line reading
//! `shutdown` arrives, then shuts down gracefully — stops accepting,
//! drains in-flight frames, seals every tenant's open interval, and
//! compacts the journal into checkpoints. A `kill -9` instead of a
//! clean shutdown is exactly the case the journal recovers from on the
//! next boot (topology + interval positions; counters from the last
//! checkpoint).
//!
//! On success the bound address is printed as `listening <addr>` on
//! stdout (with `--listen host:0`, the OS-assigned port included), so
//! wrappers can parse where to connect.

use bas_hash::HashKind;
use bas_server::{persist, Daemon, DaemonConfig, Deadlines, Fabric, FabricConfig, Journal};
use bas_sketch::SketchParams;
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
bas-serverd: serve the bias-aware-sketches multi-tenant fabric

usage: bas-serverd [--listen HOST:PORT | --unix PATH] [options]

transport (exactly one):
  --listen HOST:PORT   bind a TCP listener (PORT 0 = OS-assigned)
  --unix PATH          bind a unix-domain listener

options:
  --journal PATH       journal tenant topology to PATH; recover from
                       it at boot if it exists
  --shard ID:WEIGHT    add a shard (repeatable; skipped if the journal
                       already has it)
  --universe N         sketch universe size       (default 4096)
  --width W            sketch width (columns)     (default 128)
  --depth D            sketch depth (rows)        (default 5)
  --hash KIND          row-hash family: onehash | carter-wegman |
                       multiply-shift | tabulation (default onehash —
                       one digest per item, rows re-keyed from it, so
                       the batch kernels hoist the hash out of the row
                       loop; carter-wegman matches the paper analysis
                       and supports non-power-of-two widths)
  --workers K          ingest workers per tenant  (default 1)
  --read-ms MS         mid-frame read deadline    (default 10000)
  --write-ms MS        response write deadline    (default 10000)
  --idle-ms MS         between-frames idle cutoff (default 300000)
  --max-frame BYTES    per-frame byte cap         (default 16 MiB)
  --compact-records N  compact the journal once N records accumulate
                       since the last compaction (default: only at
                       shutdown)
  --compact-bytes N    compact once the journal file reaches N bytes

The daemon serves until stdin closes or a line `shutdown` arrives,
then drains, seals open intervals, and compacts the journal.";

struct Args {
    listen: Option<String>,
    unix: Option<String>,
    journal: Option<String>,
    shards: Vec<(u64, f64)>,
    universe: u64,
    width: usize,
    depth: usize,
    hash: HashKind,
    workers: usize,
    read_ms: u64,
    write_ms: u64,
    idle_ms: u64,
    max_frame: usize,
    compact_records: Option<u64>,
    compact_bytes: Option<u64>,
}

fn parse_hash(s: &str) -> Result<HashKind, String> {
    match s {
        "onehash" | "one-hash" => Ok(HashKind::OneHash),
        "carter-wegman" => Ok(HashKind::CarterWegman),
        "multiply-shift" => Ok(HashKind::MultiplyShift),
        "tabulation" => Ok(HashKind::Tabulation),
        other => Err(format!(
            "--hash wants onehash | carter-wegman | multiply-shift | tabulation, got {other:?}"
        )),
    }
}

fn parse_shard(s: &str) -> Result<(u64, f64), String> {
    let (id, weight) = s
        .split_once(':')
        .ok_or_else(|| format!("--shard wants ID:WEIGHT, got {s:?}"))?;
    let id = id.parse().map_err(|e| format!("shard id {id:?}: {e}"))?;
    let weight = weight
        .parse()
        .map_err(|e| format!("shard weight {weight:?}: {e}"))?;
    Ok((id, weight))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        listen: None,
        unix: None,
        journal: None,
        shards: Vec::new(),
        universe: 4_096,
        width: 128,
        depth: 5,
        hash: HashKind::OneHash,
        workers: 1,
        read_ms: 10_000,
        write_ms: 10_000,
        idle_ms: 300_000,
        max_frame: bas_server::MAX_FRAME_BYTES,
        compact_records: None,
        compact_bytes: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} wants a value"))
        };
        match flag.as_str() {
            "--listen" => args.listen = Some(value()?),
            "--unix" => args.unix = Some(value()?),
            "--journal" => args.journal = Some(value()?),
            "--shard" => args.shards.push(parse_shard(&value()?)?),
            "--universe" => args.universe = value()?.parse().map_err(|e| format!("{e}"))?,
            "--width" => args.width = value()?.parse().map_err(|e| format!("{e}"))?,
            "--depth" => args.depth = value()?.parse().map_err(|e| format!("{e}"))?,
            "--hash" => args.hash = parse_hash(&value()?)?,
            "--workers" => args.workers = value()?.parse().map_err(|e| format!("{e}"))?,
            "--read-ms" => args.read_ms = value()?.parse().map_err(|e| format!("{e}"))?,
            "--write-ms" => args.write_ms = value()?.parse().map_err(|e| format!("{e}"))?,
            "--idle-ms" => args.idle_ms = value()?.parse().map_err(|e| format!("{e}"))?,
            "--max-frame" => args.max_frame = value()?.parse().map_err(|e| format!("{e}"))?,
            "--compact-records" => {
                args.compact_records = Some(value()?.parse().map_err(|e| format!("{e}"))?)
            }
            "--compact-bytes" => {
                args.compact_bytes = Some(value()?.parse().map_err(|e| format!("{e}"))?)
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    match (&args.listen, &args.unix) {
        (Some(_), Some(_)) => Err("pick one of --listen / --unix, not both".into()),
        (None, None) => Err(format!("a transport is required\n\n{USAGE}")),
        _ => Ok(args),
    }
}

fn deadline(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

fn run(args: Args) -> Result<(), String> {
    let params = SketchParams::new(args.universe, args.width, args.depth).with_hash_kind(args.hash);
    let config = FabricConfig::new(params).with_workers(args.workers.max(1));

    // Recover topology from the journal (empty fabric on first boot),
    // then apply any --shard flags the journal does not know yet.
    let mut fabric = match &args.journal {
        Some(path) => persist::recover(path, config).map_err(|e| format!("recover: {e}"))?,
        None => Fabric::new(config),
    };
    let mut journal = args
        .journal
        .as_ref()
        .map(|p| Journal::open(p).map_err(|e| format!("journal: {e}")))
        .transpose()?;
    for &(id, weight) in &args.shards {
        if fabric.ring().contains(id) {
            continue;
        }
        fabric
            .add_shard(id, weight)
            .map_err(|e| format!("--shard {id}: {}: {}", e.code, e.detail))?;
        if let Some(journal) = &mut journal {
            journal
                .append(&bas_server::JournalRecord::ShardAdded(
                    bas_server::persist::ShardRecord { shard: id, weight },
                ))
                .map_err(|e| format!("journal: {e}"))?;
        }
    }

    let daemon_config = DaemonConfig::new()
        .with_max_frame_bytes(args.max_frame)
        .with_compact_after_records(args.compact_records)
        .with_compact_after_bytes(args.compact_bytes)
        .with_deadlines(
            Deadlines::new()
                .with_read(deadline(args.read_ms))
                .with_write(deadline(args.write_ms))
                .with_idle(deadline(args.idle_ms)),
        );
    let daemon = if let Some(addr) = &args.listen {
        Daemon::bind_tcp(addr.as_str(), fabric, journal, daemon_config)
    } else {
        Daemon::bind_unix(
            args.unix.as_deref().unwrap(),
            fabric,
            journal,
            daemon_config,
        )
    }
    .map_err(|e| format!("bind: {e}"))?;

    let bound = daemon
        .local_addr()
        .map(|a| a.to_string())
        .or(args.unix.clone())
        .unwrap_or_default();
    println!("listening {bound}");
    std::io::stdout().flush().ok();

    // Serve until stdin closes or says `shutdown`.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "shutdown" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    let report = daemon.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    // A supervisor may have closed our stdout already; the report line
    // is best-effort, not a reason to exit nonzero.
    let _ = writeln!(
        std::io::stdout(),
        "shutdown clean: {} connections, {} frames, {} intervals sealed",
        report.connections,
        report.frames,
        report.sealed.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bas-serverd: {msg}");
            ExitCode::FAILURE
        }
    }
}
