//! The length-prefixed wire protocol.
//!
//! Frames are `u32` big-endian length + a JSON body in the workspace's
//! existing serde wire format (the same format the distributed
//! protocol and `tests/serde_roundtrip.rs` already pin down: finite
//! `f64`s print shortest-round-trip, so counter planes ship
//! **bit-for-bit**). One [`Request`] frame in, one [`Response`] frame
//! out, strictly alternating per connection.
//!
//! The framing layer owns desync-avoidance **and** resource bounds
//! against hostile peers:
//!
//! * a frame longer than the reader's cap — but within the drain
//!   budget — is **drained** (read and discarded in bounded chunks)
//!   before [`WireError::FrameTooLarge`] is reported, so the stream
//!   stays positioned at the next frame and the connection survives;
//! * a declaration beyond [`DRAIN_BUDGET_MULTIPLE`]`·max_len` is
//!   [`WireError::Abusive`] and **fatal**: draining it would let one
//!   bogus header make the reader consume up to ~4 GiB from the peer,
//!   so the connection drops instead (behavior change vs the original
//!   protocol, which loyally drained any declared length);
//! * body buffers grow **as bytes actually arrive** (in
//!   [`BODY_CHUNK_BYTES`] steps), never by the declared length alone —
//!   a peer declaring a huge frame and trickling bytes holds at most
//!   one chunk beyond what it has already sent (behavior change vs the
//!   original protocol, which allocated the full declared length up
//!   front);
//! * a body that is not valid UTF-8/JSON for the expected type is
//!   fully consumed before [`WireError::Malformed`] is reported —
//!   the stream stays in sync;
//! * [`WireError::Truncated`] / [`WireError::Io`] are fatal: the
//!   stream position is unknown, so the connection must drop.

use bas_sketch::{CounterMatrix, Dense, SketchParams};
use std::io::{Read, Write};

/// Default per-frame size cap (bytes). Large enough for any plane
/// transfer the test/bench configurations ship, small enough that a
/// hostile length prefix cannot make the server allocate unboundedly.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Hard bound on how much over-declared length the reader will drain,
/// as a multiple of its `max_len` cap: a declaration beyond
/// `max_len · DRAIN_BUDGET_MULTIPLE` is treated as hostile
/// ([`WireError::Abusive`], fatal) rather than read-and-discarded.
pub const DRAIN_BUDGET_MULTIPLE: usize = 4;

/// Step size for incremental body reads: the buffer grows by at most
/// this much beyond the bytes that have actually arrived, so a
/// declared-but-never-sent length cannot reserve memory.
pub const BODY_CHUNK_BYTES: usize = 64 << 10;

/// Framing and codec errors.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended inside a frame (header or body). Fatal: the
    /// next byte's meaning is unknown.
    Truncated {
        /// Bytes the frame declared or the header needs.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A frame declared a body longer than the reader's cap. The body
    /// was drained, so the connection is still in sync.
    FrameTooLarge {
        /// Declared body length.
        len: usize,
        /// The reader's cap.
        max: usize,
    },
    /// A frame declared a body beyond the drain budget
    /// (`max_len ·` [`DRAIN_BUDGET_MULTIPLE`]). Nothing was read past
    /// the header; fatal — a peer declaring lengths this far over the
    /// cap is abusing the drain path, not negotiating a frame size.
    Abusive {
        /// Declared body length.
        len: usize,
        /// The drain budget that was exceeded.
        budget: usize,
    },
    /// The body was not valid UTF-8/JSON for the expected frame type.
    /// The body was fully consumed, so the connection is still in sync.
    Malformed {
        /// Decoder diagnostic.
        detail: String,
    },
    /// An underlying I/O failure. Fatal.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Abusive { len, budget } => {
                write!(
                    f,
                    "frame declares {len} bytes, beyond the {budget}-byte drain budget"
                )
            }
            WireError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether the connection state machine survives this error (the
    /// stream is positioned at the next frame boundary).
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            WireError::FrameTooLarge { .. } | WireError::Malformed { .. }
        )
    }
}

/// Writes one frame: `u32` big-endian body length, then the JSON body.
/// Returns the total bytes written (4 + body).
///
/// # Errors
/// [`WireError::Malformed`] if the value fails to encode,
/// [`WireError::Io`] on write failure.
pub fn write_frame<W: Write, T: serde::Serialize>(w: &mut W, msg: &T) -> Result<usize, WireError> {
    let body = serde_json::to_string(msg).map_err(|e| WireError::Malformed {
        detail: e.to_string(),
    })?;
    let bytes = body.as_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| WireError::FrameTooLarge {
        len: bytes.len(),
        max: u32::MAX as usize,
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    Ok(4 + bytes.len())
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (EOF exactly
/// at a frame boundary); `Ok(Some(_))` is a decoded frame.
///
/// # Errors
/// See [`WireError`]; [`FrameTooLarge`](WireError::FrameTooLarge) and
/// [`Malformed`](WireError::Malformed) leave the stream in sync.
pub fn read_frame<R: Read, T: for<'de> serde::Deserialize<'de>>(
    r: &mut R,
    max_len: usize,
) -> Result<Option<T>, WireError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        0 => return Ok(None),
        4 => {}
        got => return Err(WireError::Truncated { expected: 4, got }),
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_len {
        let budget = max_len.saturating_mul(DRAIN_BUDGET_MULTIPLE);
        if len > budget {
            return Err(WireError::Abusive { len, budget });
        }
        drain(r, len)?;
        return Err(WireError::FrameTooLarge { len, max: max_len });
    }
    let body = read_body(r, len)?;
    let text = std::str::from_utf8(&body).map_err(|e| WireError::Malformed {
        detail: format!("non-UTF-8 body: {e}"),
    })?;
    serde_json::from_str(text)
        .map(Some)
        .map_err(|e| WireError::Malformed {
            detail: e.to_string(),
        })
}

/// Reads a `len`-byte body incrementally: the buffer grows in
/// [`BODY_CHUNK_BYTES`] steps as bytes actually arrive, so a peer
/// declaring a large length and trickling (or never sending) the body
/// pins at most one chunk beyond what it has delivered.
fn read_body<R: Read>(r: &mut R, len: usize) -> Result<Vec<u8>, WireError> {
    let mut body = Vec::with_capacity(len.min(BODY_CHUNK_BYTES));
    while body.len() < len {
        let take = (len - body.len()).min(BODY_CHUNK_BYTES);
        let old = body.len();
        body.resize(old + take, 0);
        let got = read_exact_or_eof(r, &mut body[old..])?;
        body.truncate(old + got);
        if got < take {
            return Err(WireError::Truncated {
                expected: len,
                got: body.len(),
            });
        }
    }
    Ok(body)
}

/// Fills `buf` as far as the stream allows; returns the bytes read
/// (short only at EOF).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(filled)
}

/// Reads and discards `len` bytes in bounded chunks (never allocating
/// more than one chunk), keeping the stream positioned at the next
/// frame after an oversized declaration.
fn drain<R: Read>(r: &mut R, len: usize) -> Result<(), WireError> {
    let mut rest = len;
    let mut chunk = [0u8; 8192];
    while rest > 0 {
        let take = rest.min(chunk.len());
        let got = read_exact_or_eof(r, &mut chunk[..take])?;
        if got == 0 {
            return Err(WireError::Truncated {
                expected: len,
                got: len - rest,
            });
        }
        rest -= got;
    }
    Ok(())
}

// ---- request frames ----

/// A client request. One frame per request; every request gets exactly
/// one [`Response`] frame.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Batched ingest for one tenant; admission-controlled
    /// (`Admitted` / `Busy` / `Shed`).
    Ingest(IngestFrame),
    /// Apply the tenant's buffered updates now.
    Flush(TenantRef),
    /// Close the tenant's current interval (flush + seal + quota
    /// reset).
    AdvanceInterval(TenantRef),
    /// Since-boot point estimate (audited when the tenant's spec asks
    /// for it).
    Point(PointQuery),
    /// Point estimate within the tenant's current window.
    WindowPoint(PointQuery),
    /// Since-boot heavy hitters at threshold `phi`.
    HeavyHitters(HeavyHittersQuery),
    /// Heavy hitters within the tenant's current window.
    WindowHeavyHitters(HeavyHittersQuery),
    /// Since-boot range sum (range-sum tenants only).
    RangeSum(RangeQuery),
    /// Range sum within the tenant's current window.
    WindowRangeSum(RangeQuery),
    /// Per-tenant serving statistics.
    Stats(TenantRef),
    /// Seal and export the tenant's planes for a rebalance.
    Export(TenantRef),
    /// Install an exported tenant on this fabric.
    Install(TenantTransfer),
    /// Register a fresh (empty) tenant from its spec; the ring picks
    /// the shard. Answered with [`Response::Installed`].
    Register(TenantSpec),
}

/// Names a tenant.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantRef {
    /// Tenant id.
    pub tenant: u64,
}

/// A batch of `(item, delta)` updates for one tenant.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IngestFrame {
    /// Tenant id.
    pub tenant: u64,
    /// The updates, in stream order.
    pub updates: Vec<(u64, f64)>,
}

/// A point query.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PointQuery {
    /// Tenant id.
    pub tenant: u64,
    /// Item to estimate.
    pub item: u64,
}

/// A heavy-hitters query.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HeavyHittersQuery {
    /// Tenant id.
    pub tenant: u64,
    /// Threshold in `(0, 1)`: report items with estimate ≥ `phi·mass`.
    pub phi: f64,
}

/// An inclusive range-sum query.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RangeQuery {
    /// Tenant id.
    pub tenant: u64,
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

// ---- tenant configuration (rides in Install frames) ----

/// Which sketch family serves the tenant's metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MetricKind {
    /// Point-frequency / heavy-hitter serving (Count-Median).
    Frequency,
    /// Dyadic range-sum serving (the Count-Median stack).
    RangeSum,
}

/// A window length in intervals (payload for the windowed
/// [`ServingMode`]s; a struct because the wire derive supports newtype
/// variants, not struct variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WindowLen {
    /// Window length in intervals (≥ 1).
    pub intervals: u64,
}

/// How much history the tenant's queries cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ServingMode {
    /// Since-boot accumulator.
    Unbounded,
    /// Tumbling buckets of the given length.
    Tumbling(WindowLen),
    /// Sliding window of the given length.
    Sliding(WindowLen),
    /// Seed-rotating robustness plane (frequency metric only). Pinned
    /// to its shard: generations carry heterogeneous seeds, so its
    /// planes cannot be shipped as one linear transfer.
    Rotating(WindowLen),
}

/// Per-tenant serving configuration: identity, sketch seed, serving
/// mode, and the admission-control knobs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantSpec {
    /// Tenant id (unique per fabric).
    pub tenant: u64,
    /// Sketch master seed — distinct per tenant, so tenants are
    /// hash-isolated even at equal shapes.
    pub seed: u64,
    /// Sketch family.
    pub metric: MetricKind,
    /// History scope.
    pub mode: ServingMode,
    /// Bound on buffered-but-unflushed updates; ingest beyond it gets
    /// [`Response::Busy`] until a flush drains the backlog. Must be
    /// ≥ 1.
    pub queue_capacity: u64,
    /// Updates admitted per interval; beyond it ingest gets
    /// [`Response::Shed`] until the interval advances. Must be ≥ 1.
    pub interval_quota: u64,
    /// Per-key audit budget for point queries (0 = unaudited): the
    /// adaptive-adversary defense from the robustness plane, applied
    /// per tenant.
    pub audit_limit: u64,
}

impl TenantSpec {
    /// A frequency tenant with unbounded serving and effectively-open
    /// admission knobs — the base most tests start from.
    pub fn frequency(tenant: u64, seed: u64) -> Self {
        Self {
            tenant,
            seed,
            metric: MetricKind::Frequency,
            mode: ServingMode::Unbounded,
            queue_capacity: 1 << 20,
            interval_quota: u64::MAX,
            audit_limit: 0,
        }
    }

    /// A range-sum tenant with unbounded serving.
    pub fn range_sum(tenant: u64, seed: u64) -> Self {
        Self {
            metric: MetricKind::RangeSum,
            ..Self::frequency(tenant, seed)
        }
    }

    /// Sets the serving mode.
    pub fn with_mode(mut self, mode: ServingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the ingest-queue bound.
    pub fn with_queue_capacity(mut self, capacity: u64) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the per-interval admission quota.
    pub fn with_interval_quota(mut self, quota: u64) -> Self {
        self.interval_quota = quota;
        self
    }

    /// Sets the per-key audit budget (0 disables auditing).
    pub fn with_audit_limit(mut self, limit: u64) -> Self {
        self.audit_limit = limit;
        self
    }
}

/// A tenant shipped between shards: spec + stream position + the
/// cumulative counter plane(s) + every retained seal. Counters only —
/// the destination rebuilds hashers deterministically from
/// `params.seed`, and linearity makes the rebuilt engine bit-for-bit.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantTransfer {
    /// The tenant's serving configuration.
    pub spec: TenantSpec,
    /// Sketch shape + seed the planes were built under (validated
    /// against the destination fabric's template on install).
    pub params: SketchParams,
    /// Interval in progress at export time.
    pub interval: u64,
    /// Updates applied to the cumulative plane.
    pub applied: u64,
    /// Total delta mass applied.
    pub mass: f64,
    /// The cumulative plane: one matrix for frequency tenants, one per
    /// dyadic level for range-sum tenants.
    pub cumulative: Vec<CounterMatrix<f64, Dense>>,
    /// Retained sealed planes, oldest first.
    pub seals: Vec<SealFrame>,
}

/// One sealed cumulative plane with its bookkeeping.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SealFrame {
    /// Interval this seal closed.
    pub interval: u64,
    /// Updates applied as of the seal.
    pub applied: u64,
    /// Mass applied as of the seal.
    pub mass: f64,
    /// The sealed plane(s), same layout as
    /// [`TenantTransfer::cumulative`].
    pub planes: Vec<CounterMatrix<f64, Dense>>,
}

// ---- response frames ----

/// A server response; exactly one per [`Request`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// The ingest batch was admitted and buffered.
    Admitted(AdmitReceipt),
    /// **Backpressure**: the batch would overflow the tenant's ingest
    /// queue. Nothing was admitted; flush (or wait for the server to)
    /// and retry.
    Busy(BusyReceipt),
    /// **Load shedding**: the batch would exceed the tenant's
    /// per-interval quota. Nothing was admitted; the quota resets when
    /// the interval advances.
    Shed(ShedReceipt),
    /// Reply to [`Request::Flush`].
    Flushed(FlushReceipt),
    /// Reply to [`Request::AdvanceInterval`].
    Sealed(SealReceipt),
    /// A scalar answer (point / window-point / range-sum queries).
    Value(ValueReply),
    /// A heavy-hitters answer.
    HeavyHitters(HeavyHittersReply),
    /// Reply to [`Request::Stats`].
    Stats(StatsReply),
    /// Reply to [`Request::Export`].
    Exported(TenantTransfer),
    /// Reply to [`Request::Install`].
    Installed(InstallReceipt),
    /// Any rejection: unknown tenant, invalid query parameters, audit
    /// refusal, protocol error.
    Error(ErrorReply),
}

/// Receipt for an admitted ingest batch.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdmitReceipt {
    /// Tenant id.
    pub tenant: u64,
    /// Updates now buffered (≤ the tenant's queue capacity).
    pub pending: u64,
}

/// Backpressure receipt: retry after a flush.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BusyReceipt {
    /// Tenant id.
    pub tenant: u64,
    /// Updates currently buffered.
    pub pending: u64,
    /// The tenant's queue bound.
    pub capacity: u64,
}

/// Shed receipt: retry next interval.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShedReceipt {
    /// Tenant id.
    pub tenant: u64,
    /// Updates already admitted this interval.
    pub admitted: u64,
    /// The tenant's per-interval quota.
    pub quota: u64,
}

/// Flush receipt.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlushReceipt {
    /// Tenant id.
    pub tenant: u64,
    /// Updates applied across all completed flushes.
    pub applied: u64,
}

/// Interval-advance receipt.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SealReceipt {
    /// Tenant id.
    pub tenant: u64,
    /// The interval just closed.
    pub sealed_interval: u64,
}

/// A scalar query answer.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ValueReply {
    /// Tenant id.
    pub tenant: u64,
    /// The estimate.
    pub value: f64,
}

/// A heavy-hitters answer: `(item, estimate)` sorted by decreasing
/// estimate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HeavyHittersReply {
    /// Tenant id.
    pub tenant: u64,
    /// The heavy items with their estimates.
    pub items: Vec<(u64, f64)>,
}

/// Per-tenant serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatsReply {
    /// Tenant id.
    pub tenant: u64,
    /// Shard currently hosting the tenant.
    pub shard: u64,
    /// Updates applied in completed flushes.
    pub applied: u64,
    /// Total delta mass applied.
    pub mass: f64,
    /// Updates buffered but not yet flushed.
    pub pending: u64,
    /// Updates admitted in the current interval (quota bookkeeping).
    pub admitted_in_interval: u64,
    /// Interval currently accepting updates.
    pub interval: u64,
}

/// Install receipt.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InstallReceipt {
    /// Tenant id.
    pub tenant: u64,
    /// Shard the tenant was installed on.
    pub shard: u64,
}

/// A typed rejection.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ErrorReply {
    /// Stable machine-readable code: `unknown_tenant`, `bad_query`,
    /// `audit_rejected`, `unsupported`, `protocol`, `tenant_exists`,
    /// `incompatible`.
    pub code: String,
    /// Human-readable diagnostic.
    pub detail: String,
}

impl ErrorReply {
    /// Builds an error reply.
    pub fn new(code: &str, detail: impl Into<String>) -> Self {
        Self {
            code: code.to_string(),
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T>(value: &T) -> T
    where
        T: serde::Serialize + for<'de> serde::Deserialize<'de>,
    {
        let mut buf = Vec::new();
        write_frame(&mut buf, value).unwrap();
        let mut cursor = &buf[..];
        read_frame::<_, T>(&mut cursor, MAX_FRAME_BYTES)
            .unwrap()
            .unwrap()
    }

    #[test]
    fn request_frames_round_trip() {
        let reqs = vec![
            Request::Ping,
            Request::Ingest(IngestFrame {
                tenant: 3,
                updates: vec![(1, 2.0), (7, -1.5)],
            }),
            Request::Flush(TenantRef { tenant: 3 }),
            Request::Point(PointQuery { tenant: 3, item: 9 }),
            Request::HeavyHitters(HeavyHittersQuery {
                tenant: 3,
                phi: 0.1,
            }),
            Request::WindowRangeSum(RangeQuery {
                tenant: 4,
                lo: 2,
                hi: 8,
            }),
        ];
        for req in &reqs {
            assert_eq!(&roundtrip(req), req);
        }
    }

    #[test]
    fn transfer_frames_round_trip_bit_for_bit() {
        let mut plane = CounterMatrix::<f64, Dense>::new(4, 2);
        plane.add(0, 1, 3.5);
        plane.add(1, 3, -2.25);
        let transfer = TenantTransfer {
            spec: TenantSpec::frequency(11, 42)
                .with_mode(ServingMode::Sliding(WindowLen { intervals: 3 })),
            params: SketchParams::new(100, 4, 2).with_seed(42),
            interval: 5,
            applied: 17,
            mass: 12.25,
            cumulative: vec![plane.clone()],
            seals: vec![SealFrame {
                interval: 4,
                applied: 10,
                mass: 8.0,
                planes: vec![plane],
            }],
        };
        let back = roundtrip(&Response::Exported(transfer.clone()));
        assert_eq!(back, Response::Exported(transfer));
    }

    #[test]
    fn clean_eof_is_none() {
        let mut empty: &[u8] = &[];
        assert!(read_frame::<_, Request>(&mut empty, 1024)
            .unwrap()
            .is_none());
    }

    #[test]
    fn truncated_header_and_body_are_fatal() {
        let mut short: &[u8] = &[0, 0];
        match read_frame::<_, Request>(&mut short, 1024) {
            Err(WireError::Truncated {
                expected: 4,
                got: 2,
            }) => {}
            other => panic!("{other:?}"),
        }
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = &buf[..];
        let err = read_frame::<_, Request>(&mut cursor, 1024).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
        assert!(!err.is_recoverable());
    }

    #[test]
    fn oversized_frames_drain_and_stay_in_sync() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping).unwrap(); // frame 1: tiny cap will reject
        write_frame(&mut buf, &Request::Flush(TenantRef { tenant: 1 })).unwrap();
        let mut cursor = &buf[..];
        let err = read_frame::<_, Request>(&mut cursor, 2).unwrap_err();
        assert!(matches!(err, WireError::FrameTooLarge { .. }));
        assert!(err.is_recoverable());
        // The next frame reads cleanly: the oversized body was drained.
        let next = read_frame::<_, Request>(&mut cursor, 1024)
            .unwrap()
            .unwrap();
        assert_eq!(next, Request::Flush(TenantRef { tenant: 1 }));
    }

    /// Delivers its inner bytes at most `step` bytes per `read` call —
    /// the trickle pattern a hostile peer (or a congested link) shows.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        step: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.step.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn trickled_frames_decode_bit_for_bit() {
        let req = Request::Ingest(IngestFrame {
            tenant: 9,
            updates: (0..200).map(|i| (i as u64, i as f64 + 0.5)).collect(),
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        for step in [1, 3, 7] {
            let mut r = Trickle {
                data: &buf,
                pos: 0,
                step,
            };
            let back: Request = read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap();
            assert_eq!(back, req, "step {step}");
        }
    }

    #[test]
    fn declared_but_unsent_bodies_are_truncated_not_preallocated() {
        // A 10 MiB declaration backed by 100 actual bytes: the reader
        // must report exactly how much arrived (the incremental path —
        // the old code allocated all 10 MiB before reading a byte).
        let mut buf = (10_485_760u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&[0x41; 100]);
        match read_frame::<_, Request>(&mut &buf[..], MAX_FRAME_BYTES) {
            Err(WireError::Truncated { expected, got }) => {
                assert_eq!(expected, 10_485_760);
                assert_eq!(got, 100);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn declarations_beyond_the_drain_budget_are_fatal() {
        let max = 1024usize;
        let budget = max * DRAIN_BUDGET_MULTIPLE;
        // Just past the budget: fatal, and nothing past the header is
        // read (the body bytes are still on the stream).
        let mut buf = ((budget as u32) + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 32]);
        let mut cursor = &buf[..];
        match read_frame::<_, Request>(&mut cursor, max) {
            Err(e @ WireError::Abusive { len, budget: b }) => {
                assert_eq!(len, budget + 1);
                assert_eq!(b, budget);
                assert!(!e.is_recoverable());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(cursor.len(), 32, "abusive declarations must not drain");

        // Exactly at the budget: still the recoverable drain path.
        let mut buf = (budget as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&vec![0u8; budget]);
        write_frame(&mut buf, &Request::Ping).unwrap();
        let mut cursor = &buf[..];
        let err = read_frame::<_, Request>(&mut cursor, max).unwrap_err();
        assert!(matches!(err, WireError::FrameTooLarge { .. }));
        assert!(err.is_recoverable());
        let next: Request = read_frame(&mut cursor, max).unwrap().unwrap();
        assert_eq!(next, Request::Ping);
    }

    #[test]
    fn corrupt_bodies_are_recoverable_malformed_errors() {
        let body = b"not json";
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(body);
        write_frame(&mut buf, &Request::Ping).unwrap();
        let mut cursor = &buf[..];
        let err = read_frame::<_, Request>(&mut cursor, 1024).unwrap_err();
        assert!(matches!(err, WireError::Malformed { .. }));
        assert!(err.is_recoverable());
        let next = read_frame::<_, Request>(&mut cursor, 1024)
            .unwrap()
            .unwrap();
        assert_eq!(next, Request::Ping);
    }
}
