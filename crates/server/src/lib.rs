//! # bas-server — the multi-tenant serving fabric
//!
//! `bas-serve` serves **one** sketch to live queries; this crate
//! serves **many** — a long-running fabric hosting one
//! `QueryEngine`/`RotatingEngine` per tenant×metric, behind a wire
//! protocol. Four planes:
//!
//! * **Placement** ([`placement`]) — tenants map to engine shards by
//!   weighted rendezvous hashing ([`PlacementRing`]), with Lamport &
//!   Veach's [`jump_hash`] as the unweighted baseline. Placement is a
//!   pure function of `(tenant, ring)`: every node computes the same
//!   answer, load is proportional to shard weight, and membership
//!   changes move only the tenants they must.
//! * **Wire protocol** ([`wire`]) — `u32` length-prefixed frames over
//!   the workspace's existing serde wire format. One [`Request`] in,
//!   one [`Response`] out; oversized and corrupt frames are drained
//!   and answered with typed errors, so a hostile client can neither
//!   desync nor crash the connection loop ([`connection`]).
//! * **Admission control** ([`Fabric::handle`]) — each tenant's spec
//!   carries a queue bound and a per-interval quota. Ingest beyond the
//!   bound gets [`Response::Busy`] (retry after flush); beyond the
//!   quota gets [`Response::Shed`] (retry next interval). A rejected
//!   batch admits nothing, and one tenant's saturation never touches
//!   its neighbors' answers — the isolation the conformance suite
//!   pins down.
//! * **Rebalance by linearity** — moving a tenant ships only its
//!   counter planes through the wire format (metered on a
//!   [`CommMeter`](bas_distributed::CommMeter)); the destination
//!   rebuilds hashers from the tenant's seed and absorbs the planes
//!   by sketch linearity. A moved tenant answers **bit-for-bit** like
//!   one that never moved — the paper's linearity property doing
//!   operational work.
//!
//! The fabric is deliberately transport-agnostic: [`serve_connection`]
//! speaks through any `Read`/`Write` pair, so the same loop runs over
//! TCP, unix sockets, or the in-memory buffers the test planes use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;

pub mod connection;
pub mod fabric;
pub mod listener;
pub mod persist;
pub mod placement;
pub mod wire;

pub use connection::{
    call, call_with_retry, serve_connection, Client, IngestBatcher, RetryError, RetryPolicy,
};
pub use fabric::{Fabric, FabricConfig, FabricError, RebalanceReport, TenantMove};
pub use listener::{
    ConnectionError, Daemon, DaemonConfig, Deadlines, SharedFabric, ShutdownReport,
};
pub use persist::{recover, Journal, JournalRecord, ShardRecord};
pub use placement::{jump_hash, PlacementRing, ShardWeight};
pub use wire::{
    read_frame, write_frame, ErrorReply, IngestFrame, MetricKind, Request, Response, ServingMode,
    TenantRef, TenantSpec, TenantTransfer, WindowLen, WireError, MAX_FRAME_BYTES,
};
