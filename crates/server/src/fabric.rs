//! The multi-tenant serving fabric: shards of per-tenant engines,
//! placed by the rendezvous ring, fed and queried through the wire
//! protocol's request/response frames, with admission control and
//! live rebalance.
//!
//! The fabric is the server's single-threaded control plane: every
//! request funnels through [`Fabric::handle`], which owns placement
//! lookup, admission (quota → [`Response::Shed`], queue bound →
//! [`Response::Busy`]), and dispatch into the tenant's engine. The
//! engines themselves fan ingest across worker shards internally, so
//! one fabric instance still exercises the concurrent ingest path.
//!
//! **Rebalance by linearity.** Moving a tenant ships its counter
//! planes — never its hashers — through the real wire format
//! (serialize, frame, deframe, deserialize, with the byte volume
//! metered on the fabric's [`CommMeter`]). The destination rebuilds
//! the hashers deterministically from the tenant's seed and absorbs
//! the planes by linearity, so a moved tenant answers **bit-for-bit**
//! like one that never moved.

use crate::engine::EngineSlot;
use crate::placement::PlacementRing;
use crate::wire::{
    self, AdmitReceipt, BusyReceipt, ErrorReply, FlushReceipt, HeavyHittersReply, IngestFrame,
    InstallReceipt, Request, Response, SealReceipt, ShedReceipt, StatsReply, TenantRef, TenantSpec,
    TenantTransfer, ValueReply,
};
use bas_distributed::CommMeter;
use bas_sketch::SketchParams;
use std::collections::BTreeMap;

/// Fabric-wide configuration shared by every tenant engine.
///
/// For new deployments, build the template with
/// [`HashKind::OneHash`](bas_hash::HashKind::OneHash) — one digest per
/// item with rows re-keyed from it, so the batch kernels on the ingest
/// path hoist the hash out of the row loop (`bas-serverd` defaults to
/// it). The classical kinds stay available for paper-conformance runs
/// and for fabrics that must stay bit-for-bit with existing journals
/// and golden vectors.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Sketch shape template. Each tenant's engine is built from this
    /// template reseeded with the tenant's own seed, so all tenants
    /// share a shape (transfers stay compatible) while staying
    /// hash-isolated.
    pub params: SketchParams,
    /// Ingest worker shards per tenant engine.
    pub workers: usize,
    /// Per-frame byte cap applied when shipping transfers.
    pub max_frame_bytes: usize,
}

impl FabricConfig {
    /// A config with the given sketch shape, one ingest worker, and
    /// the default frame cap.
    pub fn new(params: SketchParams) -> Self {
        Self {
            params,
            workers: 1,
            max_frame_bytes: wire::MAX_FRAME_BYTES,
        }
    }

    /// Sets the ingest worker count per tenant engine.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

/// One tenant's fabric-side state: spec, quota bookkeeping, engine.
#[derive(Debug)]
struct Tenant {
    spec: TenantSpec,
    admitted_in_interval: u64,
    slot: EngineSlot,
}

/// A record of one tenant move in a [`RebalanceReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantMove {
    /// The tenant that moved.
    pub tenant: u64,
    /// Shard it left.
    pub from: u64,
    /// Shard it landed on.
    pub to: u64,
}

/// What a shard add/remove did to tenant placement.
#[derive(Debug, Clone, Default)]
pub struct RebalanceReport {
    /// Tenants shipped to a new shard, in tenant-id order.
    pub moved: Vec<TenantMove>,
    /// Rotating tenants whose ring placement changed but which stayed
    /// put (they are pinned to their shard).
    pub pinned: Vec<u64>,
    /// Wire bytes shipped (each transfer is framed once and counted
    /// once; the meter records the same volume as upload + download).
    pub bytes_shipped: u64,
}

/// The serving fabric: a placement ring over engine shards.
#[derive(Debug)]
pub struct Fabric {
    config: FabricConfig,
    ring: PlacementRing,
    /// Tenants per shard (`BTreeMap` for deterministic rebalance
    /// order).
    shards: BTreeMap<u64, BTreeMap<u64, Tenant>>,
    /// Tenant → hosting shard.
    assignments: BTreeMap<u64, u64>,
    meter: CommMeter,
}

fn unknown_tenant(tenant: u64) -> ErrorReply {
    ErrorReply::new(
        "unknown_tenant",
        format!("tenant {tenant} is not registered"),
    )
}

/// An internal-consistency failure: the placement map and the shard
/// map disagree about where a tenant lives.
///
/// These states are unreachable through the public API, but a
/// connection-per-thread daemon cannot afford to panic on them — a
/// panic kills the worker thread and poisons the shared fabric lock
/// for every other connection. Every structural lookup therefore
/// surfaces the disagreement as a typed error, which [`Fabric::handle`]
/// converts into a [`Response::Error`] with code `fabric_inconsistent`
/// so the one affected request fails while the daemon keeps serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// The placement map names a shard the shard map does not contain.
    ShardMissing {
        /// Tenant whose lookup failed.
        tenant: u64,
        /// The shard the placement map claims hosts it.
        shard: u64,
    },
    /// The shard exists but does not host the tenant assigned to it.
    TenantMissing {
        /// Tenant whose lookup failed.
        tenant: u64,
        /// The shard the placement map claims hosts it.
        shard: u64,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ShardMissing { tenant, shard } => write!(
                f,
                "placement maps tenant {tenant} to shard {shard}, which is not in the shard map"
            ),
            Self::TenantMissing { tenant, shard } => write!(
                f,
                "placement maps tenant {tenant} to shard {shard}, which does not host it"
            ),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<FabricError> for ErrorReply {
    fn from(e: FabricError) -> Self {
        ErrorReply::new("fabric_inconsistent", e.to_string())
    }
}

impl Fabric {
    /// An empty fabric (no shards, no tenants).
    pub fn new(config: FabricConfig) -> Self {
        Self {
            config,
            ring: PlacementRing::new(),
            shards: BTreeMap::new(),
            assignments: BTreeMap::new(),
            meter: CommMeter::new(),
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The placement ring.
    pub fn ring(&self) -> &PlacementRing {
        &self.ring
    }

    /// The transfer-volume meter (rebalance traffic only; queries and
    /// ingest handled in-process are not metered).
    pub fn meter(&self) -> &CommMeter {
        &self.meter
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.assignments.len()
    }

    /// The shard currently hosting a tenant.
    pub fn shard_of(&self, tenant: u64) -> Option<u64> {
        self.assignments.get(&tenant).copied()
    }

    /// Tenant ids hosted on a shard, in id order.
    pub fn tenants_on(&self, shard: u64) -> Vec<u64> {
        self.shards
            .get(&shard)
            .map(|t| t.keys().copied().collect())
            .unwrap_or_default()
    }

    // ---- shard membership ----

    /// Adds a shard with the given capacity weight and rebalances:
    /// every movable tenant whose ring placement changed is shipped to
    /// the new shard through the wire format. Rotating tenants stay
    /// pinned and are listed in the report.
    ///
    /// # Errors
    /// `tenant_exists`-style `ErrorReply` with code `protocol` if the
    /// shard id is already present or the weight is invalid.
    pub fn add_shard(&mut self, id: u64, weight: f64) -> Result<RebalanceReport, ErrorReply> {
        if self.ring.contains(id) {
            return Err(ErrorReply::new(
                "protocol",
                format!("shard {id} is already in the ring"),
            ));
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(ErrorReply::new(
                "protocol",
                format!("shard weight must be positive and finite, got {weight}"),
            ));
        }
        self.ring.add_shard(id, weight);
        self.shards.entry(id).or_default();
        self.rebalance_to_ring()
    }

    /// Removes a shard and rebalances its tenants onto the survivors.
    ///
    /// # Errors
    /// `unsupported` if the shard hosts pinned (rotating) tenants, or
    /// if it hosts any tenant and no other shard remains.
    pub fn remove_shard(&mut self, id: u64) -> Result<RebalanceReport, ErrorReply> {
        if !self.ring.contains(id) {
            return Err(ErrorReply::new(
                "protocol",
                format!("shard {id} is not in the ring"),
            ));
        }
        let (hosted, pinned): (Vec<u64>, Vec<u64>) = match self.shards.get(&id) {
            Some(shard) => (
                shard.keys().copied().collect(),
                shard
                    .iter()
                    .filter(|(_, t)| !t.slot.movable())
                    .map(|(tenant, _)| *tenant)
                    .collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        if !pinned.is_empty() {
            return Err(ErrorReply::new(
                "unsupported",
                format!("shard {id} hosts pinned rotating tenants {pinned:?}"),
            ));
        }
        if !hosted.is_empty() && self.ring.len() == 1 {
            return Err(ErrorReply::new(
                "unsupported",
                format!(
                    "cannot remove the last shard while {} tenants remain",
                    hosted.len()
                ),
            ));
        }
        self.ring.remove_shard(id);
        let report = self.rebalance_to_ring()?;
        let drained = self.shards.remove(&id);
        debug_assert!(drained.map(|t| t.is_empty()).unwrap_or(true));
        Ok(report)
    }

    /// Ships every movable tenant whose current shard disagrees with
    /// the ring to where the ring says it belongs.
    fn rebalance_to_ring(&mut self) -> Result<RebalanceReport, ErrorReply> {
        let mut report = RebalanceReport::default();
        let tenants: Vec<u64> = self.assignments.keys().copied().collect();
        for tenant in tenants {
            let from = self.assignments[&tenant];
            let to = self
                .ring
                .place(tenant)
                .ok_or_else(|| ErrorReply::new("protocol", "the ring has no shards"))?;
            if to == from {
                continue;
            }
            let movable = self
                .shards
                .get(&from)
                .ok_or(FabricError::ShardMissing {
                    tenant,
                    shard: from,
                })?
                .get(&tenant)
                .ok_or(FabricError::TenantMissing {
                    tenant,
                    shard: from,
                })?
                .slot
                .movable();
            if !movable {
                report.pinned.push(tenant);
                continue;
            }
            let bytes = self.ship_tenant(tenant, from, to)?;
            report.bytes_shipped += bytes;
            report.moved.push(TenantMove { tenant, from, to });
        }
        Ok(report)
    }

    /// Moves one tenant between shards through the real wire format:
    /// export, frame, meter the bytes, deframe, install, and only then
    /// drop the source engine. Returns the framed byte count.
    fn ship_tenant(&mut self, tenant: u64, from: u64, to: u64) -> Result<u64, ErrorReply> {
        let transfer = {
            let t = self
                .shards
                .get_mut(&from)
                .ok_or(FabricError::ShardMissing {
                    tenant,
                    shard: from,
                })?
                .get_mut(&tenant)
                .ok_or(FabricError::TenantMissing {
                    tenant,
                    shard: from,
                })?;
            t.slot
                .export(t.spec, self.config.params.with_seed(t.spec.seed))?
        };
        let mut buf = Vec::new();
        let bytes = wire::write_frame(&mut buf, &transfer)
            .map_err(|e| ErrorReply::new("protocol", format!("tenant {tenant} export: {e}")))?;
        let words = (bytes as u64).div_ceil(8);
        self.meter.record_upload(words);
        let shipped: TenantTransfer = wire::read_frame(&mut &buf[..], self.config.max_frame_bytes)
            .map_err(|e| ErrorReply::new("protocol", format!("tenant {tenant} transfer: {e}")))?
            .ok_or_else(|| ErrorReply::new("protocol", "empty transfer stream"))?;
        self.meter.record_download(words);
        let slot = EngineSlot::install(&shipped, self.config.params.clone(), self.config.workers)?;
        let spec = shipped.spec;
        let admitted = {
            let old = self
                .shards
                .get_mut(&from)
                .ok_or(FabricError::ShardMissing {
                    tenant,
                    shard: from,
                })?
                .remove(&tenant)
                .ok_or(FabricError::TenantMissing {
                    tenant,
                    shard: from,
                })?;
            old.admitted_in_interval
        };
        self.shards.entry(to).or_default().insert(
            tenant,
            Tenant {
                spec,
                admitted_in_interval: admitted,
                slot,
            },
        );
        self.assignments.insert(tenant, to);
        Ok(bytes as u64)
    }

    // ---- tenant lifecycle ----

    /// Registers a fresh (empty) tenant; the ring picks its shard.
    /// Returns the hosting shard id.
    ///
    /// # Errors
    /// `tenant_exists` if the id is taken, `protocol` if the ring is
    /// empty, `bad_query`/`unsupported` for invalid specs.
    pub fn register_tenant(&mut self, spec: TenantSpec) -> Result<u64, ErrorReply> {
        if self.assignments.contains_key(&spec.tenant) {
            return Err(ErrorReply::new(
                "tenant_exists",
                format!("tenant {} is already registered", spec.tenant),
            ));
        }
        let shard = self
            .ring
            .place(spec.tenant)
            .ok_or_else(|| ErrorReply::new("protocol", "the ring has no shards"))?;
        let slot = EngineSlot::build(&spec, self.config.params.clone(), self.config.workers)?;
        self.shards.entry(shard).or_default().insert(
            spec.tenant,
            Tenant {
                spec,
                admitted_in_interval: 0,
                slot,
            },
        );
        self.assignments.insert(spec.tenant, shard);
        Ok(shard)
    }

    /// Installs a tenant from an exported transfer (the receiving half
    /// of a cross-fabric move). The ring picks the shard; the engine is
    /// rebuilt by linearity.
    pub fn install_tenant(&mut self, transfer: &TenantTransfer) -> Result<u64, ErrorReply> {
        let tenant = transfer.spec.tenant;
        if self.assignments.contains_key(&tenant) {
            return Err(ErrorReply::new(
                "tenant_exists",
                format!("tenant {tenant} is already registered"),
            ));
        }
        let shard = self
            .ring
            .place(tenant)
            .ok_or_else(|| ErrorReply::new("protocol", "the ring has no shards"))?;
        let slot = EngineSlot::install(transfer, self.config.params.clone(), self.config.workers)?;
        self.shards.entry(shard).or_default().insert(
            tenant,
            Tenant {
                spec: transfer.spec,
                admitted_in_interval: 0,
                slot,
            },
        );
        self.assignments.insert(tenant, shard);
        Ok(shard)
    }

    /// The registered spec of a tenant, if any.
    pub fn tenant_spec(&self, tenant: u64) -> Option<TenantSpec> {
        self.tenant(tenant).ok().map(|t| t.spec)
    }

    /// All registered tenant ids, in id order.
    pub fn tenant_ids(&self) -> Vec<u64> {
        self.assignments.keys().copied().collect()
    }

    /// Closes the open interval of every tenant (flushing pending
    /// updates first, exactly as [`Request::AdvanceInterval`] does) and
    /// resets quota bookkeeping. Graceful shutdown calls this so a
    /// restarted daemon resumes on a clean interval boundary. Returns
    /// `(tenant, sealed_interval)` pairs in tenant order for
    /// journaling.
    pub fn quiesce(&mut self) -> Vec<(u64, u64)> {
        let mut sealed = Vec::new();
        for shard in self.shards.values_mut() {
            for (tenant, t) in shard.iter_mut() {
                let interval = t.slot.advance_interval();
                t.admitted_in_interval = 0;
                sealed.push((*tenant, interval));
            }
        }
        sealed.sort_unstable();
        sealed
    }

    /// Test-only: points the placement map at `shard` for `tenant`
    /// without moving the engine, manufacturing exactly the
    /// placement/shard-map disagreement [`FabricError`] guards against.
    #[doc(hidden)]
    pub fn desync_assignment_for_test(&mut self, tenant: u64, shard: u64) {
        self.assignments.insert(tenant, shard);
    }

    fn tenant(&self, tenant: u64) -> Result<&Tenant, ErrorReply> {
        let shard = *self
            .assignments
            .get(&tenant)
            .ok_or_else(|| unknown_tenant(tenant))?;
        Ok(self
            .shards
            .get(&shard)
            .ok_or(FabricError::ShardMissing { tenant, shard })?
            .get(&tenant)
            .ok_or(FabricError::TenantMissing { tenant, shard })?)
    }

    fn tenant_mut(&mut self, tenant: u64) -> Result<&mut Tenant, ErrorReply> {
        let shard = *self
            .assignments
            .get(&tenant)
            .ok_or_else(|| unknown_tenant(tenant))?;
        Ok(self
            .shards
            .get_mut(&shard)
            .ok_or(FabricError::ShardMissing { tenant, shard })?
            .get_mut(&tenant)
            .ok_or(FabricError::TenantMissing { tenant, shard })?)
    }

    // ---- the request plane ----

    /// Handles one request frame; every outcome — including every
    /// rejection — is a response frame, never a panic.
    pub fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Ingest(frame) => self.ingest(frame),
            Request::Flush(TenantRef { tenant }) => self.with_tenant_mut(tenant, |t| {
                Response::Flushed(FlushReceipt {
                    tenant,
                    applied: t.slot.flush(),
                })
            }),
            Request::AdvanceInterval(TenantRef { tenant }) => self.with_tenant_mut(tenant, |t| {
                let sealed_interval = t.slot.advance_interval();
                t.admitted_in_interval = 0;
                Response::Sealed(SealReceipt {
                    tenant,
                    sealed_interval,
                })
            }),
            Request::Point(q) => self.value(q.tenant, |t| {
                check_item(q.tenant, q.item, t.slot.universe())?;
                t.slot.point(q.tenant, q.item)
            }),
            Request::WindowPoint(q) => self.value(q.tenant, |t| {
                check_item(q.tenant, q.item, t.slot.universe())?;
                t.slot.window_point(q.tenant, q.item)
            }),
            Request::HeavyHitters(q) => {
                self.heavy(q.tenant, |t| t.slot.heavy_hitters(q.tenant, q.phi))
            }
            Request::WindowHeavyHitters(q) => {
                self.heavy(q.tenant, |t| t.slot.window_heavy_hitters(q.tenant, q.phi))
            }
            Request::RangeSum(q) => {
                self.value(q.tenant, |t| t.slot.range_sum(q.tenant, q.lo, q.hi))
            }
            Request::WindowRangeSum(q) => {
                self.value(q.tenant, |t| t.slot.window_range_sum(q.tenant, q.lo, q.hi))
            }
            Request::Stats(TenantRef { tenant }) => match self.tenant(tenant) {
                Err(e) => Response::Error(e),
                Ok(t) => Response::Stats(StatsReply {
                    tenant,
                    shard: self.assignments[&tenant],
                    applied: t.slot.applied(),
                    mass: t.slot.mass(),
                    pending: t.slot.pending(),
                    admitted_in_interval: t.admitted_in_interval,
                    interval: t.slot.interval(),
                }),
            },
            Request::Export(TenantRef { tenant }) => {
                let params = self.config.params.clone();
                self.with_tenant_mut(tenant, |t| {
                    match t.slot.export(t.spec, params.with_seed(t.spec.seed)) {
                        Ok(transfer) => Response::Exported(transfer),
                        Err(e) => Response::Error(e),
                    }
                })
            }
            Request::Install(transfer) => match self.install_tenant(&transfer) {
                Ok(shard) => Response::Installed(InstallReceipt {
                    tenant: transfer.spec.tenant,
                    shard,
                }),
                Err(e) => Response::Error(e),
            },
            Request::Register(spec) => match self.register_tenant(spec) {
                Ok(shard) => Response::Installed(InstallReceipt {
                    tenant: spec.tenant,
                    shard,
                }),
                Err(e) => Response::Error(e),
            },
        }
    }

    /// Admission control, checked in policy order: the interval quota
    /// first (Shed — retry next interval), then the queue bound (Busy —
    /// retry after a flush). A rejected batch admits **nothing**.
    fn ingest(&mut self, frame: IngestFrame) -> Response {
        let tenant = frame.tenant;
        let k = frame.updates.len() as u64;
        self.with_tenant_mut(tenant, |t| {
            if t.admitted_in_interval.saturating_add(k) > t.spec.interval_quota {
                return Response::Shed(ShedReceipt {
                    tenant,
                    admitted: t.admitted_in_interval,
                    quota: t.spec.interval_quota,
                });
            }
            let pending = t.slot.pending();
            if pending.saturating_add(k) > t.spec.queue_capacity {
                return Response::Busy(BusyReceipt {
                    tenant,
                    pending,
                    capacity: t.spec.queue_capacity,
                });
            }
            t.slot.extend_from_slice(&frame.updates);
            t.admitted_in_interval += k;
            Response::Admitted(AdmitReceipt {
                tenant,
                pending: t.slot.pending(),
            })
        })
    }

    fn with_tenant_mut(
        &mut self,
        tenant: u64,
        f: impl FnOnce(&mut Tenant) -> Response,
    ) -> Response {
        match self.tenant_mut(tenant) {
            Ok(t) => f(t),
            Err(e) => Response::Error(e),
        }
    }

    fn value(&self, tenant: u64, f: impl FnOnce(&Tenant) -> Result<f64, ErrorReply>) -> Response {
        match self.tenant(tenant).and_then(f) {
            Ok(value) => Response::Value(ValueReply { tenant, value }),
            Err(e) => Response::Error(e),
        }
    }

    fn heavy(
        &self,
        tenant: u64,
        f: impl FnOnce(&Tenant) -> Result<Vec<(u64, f64)>, ErrorReply>,
    ) -> Response {
        match self.tenant(tenant).and_then(f) {
            Ok(items) => Response::HeavyHitters(HeavyHittersReply { tenant, items }),
            Err(e) => Response::Error(e),
        }
    }
}

fn check_item(tenant: u64, item: u64, universe: u64) -> Result<(), ErrorReply> {
    if item >= universe {
        return Err(ErrorReply::new(
            "bad_query",
            format!("tenant {tenant}: item {item} is outside the universe [0, {universe})"),
        ));
    }
    Ok(())
}
