//! Per-tenant engine slots: one `QueryEngine`/`RotatingEngine` per
//! tenant×metric, dispatched over the closed set of serving shapes the
//! wire protocol's [`TenantSpec`] can name.
//!
//! The fabric stores tenants as [`EngineSlot`]s; everything
//! engine-shaped (sketch family × serving policy × audit) is resolved
//! here, so `fabric.rs` only speaks in terms of tenants and requests.

use crate::wire::{
    ErrorReply, MetricKind, SealFrame, ServingMode, TenantSpec, TenantTransfer, WindowLen,
};
use bas_hash::SeedSchedule;
use bas_serve::{
    AuditPolicy, AuditedHandle, QueryEngine, QueryError, RotatingEngine, Sliding, Tumbling,
    Unbounded,
};
use bas_sketch::{
    Atomic, AtomicCountMedian, CounterMatrix, Dense, HeavyHitter, RangeSumSketch, Reseedable,
    SketchParams,
};

type FreqEngine<P> = QueryEngine<AtomicCountMedian, P>;
type RangeEngine<P> = QueryEngine<RangeSumSketch<Atomic>, P>;

/// The closed set of engine shapes a [`TenantSpec`] can ask for.
#[derive(Debug)]
pub(crate) enum TenantEngine {
    FreqUnbounded(FreqEngine<Unbounded>),
    FreqTumbling(FreqEngine<Tumbling>),
    FreqSliding(FreqEngine<Sliding>),
    RangeUnbounded(RangeEngine<Unbounded>),
    RangeTumbling(RangeEngine<Tumbling>),
    RangeSliding(RangeEngine<Sliding>),
    /// The seed-rotating robustness plane; window-scoped only and
    /// pinned to its shard (generations carry heterogeneous seeds, so
    /// its planes are not one linear transfer).
    Rotating(Box<RotatingEngine<AtomicCountMedian>>),
}

/// Dispatches over the six `QueryEngine` variants with one body and
/// the rotating variant with another.
macro_rules! dispatch {
    ($slot:expr, $e:ident => $body:expr, $rot:ident => $rot_body:expr) => {
        match $slot {
            TenantEngine::FreqUnbounded($e) => $body,
            TenantEngine::FreqTumbling($e) => $body,
            TenantEngine::FreqSliding($e) => $body,
            TenantEngine::RangeUnbounded($e) => $body,
            TenantEngine::RangeTumbling($e) => $body,
            TenantEngine::RangeSliding($e) => $body,
            TenantEngine::Rotating($rot) => $rot_body,
        }
    };
}

/// Dispatches over the windowed (`Tumbling`/`Sliding`) variants only.
macro_rules! dispatch_windowed {
    ($slot:expr, $e:ident => $body:expr, else => $other:expr) => {
        match $slot {
            TenantEngine::FreqTumbling($e) => $body,
            TenantEngine::FreqSliding($e) => $body,
            TenantEngine::RangeTumbling($e) => $body,
            TenantEngine::RangeSliding($e) => $body,
            _ => $other,
        }
    };
}

/// One tenant's serving state: the engine plus the optional audited
/// point-query handles its spec asked for.
#[derive(Debug)]
pub(crate) struct EngineSlot {
    engine: TenantEngine,
    audit_freq: Option<AuditedHandle<AtomicCountMedian>>,
    audit_range: Option<AuditedHandle<RangeSumSketch<Atomic>>>,
}

fn query_error(tenant: u64, e: QueryError) -> ErrorReply {
    let code = match e {
        QueryError::AuditRejected { .. } => "audit_rejected",
        _ => "bad_query",
    };
    ErrorReply::new(code, format!("tenant {tenant}: {e}"))
}

fn unsupported(tenant: u64, what: &str) -> ErrorReply {
    ErrorReply::new("unsupported", format!("tenant {tenant}: {what}"))
}

fn hh_pairs(items: Vec<HeavyHitter>) -> Vec<(u64, f64)> {
    items.into_iter().map(|h| (h.item, h.estimate)).collect()
}

fn window_len(tenant: u64, len: WindowLen) -> Result<usize, ErrorReply> {
    if len.intervals == 0 {
        return Err(ErrorReply::new(
            "bad_query",
            format!("tenant {tenant}: window length must be at least 1 interval"),
        ));
    }
    usize::try_from(len.intervals).map_err(|_| {
        ErrorReply::new(
            "bad_query",
            format!("tenant {tenant}: window length {} overflows", len.intervals),
        )
    })
}

impl EngineSlot {
    /// Builds a fresh (empty) engine for `spec`, shaped by the
    /// fabric's parameter template reseeded with the tenant's seed.
    /// The engine's internal flush threshold is pinned to the spec's
    /// queue capacity, so the buffered backlog can never exceed the
    /// admission bound even without an explicit flush.
    pub(crate) fn build(
        spec: &TenantSpec,
        template: SketchParams,
        workers: usize,
    ) -> Result<Self, ErrorReply> {
        let tenant = spec.tenant;
        if spec.queue_capacity == 0 || spec.interval_quota == 0 {
            return Err(ErrorReply::new(
                "bad_query",
                format!("tenant {tenant}: queue capacity and interval quota must be at least 1"),
            ));
        }
        let params = template.with_seed(spec.seed);
        let threshold = usize::try_from(spec.queue_capacity).unwrap_or(usize::MAX);
        let engine = match (spec.metric, spec.mode) {
            (MetricKind::Frequency, ServingMode::Unbounded) => TenantEngine::FreqUnbounded(
                QueryEngine::with_policy(
                    workers,
                    AtomicCountMedian::with_backend(&params),
                    Unbounded,
                )
                .with_flush_threshold(threshold),
            ),
            (MetricKind::Frequency, ServingMode::Tumbling(len)) => {
                let policy =
                    Tumbling::new(window_len(tenant, len)?).map_err(|e| query_error(tenant, e))?;
                TenantEngine::FreqTumbling(
                    QueryEngine::with_policy(
                        workers,
                        AtomicCountMedian::with_backend(&params),
                        policy,
                    )
                    .with_flush_threshold(threshold),
                )
            }
            (MetricKind::Frequency, ServingMode::Sliding(len)) => {
                let policy =
                    Sliding::new(window_len(tenant, len)?).map_err(|e| query_error(tenant, e))?;
                TenantEngine::FreqSliding(
                    QueryEngine::with_policy(
                        workers,
                        AtomicCountMedian::with_backend(&params),
                        policy,
                    )
                    .with_flush_threshold(threshold),
                )
            }
            (MetricKind::Frequency, ServingMode::Rotating(len)) => {
                let mut rotating = RotatingEngine::new(
                    workers,
                    AtomicCountMedian::with_backend(&params),
                    SeedSchedule::new(spec.seed),
                    window_len(tenant, len)?,
                )
                .map_err(|e| query_error(tenant, e))?
                .with_flush_threshold(threshold);
                if spec.audit_limit > 0 {
                    rotating = rotating.with_audit(AuditPolicy::new(spec.audit_limit));
                }
                TenantEngine::Rotating(Box::new(rotating))
            }
            (MetricKind::RangeSum, ServingMode::Unbounded) => TenantEngine::RangeUnbounded(
                QueryEngine::with_policy(
                    workers,
                    RangeSumSketch::<Atomic>::with_backend(&params),
                    Unbounded,
                )
                .with_flush_threshold(threshold),
            ),
            (MetricKind::RangeSum, ServingMode::Tumbling(len)) => {
                let policy =
                    Tumbling::new(window_len(tenant, len)?).map_err(|e| query_error(tenant, e))?;
                TenantEngine::RangeTumbling(
                    QueryEngine::with_policy(
                        workers,
                        RangeSumSketch::<Atomic>::with_backend(&params),
                        policy,
                    )
                    .with_flush_threshold(threshold),
                )
            }
            (MetricKind::RangeSum, ServingMode::Sliding(len)) => {
                let policy =
                    Sliding::new(window_len(tenant, len)?).map_err(|e| query_error(tenant, e))?;
                TenantEngine::RangeSliding(
                    QueryEngine::with_policy(
                        workers,
                        RangeSumSketch::<Atomic>::with_backend(&params),
                        policy,
                    )
                    .with_flush_threshold(threshold),
                )
            }
            (MetricKind::RangeSum, ServingMode::Rotating(_)) => {
                return Err(unsupported(
                    tenant,
                    "rotating serving is frequency-metric only",
                ))
            }
        };
        let mut slot = Self {
            engine,
            audit_freq: None,
            audit_range: None,
        };
        if spec.audit_limit > 0 {
            let policy = AuditPolicy::new(spec.audit_limit);
            match &slot.engine {
                TenantEngine::FreqUnbounded(e) => {
                    slot.audit_freq = Some(e.handle().audited(policy))
                }
                TenantEngine::FreqTumbling(e) => slot.audit_freq = Some(e.handle().audited(policy)),
                TenantEngine::FreqSliding(e) => slot.audit_freq = Some(e.handle().audited(policy)),
                TenantEngine::RangeUnbounded(e) => {
                    slot.audit_range = Some(e.handle().audited(policy))
                }
                TenantEngine::RangeTumbling(e) => {
                    slot.audit_range = Some(e.handle().audited(policy))
                }
                TenantEngine::RangeSliding(e) => {
                    slot.audit_range = Some(e.handle().audited(policy))
                }
                TenantEngine::Rotating(_) => {} // audited inside the rotating engine
            }
        }
        Ok(slot)
    }

    // ---- write path ----

    pub(crate) fn extend_from_slice(&mut self, updates: &[(u64, f64)]) {
        dispatch!(&mut self.engine, e => e.extend_from_slice(updates),
                  r => r.extend_from_slice(updates));
    }

    /// Flushes the buffered backlog; returns the applied count.
    pub(crate) fn flush(&mut self) -> u64 {
        dispatch!(&mut self.engine, e => { e.flush(); e.applied() },
                  r => { r.flush(); r.window_applied() })
    }

    /// Closes the interval (flush + seal + audit reset); returns the
    /// sealed interval id.
    pub(crate) fn advance_interval(&mut self) -> u64 {
        let sealed = dispatch!(&mut self.engine, e => e.advance_interval(),
                               r => r.advance_interval());
        // Audit budgets are per plane lifetime: rotation renews them.
        if let Some(a) = &self.audit_freq {
            a.reset();
        }
        if let Some(a) = &self.audit_range {
            a.reset();
        }
        sealed
    }

    // ---- bookkeeping ----

    pub(crate) fn pending(&self) -> u64 {
        dispatch!(&self.engine, e => e.pending() as u64, r => r.pending() as u64)
    }

    pub(crate) fn applied(&self) -> u64 {
        dispatch!(&self.engine, e => e.applied(), r => r.window_applied())
    }

    pub(crate) fn mass(&self) -> f64 {
        dispatch!(&self.engine, e => e.mass(), r => r.window_mass())
    }

    pub(crate) fn interval(&self) -> u64 {
        dispatch!(&self.engine, e => e.interval(), r => r.interval())
    }

    pub(crate) fn universe(&self) -> u64 {
        dispatch!(&self.engine, e => e.sketch().config().n, r => r.live().config().n)
    }

    // ---- queries ----

    /// Since-boot point estimate (window-scoped for rotating tenants,
    /// which retain no since-boot state by design). Audited when the
    /// spec asked for it.
    pub(crate) fn point(&self, tenant: u64, item: u64) -> Result<f64, ErrorReply> {
        if let Some(audit) = &self.audit_freq {
            return audit
                .estimate_live(item)
                .map_err(|e| query_error(tenant, e));
        }
        if let Some(audit) = &self.audit_range {
            return audit
                .estimate_live(item)
                .map_err(|e| query_error(tenant, e));
        }
        dispatch!(&self.engine, e => Ok(e.estimate_live(item)),
                  r => r.audited_window_estimate(item).map_err(|e| query_error(tenant, e)))
    }

    /// Point estimate within the tenant's current window.
    pub(crate) fn window_point(&self, tenant: u64, item: u64) -> Result<f64, ErrorReply> {
        if let TenantEngine::Rotating(r) = &self.engine {
            return r
                .audited_window_estimate(item)
                .map_err(|e| query_error(tenant, e));
        }
        dispatch_windowed!(&self.engine, e => Ok(e.point_in_window(item)),
            else => Err(unsupported(tenant, "unbounded tenants serve no window queries")))
    }

    /// Since-boot heavy hitters (window-scoped for rotating tenants).
    pub(crate) fn heavy_hitters(
        &self,
        tenant: u64,
        phi: f64,
    ) -> Result<Vec<(u64, f64)>, ErrorReply> {
        dispatch!(&self.engine,
            e => e.try_heavy_hitters(phi).map(hh_pairs).map_err(|e| query_error(tenant, e)),
            r => r.window_heavy_hitters(phi).map(hh_pairs).map_err(|e| query_error(tenant, e)))
    }

    /// Heavy hitters within the tenant's current window.
    pub(crate) fn window_heavy_hitters(
        &self,
        tenant: u64,
        phi: f64,
    ) -> Result<Vec<(u64, f64)>, ErrorReply> {
        if let TenantEngine::Rotating(r) = &self.engine {
            return r
                .window_heavy_hitters(phi)
                .map(hh_pairs)
                .map_err(|e| query_error(tenant, e));
        }
        dispatch_windowed!(&self.engine,
            e => e.heavy_hitters_in_window(phi).map(hh_pairs).map_err(|e| query_error(tenant, e)),
            else => Err(unsupported(tenant, "unbounded tenants serve no window queries")))
    }

    /// Since-boot range sum (range-sum tenants only).
    pub(crate) fn range_sum(&self, tenant: u64, lo: u64, hi: u64) -> Result<f64, ErrorReply> {
        match &self.engine {
            TenantEngine::RangeUnbounded(e) => checked_range_sum(tenant, e, lo, hi),
            TenantEngine::RangeTumbling(e) => checked_range_sum(tenant, e, lo, hi),
            TenantEngine::RangeSliding(e) => checked_range_sum(tenant, e, lo, hi),
            _ => Err(unsupported(tenant, "range sums need a range-sum tenant")),
        }
    }

    /// Range sum within the tenant's current window.
    pub(crate) fn window_range_sum(
        &self,
        tenant: u64,
        lo: u64,
        hi: u64,
    ) -> Result<f64, ErrorReply> {
        match &self.engine {
            TenantEngine::RangeTumbling(e) => e
                .range_sum_in_window(lo, hi)
                .map_err(|e| query_error(tenant, e)),
            TenantEngine::RangeSliding(e) => e
                .range_sum_in_window(lo, hi)
                .map_err(|e| query_error(tenant, e)),
            TenantEngine::RangeUnbounded(_) => Err(unsupported(
                tenant,
                "unbounded tenants serve no window queries",
            )),
            _ => Err(unsupported(tenant, "range sums need a range-sum tenant")),
        }
    }

    // ---- rebalance (export / install by linearity) ----

    /// Seals the tenant's state into a wire-shippable transfer: the
    /// cumulative plane(s), every retained seal, and the stream
    /// position. Rotating tenants refuse — their generations carry
    /// heterogeneous seeds, so no single linear merge rebuilds them.
    pub(crate) fn export(
        &mut self,
        spec: TenantSpec,
        params: SketchParams,
    ) -> Result<TenantTransfer, ErrorReply> {
        match &mut self.engine {
            TenantEngine::Rotating(_) => Err(unsupported(
                spec.tenant,
                "rotating tenants are pinned to their shard",
            )),
            TenantEngine::FreqUnbounded(e) => export_freq(e, spec, params),
            TenantEngine::FreqTumbling(e) => export_freq(e, spec, params),
            TenantEngine::FreqSliding(e) => export_freq(e, spec, params),
            TenantEngine::RangeUnbounded(e) => export_range(e, spec, params),
            TenantEngine::RangeTumbling(e) => export_range(e, spec, params),
            TenantEngine::RangeSliding(e) => export_range(e, spec, params),
        }
    }

    /// Rebuilds a tenant from a transfer: fresh engine from the seed,
    /// absorb the cumulative plane by linearity, restore the seals and
    /// the interval id. Bit-for-bit with the exporting engine on
    /// integer-delta streams.
    pub(crate) fn install(
        transfer: &TenantTransfer,
        template: SketchParams,
        workers: usize,
    ) -> Result<Self, ErrorReply> {
        let tenant = transfer.spec.tenant;
        let expected = template.with_seed(transfer.spec.seed);
        if transfer.params != expected {
            return Err(ErrorReply::new(
                "incompatible",
                format!("tenant {tenant}: transfer params do not match this fabric's template"),
            ));
        }
        let mut slot = Self::build(&transfer.spec, template, workers)?;
        let absorb = |what: &str, r: Result<(), bas_sketch::MergeError>| {
            r.map_err(|e| ErrorReply::new("incompatible", format!("tenant {tenant}: {what}: {e}")))
        };
        match &mut slot.engine {
            TenantEngine::Rotating(_) => {
                return Err(unsupported(
                    tenant,
                    "rotating tenants are pinned to their shard",
                ))
            }
            TenantEngine::FreqUnbounded(e) => {
                let plane = single_plane(tenant, &transfer.cumulative)?;
                absorb(
                    "cumulative",
                    e.absorb_cumulative(plane, transfer.applied, transfer.mass),
                )?;
                install_freq_seals(e, tenant, &transfer.seals)?;
                e.restore_interval(transfer.interval);
            }
            TenantEngine::FreqTumbling(e) => {
                let plane = single_plane(tenant, &transfer.cumulative)?;
                absorb(
                    "cumulative",
                    e.absorb_cumulative(plane, transfer.applied, transfer.mass),
                )?;
                install_freq_seals(e, tenant, &transfer.seals)?;
                e.restore_interval(transfer.interval);
            }
            TenantEngine::FreqSliding(e) => {
                let plane = single_plane(tenant, &transfer.cumulative)?;
                absorb(
                    "cumulative",
                    e.absorb_cumulative(plane, transfer.applied, transfer.mass),
                )?;
                install_freq_seals(e, tenant, &transfer.seals)?;
                e.restore_interval(transfer.interval);
            }
            TenantEngine::RangeUnbounded(e) => {
                absorb(
                    "cumulative",
                    e.absorb_cumulative(&transfer.cumulative, transfer.applied, transfer.mass),
                )?;
                for seal in &transfer.seals {
                    e.restore_seal(seal.interval, seal.planes.clone(), seal.applied, seal.mass);
                }
                e.restore_interval(transfer.interval);
            }
            TenantEngine::RangeTumbling(e) => {
                absorb(
                    "cumulative",
                    e.absorb_cumulative(&transfer.cumulative, transfer.applied, transfer.mass),
                )?;
                for seal in &transfer.seals {
                    e.restore_seal(seal.interval, seal.planes.clone(), seal.applied, seal.mass);
                }
                e.restore_interval(transfer.interval);
            }
            TenantEngine::RangeSliding(e) => {
                absorb(
                    "cumulative",
                    e.absorb_cumulative(&transfer.cumulative, transfer.applied, transfer.mass),
                )?;
                for seal in &transfer.seals {
                    e.restore_seal(seal.interval, seal.planes.clone(), seal.applied, seal.mass);
                }
                e.restore_interval(transfer.interval);
            }
        }
        Ok(slot)
    }

    /// Whether this tenant can be rebalanced (rotating tenants are
    /// pinned).
    pub(crate) fn movable(&self) -> bool {
        !matches!(self.engine, TenantEngine::Rotating(_))
    }
}

fn single_plane<'a>(
    tenant: u64,
    planes: &'a [CounterMatrix<f64, Dense>],
) -> Result<&'a CounterMatrix<f64, Dense>, ErrorReply> {
    match planes {
        [one] => Ok(one),
        other => Err(ErrorReply::new(
            "incompatible",
            format!(
                "tenant {tenant}: frequency transfer must carry exactly 1 plane, got {}",
                other.len()
            ),
        )),
    }
}

fn install_freq_seals<P: bas_serve::ServingPolicy>(
    e: &mut FreqEngine<P>,
    tenant: u64,
    seals: &[SealFrame],
) -> Result<(), ErrorReply> {
    for seal in seals {
        let plane = single_plane(tenant, &seal.planes)?;
        e.restore_seal(seal.interval, plane.clone(), seal.applied, seal.mass);
    }
    Ok(())
}

fn checked_range_sum<P: bas_serve::ServingPolicy>(
    tenant: u64,
    e: &RangeEngine<P>,
    lo: u64,
    hi: u64,
) -> Result<f64, ErrorReply> {
    QueryError::check_range(lo, hi, e.sketch().config().n).map_err(|e| query_error(tenant, e))?;
    Ok(e.range_sum(lo, hi))
}

fn export_freq<P: bas_serve::ServingPolicy>(
    e: &mut FreqEngine<P>,
    spec: TenantSpec,
    params: SketchParams,
) -> Result<TenantTransfer, ErrorReply> {
    e.flush();
    let snap = e.pin();
    Ok(TenantTransfer {
        spec,
        params,
        interval: e.interval(),
        applied: snap.applied(),
        mass: snap.mass(),
        cumulative: vec![snap.snapshot().clone()],
        seals: e
            .bank()
            .planes()
            .map(|s| SealFrame {
                interval: s.interval(),
                applied: s.applied(),
                mass: s.mass(),
                planes: vec![s.plane().clone()],
            })
            .collect(),
    })
}

fn export_range<P: bas_serve::ServingPolicy>(
    e: &mut RangeEngine<P>,
    spec: TenantSpec,
    params: SketchParams,
) -> Result<TenantTransfer, ErrorReply> {
    e.flush();
    let snap = e.pin();
    Ok(TenantTransfer {
        spec,
        params,
        interval: e.interval(),
        applied: snap.applied(),
        mass: snap.mass(),
        cumulative: snap.snapshot().clone(),
        seals: e
            .bank()
            .planes()
            .map(|s| SealFrame {
                interval: s.interval(),
                applied: s.applied(),
                mass: s.mass(),
                planes: s.plane().clone(),
            })
            .collect(),
    })
}
