//! The per-connection request loop and its client-side mirror.
//!
//! Transport-agnostic: both ends speak through any `Read`/`Write`
//! pair (a TCP stream, a unix socket, or — as the test planes do — an
//! in-memory byte buffer). The server loop upholds the protocol's
//! one-response-per-request invariant even for malformed input:
//! recoverable wire errors (oversized or corrupt frames) are answered
//! with a `protocol` [`ErrorReply`] frame and the loop continues in
//! sync; only truncation and I/O failures drop the connection.

use crate::fabric::Fabric;
use crate::wire::{
    read_frame, write_frame, ErrorReply, IngestFrame, Request, Response, TenantRef, WireError,
};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Serves requests from `reader`, writing one response per frame to
/// `writer`, until clean end-of-stream. Returns the number of frames
/// answered (including error replies to recoverable protocol abuse).
///
/// # Errors
/// Only fatal wire errors ([`WireError::Truncated`] /
/// [`WireError::Io`]) — the stream position is unknown, so the
/// connection must drop. Recoverable errors were already answered.
pub fn serve_connection<R: Read, W: Write>(
    fabric: &mut Fabric,
    reader: &mut R,
    writer: &mut W,
    max_frame_bytes: usize,
) -> Result<u64, WireError> {
    let mut answered = 0u64;
    loop {
        let response = match read_frame::<R, Request>(reader, max_frame_bytes) {
            Ok(None) => return Ok(answered),
            Ok(Some(req)) => fabric.handle(req),
            Err(e) if e.is_recoverable() => {
                Response::Error(ErrorReply::new("protocol", e.to_string()))
            }
            Err(e) => return Err(e),
        };
        write_frame(writer, &response)?;
        answered += 1;
    }
}

/// Client-side call: writes one request frame and reads the matching
/// response frame.
///
/// # Errors
/// Any [`WireError`], including [`WireError::Truncated`] when the
/// server closed the stream without answering.
pub fn call<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    req: &Request,
    max_frame_bytes: usize,
) -> Result<Response, WireError> {
    write_frame(writer, req)?;
    writer.flush()?;
    read_frame::<R, Response>(reader, max_frame_bytes)?.ok_or(WireError::Truncated {
        expected: 4,
        got: 0,
    })
}

/// Bounded-retry policy for [`Client::call`] /
/// [`call_with_retry`]: exponential backoff with deterministic jitter.
///
/// The backoff before attempt `n` (0-based) is
/// `base_delay · 2ⁿ`, scaled by a jitter factor in `[0.5, 1.5)`
/// derived from [`bas_hash::mix64`] over `(seed, attempt)` — full
/// determinism (no wall-clock entropy) so test runs and incident
/// reproductions see identical schedules — and clamped to
/// `max_delay`.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (the first call plus retries); 0 behaves as 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Cap on any single backoff.
    pub max_delay: Duration,
    /// Jitter seed (vary per client to de-synchronize herds).
    pub seed: u64,
}

impl RetryPolicy {
    /// Defaults: 4 attempts, 10 ms base, 500 ms cap, seed 0.
    pub fn new() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0,
        }
    }

    /// Sets the attempt bound.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts;
        self
    }

    /// Sets the base backoff.
    pub fn with_base_delay(mut self, base_delay: Duration) -> Self {
        self.base_delay = base_delay;
        self
    }

    /// Sets the backoff cap.
    pub fn with_max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The backoff before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doubled = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX));
        // Jitter factor in [0.5, 1.5): top 53 bits of a mix over
        // (seed, attempt), mapped to [0, 1).
        let bits = bas_hash::mix64(self.seed ^ ((attempt as u64) << 32 | 0x9E37));
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = doubled.mul_f64(0.5 + unit);
        jittered.min(self.max_delay)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// Why a retried call ultimately failed.
#[derive(Debug)]
pub enum RetryError {
    /// Every attempt failed; the last wire error is attached.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The error from the final attempt.
        last: WireError,
    },
    /// (Re)connecting failed fatally.
    Connect(io::Error),
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            Self::Connect(e) => write!(f, "connect failed: {e}"),
        }
    }
}

impl std::error::Error for RetryError {}

/// A reconnecting wire client: a connector closure that opens a fresh
/// stream, the current stream (if any), and a [`RetryPolicy`].
///
/// [`call`](Client::call) retries **recoverable** wire errors
/// (oversized/corrupt response frames — the stream is still in sync)
/// on the same connection, and **fatal** errors (truncation, abusive
/// declarations, I/O — stream position unknown) by dropping the
/// stream, backing off, reconnecting, and resending. Application-level
/// rejections ([`Response::Busy`], [`Response::Shed`],
/// [`Response::Error`]) are *answers*, not failures: they are returned
/// as-is — only the caller knows whether an ingest batch is safe to
/// resend.
pub struct Client<S, F> {
    connect: F,
    stream: Option<S>,
    policy: RetryPolicy,
    max_frame_bytes: usize,
}

impl<S: Read + Write, F: FnMut() -> io::Result<S>> Client<S, F> {
    /// A client over a connector closure (e.g.
    /// `|| TcpStream::connect(addr)`).
    pub fn new(connect: F, policy: RetryPolicy, max_frame_bytes: usize) -> Self {
        Self {
            connect,
            stream: None,
            policy,
            max_frame_bytes,
        }
    }

    /// Whether a live stream is currently held.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// One request/response exchange with bounded retries — see the
    /// type docs for the retry/reconnect split.
    ///
    /// # Errors
    /// [`RetryError::Exhausted`] after `max_attempts` failures, or
    /// [`RetryError::Connect`] if (re)connecting itself fails.
    pub fn call(&mut self, req: &Request) -> Result<Response, RetryError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last: Option<WireError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff(attempt - 1));
            }
            if self.stream.is_none() {
                self.stream = Some((self.connect)().map_err(RetryError::Connect)?);
            }
            let stream = self.stream.as_mut().expect("just connected");
            match call_split(stream, req, self.max_frame_bytes) {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_recoverable() => {
                    // The response stream is still in sync: retry on
                    // the same connection.
                    last = Some(e);
                }
                Err(e) => {
                    // Stream position unknown: reconnect before the
                    // next attempt.
                    self.stream = None;
                    last = Some(e);
                }
            }
        }
        Err(RetryError::Exhausted {
            attempts,
            last: last.expect("at least one attempt ran"),
        })
    }
}

/// [`call`] over a single bidirectional stream.
fn call_split<S: Read + Write>(
    stream: &mut S,
    req: &Request,
    max_frame_bytes: usize,
) -> Result<Response, WireError> {
    write_frame(stream, req)?;
    stream.flush()?;
    read_frame::<S, Response>(stream, max_frame_bytes)?.ok_or(WireError::Truncated {
        expected: 4,
        got: 0,
    })
}

/// One-shot convenience over [`Client`]: builds a throwaway client
/// around `connect` and runs a single retried call.
///
/// # Errors
/// See [`Client::call`].
pub fn call_with_retry<S: Read + Write, F: FnMut() -> io::Result<S>>(
    connect: F,
    req: &Request,
    policy: RetryPolicy,
    max_frame_bytes: usize,
) -> Result<Response, RetryError> {
    Client::new(connect, policy, max_frame_bytes).call(req)
}

/// Client-side ingest batching for one tenant: buffers `(item, delta)`
/// updates and ships them as **one [`Request::Ingest`] frame per
/// `max_batch` updates**, so a live stream pays one request/response
/// round trip per batch instead of per arrival. Bigger frames also
/// reach the server as bigger batches, which its engines apply through
/// the blocked batch kernels — the wire tax and the per-update
/// dispatch tax amortize together.
///
/// Backpressure policy: a [`Response::Busy`] answer (the tenant's
/// ingest queue is full) triggers one [`Request::Flush`] followed by a
/// single resend — the flush drains the queue, so the retry normally
/// lands. A second `Busy`, and any [`Response::Shed`] (interval quota;
/// only the next interval clears it), are returned to the caller
/// unretried: nothing was admitted, and only the caller knows whether
/// waiting or dropping is right.
#[derive(Debug)]
pub struct IngestBatcher {
    tenant: u64,
    max_batch: usize,
    buf: Vec<(u64, f64)>,
}

impl IngestBatcher {
    /// A batcher for `tenant`, shipping a frame every `max_batch`
    /// updates (0 behaves as 1).
    pub fn new(tenant: u64, max_batch: usize) -> Self {
        let max_batch = max_batch.max(1);
        Self {
            tenant,
            max_batch,
            buf: Vec::with_capacity(max_batch),
        }
    }

    /// The tenant this batcher feeds.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// Updates buffered but not yet shipped.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Buffers `updates`, shipping a full frame through `client` each
    /// time the buffer reaches `max_batch`. Returns the server's
    /// answers for the frames shipped (empty while everything is still
    /// buffered); an un-admitted answer ([`Response::Busy`] after the
    /// flush-and-retry, [`Response::Shed`], [`Response::Error`]) stops
    /// the shipping early with the unadmitted updates still buffered.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn extend<S: Read + Write, F: FnMut() -> io::Result<S>>(
        &mut self,
        client: &mut Client<S, F>,
        updates: &[(u64, f64)],
    ) -> Result<Vec<Response>, RetryError> {
        let mut answers = Vec::new();
        let mut rest = updates;
        while !rest.is_empty() {
            let take = (self.max_batch - self.buf.len()).min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() < self.max_batch {
                break;
            }
            let resp = self.ship(client)?;
            let admitted = matches!(resp, Response::Admitted(_));
            answers.push(resp);
            if !admitted {
                break;
            }
        }
        Ok(answers)
    }

    /// Ships the buffered partial frame, if any. Call at end of stream
    /// (and check the answer) — dropping the batcher discards whatever
    /// is still buffered.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn finish<S: Read + Write, F: FnMut() -> io::Result<S>>(
        &mut self,
        client: &mut Client<S, F>,
    ) -> Result<Option<Response>, RetryError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        self.ship(client).map(Some)
    }

    /// One frame out of the buffer, with the Busy → flush → resend
    /// step. The buffer is cleared only on admission.
    fn ship<S: Read + Write, F: FnMut() -> io::Result<S>>(
        &mut self,
        client: &mut Client<S, F>,
    ) -> Result<Response, RetryError> {
        let req = Request::Ingest(IngestFrame {
            tenant: self.tenant,
            updates: self.buf.clone(),
        });
        let mut resp = client.call(&req)?;
        if matches!(resp, Response::Busy(_)) {
            client.call(&Request::Flush(TenantRef {
                tenant: self.tenant,
            }))?;
            resp = client.call(&req)?;
        }
        if matches!(resp, Response::Admitted(_)) {
            self.buf.clear();
        }
        Ok(resp)
    }
}
