//! The per-connection request loop and its client-side mirror.
//!
//! Transport-agnostic: both ends speak through any `Read`/`Write`
//! pair (a TCP stream, a unix socket, or — as the test planes do — an
//! in-memory byte buffer). The server loop upholds the protocol's
//! one-response-per-request invariant even for malformed input:
//! recoverable wire errors (oversized or corrupt frames) are answered
//! with a `protocol` [`ErrorReply`] frame and the loop continues in
//! sync; only truncation and I/O failures drop the connection.

use crate::fabric::Fabric;
use crate::wire::{read_frame, write_frame, ErrorReply, Request, Response, WireError};
use std::io::{Read, Write};

/// Serves requests from `reader`, writing one response per frame to
/// `writer`, until clean end-of-stream. Returns the number of frames
/// answered (including error replies to recoverable protocol abuse).
///
/// # Errors
/// Only fatal wire errors ([`WireError::Truncated`] /
/// [`WireError::Io`]) — the stream position is unknown, so the
/// connection must drop. Recoverable errors were already answered.
pub fn serve_connection<R: Read, W: Write>(
    fabric: &mut Fabric,
    reader: &mut R,
    writer: &mut W,
    max_frame_bytes: usize,
) -> Result<u64, WireError> {
    let mut answered = 0u64;
    loop {
        let response = match read_frame::<R, Request>(reader, max_frame_bytes) {
            Ok(None) => return Ok(answered),
            Ok(Some(req)) => fabric.handle(req),
            Err(e) if e.is_recoverable() => {
                Response::Error(ErrorReply::new("protocol", e.to_string()))
            }
            Err(e) => return Err(e),
        };
        write_frame(writer, &response)?;
        answered += 1;
    }
}

/// Client-side call: writes one request frame and reads the matching
/// response frame.
///
/// # Errors
/// Any [`WireError`], including [`WireError::Truncated`] when the
/// server closed the stream without answering.
pub fn call<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    req: &Request,
    max_frame_bytes: usize,
) -> Result<Response, WireError> {
    write_frame(writer, req)?;
    writer.flush()?;
    read_frame::<R, Response>(reader, max_frame_bytes)?.ok_or(WireError::Truncated {
        expected: 4,
        got: 0,
    })
}
