//! The daemon front end: a real socket accept loop over the fabric.
//!
//! [`serve_connection`](crate::serve_connection) is transport-agnostic
//! but single-threaded and in-process; this module turns it into a
//! long-running daemon:
//!
//! * **Transports** — [`Daemon::bind_tcp`] and [`Daemon::bind_unix`]
//!   accept on TCP or unix-domain sockets through the same loop
//!   ([`AnyListener`]/[`AnyStream`]).
//! * **Thread model** — one accept thread plus one thread per
//!   connection, all dispatching into a [`SharedFabric`]: a single
//!   `Mutex<Fabric>` held **only for the in-memory dispatch of one
//!   request** — never across socket reads or writes. Contention is
//!   therefore bounded by per-request CPU (buffer append for ingest,
//!   `O(depth · width)` for the heaviest snapshot queries), not by
//!   client latency; a slow or stalled peer holds no lock. Each
//!   tenant's engine still fans ingest across its own worker shards
//!   internally, so the global lock serializes only the fabric's
//!   control plane, exactly as `Fabric::handle`'s single-threaded
//!   contract requires.
//! * **Deadlines** — each connection carries read/write/idle
//!   [`Deadlines`]. *Idle* bounds the quiet gap **between** frames;
//!   *read*/*write* bound the per-syscall progress gap **inside** a
//!   frame (a peer must keep bytes moving, not finish by a wall-clock
//!   instant). Expiry is a typed [`ConnectionError`], and the
//!   connection drops.
//! * **Graceful shutdown** — [`Daemon::shutdown`] stops accepting,
//!   lets every in-flight frame finish (connections notice the flag at
//!   their next between-frames poll), seals each tenant's open
//!   interval via [`Fabric::quiesce`], journals the advances and a
//!   compacted checkpoint when persistence is attached, and joins all
//!   threads before returning.
//!
//! Killing the process instead of calling [`Daemon::shutdown`] is the
//! crash case the [`persist`](crate::persist) journal exists for: on
//! restart, [`recover`](crate::persist::recover) rebuilds the tenant
//! topology from the journal and the daemon resumes serving.

use crate::fabric::Fabric;
use crate::persist::{Journal, JournalRecord};
use crate::wire::{self, Request, Response, TenantRef, WireError};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Per-connection deadlines. `None` disables the respective deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadlines {
    /// Maximum per-syscall progress gap while **reading** a frame: the
    /// longest the peer may go silent mid-frame.
    pub read: Option<Duration>,
    /// Maximum per-syscall progress gap while **writing** a response.
    pub write: Option<Duration>,
    /// Maximum quiet time **between** frames before the connection is
    /// closed as idle.
    pub idle: Option<Duration>,
}

impl Deadlines {
    /// Daemon defaults: 10 s progress gaps, 5 min idle.
    pub fn new() -> Self {
        Self {
            read: Some(Duration::from_secs(10)),
            write: Some(Duration::from_secs(10)),
            idle: Some(Duration::from_secs(300)),
        }
    }

    /// No deadlines at all (trusted in-process tests).
    pub const NONE: Self = Self {
        read: None,
        write: None,
        idle: None,
    };

    /// Sets the mid-frame read deadline.
    pub fn with_read(mut self, read: Option<Duration>) -> Self {
        self.read = read;
        self
    }

    /// Sets the response write deadline.
    pub fn with_write(mut self, write: Option<Duration>) -> Self {
        self.write = write;
        self
    }

    /// Sets the between-frames idle deadline.
    pub fn with_idle(mut self, idle: Option<Duration>) -> Self {
        self.idle = idle;
        self
    }
}

impl Default for Deadlines {
    fn default() -> Self {
        Self::new()
    }
}

/// Daemon configuration: frame cap, deadlines, poll quantum, journal
/// compaction thresholds.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Per-frame byte cap handed to the wire layer.
    pub max_frame_bytes: usize,
    /// Per-connection deadlines.
    pub deadlines: Deadlines,
    /// How often idle connections and the accept loop re-check the
    /// shutdown flag (also the granularity of the idle deadline).
    pub poll_interval: Duration,
    /// Compact the journal once it holds this many records beyond the
    /// last compaction (`None` = compact only at graceful shutdown).
    pub compact_after_records: Option<u64>,
    /// Compact the journal once it grows this many bytes beyond the
    /// last compaction (`None` = compact only at graceful shutdown).
    pub compact_after_bytes: Option<u64>,
}

impl DaemonConfig {
    /// Defaults: the wire frame cap, default deadlines, 20 ms polls,
    /// shutdown-only compaction.
    pub fn new() -> Self {
        Self {
            max_frame_bytes: wire::MAX_FRAME_BYTES,
            deadlines: Deadlines::new(),
            poll_interval: Duration::from_millis(20),
            compact_after_records: None,
            compact_after_bytes: None,
        }
    }

    /// Sets the frame cap.
    pub fn with_max_frame_bytes(mut self, max: usize) -> Self {
        self.max_frame_bytes = max;
        self
    }

    /// Sets the deadlines.
    pub fn with_deadlines(mut self, deadlines: Deadlines) -> Self {
        self.deadlines = deadlines;
        self
    }

    /// Sets the poll quantum.
    pub fn with_poll_interval(mut self, poll: Duration) -> Self {
        self.poll_interval = poll;
        self
    }

    /// Compacts the journal after this many appended records.
    pub fn with_compact_after_records(mut self, records: Option<u64>) -> Self {
        self.compact_after_records = records;
        self
    }

    /// Compacts the journal after this many appended bytes.
    pub fn with_compact_after_bytes(mut self, bytes: Option<u64>) -> Self {
        self.compact_after_bytes = bytes;
        self
    }
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Why a daemon connection ended.
#[derive(Debug)]
pub enum ConnectionError {
    /// No frame arrived within the idle deadline.
    IdleTimeout {
        /// The configured idle limit.
        limit: Duration,
    },
    /// The peer stalled mid-frame beyond the read deadline.
    ReadTimeout {
        /// The configured per-gap read limit.
        limit: Duration,
    },
    /// The peer stopped draining its responses beyond the write
    /// deadline.
    WriteTimeout {
        /// The configured per-gap write limit.
        limit: Duration,
    },
    /// A fatal wire error (truncation, abusive declaration, I/O).
    Wire(WireError),
}

impl std::fmt::Display for ConnectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::IdleTimeout { limit } => write!(f, "connection idle beyond {limit:?}"),
            Self::ReadTimeout { limit } => write!(f, "mid-frame read stalled beyond {limit:?}"),
            Self::WriteTimeout { limit } => write!(f, "response write stalled beyond {limit:?}"),
            Self::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for ConnectionError {}

impl From<WireError> for ConnectionError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// The fabric behind a mutex, shareable across connection threads.
///
/// The lock is held only for [`Fabric::handle`]'s in-memory dispatch —
/// frames are read and written **outside** the critical section, so no
/// client controls how long the lock is held. A poisoned lock (a panic
/// in a holder) is recovered by taking the inner value: `handle` is
/// panic-free by construction (every failure is a typed
/// `Response::Error`, see [`FabricError`](crate::fabric::FabricError)),
/// so the state under a poison marker is still consistent.
#[derive(Debug, Clone)]
pub struct SharedFabric(Arc<Mutex<Fabric>>);

impl SharedFabric {
    /// Wraps a fabric for shared dispatch.
    pub fn new(fabric: Fabric) -> Self {
        Self(Arc::new(Mutex::new(fabric)))
    }

    /// Runs `f` under the fabric lock.
    pub fn with<T>(&self, f: impl FnOnce(&mut Fabric) -> T) -> T {
        let mut guard = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }

    /// Dispatches one request under the lock.
    pub fn handle(&self, req: Request) -> Response {
        self.with(|fabric| fabric.handle(req))
    }

    /// Unwraps the fabric if no other handle is alive.
    pub fn try_into_inner(self) -> Result<Fabric, Self> {
        match Arc::try_unwrap(self.0) {
            Ok(mutex) => Ok(mutex.into_inner().unwrap_or_else(PoisonError::into_inner)),
            Err(arc) => Err(Self(arc)),
        }
    }
}

/// The service a connection thread dispatches into: the shared fabric
/// plus the optional journal, so every durable effect of a request is
/// recorded as soon as the fabric acknowledges it.
#[derive(Debug)]
struct Service {
    fabric: SharedFabric,
    journal: Option<Mutex<Journal>>,
    compact_after_records: Option<u64>,
    compact_after_bytes: Option<u64>,
}

impl Service {
    /// Dispatches one request and journals its durable effect (tenant
    /// registration / installation, interval advance) on success.
    /// When the journal crosses a compaction threshold the append also
    /// triggers an inline [`Journal::compact`] — the lock order
    /// (journal, then fabric) matches [`Daemon::shutdown`], and
    /// `compact` is atomic (write-to-temp + rename), so a kill at any
    /// point leaves a recoverable journal on disk.
    fn handle(&self, req: Request) -> Response {
        let record = match &req {
            Request::Register(spec) => Some(JournalRecord::TenantRegistered(*spec)),
            Request::Install(transfer) => Some(JournalRecord::Checkpoint(transfer.clone())),
            Request::AdvanceInterval(r) => Some(JournalRecord::IntervalAdvanced(*r)),
            _ => None,
        };
        let resp = self.fabric.handle(req);
        if let (Some(record), Some(journal)) = (record, &self.journal) {
            let acknowledged = !matches!(resp, Response::Error(_));
            if acknowledged {
                let mut journal = journal.lock().unwrap_or_else(PoisonError::into_inner);
                // Journal I/O failure must not corrupt the serving
                // path; the daemon keeps answering and the operator
                // sees the failure at shutdown/compaction.
                let _ = journal.append(&record);
                let over_records = self
                    .compact_after_records
                    .is_some_and(|limit| journal.records() >= limit);
                let over_bytes = self
                    .compact_after_bytes
                    .is_some_and(|limit| journal.bytes() >= limit);
                if over_records || over_bytes {
                    let _ = self.fabric.with(|f| journal.compact(f));
                }
            }
        }
        resp
    }
}

/// A listening socket of either family.
#[derive(Debug)]
pub enum AnyListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Unix(UnixListener),
}

impl AnyListener {
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Self::Tcp(l) => l.set_nonblocking(nb),
            Self::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<AnyStream> {
        match self {
            Self::Tcp(l) => l.accept().map(|(s, _)| {
                // One small request frame ↔ one small response frame:
                // Nagle + delayed ACK would serialize that at ~40 ms a
                // round trip, so turn it off (best-effort).
                let _ = s.set_nodelay(true);
                AnyStream::Tcp(s)
            }),
            Self::Unix(l) => l.accept().map(|(s, _)| AnyStream::Unix(s)),
        }
    }

    fn local_tcp_addr(&self) -> Option<SocketAddr> {
        match self {
            Self::Tcp(l) => l.local_addr().ok(),
            Self::Unix(_) => None,
        }
    }
}

/// A connected stream of either family.
#[derive(Debug)]
pub enum AnyStream {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    Unix(UnixStream),
}

impl AnyStream {
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_nonblocking(nb),
            Self::Unix(s) => s.set_nonblocking(nb),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_read_timeout(t),
            Self::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_write_timeout(t),
            Self::Unix(s) => s.set_write_timeout(t),
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            Self::Unix(s) => s.flush(),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// A stream with a one-byte pushback slot: the between-frames poll
/// reads (not peeks — `UnixStream::peek` is not yet stable) the first
/// byte of the next frame under a short timeout, and the `Read` impl
/// hands that byte back before touching the socket, so the frame
/// decoder sees an intact stream.
struct PolledStream {
    stream: AnyStream,
    pushback: Option<u8>,
}

impl Read for PolledStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(byte) = self.pushback.take() {
            if buf.is_empty() {
                self.pushback = Some(byte);
                return Ok(0);
            }
            buf[0] = byte;
            return Ok(1);
        }
        self.stream.read(buf)
    }
}

/// What the between-frames poll decided.
enum PollOutcome {
    /// The next frame's first byte arrived (stashed in the pushback
    /// slot): read the frame.
    Frame,
    /// Clean end of stream, or shutdown with the stream quiet.
    Done,
}

/// Waits between frames: returns when a byte arrives, the peer hangs
/// up, the idle deadline expires, or shutdown is flagged while the
/// stream is quiet (an in-flight frame — its first byte already
/// stashed — still gets served; that is the drain guarantee).
fn poll_between_frames(
    polled: &mut PolledStream,
    deadlines: &Deadlines,
    poll: Duration,
    shutdown: &AtomicBool,
) -> Result<PollOutcome, ConnectionError> {
    debug_assert!(polled.pushback.is_none());
    polled
        .stream
        .set_read_timeout(Some(poll))
        .map_err(|e| ConnectionError::Wire(WireError::from(e)))?;
    let start = Instant::now();
    let mut probe = [0u8; 1];
    loop {
        match polled.stream.read(&mut probe) {
            Ok(0) => return Ok(PollOutcome::Done),
            Ok(_) => {
                polled.pushback = Some(probe[0]);
                return Ok(PollOutcome::Frame);
            }
            Err(e) if is_timeout(&e) => {
                if let Some(limit) = deadlines.idle {
                    if start.elapsed() >= limit {
                        return Err(ConnectionError::IdleTimeout { limit });
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ConnectionError::Wire(WireError::from(e))),
        }
        if shutdown.load(Ordering::Acquire) {
            return Ok(PollOutcome::Done);
        }
    }
}

/// Serves one daemon connection until clean EOF, shutdown, a deadline
/// expiry, or a fatal wire error. Returns the frames answered.
fn serve_daemon_connection(
    stream: AnyStream,
    service: &Service,
    config: &DaemonConfig,
    shutdown: &AtomicBool,
) -> Result<u64, ConnectionError> {
    let mut polled = PolledStream {
        stream,
        pushback: None,
    };
    let mut answered = 0u64;
    loop {
        match poll_between_frames(
            &mut polled,
            &config.deadlines,
            config.poll_interval,
            shutdown,
        )? {
            PollOutcome::Done => return Ok(answered),
            PollOutcome::Frame => {}
        }
        // A frame has started: read it under the progress-gap read
        // deadline (each socket read may stall at most this long),
        // answer under the write deadline.
        polled
            .stream
            .set_read_timeout(config.deadlines.read)
            .map_err(|e| ConnectionError::Wire(WireError::from(e)))?;
        let response = match wire::read_frame::<_, Request>(&mut polled, config.max_frame_bytes) {
            Ok(None) => return Ok(answered),
            Ok(Some(req)) => service.handle(req),
            Err(WireError::Io(e)) if is_timeout(&e) => {
                return Err(ConnectionError::ReadTimeout {
                    limit: config.deadlines.read.unwrap_or_default(),
                });
            }
            Err(e) if e.is_recoverable() => {
                Response::Error(wire::ErrorReply::new("protocol", e.to_string()))
            }
            Err(e) => return Err(ConnectionError::Wire(e)),
        };
        polled
            .stream
            .set_write_timeout(config.deadlines.write)
            .map_err(|e| ConnectionError::Wire(WireError::from(e)))?;
        match wire::write_frame(&mut polled.stream, &response) {
            Ok(_) => {}
            Err(WireError::Io(e)) if is_timeout(&e) => {
                return Err(ConnectionError::WriteTimeout {
                    limit: config.deadlines.write.unwrap_or_default(),
                });
            }
            Err(e) => return Err(ConnectionError::Wire(e)),
        }
        polled
            .stream
            .flush()
            .map_err(|e| ConnectionError::Wire(WireError::from(e)))?;
        answered += 1;
    }
}

/// What a graceful shutdown did.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
    /// Frames answered across all connections.
    pub frames: u64,
    /// `(tenant, sealed_interval)` pairs from the quiesce step.
    pub sealed: Vec<(u64, u64)>,
    /// The recovered fabric, for in-process reuse after shutdown.
    pub fabric: Fabric,
}

/// A running daemon: accept thread + one thread per connection.
#[derive(Debug)]
pub struct Daemon {
    fabric: SharedFabric,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    frames: Arc<AtomicU64>,
    connections: Arc<AtomicU64>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    local_addr: Option<SocketAddr>,
}

impl Daemon {
    /// Binds a TCP daemon. `addr` may be `"127.0.0.1:0"` to let the OS
    /// pick a port — read it back with [`local_addr`](Self::local_addr).
    pub fn bind_tcp<A: ToSocketAddrs>(
        addr: A,
        fabric: Fabric,
        journal: Option<Journal>,
        config: DaemonConfig,
    ) -> io::Result<Self> {
        let listener = AnyListener::Tcp(TcpListener::bind(addr)?);
        Self::start(listener, fabric, journal, config)
    }

    /// Binds a unix-domain daemon at `path` (removed first if a stale
    /// socket file is present).
    pub fn bind_unix<P: AsRef<Path>>(
        path: P,
        fabric: Fabric,
        journal: Option<Journal>,
        config: DaemonConfig,
    ) -> io::Result<Self> {
        let path = path.as_ref();
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = AnyListener::Unix(UnixListener::bind(path)?);
        Self::start(listener, fabric, journal, config)
    }

    fn start(
        listener: AnyListener,
        fabric: Fabric,
        journal: Option<Journal>,
        config: DaemonConfig,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_tcp_addr();
        let fabric = SharedFabric::new(fabric);
        let service = Arc::new(Service {
            fabric: fabric.clone(),
            journal: journal.map(Mutex::new),
            compact_after_records: config.compact_after_records,
            compact_after_bytes: config.compact_after_bytes,
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let frames = Arc::new(AtomicU64::new(0));
        let connections = Arc::new(AtomicU64::new(0));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let frames = Arc::clone(&frames);
            let connections = Arc::clone(&connections);
            let workers = Arc::clone(&workers);
            let poll = config.poll_interval;
            thread::spawn(move || {
                while !shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok(stream) => {
                            connections.fetch_add(1, Ordering::Relaxed);
                            let service = Arc::clone(&service);
                            let shutdown = Arc::clone(&shutdown);
                            let frames = Arc::clone(&frames);
                            let config = config.clone();
                            let handle = thread::spawn(move || {
                                let _ = stream.set_nonblocking(false);
                                match serve_daemon_connection(stream, &service, &config, &shutdown)
                                {
                                    Ok(n) => {
                                        frames.fetch_add(n, Ordering::Relaxed);
                                    }
                                    Err(_) => {
                                        // Deadline expiries and hostile
                                        // streams drop the connection;
                                        // the daemon itself keeps
                                        // serving.
                                    }
                                }
                            });
                            let mut workers =
                                workers.lock().unwrap_or_else(PoisonError::into_inner);
                            workers.retain(|h| !h.is_finished());
                            workers.push(handle);
                        }
                        Err(e) if is_timeout(&e) => thread::sleep(poll),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => thread::sleep(poll),
                    }
                }
            })
        };

        Ok(Self {
            fabric,
            service,
            shutdown,
            frames,
            connections,
            accept: Some(accept),
            workers,
            local_addr,
        })
    }

    /// The bound TCP address (`None` for unix-domain daemons).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// The shared fabric, for in-process inspection and dispatch.
    pub fn fabric(&self) -> &SharedFabric {
        &self.fabric
    }

    /// Graceful shutdown: stop accepting, let in-flight frames finish,
    /// seal every tenant's open interval, journal the advances plus a
    /// compacted checkpoint (when persistence is attached), and join
    /// every thread.
    pub fn shutdown(mut self) -> io::Result<ShutdownReport> {
        self.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        loop {
            let handle = {
                let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
                workers.pop()
            };
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }

        // Every connection is drained: seal open intervals, journal
        // the advances, and write the compacted durable snapshot.
        let sealed = self.fabric.with(|f| f.quiesce());
        if let Some(journal) = &self.service.journal {
            let mut journal = journal.lock().unwrap_or_else(PoisonError::into_inner);
            for &(tenant, _) in &sealed {
                journal.append(&JournalRecord::IntervalAdvanced(TenantRef { tenant }))?;
            }
            self.fabric.with(|f| journal.compact(f))?;
        }

        let connections = self.connections.load(Ordering::Relaxed);
        let frames = self.frames.load(Ordering::Relaxed);
        // All threads are joined, so the only remaining service (and
        // through it, fabric) clone is ours; unwrap the fabric for
        // in-process reuse.
        drop(self.service);
        let fabric = self.fabric.try_into_inner().map_err(|_| {
            io::Error::other("fabric still shared after shutdown (live SharedFabric clones)")
        })?;
        Ok(ShutdownReport {
            connections,
            frames,
            sealed,
            fabric,
        })
    }
}
