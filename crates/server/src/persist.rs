//! Tenant-spec durability: a JSON-lines journal of the fabric's
//! durable state, and recovery from it.
//!
//! The daemon journals every **topology** effect the moment the fabric
//! acknowledges it — shard membership, tenant registrations, interval
//! advances, and full counter-plane checkpoints ([`TenantTransfer`]) —
//! one serde-JSON record per line, flushed per append. Counters
//! admitted between checkpoints are deliberately *not* journaled:
//! sketches are lossy summaries, and write-amplifying every ingest
//! batch to disk would cost more than the estimates are worth. The
//! recovery contract is therefore:
//!
//! * **Crash (kill -9):** [`recover`] rebuilds the shard ring, every
//!   tenant's spec and placement, and its interval position. Tenants
//!   checkpointed at the last graceful shutdown also get their counter
//!   planes back through the existing
//!   [`Fabric::install_tenant`]/absorb path; counters admitted after
//!   the last checkpoint are lost (the estimates restart from the
//!   checkpoint).
//! * **Graceful shutdown:** [`Daemon::shutdown`](crate::Daemon::shutdown)
//!   quiesces (seals open intervals) and calls [`Journal::compact`],
//!   which rewrites the journal as shards + one checkpoint per
//!   exportable tenant — so a restart serves **bit-for-bit** what the
//!   old process served. Pinned rotating tenants refuse export by
//!   design (their robustness depends on seed rotation, see the
//!   engine's `movable` contract); they are compacted as spec +
//!   interval advances instead and restart empty at the right
//!   interval.
//!
//! Placement needs no records of its own: it is a pure function of
//! `(tenant, ring)`, so replaying shard membership in order puts every
//! recovered tenant back on the shard it was on.

use crate::fabric::Fabric;
use crate::wire::{Request, Response, TenantRef, TenantSpec, TenantTransfer};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A shard-membership journal entry.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardRecord {
    /// Shard id.
    pub shard: u64,
    /// Capacity weight (meaningful for `ShardAdded` only).
    pub weight: f64,
}

/// One journal line: a durable effect on the fabric.
///
/// (Newtype variants throughout — the workspace's vendored serde
/// derive does not handle struct variants.)
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum JournalRecord {
    /// A shard joined the ring with the given weight.
    ShardAdded(ShardRecord),
    /// A shard left the ring.
    ShardRemoved(ShardRecord),
    /// A fresh tenant was registered from its spec.
    TenantRegistered(TenantSpec),
    /// A tenant's interval advanced (its open interval was sealed).
    IntervalAdvanced(TenantRef),
    /// A full counter-plane checkpoint: spec, planes, interval
    /// position. Supersedes the tenant's earlier records.
    Checkpoint(TenantTransfer),
}

/// An append-only JSON-lines journal, flushed per record.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Records on disk since the last [`compact`](Self::compact)
    /// (seeded from the existing file on open, so a restarted daemon
    /// with a long journal compacts promptly).
    records: u64,
    /// Bytes on disk since the last compaction (same seeding rule).
    bytes: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        // Seed the growth counters from whatever is already on disk:
        // the thresholds measure distance from the last compaction,
        // and an uncompacted pre-existing file is all distance.
        let (records, bytes) = match File::open(&path) {
            Ok(f) => {
                let bytes = f.metadata()?.len();
                let records = BufReader::new(f).lines().count() as u64;
                (records, bytes)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => (0, 0),
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            path,
            writer: BufWriter::new(file),
            records,
            bytes,
        })
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended since the last compaction (seeded from the
    /// file's line count on open).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes appended since the last compaction (seeded from the
    /// file's length on open).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Appends one record and flushes it to the OS.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let line = serde_json::to_string(record).map_err(io::Error::other)?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.records += 1;
        self.bytes += line.len() as u64 + 1;
        Ok(())
    }

    /// Rewrites the journal as the **current** fabric state: shard
    /// membership, then one [`JournalRecord::Checkpoint`] per
    /// exportable tenant (full counter planes) and spec + interval
    /// advances for pinned tenants that refuse export. Atomic via
    /// write-to-temp + rename, so a crash mid-compaction leaves the
    /// old journal intact.
    pub fn compact(&mut self, fabric: &mut Fabric) -> io::Result<()> {
        let tmp = self.path.with_extension("journal.tmp");
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            for record in snapshot_records(fabric) {
                let line = serde_json::to_string(&record).map_err(io::Error::other)?;
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
            }
            out.flush()?;
            out.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        // The compacted snapshot is the new baseline: the growth
        // counters measure appends since this point.
        self.records = 0;
        self.bytes = 0;
        Ok(())
    }
}

/// The fabric's durable state as an ordered record list.
fn snapshot_records(fabric: &mut Fabric) -> Vec<JournalRecord> {
    let mut records: Vec<JournalRecord> = fabric
        .ring()
        .shards()
        .iter()
        .map(|s| {
            JournalRecord::ShardAdded(ShardRecord {
                shard: s.id,
                weight: s.weight,
            })
        })
        .collect();
    for tenant in fabric.tenant_ids() {
        match fabric.handle(Request::Export(TenantRef { tenant })) {
            Response::Exported(transfer) => {
                records.push(JournalRecord::Checkpoint(transfer));
            }
            _ => {
                // Pinned (rotating) tenants refuse export: persist the
                // spec and replay the interval position.
                let Some(spec) = fabric.tenant_spec(tenant) else {
                    continue;
                };
                records.push(JournalRecord::TenantRegistered(spec));
                let interval = match fabric.handle(Request::Stats(TenantRef { tenant })) {
                    Response::Stats(stats) => stats.interval,
                    _ => 0,
                };
                for _ in 0..interval {
                    records.push(JournalRecord::IntervalAdvanced(TenantRef { tenant }));
                }
            }
        }
    }
    records
}

/// A journal parse failure (corrupt line), surfaced with its line
/// number so the operator can triage the file.
fn corrupt(line_no: usize, err: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("journal line {line_no}: {err}"),
    )
}

/// Replays a journal into a fresh [`Fabric`] built from `config`.
///
/// Two passes: the first folds the record stream into final state
/// (shard membership in order; per tenant, the latest checkpoint — if
/// any — plus the interval advances recorded after it), the second
/// builds the fabric: shards first, then checkpointed tenants through
/// [`Fabric::install_tenant`] (planes restored by linearity) and
/// uncheckpointed tenants through [`Fabric::register_tenant`], each
/// advanced to its journaled interval. Placement falls out for free —
/// it is a pure function of `(tenant, ring)`.
///
/// A missing journal file recovers an **empty** fabric (first boot).
///
/// # Errors
/// I/O failures, corrupt lines, and replay rejections (e.g. a journal
/// whose specs no longer validate against `config`).
pub fn recover<P: AsRef<Path>>(path: P, config: crate::fabric::FabricConfig) -> io::Result<Fabric> {
    let mut fabric = Fabric::new(config);
    let file = match File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(fabric),
        Err(e) => return Err(e),
    };

    // Pass 1: fold the stream into final topology.
    let mut shards: Vec<(u64, f64)> = Vec::new();
    // (spec, advances-after-checkpoint, latest checkpoint), insertion
    // order preserved so recovery is deterministic.
    let mut tenants: Vec<(u64, TenantSpec, u64, Option<TenantTransfer>)> = Vec::new();
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: JournalRecord = serde_json::from_str(&line).map_err(|e| corrupt(i + 1, e))?;
        match record {
            JournalRecord::ShardAdded(ShardRecord { shard, weight }) => {
                if shards.iter().any(|&(id, _)| id == shard) {
                    return Err(corrupt(i + 1, format!("shard {shard} added twice")));
                }
                shards.push((shard, weight));
            }
            JournalRecord::ShardRemoved(ShardRecord { shard, .. }) => {
                shards.retain(|&(id, _)| id != shard);
            }
            JournalRecord::TenantRegistered(spec) => {
                if tenants.iter().any(|e| e.0 == spec.tenant) {
                    return Err(corrupt(
                        i + 1,
                        format!("tenant {} registered twice", spec.tenant),
                    ));
                }
                tenants.push((spec.tenant, spec, 0, None));
            }
            JournalRecord::IntervalAdvanced(TenantRef { tenant }) => {
                let entry = tenants.iter_mut().find(|e| e.0 == tenant).ok_or_else(|| {
                    corrupt(
                        i + 1,
                        format!("interval advance for unknown tenant {tenant}"),
                    )
                })?;
                entry.2 += 1;
            }
            JournalRecord::Checkpoint(transfer) => {
                let tenant = transfer.spec.tenant;
                match tenants.iter_mut().find(|e| e.0 == tenant) {
                    Some(entry) => {
                        entry.1 = transfer.spec;
                        entry.2 = 0; // the checkpoint carries the interval
                        entry.3 = Some(transfer);
                    }
                    None => tenants.push((tenant, transfer.spec, 0, Some(transfer))),
                }
            }
        }
    }

    // Pass 2: rebuild. Shards first so placement is final before any
    // tenant lands.
    let replay = |e: crate::wire::ErrorReply| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("journal replay: {}: {}", e.code, e.detail),
        )
    };
    for (shard, weight) in shards {
        fabric.add_shard(shard, weight).map_err(replay)?;
    }
    for (tenant, spec, advances, checkpoint) in tenants {
        match checkpoint {
            Some(transfer) => {
                fabric.install_tenant(&transfer).map_err(replay)?;
            }
            None => {
                fabric.register_tenant(spec).map_err(replay)?;
            }
        }
        for _ in 0..advances {
            if let Response::Error(e) =
                fabric.handle(Request::AdvanceInterval(TenantRef { tenant }))
            {
                return Err(replay(e));
            }
        }
    }
    Ok(fabric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use crate::wire::{IngestFrame, PointQuery};
    use bas_sketch::SketchParams;

    fn config() -> FabricConfig {
        FabricConfig::new(SketchParams::new(1_024, 64, 5))
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bas-journal-{tag}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn missing_journal_recovers_an_empty_fabric() {
        let p = temp_path("absent");
        let fabric = recover(&p, config()).unwrap();
        assert_eq!(fabric.tenant_count(), 0);
        assert!(fabric.ring().is_empty());
    }

    #[test]
    fn journal_replay_restores_topology_and_interval_position() {
        let p = temp_path("topology");
        let mut journal = Journal::open(&p).unwrap();
        journal
            .append(&JournalRecord::ShardAdded(ShardRecord {
                shard: 0,
                weight: 1.0,
            }))
            .unwrap();
        journal
            .append(&JournalRecord::ShardAdded(ShardRecord {
                shard: 1,
                weight: 2.0,
            }))
            .unwrap();
        let spec = TenantSpec::frequency(7, 77);
        journal
            .append(&JournalRecord::TenantRegistered(spec))
            .unwrap();
        journal
            .append(&JournalRecord::IntervalAdvanced(TenantRef { tenant: 7 }))
            .unwrap();
        journal
            .append(&JournalRecord::IntervalAdvanced(TenantRef { tenant: 7 }))
            .unwrap();
        drop(journal);

        let mut recovered = recover(&p, config()).unwrap();
        assert_eq!(recovered.tenant_count(), 1);
        assert_eq!(recovered.tenant_spec(7), Some(spec));
        let mut reference = Fabric::new(config());
        reference.add_shard(0, 1.0).unwrap();
        reference.add_shard(1, 2.0).unwrap();
        reference.register_tenant(spec).unwrap();
        assert_eq!(recovered.shard_of(7), reference.shard_of(7));
        match recovered.handle(Request::Stats(TenantRef { tenant: 7 })) {
            Response::Stats(s) => assert_eq!(s.interval, 2),
            other => panic!("{other:?}"),
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn compaction_checkpoints_counters_bit_for_bit() {
        let p = temp_path("compact");
        let mut fabric = Fabric::new(config());
        fabric.add_shard(0, 1.0).unwrap();
        fabric
            .register_tenant(TenantSpec::frequency(3, 33))
            .unwrap();
        let updates: Vec<(u64, f64)> = (0..500u64).map(|i| (i % 1_024, 2.0)).collect();
        fabric.handle(Request::Ingest(IngestFrame {
            tenant: 3,
            updates: updates.clone(),
        }));
        fabric.handle(Request::Flush(TenantRef { tenant: 3 }));

        let mut journal = Journal::open(&p).unwrap();
        journal.compact(&mut fabric).unwrap();
        drop(journal);

        let mut recovered = recover(&p, config()).unwrap();
        for item in (0..1_024u64).step_by(37) {
            let a = match fabric.handle(Request::Point(PointQuery { tenant: 3, item })) {
                Response::Value(v) => v.value,
                other => panic!("{other:?}"),
            };
            let b = match recovered.handle(Request::Point(PointQuery { tenant: 3, item })) {
                Response::Value(v) => v.value,
                other => panic!("{other:?}"),
            };
            assert_eq!(a.to_bits(), b.to_bits(), "item {item}");
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn growth_counters_track_appends_and_reset_on_compact() {
        let p = temp_path("counters");
        let mut journal = Journal::open(&p).unwrap();
        assert_eq!((journal.records(), journal.bytes()), (0, 0));
        journal
            .append(&JournalRecord::ShardAdded(ShardRecord {
                shard: 0,
                weight: 1.0,
            }))
            .unwrap();
        journal
            .append(&JournalRecord::TenantRegistered(TenantSpec::frequency(
                1, 11,
            )))
            .unwrap();
        assert_eq!(journal.records(), 2);
        assert_eq!(journal.bytes(), std::fs::metadata(&p).unwrap().len());
        drop(journal);

        // Reopening seeds the counters from what is on disk.
        let mut journal = Journal::open(&p).unwrap();
        assert_eq!(journal.records(), 2);
        assert_eq!(journal.bytes(), std::fs::metadata(&p).unwrap().len());

        // Compaction resets them: the snapshot is the new baseline.
        let mut fabric = recover(&p, config()).unwrap();
        journal.compact(&mut fabric).unwrap();
        assert_eq!((journal.records(), journal.bytes()), (0, 0));
        std::fs::remove_file(&p).unwrap();
    }

    /// Kill-during-compaction: a crash after the temp snapshot was
    /// started but before the rename leaves a stale `.journal.tmp`
    /// next to an intact journal. Recovery must read the old journal
    /// untouched, and the next compaction must overwrite the stale
    /// temp and succeed.
    #[test]
    fn stale_compaction_temp_never_corrupts_recovery() {
        let p = temp_path("kill-mid-compact");
        let mut journal = Journal::open(&p).unwrap();
        journal
            .append(&JournalRecord::ShardAdded(ShardRecord {
                shard: 0,
                weight: 1.0,
            }))
            .unwrap();
        let spec = TenantSpec::frequency(4, 44);
        journal
            .append(&JournalRecord::TenantRegistered(spec))
            .unwrap();
        journal
            .append(&JournalRecord::IntervalAdvanced(TenantRef { tenant: 4 }))
            .unwrap();
        drop(journal);

        // Simulate the kill: a half-written snapshot temp on disk.
        let tmp = p.with_extension("journal.tmp");
        std::fs::write(&tmp, "{\"ShardAdded\":{\"shard\":9,\"wei").unwrap();

        let mut recovered = recover(&p, config()).unwrap();
        assert_eq!(recovered.tenant_spec(4), Some(spec));
        match recovered.handle(Request::Stats(TenantRef { tenant: 4 })) {
            Response::Stats(s) => assert_eq!(s.interval, 1),
            other => panic!("{other:?}"),
        }

        // The stale temp does not block the next compaction cycle.
        let mut journal = Journal::open(&p).unwrap();
        journal.compact(&mut recovered).unwrap();
        assert!(!tmp.exists(), "compaction must consume the temp file");
        let after = recover(&p, config()).unwrap();
        assert_eq!(after.tenant_spec(4), Some(spec));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn corrupt_lines_are_typed_errors_with_line_numbers() {
        let p = temp_path("corrupt");
        let good = serde_json::to_string(&JournalRecord::ShardAdded(ShardRecord {
            shard: 0,
            weight: 1.0,
        }))
        .unwrap();
        std::fs::write(&p, format!("{good}\nnot json\n")).unwrap();
        let err = recover(&p, config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(&p).unwrap();
    }
}
