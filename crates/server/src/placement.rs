//! Tenant placement across engine shards.
//!
//! Two schemes, both deterministic functions of `(tenant, ring)` so
//! every fabric node computes the same answer with no coordination:
//!
//! * [`PlacementRing`] — **weighted rendezvous hashing** (highest
//!   random weight). Each shard scores every tenant with
//!   `-w / ln(u)` where `u ∈ (0,1)` is a hash of `(shard, tenant)`
//!   and `w` is the shard's capacity weight; the tenant lives on the
//!   shard with the highest score. Expected load is proportional to
//!   weight, and removing a shard moves **only** the tenants that
//!   lived on it (each survivor's scores are untouched) — minimal
//!   disruption by construction, the property the placement suite
//!   verifies against the binomial expectation.
//! * [`jump_hash`] — Lamport & Veach's jump consistent hash, the
//!   unweighted baseline. Same minimal-disruption property for
//!   bucket-count growth, but buckets are anonymous `0..n` indices:
//!   removing an *interior* bucket renumbers everything after it,
//!   which is exactly the operational weakness the rendezvous ring
//!   avoids and the comparison exists to demonstrate.

use bas_hash::mix64;

/// One shard entry in the ring: an id and a relative capacity weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardWeight {
    /// Stable shard id (survives add/remove of other shards).
    pub id: u64,
    /// Relative capacity; a weight-2 shard expects twice the tenants
    /// of a weight-1 shard. Must be positive and finite.
    pub weight: f64,
}

/// Weighted rendezvous (highest-random-weight) placement ring.
///
/// ```
/// use bas_server::PlacementRing;
///
/// let mut ring = PlacementRing::new();
/// ring.add_shard(0, 1.0);
/// ring.add_shard(1, 1.0);
/// let before = ring.place(42).unwrap();
/// ring.add_shard(2, 1.0);
/// let after = ring.place(42).unwrap();
/// // Minimal disruption: a tenant either stays put or moves to the
/// // new shard — never between old shards.
/// assert!(after == before || after == 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PlacementRing {
    shards: Vec<ShardWeight>,
}

impl PlacementRing {
    /// An empty ring ([`place`](PlacementRing::place) returns `None`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a shard with the given capacity weight.
    ///
    /// # Panics
    /// Panics if the id is already present or the weight is not a
    /// positive finite number.
    pub fn add_shard(&mut self, id: u64, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "shard weight must be positive and finite, got {weight}"
        );
        assert!(!self.contains(id), "shard id {id} is already in the ring");
        self.shards.push(ShardWeight { id, weight });
    }

    /// Removes a shard; returns whether it was present. Tenants that
    /// lived on it re-place onto the surviving shards (their scores
    /// there are unchanged, so nothing else moves).
    pub fn remove_shard(&mut self, id: u64) -> bool {
        let before = self.shards.len();
        self.shards.retain(|s| s.id != id);
        self.shards.len() != before
    }

    /// Whether a shard id is in the ring.
    pub fn contains(&self, id: u64) -> bool {
        self.shards.iter().any(|s| s.id == id)
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard entries, in insertion order.
    pub fn shards(&self) -> &[ShardWeight] {
        &self.shards
    }

    /// A shard's weight, if present.
    pub fn weight_of(&self, id: u64) -> Option<f64> {
        self.shards.iter().find(|s| s.id == id).map(|s| s.weight)
    }

    /// The shard a tenant lives on: the highest rendezvous score, ties
    /// broken by shard id (scores are continuous, so ties effectively
    /// never happen — the tiebreak only pins down a total order).
    pub fn place(&self, tenant: u64) -> Option<u64> {
        self.shards
            .iter()
            .map(|s| (Self::score(*s, tenant), s.id))
            .max_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, id)| id)
    }

    /// A tenant's rendezvous score on one shard: `-w / ln(u)`,
    /// `u ∈ (0,1)`. Monotone in `w` (heavier shards win more tenants,
    /// in proportion — the standard weighted-rendezvous transform) and
    /// independent across shards, which is what makes removal touch
    /// only the removed shard's tenants.
    fn score(shard: ShardWeight, tenant: u64) -> f64 {
        let u = Self::uniform01(shard.id, tenant);
        -shard.weight / u.ln()
    }

    /// A uniform draw in the **open** interval `(0, 1)` from the pair
    /// hash: 53 mantissa bits, offset by half an ulp so `ln(u)` is
    /// always finite and negative.
    fn uniform01(shard: u64, tenant: u64) -> f64 {
        let h = mix64(
            mix64(shard ^ 0x9E37_79B9_7F4A_7C15)
                .wrapping_add(mix64(tenant ^ 0xD1B5_4A32_D192_ED03)),
        );
        (((h >> 11) as f64) + 0.5) / ((1u64 << 53) as f64)
    }
}

/// Jump consistent hash (Lamport & Veach): maps `key` to a bucket in
/// `[0, buckets)` such that growing `buckets` by one moves exactly a
/// `1/(n+1)` expected fraction of keys — all of them into the new
/// bucket. The unweighted baseline the placement suite compares the
/// rendezvous ring against.
///
/// # Panics
/// Panics if `buckets` is zero.
pub fn jump_hash(mut key: u64, buckets: u32) -> u32 {
    assert!(buckets > 0, "jump hash needs at least one bucket");
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = (((b + 1) as f64) * ((1u64 << 31) as f64 / (((key >> 33) + 1) as f64))) as i64;
    }
    b as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u64) -> PlacementRing {
        let mut r = PlacementRing::new();
        for id in 0..n {
            r.add_shard(id, 1.0);
        }
        r
    }

    #[test]
    fn placement_is_deterministic_and_lands_on_ring_members() {
        let r = ring(5);
        for tenant in 0..1_000u64 {
            let shard = r.place(tenant).unwrap();
            assert!(r.contains(shard));
            assert_eq!(r.place(tenant), Some(shard));
        }
        assert_eq!(PlacementRing::new().place(7), None);
    }

    #[test]
    fn add_moves_tenants_only_onto_the_new_shard() {
        let mut r = ring(4);
        let before: Vec<u64> = (0..2_000).map(|t| r.place(t).unwrap()).collect();
        r.add_shard(4, 1.0);
        let mut moved = 0;
        for (t, &old) in before.iter().enumerate() {
            let new = r.place(t as u64).unwrap();
            if new != old {
                assert_eq!(new, 4, "tenant {t} moved between old shards");
                moved += 1;
            }
        }
        // Expected 1/5 of tenants move; allow a generous band.
        assert!((200..=600).contains(&moved), "moved = {moved}");
    }

    #[test]
    fn remove_moves_only_the_dead_shards_tenants() {
        let mut r = ring(4);
        let before: Vec<u64> = (0..2_000).map(|t| r.place(t).unwrap()).collect();
        assert!(r.remove_shard(2));
        assert!(!r.remove_shard(2));
        for (t, &old) in before.iter().enumerate() {
            let new = r.place(t as u64).unwrap();
            if old != 2 {
                assert_eq!(new, old, "survivor tenant {t} must not move");
            } else {
                assert_ne!(new, 2);
            }
        }
    }

    #[test]
    fn weights_skew_the_load_proportionally() {
        let mut r = PlacementRing::new();
        r.add_shard(0, 1.0);
        r.add_shard(1, 3.0);
        let heavy = (0..4_000u64).filter(|&t| r.place(t) == Some(1)).count();
        // Expect ~3/4 of tenants on the weight-3 shard.
        assert!((2_700..=3_300).contains(&heavy), "heavy = {heavy}");
    }

    #[test]
    #[should_panic(expected = "already in the ring")]
    fn duplicate_shard_ids_are_rejected() {
        let mut r = ring(1);
        r.add_shard(0, 2.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_weights_are_rejected() {
        let mut r = PlacementRing::new();
        r.add_shard(0, 0.0);
    }

    #[test]
    fn jump_hash_is_in_range_and_minimally_disruptive() {
        for key in 0..500u64 {
            let b4 = jump_hash(key, 4);
            assert!(b4 < 4);
            let b5 = jump_hash(key, 5);
            assert!(b5 == b4 || b5 == 4, "key {key}: {b4} -> {b5}");
        }
        assert_eq!(jump_hash(123, 1), 0);
    }
}
