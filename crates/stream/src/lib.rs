//! # bas-stream — streaming substrate for bias-aware sketches
//!
//! The paper's §4.4 shows how to maintain the bias estimate `β̂` under
//! streaming updates so individual point queries stay fast:
//!
//! * for the `ℓ∞/ℓ1` sketch, keep the `Θ(log n)` sampled coordinates
//!   in an order-maintaining structure and read off their median;
//! * for the `ℓ∞/ℓ2` sketch, keep the `s` buckets of `Π(g)x` ordered by
//!   their average `w_i/π_i` and track the sums of `w`/`π` over the
//!   middle `2k` buckets — the **Bias-Heap** of Algorithm 5.
//!
//! This crate provides those structures, built from scratch:
//!
//! * [`IndexedHeap`] — a binary heap with handle-based `update_key`,
//!   the primitive under the Bias-Heap.
//! * [`BiasHeap`] — Algorithm 5: `O(log s)` per update, `O(1)` bias
//!   queries.
//! * [`OrderStatTree`] — a treap with augmented subtree sums; an
//!   alternative bias maintainer (same interface, used in the
//!   `ablation_bias_maintenance` bench) and the median tracker for the
//!   streaming `ℓ1` sampler.
//! * [`SortedSampler`] — the streaming view of the sampling matrix `Υ`:
//!   fixed random coordinates whose running median is the `ℓ1` bias.
//! * [`ReservoirSampler`] — classic reservoir sampling, used by
//!   workload tooling.
//! * [`drive_chunked`] / [`ChunkedDriver`] — the chunked ingest driver:
//!   batches a stream of [`StreamUpdate`]s into `(item, delta)` chunks
//!   for the sketches' `update_batch` fast path (and for the sharded
//!   ingester in `bas-pipeline`).
//! * [`drive_timestamped`] — the same driver over
//!   [`TimestampedUpdate`]s: fires an interval-boundary callback once
//!   per closed interval, with that interval's updates fully
//!   delivered first — the deterministic clock behind the windowed
//!   query plane's rotation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bias_heap;
mod driver;
mod indexed_heap;
mod ostree;
mod reservoir;
mod sampler;
mod update;

pub use bias_heap::BiasHeap;
pub use driver::{
    drive_chunked, drive_probed, drive_timestamped, ChunkedDriver, DriveProgress,
    DEFAULT_CHUNK_SIZE,
};
pub use indexed_heap::{HeapOrder, IndexedHeap};
pub use ostree::OrderStatTree;
pub use reservoir::ReservoirSampler;
pub use sampler::SortedSampler;
pub use update::{StreamUpdate, TimestampedUpdate};
