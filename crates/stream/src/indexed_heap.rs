//! A binary heap with handle-based key updates.

/// Heap polarity.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapOrder {
    /// The top is the smallest key.
    Min,
    /// The top is the largest key.
    Max,
}

/// Total order on `(f64 key, u32 id)` pairs; ids break ties so the heap
/// is deterministic regardless of insertion order.
#[inline]
fn less(a: (f64, u32), b: (f64, u32)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

/// A binary heap over externally-identified elements (`id ∈ [0, capacity)`),
/// supporting `O(log n)` insert/remove/update-key and `O(1)` peek.
///
/// The Bias-Heap of the paper's Algorithm 5 needs exactly this: when a
/// stream update changes one bucket's average `w_i/π_i`, the bucket's key
/// must be adjusted inside whichever heap currently holds it ("find node
/// with id j … update its `w_j` … maintain the heap properties").
/// Standard library heaps have no decrease-key, so we implement a
/// position-tracked heap.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone)]
pub struct IndexedHeap {
    order: HeapOrder,
    /// Heap array of (key, id).
    data: Vec<(f64, u32)>,
    /// `pos[id]` = index in `data`, or `NONE`.
    pos: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl IndexedHeap {
    /// Creates an empty heap able to hold ids `0..capacity`.
    pub fn new(order: HeapOrder, capacity: usize) -> Self {
        assert!(capacity < NONE as usize, "capacity too large");
        Self {
            order,
            data: Vec::new(),
            pos: vec![NONE; capacity],
        }
    }

    /// Number of elements currently in the heap.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether the given id is currently in the heap.
    pub fn contains(&self, id: u32) -> bool {
        self.pos[id as usize] != NONE
    }

    /// The top element `(key, id)` without removing it.
    pub fn peek(&self) -> Option<(f64, u32)> {
        self.data.first().copied()
    }

    /// The key currently stored for `id`, if present.
    pub fn key_of(&self, id: u32) -> Option<f64> {
        let p = self.pos[id as usize];
        (p != NONE).then(|| self.data[p as usize].0)
    }

    /// True when `a` should be closer to the top than `b`.
    #[inline]
    fn before(&self, a: (f64, u32), b: (f64, u32)) -> bool {
        match self.order {
            HeapOrder::Min => less(a, b),
            HeapOrder::Max => less(b, a),
        }
    }

    /// Inserts a new element.
    ///
    /// # Panics
    /// Panics if the id is already present.
    pub fn insert(&mut self, id: u32, key: f64) {
        assert!(!self.contains(id), "id {id} already in heap");
        let idx = self.data.len();
        self.data.push((key, id));
        self.pos[id as usize] = idx as u32;
        self.sift_up(idx);
    }

    /// Removes an element by id, returning its key.
    ///
    /// # Panics
    /// Panics if the id is absent.
    pub fn remove(&mut self, id: u32) -> f64 {
        let idx = self.pos[id as usize];
        assert!(idx != NONE, "id {id} not in heap");
        let idx = idx as usize;
        let key = self.data[idx].0;
        let last = self.data.len() - 1;
        self.swap(idx, last);
        self.data.pop();
        self.pos[id as usize] = NONE;
        if idx < self.data.len() {
            // The displaced element may need to move either direction.
            self.sift_down(idx);
            self.sift_up(idx);
        }
        key
    }

    /// Changes the key of an existing element.
    ///
    /// # Panics
    /// Panics if the id is absent.
    pub fn update_key(&mut self, id: u32, key: f64) {
        let idx = self.pos[id as usize];
        assert!(idx != NONE, "id {id} not in heap");
        let idx = idx as usize;
        self.data[idx].0 = key;
        self.sift_down(idx);
        self.sift_up(idx);
    }

    /// Removes and returns the top element.
    pub fn pop(&mut self) -> Option<(f64, u32)> {
        let top = self.peek()?;
        self.remove(top.1);
        Some(top)
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.data.swap(a, b);
        self.pos[self.data[a].1 as usize] = a as u32;
        self.pos[self.data[b].1 as usize] = b as u32;
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.before(self.data[idx], self.data[parent]) {
                self.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        loop {
            let l = 2 * idx + 1;
            let r = 2 * idx + 2;
            let mut best = idx;
            if l < self.data.len() && self.before(self.data[l], self.data[best]) {
                best = l;
            }
            if r < self.data.len() && self.before(self.data[r], self.data[best]) {
                best = r;
            }
            if best == idx {
                break;
            }
            self.swap(idx, best);
            idx = best;
        }
    }

    /// Debug-only validation of the heap property and position map.
    #[cfg(test)]
    fn check_invariants(&self) {
        for (i, &(k, id)) in self.data.iter().enumerate() {
            assert_eq!(self.pos[id as usize] as usize, i, "pos map broken");
            if i > 0 {
                let parent = self.data[(i - 1) / 2];
                assert!(
                    !self.before((k, id), parent) || parent == (k, id),
                    "heap property violated at {i}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_heap_pops_sorted() {
        let mut h = IndexedHeap::new(HeapOrder::Min, 16);
        for (id, key) in [(3u32, 5.0), (1, 2.0), (7, 9.0), (0, 2.0), (4, -1.0)] {
            h.insert(id, key);
            h.check_invariants();
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop() {
            out.push(k);
        }
        assert_eq!(out, vec![-1.0, 2.0, 2.0, 5.0, 9.0]);
    }

    #[test]
    fn max_heap_pops_reverse_sorted() {
        let mut h = IndexedHeap::new(HeapOrder::Max, 8);
        for (id, key) in [(0u32, 1.0), (1, 3.0), (2, 2.0)] {
            h.insert(id, key);
        }
        assert_eq!(h.pop().unwrap().0, 3.0);
        assert_eq!(h.pop().unwrap().0, 2.0);
        assert_eq!(h.pop().unwrap().0, 1.0);
        assert!(h.pop().is_none());
    }

    #[test]
    fn update_key_moves_elements() {
        let mut h = IndexedHeap::new(HeapOrder::Min, 8);
        h.insert(0, 10.0);
        h.insert(1, 20.0);
        h.insert(2, 30.0);
        h.update_key(2, 1.0);
        h.check_invariants();
        assert_eq!(h.peek(), Some((1.0, 2)));
        h.update_key(2, 100.0);
        h.check_invariants();
        assert_eq!(h.peek(), Some((10.0, 0)));
        assert_eq!(h.key_of(2), Some(100.0));
    }

    #[test]
    fn remove_middle_element() {
        let mut h = IndexedHeap::new(HeapOrder::Min, 8);
        for id in 0..6u32 {
            h.insert(id, (6 - id) as f64);
        }
        let removed = h.remove(3);
        assert_eq!(removed, 3.0);
        assert!(!h.contains(3));
        h.check_invariants();
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn ties_broken_by_id() {
        let mut h = IndexedHeap::new(HeapOrder::Min, 8);
        h.insert(5, 1.0);
        h.insert(2, 1.0);
        h.insert(7, 1.0);
        assert_eq!(h.peek(), Some((1.0, 2)));
    }

    #[test]
    #[should_panic(expected = "already in heap")]
    fn duplicate_insert_panics() {
        let mut h = IndexedHeap::new(HeapOrder::Min, 4);
        h.insert(1, 1.0);
        h.insert(1, 2.0);
    }

    #[test]
    #[should_panic(expected = "not in heap")]
    fn remove_absent_panics() {
        let mut h = IndexedHeap::new(HeapOrder::Min, 4);
        h.remove(0);
    }

    #[test]
    fn randomized_against_reference() {
        // Random interleaving of inserts/removes/updates, cross-checked
        // against a sorted-vec reference.
        let mut h = IndexedHeap::new(HeapOrder::Min, 64);
        let mut reference: Vec<(f64, u32)> = Vec::new();
        let mut state = 987654321u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..2000 {
            let op = rng() % 3;
            let id = (rng() % 64) as u32;
            let key = (rng() % 1000) as f64 / 10.0;
            let present = reference.iter().any(|&(_, i)| i == id);
            match op {
                0 if !present => {
                    h.insert(id, key);
                    reference.push((key, id));
                }
                1 if present => {
                    h.remove(id);
                    reference.retain(|&(_, i)| i != id);
                }
                2 if present => {
                    h.update_key(id, key);
                    for e in reference.iter_mut() {
                        if e.1 == id {
                            e.0 = key;
                        }
                    }
                }
                _ => continue,
            }
            h.check_invariants();
            let expect = reference
                .iter()
                .copied()
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            assert_eq!(h.peek(), expect, "step {step}");
        }
    }
}
