//! Streaming view of the sampling matrix `Υ` (paper, Algorithm 1).

use crate::ostree::OrderStatTree;
use bas_hash::SplitMix64;
use std::collections::HashMap;

/// Maintains `S = Υx` under streaming updates and exposes the running
/// median of the sampled coordinates — the `ℓ1` bias estimate `β̂` of
/// Algorithm 2, kept current in `O(log t)` per touched sample as §4.4
/// prescribes ("keep the `Θ(log n)` sampled coordinates sorted … and use
/// their median").
///
/// `Υ` has `t` rows, each with a single 1 at a uniformly random
/// coordinate, sampled *with replacement* (Lemma 3). Rows landing on the
/// same coordinate always hold equal values, so they collapse into one
/// weighted entry in the underlying order-statistic tree.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone)]
pub struct SortedSampler {
    /// coordinate → (multiplicity in Υ, current value).
    slots: HashMap<u64, (u64, f64)>,
    tree: OrderStatTree,
    rows: usize,
}

impl SortedSampler {
    /// Samples a `t`-row matrix `Υ` over universe `[0, n)`.
    ///
    /// # Panics
    /// Panics if `t == 0` or `n == 0`.
    pub fn new(n: u64, t: usize, seed: u64) -> Self {
        assert!(n > 0, "universe must be non-empty");
        assert!(t > 0, "need at least one sample row");
        let mut rng = SplitMix64::new(seed ^ 0x5A3F_11D7);
        let mut slots: HashMap<u64, (u64, f64)> = HashMap::new();
        for _ in 0..t {
            let coord = rng.next_below(n);
            slots.entry(coord).or_insert((0, 0.0)).0 += 1;
        }
        let mut tree = OrderStatTree::new(seed ^ 0x5A3F_11D8);
        for (&coord, &(mult, value)) in &slots {
            tree.insert(value, coord, mult, 0.0, 0.0);
        }
        Self {
            slots,
            tree,
            rows: t,
        }
    }

    /// The paper's default sample count `t = ⌈20·ln n⌉` (Lemma 3 uses
    /// `t = 20 log n` with the Chernoff bound `exp(−t/12) < 1/(2n)`).
    pub fn paper_rows(n: u64) -> usize {
        ((20.0 * (n.max(2) as f64).ln()).ceil() as usize).max(1)
    }

    /// Number of rows `t` of `Υ`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of *distinct* sampled coordinates.
    pub fn distinct_coordinates(&self) -> usize {
        self.slots.len()
    }

    /// Whether the coordinate is sampled by any row (i.e. whether
    /// updates to it affect the sketch `S`).
    pub fn tracks(&self, coordinate: u64) -> bool {
        self.slots.contains_key(&coordinate)
    }

    /// Applies the stream update `x_coordinate ← x_coordinate + delta`.
    /// Cheap no-op for unsampled coordinates.
    pub fn update(&mut self, coordinate: u64, delta: f64) {
        let Some(entry) = self.slots.get_mut(&coordinate) else {
            return;
        };
        let (mult, old) = *entry;
        let new = old + delta;
        entry.1 = new;
        let removed = self.tree.remove(old, coordinate);
        debug_assert!(removed, "tree out of sync with slot map");
        self.tree.insert(new, coordinate, mult, 0.0, 0.0);
    }

    /// The current median of the `t` sample values — the bias `β̂`.
    pub fn median(&self) -> f64 {
        self.tree
            .median_key()
            .expect("sampler always holds at least one row")
    }

    /// Current sample vector `S = Υx` (one entry per row, unsorted
    /// order is by coordinate). Used by the offline recovery tests.
    pub fn sample_values(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows);
        for (&_, &(mult, value)) in &self.slots {
            out.extend(std::iter::repeat_n(value, mult as usize));
        }
        out
    }

    /// Adds another sampler's values into this one. Both samplers must
    /// have been built with the same `(n, t, seed)` so `Υ` is identical;
    /// then `Υx + Υx' = Υ(x + x')` — the linearity the distributed
    /// protocol uses.
    ///
    /// # Errors
    /// Returns an error if the sample matrices differ.
    pub fn merge_from(&mut self, other: &SortedSampler) -> Result<(), &'static str> {
        if self.rows != other.rows || self.slots.len() != other.slots.len() {
            return Err("sample matrices differ (row count mismatch)");
        }
        for (&coord, &(mult, _)) in &other.slots {
            match self.slots.get(&coord) {
                Some(&(m, _)) if m == mult => {}
                _ => return Err("sample matrices differ (coordinate sets mismatch)"),
            }
        }
        for (&coord, &(_, value)) in &other.slots {
            if value != 0.0 {
                self.update(coord, value);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_median_is_zero() {
        let s = SortedSampler::new(1000, 41, 7);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.rows(), 41);
        assert_eq!(s.sample_values().len(), 41);
    }

    #[test]
    fn median_tracks_common_value() {
        // Set every coordinate of the (implicit) vector to 100 by
        // updating each sampled coordinate once.
        let mut s = SortedSampler::new(500, 61, 3);
        let coords: Vec<u64> = (0..500).filter(|&c| s.tracks(c)).collect();
        for c in coords {
            s.update(c, 100.0);
        }
        assert_eq!(s.median(), 100.0);
    }

    #[test]
    fn outlier_updates_barely_move_median() {
        let mut s = SortedSampler::new(100, 81, 11);
        for c in 0..100u64 {
            if s.tracks(c) {
                s.update(c, 50.0);
            }
        }
        // One coordinate explodes; the median must stay at 50 unless that
        // coordinate holds more than half the sample mass (impossible at
        // these sizes with overwhelming probability).
        if s.tracks(3) {
            s.update(3, 1e12);
        }
        assert_eq!(s.median(), 50.0);
    }

    #[test]
    fn unsampled_updates_are_ignored() {
        let mut s = SortedSampler::new(1_000_000, 10, 13);
        // With n = 10^6 and t = 10, coordinate 999_999 is almost surely
        // unsampled; make the test deterministic by finding one.
        let unsampled = (0..1_000_000u64).find(|&c| !s.tracks(c)).unwrap();
        let before = s.median();
        s.update(unsampled, 1e9);
        assert_eq!(s.median(), before);
    }

    #[test]
    fn duplicate_rows_weight_the_median() {
        // Tiny universe forces collisions: t = 64 rows over n = 4.
        let mut s = SortedSampler::new(4, 64, 17);
        assert!(s.distinct_coordinates() <= 4);
        let total_rows: usize = s.sample_values().len();
        assert_eq!(total_rows, 64);
        for c in 0..4u64 {
            if s.tracks(c) {
                s.update(c, (c + 1) as f64 * 10.0);
            }
        }
        // Median is a weighted median over multiplicities; just check it
        // equals one of the set values or their midpoint.
        let m = s.median();
        let valid = [10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0];
        assert!(valid.contains(&m), "median = {m}");
    }

    #[test]
    fn paper_rows_formula() {
        assert_eq!(
            SortedSampler::paper_rows(2),
            (20.0 * 2f64.ln()).ceil() as usize
        );
        let t = SortedSampler::paper_rows(1_000_000);
        assert!((270..285).contains(&t), "t = {t}");
    }

    #[test]
    fn merge_equals_combined_updates() {
        let mut a = SortedSampler::new(200, 41, 5);
        let mut b = SortedSampler::new(200, 41, 5);
        let mut combined = SortedSampler::new(200, 41, 5);
        for c in 0..200u64 {
            if a.tracks(c) {
                a.update(c, c as f64);
                combined.update(c, c as f64);
                b.update(c, 2.0 * c as f64);
                combined.update(c, 2.0 * c as f64);
            }
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.median(), combined.median());
        let mut av = a.sample_values();
        let mut cv = combined.sample_values();
        av.sort_by(f64::total_cmp);
        cv.sort_by(f64::total_cmp);
        assert_eq!(av, cv);
    }

    #[test]
    fn merge_rejects_different_seed() {
        let mut a = SortedSampler::new(1000, 20, 1);
        let b = SortedSampler::new(1000, 20, 2);
        assert!(a.merge_from(&b).is_err());
    }

    #[test]
    fn incremental_updates_accumulate() {
        let mut s = SortedSampler::new(10, 31, 23);
        let c = (0..10u64).find(|&c| s.tracks(c)).unwrap();
        s.update(c, 5.0);
        s.update(c, 7.0);
        let vals = s.sample_values();
        assert!(vals.iter().any(|&v| (v - 12.0).abs() < 1e-12));
    }
}
