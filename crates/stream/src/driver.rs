//! Chunked driver: turn a stream of [`StreamUpdate`]s into fixed-size
//! batches for the sketches' `update_batch` fast path.
//!
//! The sketches' batched ingest amortizes per-row hash-state setup over
//! a whole batch, but real streams arrive one update at a time. This
//! module is the missing glue: it buffers updates into `(item, delta)`
//! chunks and hands each full chunk to a sink — typically a closure
//! calling `update_batch`, or a `bas-pipeline` sharded ingester.
//!
//! The driver is storage-agnostic: since the counter-matrix refactor
//! the same chunks feed either an exclusive sketch
//! (`|chunk| sketch.update_batch(chunk)`) or a shared atomic-backed one
//! through its lock-free `&self` path
//! (`|chunk| shared.update_batch_shared(chunk)`), which is exactly how
//! a receive loop hands chunks to the sketch that `ConcurrentIngest`
//! workers are feeding from other threads.

use crate::update::{StreamUpdate, TimestampedUpdate};

/// Default chunk size for [`drive_chunked`] / [`ChunkedDriver`]: big
/// enough to amortize per-row setup, small enough that a chunk of
/// 16-byte updates stays L2-resident.
pub const DEFAULT_CHUNK_SIZE: usize = 8_192;

/// Drives an update stream into `sink` in chunks of `chunk_size`,
/// flushing the final partial chunk. Returns the number of updates
/// delivered.
///
/// Because the sketches' `update_batch` is exactly equivalent to the
/// one-by-one loop, chunking never changes the sketch state — only the
/// throughput.
///
/// ```
/// use bas_stream::{drive_chunked, StreamUpdate};
///
/// let stream = (0..10u64).map(StreamUpdate::arrival);
/// let mut batches = Vec::new();
/// let total = drive_chunked(stream, 4, |chunk| batches.push(chunk.to_vec()));
/// assert_eq!(total, 10);
/// assert_eq!(batches.len(), 3); // 4 + 4 + 2
/// assert_eq!(batches[2], vec![(8, 1.0), (9, 1.0)]);
/// ```
///
/// # Panics
/// Panics if `chunk_size` is zero.
pub fn drive_chunked<I, F>(updates: I, chunk_size: usize, mut sink: F) -> u64
where
    I: IntoIterator<Item = StreamUpdate>,
    F: FnMut(&[(u64, f64)]),
{
    let mut driver = ChunkedDriver::new(chunk_size);
    for u in updates {
        driver.push(u, &mut sink);
    }
    driver.finish(&mut sink)
}

/// Stream position handed to the probe callback of [`drive_probed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveProgress {
    /// Updates delivered to the sink so far.
    pub delivered: u64,
    /// Full or final-partial chunks delivered so far.
    pub chunks: u64,
}

/// [`drive_chunked`] with a mid-stream **probe**: after every
/// `probe_every` delivered chunks — and once more after the final
/// flush — `probe` runs with the current stream position, while the
/// driver (and therefore the sink) is between chunks.
///
/// This is the glue for serving queries mid-stream: the sink feeds a
/// query engine's ingest path and the probe issues queries against the
/// same engine, so reads interleave with ingest at deterministic
/// stream positions (every `probe_every · chunk_size` updates) instead
/// of wherever a wall clock happens to fire. The driver stays
/// sink-agnostic — the probe is just a callback, so any query plane
/// (or none) plugs in.
///
/// ```
/// use bas_stream::{drive_probed, StreamUpdate};
///
/// let stream = (0..10u64).map(StreamUpdate::arrival);
/// let mut positions = Vec::new();
/// let total = drive_probed(stream, 2, 2, |_chunk| {}, |p| positions.push(p.delivered));
/// assert_eq!(total, 10);
/// assert_eq!(positions, vec![4, 8, 10]); // every 2 chunks + final
/// ```
///
/// # Panics
/// Panics if `chunk_size` or `probe_every` is zero.
pub fn drive_probed<I, F, P>(
    updates: I,
    chunk_size: usize,
    probe_every: u64,
    mut sink: F,
    mut probe: P,
) -> u64
where
    I: IntoIterator<Item = StreamUpdate>,
    F: FnMut(&[(u64, f64)]),
    P: FnMut(DriveProgress),
{
    assert!(probe_every > 0, "probe interval must be positive");
    let mut driver = ChunkedDriver::new(chunk_size);
    let mut chunks = 0u64;
    for u in updates {
        let before = driver.delivered();
        driver.push(u, &mut sink);
        if driver.delivered() != before {
            chunks += 1;
            if chunks % probe_every == 0 {
                probe(DriveProgress {
                    delivered: driver.delivered(),
                    chunks,
                });
            }
        }
    }
    let pending = driver.pending();
    let total = driver.finish(&mut sink);
    if pending > 0 {
        chunks += 1;
    }
    // Final probe: the stream is fully delivered and quiescent.
    probe(DriveProgress {
        delivered: total,
        chunks,
    });
    total
}

/// Drives a **timestamped** stream into `sink` in chunks, firing
/// `on_interval(t)` exactly once per closed interval `t`, in order —
/// the glue between [`TimestampedUpdate`] producers and a windowed
/// query plane's rotation verb.
///
/// Semantics, chosen so rotation is deterministic and loss-free:
///
/// * updates are delivered in chunks of `chunk_size`, exactly like
///   [`drive_chunked`] — batching never changes sketch state;
/// * intervals must be **monotone non-decreasing** (time moves
///   forward); a regression panics;
/// * before `on_interval(t)` fires, every update of interval `t` has
///   been delivered to the sink (the partial chunk is flushed first),
///   so a sink feeding an ingest engine plus an `on_interval` calling
///   `advance_interval()` seals exactly interval `t`'s updates;
/// * empty intervals (gaps in the ids, or a stream starting past
///   interval 0) still fire their boundaries, one per skipped
///   interval — wall-clock time does not pause because no traffic
///   arrived. A boundary that seals a counter plane costs `O(s·d)`
///   even when the plane did not change, so pick interval ids coarse
///   enough that long idle gaps stay cheap (an hour-long gap at
///   1-second intervals is 3 600 seals in a burst);
/// * the final interval is **not** closed: it is still in progress
///   when the stream ends (query it live, or close it yourself).
///
/// Returns the number of updates delivered.
///
/// ```
/// use bas_stream::{drive_timestamped, TimestampedUpdate};
///
/// let stream = [
///     TimestampedUpdate::arrival(0, 1),
///     TimestampedUpdate::arrival(0, 2),
///     TimestampedUpdate::arrival(2, 3), // interval 1 was empty
/// ];
/// let delivered = std::cell::Cell::new(0usize);
/// let mut closed = Vec::new();
/// let total = drive_timestamped(
///     stream,
///     2,
///     |chunk| delivered.set(delivered.get() + chunk.len()),
///     |t| closed.push((t, delivered.get())),
/// );
/// assert_eq!(total, 3);
/// // Interval 0 closed after both its updates; empty interval 1
/// // closed immediately after; interval 2 stays in progress.
/// assert_eq!(closed, vec![(0, 2), (1, 2)]);
/// ```
///
/// # Panics
/// Panics if `chunk_size` is zero or an interval id decreases.
pub fn drive_timestamped<I, F, R>(
    updates: I,
    chunk_size: usize,
    mut sink: F,
    mut on_interval: R,
) -> u64
where
    I: IntoIterator<Item = TimestampedUpdate>,
    F: FnMut(&[(u64, f64)]),
    R: FnMut(u64),
{
    let mut driver = ChunkedDriver::new(chunk_size);
    let mut current = 0u64;
    for u in updates {
        assert!(
            u.interval >= current,
            "interval ids must be monotone: {} after {current}",
            u.interval
        );
        if u.interval > current {
            // Close every interval before the update's: flush so the
            // closing interval's updates are all delivered first.
            driver.flush(&mut sink);
            for t in current..u.interval {
                on_interval(t);
            }
            current = u.interval;
        }
        driver.push(u.update(), &mut sink);
    }
    driver.finish(&mut sink)
}

/// Incremental form of [`drive_chunked`] for callers that receive
/// updates piecemeal (network handlers, pollers) rather than holding an
/// iterator. Push updates as they arrive; every full chunk is delivered
/// to the sink passed at that call site; [`ChunkedDriver::finish`]
/// flushes the remainder.
#[derive(Debug)]
pub struct ChunkedDriver {
    buf: Vec<(u64, f64)>,
    chunk_size: usize,
    delivered: u64,
}

impl ChunkedDriver {
    /// Creates a driver delivering chunks of `chunk_size` updates.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self {
            buf: Vec::with_capacity(chunk_size),
            chunk_size,
            delivered: 0,
        }
    }

    /// Buffered updates not yet delivered.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Updates delivered to sinks so far (excludes pending).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Buffers one update, delivering a chunk to `sink` when full.
    pub fn push<F: FnMut(&[(u64, f64)])>(&mut self, u: StreamUpdate, mut sink: F) {
        self.buf.push((u.item, u.delta));
        if self.buf.len() == self.chunk_size {
            sink(&self.buf);
            self.delivered += self.buf.len() as u64;
            self.buf.clear();
        }
    }

    /// Delivers the buffered partial chunk now (a mid-stream flush for
    /// callers that need a delivery barrier — e.g.
    /// [`drive_timestamped`] before closing an interval). A no-op when
    /// nothing is buffered.
    pub fn flush<F: FnMut(&[(u64, f64)])>(&mut self, mut sink: F) {
        if !self.buf.is_empty() {
            sink(&self.buf);
            self.delivered += self.buf.len() as u64;
            self.buf.clear();
        }
    }

    /// Flushes the final partial chunk and returns the total number of
    /// updates delivered over the driver's lifetime.
    pub fn finish<F: FnMut(&[(u64, f64)])>(mut self, sink: F) -> u64 {
        self.flush(sink);
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals(n: u64) -> impl Iterator<Item = StreamUpdate> {
        (0..n).map(StreamUpdate::arrival)
    }

    #[test]
    fn exact_multiple_has_no_partial_chunk() {
        let mut sizes = Vec::new();
        let total = drive_chunked(arrivals(12), 4, |c| sizes.push(c.len()));
        assert_eq!(total, 12);
        assert_eq!(sizes, vec![4, 4, 4]);
    }

    #[test]
    fn remainder_is_flushed() {
        let mut sizes = Vec::new();
        let total = drive_chunked(arrivals(10), 4, |c| sizes.push(c.len()));
        assert_eq!(total, 10);
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn empty_stream_delivers_nothing() {
        let mut calls = 0;
        let total = drive_chunked(arrivals(0), 8, |_| calls += 1);
        assert_eq!(total, 0);
        assert_eq!(calls, 0);
    }

    #[test]
    fn preserves_order_and_deltas() {
        let updates = vec![
            StreamUpdate::new(3, 2.0),
            StreamUpdate::new(1, -1.0),
            StreamUpdate::new(3, 0.5),
        ];
        let mut seen = Vec::new();
        drive_chunked(updates, 2, |c| seen.extend_from_slice(c));
        assert_eq!(seen, vec![(3, 2.0), (1, -1.0), (3, 0.5)]);
    }

    #[test]
    fn incremental_driver_counts() {
        let mut driver = ChunkedDriver::new(3);
        let mut delivered = Vec::new();
        for u in arrivals(7) {
            driver.push(u, |c| delivered.extend_from_slice(c));
        }
        assert_eq!(driver.pending(), 1);
        assert_eq!(driver.delivered(), 6);
        let total = driver.finish(|c| delivered.extend_from_slice(c));
        assert_eq!(total, 7);
        assert_eq!(delivered.len(), 7);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        ChunkedDriver::new(0);
    }

    #[test]
    fn probed_driver_delivers_like_plain_driver() {
        let mut plain = Vec::new();
        drive_chunked(arrivals(11), 3, |c| plain.extend_from_slice(c));
        let mut probed = Vec::new();
        let total = drive_probed(arrivals(11), 3, 1, |c| probed.extend_from_slice(c), |_| {});
        assert_eq!(total, 11);
        assert_eq!(probed, plain);
    }

    #[test]
    fn probes_fire_between_chunks_and_once_at_the_end() {
        let seen = std::cell::Cell::new(0u64);
        let mut delivered_at_probe = Vec::new();
        drive_probed(
            arrivals(10),
            2,
            2,
            |c| seen.set(seen.get() + c.len() as u64),
            |p| {
                // The probe observes only fully delivered chunks.
                assert_eq!(seen.get(), p.delivered);
                delivered_at_probe.push((p.delivered, p.chunks));
            },
        );
        assert_eq!(delivered_at_probe, vec![(4, 2), (8, 4), (10, 5)]);
    }

    #[test]
    fn exact_multiple_probes_final_position_once_per_trigger() {
        let mut probes = Vec::new();
        let total = drive_probed(arrivals(8), 4, 1, |_| {}, |p| probes.push(p.delivered));
        assert_eq!(total, 8);
        // Two chunk probes plus the final quiescent probe.
        assert_eq!(probes, vec![4, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "probe interval must be positive")]
    fn zero_probe_interval_rejected() {
        drive_probed(arrivals(4), 2, 0, |_| {}, |_| {});
    }

    fn timed(spec: &[(u64, u64)]) -> Vec<TimestampedUpdate> {
        spec.iter()
            .map(|&(t, item)| TimestampedUpdate::arrival(t, item))
            .collect()
    }

    #[test]
    fn timestamped_closes_intervals_after_their_updates() {
        let stream = timed(&[(0, 1), (0, 2), (0, 3), (1, 4), (2, 5), (2, 6)]);
        let delivered = std::cell::RefCell::new(Vec::new());
        let mut closed = Vec::new();
        let total = drive_timestamped(
            stream,
            2,
            |chunk| delivered.borrow_mut().extend_from_slice(chunk),
            |t| closed.push((t, delivered.borrow().len())),
        );
        assert_eq!(total, 6);
        // Each boundary fires with its interval fully delivered, and
        // the final interval (2) stays open.
        assert_eq!(closed, vec![(0, 3), (1, 4)]);
        assert_eq!(
            delivered.into_inner(),
            vec![(1, 1.0), (2, 1.0), (3, 1.0), (4, 1.0), (5, 1.0), (6, 1.0)]
        );
    }

    #[test]
    fn timestamped_fires_boundaries_for_empty_intervals() {
        // Stream starts at interval 3: intervals 0..=2 were silent but
        // time still passed.
        let stream = timed(&[(3, 9)]);
        let mut closed = Vec::new();
        drive_timestamped(stream, 8, |_| {}, |t| closed.push(t));
        assert_eq!(closed, vec![0, 1, 2]);
    }

    #[test]
    fn timestamped_delivery_matches_plain_chunking() {
        let stream = timed(&[(0, 1), (1, 2), (1, 3), (4, 4), (4, 5)]);
        let mut plain = Vec::new();
        drive_chunked(stream.iter().map(|u| u.update()), 2, |c| {
            plain.extend_from_slice(c)
        });
        let mut via_timed = Vec::new();
        let total = drive_timestamped(stream, 2, |c| via_timed.extend_from_slice(c), |_| {});
        assert_eq!(total, 5);
        assert_eq!(via_timed, plain);
    }

    #[test]
    fn empty_timestamped_stream_closes_nothing() {
        let mut closed = Vec::new();
        let total = drive_timestamped(Vec::new(), 4, |_| {}, |t| closed.push(t));
        assert_eq!(total, 0);
        assert!(closed.is_empty());
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn timestamped_rejects_time_regressions() {
        drive_timestamped(timed(&[(2, 1), (1, 2)]), 4, |_| {}, |_| {});
    }

    #[test]
    fn driver_flush_is_a_mid_stream_barrier() {
        let mut driver = ChunkedDriver::new(10);
        let mut out = Vec::new();
        for u in arrivals(3) {
            driver.push(u, |c: &[(u64, f64)]| out.extend_from_slice(c));
        }
        assert!(out.is_empty()); // chunk not full yet
        driver.flush(|c: &[(u64, f64)]| out.extend_from_slice(c));
        assert_eq!(out.len(), 3);
        assert_eq!(driver.pending(), 0);
        assert_eq!(driver.delivered(), 3);
        driver.flush(|_: &[(u64, f64)]| panic!("flush of empty buffer must not deliver"));
    }
}
