//! Stream update types shared across the workspace.

/// A single turnstile stream update `x_item ← x_item + delta`
/// (paper §1: "a new incoming item `i ∈ [n]` corresponds to updating the
/// input vector `x ← x + e_i`"; the general form carries a real delta).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamUpdate {
    /// Coordinate being updated.
    pub item: u64,
    /// Signed change to the coordinate.
    pub delta: f64,
}

impl StreamUpdate {
    /// A unit insertion of `item` — the paper's arrival model.
    pub fn arrival(item: u64) -> Self {
        Self { item, delta: 1.0 }
    }

    /// An arbitrary turnstile update.
    pub fn new(item: u64, delta: f64) -> Self {
        Self { item, delta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_is_unit_delta() {
        let u = StreamUpdate::arrival(42);
        assert_eq!(u.item, 42);
        assert_eq!(u.delta, 1.0);
    }

    #[test]
    fn new_carries_delta() {
        let u = StreamUpdate::new(7, -2.5);
        assert_eq!(
            u,
            StreamUpdate {
                item: 7,
                delta: -2.5
            }
        );
    }
}
