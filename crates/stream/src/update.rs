//! Stream update types shared across the workspace.

/// A single turnstile stream update `x_item ← x_item + delta`
/// (paper §1: "a new incoming item `i ∈ [n]` corresponds to updating the
/// input vector `x ← x + e_i`"; the general form carries a real delta).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamUpdate {
    /// Coordinate being updated.
    pub item: u64,
    /// Signed change to the coordinate.
    pub delta: f64,
}

impl StreamUpdate {
    /// A unit insertion of `item` — the paper's arrival model.
    pub fn arrival(item: u64) -> Self {
        Self { item, delta: 1.0 }
    }

    /// An arbitrary turnstile update.
    pub fn new(item: u64, delta: f64) -> Self {
        Self { item, delta }
    }
}

/// A [`StreamUpdate`] tagged with the **interval** it belongs to — the
/// unit of time the windowed query plane rotates on.
///
/// Interval ids are monotone non-decreasing along a stream (time moves
/// forward); what an interval *means* — a wall-clock second, a
/// 5-minute bucket, a row-count quota — is the producer's business,
/// which keeps every consumer (drivers, tests, benches) deterministic.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimestampedUpdate {
    /// Interval the update belongs to.
    pub interval: u64,
    /// Coordinate being updated.
    pub item: u64,
    /// Signed change to the coordinate.
    pub delta: f64,
}

impl TimestampedUpdate {
    /// An arbitrary update tagged with its interval.
    pub fn new(interval: u64, item: u64, delta: f64) -> Self {
        Self {
            interval,
            item,
            delta,
        }
    }

    /// A unit insertion of `item` in `interval` — the arrival model.
    pub fn arrival(interval: u64, item: u64) -> Self {
        Self::new(interval, item, 1.0)
    }

    /// The untimed view of the update.
    pub fn update(&self) -> StreamUpdate {
        StreamUpdate {
            item: self.item,
            delta: self.delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamped_carries_interval_and_projects_update() {
        let u = TimestampedUpdate::new(3, 7, -2.5);
        assert_eq!(u.interval, 3);
        assert_eq!(u.update(), StreamUpdate::new(7, -2.5));
        let a = TimestampedUpdate::arrival(0, 42);
        assert_eq!(a.delta, 1.0);
    }

    #[test]
    fn arrival_is_unit_delta() {
        let u = StreamUpdate::arrival(42);
        assert_eq!(u.item, 42);
        assert_eq!(u.delta, 1.0);
    }

    #[test]
    fn new_carries_delta() {
        let u = StreamUpdate::new(7, -2.5);
        assert_eq!(
            u,
            StreamUpdate {
                item: 7,
                delta: -2.5
            }
        );
    }
}
