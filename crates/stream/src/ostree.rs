//! An order-statistic treap with augmented subtree sums.
//!
//! One structure serves two of the paper's streaming needs (§4.4):
//!
//! * **Streaming `ℓ1` bias**: the sampled coordinates live here keyed by
//!   value; the median is a weighted-rank selection.
//! * **Streaming `ℓ2` bias** (alternative to the Bias-Heap): buckets live
//!   here keyed by `w_i/π_i` with auxiliary values `(w_i, π_i)`; the sums
//!   over the middle `2k` ranks come from two prefix-sum queries. The
//!   `ablation_bias_maintenance` bench compares the two maintainers.
//!
//! Nodes carry an integer `weight` (multiplicity): the `ℓ1` sampler may
//! sample the same coordinate several times, and all those sample slots
//! always share one value, so they compress into a single weighted node.

use bas_hash::SplitMix64;

const NIL: u32 = u32::MAX;

#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone)]
struct Node {
    key: f64,
    id: u64,
    prio: u64,
    left: u32,
    right: u32,
    /// Multiplicity of this entry (≥ 1). Rank queries count units.
    weight: u64,
    /// Auxiliary per-unit values summed over subtrees (e.g. `w_i`, `π_i`).
    aux_a: f64,
    aux_b: f64,
    /// Subtree aggregates (including this node, times weight).
    sub_units: u64,
    sub_a: f64,
    sub_b: f64,
}

/// A balanced (treap) search tree over `(key, id)` pairs with subtree
/// counts and two auxiliary sums, supporting:
///
/// * `insert` / `remove` in `O(log n)` expected;
/// * `select(rank)` — the entry containing the given unit rank;
/// * `prefix_sums(rank)` — `(Σ aux_a, Σ aux_b)` over the first `rank`
///   units in key order.
///
/// Keys are `f64` compared by `total_cmp`, with `id` breaking ties, so
/// the order is deterministic.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone)]
pub struct OrderStatTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    rng: SplitMix64,
}

impl OrderStatTree {
    /// Creates an empty tree. The seed only affects internal balance.
    pub fn new(seed: u64) -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            rng: SplitMix64::new(seed ^ 0x7EA9_0001),
        }
    }

    /// Total number of units (sum of weights).
    pub fn total_units(&self) -> u64 {
        self.subtree_units(self.root)
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn subtree_units(&self, idx: u32) -> u64 {
        if idx == NIL {
            0
        } else {
            self.nodes[idx as usize].sub_units
        }
    }

    #[inline]
    fn subtree_a(&self, idx: u32) -> f64 {
        if idx == NIL {
            0.0
        } else {
            self.nodes[idx as usize].sub_a
        }
    }

    #[inline]
    fn subtree_b(&self, idx: u32) -> f64 {
        if idx == NIL {
            0.0
        } else {
            self.nodes[idx as usize].sub_b
        }
    }

    #[inline]
    fn pull(&mut self, idx: u32) {
        let (l, r) = {
            let n = &self.nodes[idx as usize];
            (n.left, n.right)
        };
        let units = self.subtree_units(l) + self.subtree_units(r) + self.nodes[idx as usize].weight;
        let a = self.subtree_a(l)
            + self.subtree_a(r)
            + self.nodes[idx as usize].aux_a * self.nodes[idx as usize].weight as f64;
        let b = self.subtree_b(l)
            + self.subtree_b(r)
            + self.nodes[idx as usize].aux_b * self.nodes[idx as usize].weight as f64;
        let n = &mut self.nodes[idx as usize];
        n.sub_units = units;
        n.sub_a = a;
        n.sub_b = b;
    }

    #[inline]
    fn key_less(a_key: f64, a_id: u64, b_key: f64, b_id: u64) -> bool {
        match a_key.total_cmp(&b_key) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a_id < b_id,
        }
    }

    fn alloc(&mut self, key: f64, id: u64, weight: u64, aux_a: f64, aux_b: f64) -> u32 {
        let prio = self.rng.next_u64();
        let node = Node {
            key,
            id,
            prio,
            left: NIL,
            right: NIL,
            weight,
            aux_a,
            aux_b,
            sub_units: weight,
            sub_a: aux_a * weight as f64,
            sub_b: aux_b * weight as f64,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Splits `t` into `(< (key,id), ≥ (key,id))`.
    fn split(&mut self, t: u32, key: f64, id: u64) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        let (t_key, t_id) = {
            let n = &self.nodes[t as usize];
            (n.key, n.id)
        };
        if Self::key_less(t_key, t_id, key, id) {
            let right = self.nodes[t as usize].right;
            let (a, b) = self.split(right, key, id);
            self.nodes[t as usize].right = a;
            self.pull(t);
            (t, b)
        } else {
            let left = self.nodes[t as usize].left;
            let (a, b) = self.split(left, key, id);
            self.nodes[t as usize].left = b;
            self.pull(t);
            (a, t)
        }
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let ar = self.nodes[a as usize].right;
            let merged = self.merge(ar, b);
            self.nodes[a as usize].right = merged;
            self.pull(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let merged = self.merge(a, bl);
            self.nodes[b as usize].left = merged;
            self.pull(b);
            b
        }
    }

    /// Inserts an entry. `(key, id)` pairs must be unique.
    pub fn insert(&mut self, key: f64, id: u64, weight: u64, aux_a: f64, aux_b: f64) {
        assert!(weight >= 1, "weight must be at least 1");
        let node = self.alloc(key, id, weight, aux_a, aux_b);
        let (a, b) = self.split(self.root, key, id);
        let ab = self.merge(a, node);
        self.root = self.merge(ab, b);
    }

    /// Removes the entry with exactly this `(key, id)`. Returns `true`
    /// if it was present.
    pub fn remove(&mut self, key: f64, id: u64) -> bool {
        let (a, rest) = self.split(self.root, key, id);
        // `rest` starts at (key,id); split off the single node by the
        // successor boundary (key, id+1) — ids are unique per key.
        let (target, b) = self.split(rest, key, id.wrapping_add(1));
        let found = target != NIL;
        if found {
            debug_assert_eq!(self.nodes[target as usize].id, id);
            debug_assert_eq!(self.nodes[target as usize].left, NIL);
            debug_assert_eq!(self.nodes[target as usize].right, NIL);
            self.free.push(target);
        }
        self.root = self.merge(a, b);
        found
    }

    /// Returns `(key, id, weight)` of the entry containing unit `rank`
    /// (0-indexed over `total_units()` units, in key order).
    pub fn select(&self, rank: u64) -> Option<(f64, u64, u64)> {
        if rank >= self.total_units() {
            return None;
        }
        let mut idx = self.root;
        let mut rank = rank;
        loop {
            let n = &self.nodes[idx as usize];
            let left_units = self.subtree_units(n.left);
            if rank < left_units {
                idx = n.left;
            } else if rank < left_units + n.weight {
                return Some((n.key, n.id, n.weight));
            } else {
                rank -= left_units + n.weight;
                idx = n.right;
            }
        }
    }

    /// Sums `(Σ aux_a, Σ aux_b)` over the first `rank` units in key
    /// order. A node split by the boundary contributes proportionally to
    /// the number of its units inside the prefix.
    pub fn prefix_sums(&self, rank: u64) -> (f64, f64) {
        let mut rank = rank.min(self.total_units());
        let mut idx = self.root;
        let mut acc_a = 0.0;
        let mut acc_b = 0.0;
        while idx != NIL && rank > 0 {
            let n = &self.nodes[idx as usize];
            let left_units = self.subtree_units(n.left);
            if rank <= left_units {
                idx = n.left;
            } else {
                acc_a += self.subtree_a(n.left);
                acc_b += self.subtree_b(n.left);
                let in_node = (rank - left_units).min(n.weight);
                acc_a += n.aux_a * in_node as f64;
                acc_b += n.aux_b * in_node as f64;
                rank -= left_units + in_node;
                idx = n.right;
            }
        }
        (acc_a, acc_b)
    }

    /// Sums over the unit-rank window `[lo, hi)`.
    pub fn range_sums(&self, lo: u64, hi: u64) -> (f64, f64) {
        assert!(lo <= hi, "invalid rank window");
        let (ha, hb) = self.prefix_sums(hi);
        let (la, lb) = self.prefix_sums(lo);
        (ha - la, hb - lb)
    }

    /// The weighted median key: unit rank `total/2` (lower median for
    /// even totals averaged with the next unit's key, matching the
    /// paper's `median(x)` convention).
    pub fn median_key(&self) -> Option<f64> {
        let total = self.total_units();
        if total == 0 {
            return None;
        }
        if total % 2 == 1 {
            self.select(total / 2).map(|(k, _, _)| k)
        } else {
            let hi = self.select(total / 2)?.0;
            let lo = self.select(total / 2 - 1)?.0;
            Some(0.5 * (lo + hi))
        }
    }

    /// In-order `(key, id, weight)` listing — test support.
    pub fn to_sorted_vec(&self) -> Vec<(f64, u64, u64)> {
        fn walk(tree: &OrderStatTree, idx: u32, out: &mut Vec<(f64, u64, u64)>) {
            if idx == NIL {
                return;
            }
            let n = &tree.nodes[idx as usize];
            walk(tree, n.left, out);
            out.push((n.key, n.id, n.weight));
            walk(tree, n.right, out);
        }
        let mut out = Vec::with_capacity(self.len());
        walk(self, self.root, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_order() {
        let mut t = OrderStatTree::new(1);
        for (k, id) in [(5.0, 0u64), (1.0, 1), (3.0, 2), (3.0, 3), (-2.0, 4)] {
            t.insert(k, id, 1, 0.0, 0.0);
        }
        let keys: Vec<f64> = t.to_sorted_vec().iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![-2.0, 1.0, 3.0, 3.0, 5.0]);
        assert_eq!(t.len(), 5);
        assert_eq!(t.total_units(), 5);
    }

    #[test]
    fn select_matches_sorted_position() {
        let mut t = OrderStatTree::new(2);
        let keys = [9.0, 2.0, 7.0, 4.0, 4.0, 11.0];
        for (id, &k) in keys.iter().enumerate() {
            t.insert(k, id as u64, 1, 0.0, 0.0);
        }
        let mut sorted = keys.to_vec();
        sorted.sort_by(f64::total_cmp);
        for (r, &expect) in sorted.iter().enumerate() {
            assert_eq!(t.select(r as u64).unwrap().0, expect, "rank {r}");
        }
        assert!(t.select(6).is_none());
    }

    #[test]
    fn weighted_select_counts_units() {
        let mut t = OrderStatTree::new(3);
        t.insert(1.0, 0, 3, 0.0, 0.0); // units 0..3
        t.insert(2.0, 1, 2, 0.0, 0.0); // units 3..5
        assert_eq!(t.total_units(), 5);
        for r in 0..3 {
            assert_eq!(t.select(r).unwrap().0, 1.0);
        }
        for r in 3..5 {
            assert_eq!(t.select(r).unwrap().0, 2.0);
        }
    }

    #[test]
    fn remove_restores_structure() {
        let mut t = OrderStatTree::new(4);
        for id in 0..20u64 {
            t.insert((id % 5) as f64, id, 1, 1.0, 2.0);
        }
        assert!(t.remove(2.0, 7));
        assert!(!t.remove(2.0, 7), "double remove must fail");
        assert!(!t.remove(99.0, 0));
        assert_eq!(t.len(), 19);
        let v = t.to_sorted_vec();
        assert!(v.iter().all(|&(_, id, _)| id != 7));
        // Sums reflect the removal.
        let (a, b) = t.prefix_sums(19);
        assert_eq!(a, 19.0);
        assert_eq!(b, 38.0);
    }

    #[test]
    fn prefix_sums_match_naive() {
        let mut t = OrderStatTree::new(5);
        let entries = [
            (3.0, 0u64, 1u64, 10.0, 1.0),
            (1.0, 1, 1, 20.0, 2.0),
            (2.0, 2, 1, 30.0, 3.0),
            (5.0, 3, 1, 40.0, 4.0),
        ];
        for &(k, id, w, a, b) in &entries {
            t.insert(k, id, w, a, b);
        }
        // Sorted by key: ids 1, 2, 0, 3 with aux_a 20, 30, 10, 40.
        let expect_a = [0.0, 20.0, 50.0, 60.0, 100.0];
        for (r, &ea) in expect_a.iter().enumerate() {
            let (a, _) = t.prefix_sums(r as u64);
            assert_eq!(a, ea, "rank {r}");
        }
        let (a, b) = t.range_sums(1, 3);
        assert_eq!(a, 40.0); // ids 2 and 0
        assert_eq!(b, 4.0);
    }

    #[test]
    fn weighted_prefix_sums_split_nodes() {
        let mut t = OrderStatTree::new(6);
        t.insert(1.0, 0, 4, 2.5, 1.0); // 4 units of (2.5, 1.0)
        let (a, b) = t.prefix_sums(3);
        assert_eq!(a, 7.5);
        assert_eq!(b, 3.0);
    }

    #[test]
    fn median_odd_and_even() {
        let mut t = OrderStatTree::new(7);
        assert_eq!(t.median_key(), None);
        t.insert(1.0, 0, 1, 0.0, 0.0);
        t.insert(5.0, 1, 1, 0.0, 0.0);
        t.insert(3.0, 2, 1, 0.0, 0.0);
        assert_eq!(t.median_key(), Some(3.0));
        t.insert(7.0, 3, 1, 0.0, 0.0);
        assert_eq!(t.median_key(), Some(4.0)); // (3+5)/2
    }

    #[test]
    fn key_update_via_remove_reinsert() {
        let mut t = OrderStatTree::new(8);
        for id in 0..10u64 {
            t.insert(id as f64, id, 1, id as f64, 0.0);
        }
        // Move id 0's key from 0.0 to 100.0.
        assert!(t.remove(0.0, 0));
        t.insert(100.0, 0, 1, 0.0, 0.0);
        assert_eq!(t.select(9).unwrap().1, 0); // now the largest
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn randomized_against_sorted_vec() {
        let mut t = OrderStatTree::new(9);
        let mut reference: Vec<(f64, u64, f64)> = Vec::new(); // (key, id, aux_a)
        let mut state = 5577u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..1500 {
            let op = rng() % 2;
            if op == 0 || reference.is_empty() {
                let id = step as u64;
                let key = (rng() % 100) as f64;
                let aux = (rng() % 10) as f64;
                t.insert(key, id, 1, aux, 0.0);
                reference.push((key, id, aux));
            } else {
                let pick = (rng() as usize) % reference.len();
                let (key, id, _) = reference.swap_remove(pick);
                assert!(t.remove(key, id));
            }
            reference.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            assert_eq!(t.total_units(), reference.len() as u64);
            if !reference.is_empty() {
                let r = (rng() as usize) % reference.len();
                assert_eq!(t.select(r as u64).unwrap().0, reference[r].0, "step {step}");
                let prefix: f64 = reference[..r].iter().map(|e| e.2).sum();
                let (a, _) = t.prefix_sums(r as u64);
                assert!((a - prefix).abs() < 1e-9, "step {step} rank {r}");
            }
        }
    }
}
