//! Reservoir sampling (Vitter's Algorithm R).

use bas_hash::SplitMix64;

/// Uniform sample of `k` items from a stream of unknown length.
///
/// Used by workload tooling (e.g. sampling update streams for
/// inspection) and handy for users estimating stream statistics next to
/// a sketch.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
    rng: SplitMix64,
}

impl<T> ReservoirSampler<T> {
    /// Creates a sampler keeping at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
            rng: SplitMix64::new(seed ^ 0x9E5E_4701),
        }
    }

    /// Offers an item to the reservoir.
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = self.rng.next_below(self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Number of items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample.
    pub fn sample(&self) -> &[T] {
        &self.items
    }

    /// Consumes the sampler, returning the sample.
    pub fn into_sample(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_below_capacity() {
        let mut r = ReservoirSampler::new(10, 1);
        for i in 0..5 {
            r.offer(i);
        }
        assert_eq!(r.sample(), &[0, 1, 2, 3, 4]);
        assert_eq!(r.seen(), 5);
    }

    #[test]
    fn capacity_is_respected() {
        let mut r = ReservoirSampler::new(8, 2);
        for i in 0..1000 {
            r.offer(i);
        }
        assert_eq!(r.sample().len(), 8);
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Each item of a 100-long stream should appear in the 10-slot
        // reservoir with probability 1/10; count over many seeds.
        let trials = 2000;
        let mut hits_item_0 = 0;
        let mut hits_item_99 = 0;
        for seed in 0..trials {
            let mut r = ReservoirSampler::new(10, seed);
            for i in 0..100 {
                r.offer(i);
            }
            if r.sample().contains(&0) {
                hits_item_0 += 1;
            }
            if r.sample().contains(&99) {
                hits_item_99 += 1;
            }
        }
        let p0 = hits_item_0 as f64 / trials as f64;
        let p99 = hits_item_99 as f64 / trials as f64;
        assert!((p0 - 0.1).abs() < 0.03, "p0 = {p0}");
        assert!((p99 - 0.1).abs() < 0.03, "p99 = {p99}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        ReservoirSampler::<u32>::new(0, 0);
    }

    #[test]
    fn into_sample_returns_items() {
        let mut r = ReservoirSampler::new(3, 5);
        for i in 0..3 {
            r.offer(i * 2);
        }
        assert_eq!(r.into_sample(), vec![0, 2, 4]);
    }
}
