//! The Bias-Heap of the paper's Algorithm 5.

use crate::indexed_heap::{HeapOrder, IndexedHeap};

/// Maintains the `ℓ2` bias estimate of Algorithm 4 under streaming
/// updates (paper, Algorithm 5).
///
/// The structure tracks `s` buckets with fixed column counts `π_i` and
/// streaming sums `w_i`, ordered by average `key_i = w_i / π_i`. Let the
/// *middle window* be the `2k` buckets around the median of that order.
/// The bias query returns
///
/// ```text
/// β̂ = (Σ_total w − Σ_A w − Σ_C w) / (Σ_total π − Σ_A π − Σ_C π)
/// ```
///
/// where `A` is the bottom set and `C` the top set outside the window —
/// line 19 of Algorithm 5. Updates run in `O(log s)`, queries in `O(1)`.
///
/// Implementation note: the published pseudocode pairs its four heaps as
/// (min A, max B) and (max C, min D), which cannot detect boundary
/// violations (a min-heap over the bottom set exposes the wrong end).
/// We keep the intended invariant — `max(A) ≤ min(rest)` and
/// `min(C) ≥ max(rest)` — by giving each boundary the polarity that
/// exposes it: `A` is a max-heap against a min-heap of its complement,
/// and `C` is a min-heap against a max-heap of its complement. Each
/// bucket therefore lives in exactly two heaps, as in the paper.
///
/// Buckets with `π_i = 0` (no universe element hashes there) carry no
/// information about the bias and are excluded up front.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone)]
pub struct BiasHeap {
    /// Fixed per-bucket column counts (only `π > 0` buckets retained).
    pi: Vec<f64>,
    /// Streaming per-bucket sums.
    w: Vec<f64>,
    /// Map from caller bucket index to dense internal id (`u32::MAX` if
    /// the bucket was excluded for `π = 0`).
    dense_id: Vec<u32>,
    in_a: Vec<bool>,
    in_c: Vec<bool>,
    /// Bottom partition: `a_max` holds A (top = largest in A), `b_min`
    /// holds the complement (top = smallest outside A).
    a_max: IndexedHeap,
    b_min: IndexedHeap,
    /// Top partition: `c_min` holds C (top = smallest in C), `d_max`
    /// holds the complement (top = largest outside C).
    c_min: IndexedHeap,
    d_max: IndexedHeap,
    w_a: f64,
    pi_a: f64,
    w_c: f64,
    pi_c: f64,
    w_total: f64,
    pi_total: f64,
}

impl BiasHeap {
    /// Builds the structure for buckets with column counts `pi`,
    /// keeping a middle window of `2k` buckets.
    ///
    /// The window is clamped to the number of usable buckets, matching
    /// the other bias maintainers (a tiny sketch simply averages all of
    /// its buckets).
    ///
    /// # Panics
    /// Panics if no bucket has `π > 0`.
    pub fn new(pi: &[u64], k: usize) -> Self {
        let usable: Vec<usize> = (0..pi.len()).filter(|&i| pi[i] > 0).collect();
        let s = usable.len();
        assert!(s > 0, "all buckets have zero column count");
        let window = (2 * k).max(1).min(s);
        // Split the out-of-window buckets as evenly as the paper's
        // (s/2−k−1, s/2−k+1) split: bottom gets the smaller half.
        let n_a = (s - window) / 2;
        let n_c = s - window - n_a;

        let mut dense_id = vec![u32::MAX; pi.len()];
        let mut dense_pi = Vec::with_capacity(s);
        for (dense, &orig) in usable.iter().enumerate() {
            dense_id[orig] = dense as u32;
            dense_pi.push(pi[orig] as f64);
        }
        let pi_total: f64 = dense_pi.iter().sum();

        // All keys start at 0/π = 0; membership is decided by the
        // deterministic (key, id) order, so the initial bottom set is
        // simply the lowest ids.
        let mut a_max = IndexedHeap::new(HeapOrder::Max, s);
        let mut b_min = IndexedHeap::new(HeapOrder::Min, s);
        let mut c_min = IndexedHeap::new(HeapOrder::Min, s);
        let mut d_max = IndexedHeap::new(HeapOrder::Max, s);
        let mut in_a = vec![false; s];
        let mut in_c = vec![false; s];
        // All w start at zero, so the boundary sums of w start at zero.
        let (w_a, w_c) = (0.0, 0.0);
        let mut pi_a = 0.0;
        let mut pi_c = 0.0;
        for id in 0..s {
            if id < n_a {
                in_a[id] = true;
                a_max.insert(id as u32, 0.0);
                pi_a += dense_pi[id];
            } else {
                b_min.insert(id as u32, 0.0);
            }
            if id >= s - n_c {
                in_c[id] = true;
                c_min.insert(id as u32, 0.0);
                pi_c += dense_pi[id];
            } else {
                d_max.insert(id as u32, 0.0);
            }
        }
        Self {
            pi: dense_pi,
            w: vec![0.0; s],
            dense_id,
            in_a,
            in_c,
            a_max,
            b_min,
            c_min,
            d_max,
            w_a,
            pi_a,
            w_c,
            pi_c,
            w_total: 0.0,
            pi_total,
        }
    }

    /// Number of buckets tracked (those with `π > 0`).
    pub fn num_buckets(&self) -> usize {
        self.pi.len()
    }

    #[inline]
    fn key(&self, id: usize) -> f64 {
        self.w[id] / self.pi[id]
    }

    /// Applies a streaming delta to the given (caller-indexed) bucket.
    pub fn update(&mut self, bucket: usize, delta: f64) {
        let id = self.dense_id[bucket];
        assert!(
            id != u32::MAX,
            "bucket {bucket} has zero column count and receives no items"
        );
        let idu = id as usize;
        self.w[idu] += delta;
        self.w_total += delta;
        let key = self.key(idu);
        if self.in_a[idu] {
            self.w_a += delta;
            self.a_max.update_key(id, key);
        } else {
            self.b_min.update_key(id, key);
        }
        if self.in_c[idu] {
            self.w_c += delta;
            self.c_min.update_key(id, key);
        } else {
            self.d_max.update_key(id, key);
        }
        self.rebalance_bottom();
        self.rebalance_top();
    }

    /// Restores `max(A) ≤ min(complement of A)` by swapping boundary
    /// elements (paper, lines 13–14).
    fn rebalance_bottom(&mut self) {
        loop {
            let (Some((ka, ida)), Some((kb, idb))) = (self.a_max.peek(), self.b_min.peek()) else {
                return;
            };
            // Strict comparison with id tiebreak mirrors the heap order.
            let out_of_order = match ka.total_cmp(&kb) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => ida > idb,
                std::cmp::Ordering::Less => false,
            };
            if !out_of_order {
                return;
            }
            self.a_max.remove(ida);
            self.b_min.remove(idb);
            self.a_max.insert(idb, kb);
            self.b_min.insert(ida, ka);
            self.in_a[ida as usize] = false;
            self.in_a[idb as usize] = true;
            self.w_a += self.w[idb as usize] - self.w[ida as usize];
            self.pi_a += self.pi[idb as usize] - self.pi[ida as usize];
        }
    }

    /// Restores `min(C) ≥ max(complement of C)` (paper, lines 15–16).
    fn rebalance_top(&mut self) {
        loop {
            let (Some((kc, idc)), Some((kd, idd))) = (self.c_min.peek(), self.d_max.peek()) else {
                return;
            };
            let out_of_order = match kc.total_cmp(&kd) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => idc < idd,
                std::cmp::Ordering::Greater => false,
            };
            if !out_of_order {
                return;
            }
            self.c_min.remove(idc);
            self.d_max.remove(idd);
            self.c_min.insert(idd, kd);
            self.d_max.insert(idc, kc);
            self.in_c[idc as usize] = false;
            self.in_c[idd as usize] = true;
            self.w_c += self.w[idd as usize] - self.w[idc as usize];
            self.pi_c += self.pi[idd as usize] - self.pi[idc as usize];
        }
    }

    /// The current bias estimate `β̂` (paper, Algorithm 5 line 19).
    pub fn bias(&self) -> f64 {
        let denom = self.pi_total - self.pi_a - self.pi_c;
        debug_assert!(denom > 0.0, "middle window has zero column mass");
        (self.w_total - self.w_a - self.w_c) / denom
    }

    /// Reference computation: sort buckets by `w/π` and average the
    /// middle window directly. `O(s log s)`; used by tests and by the
    /// ablation bench as the "naive re-sort" strategy.
    pub fn bias_by_sorting(&self) -> f64 {
        let s = self.pi.len();
        let mut order: Vec<usize> = (0..s).collect();
        order.sort_by(|&a, &b| self.key(a).total_cmp(&self.key(b)).then(a.cmp(&b)));
        let n_a = self.a_max.len();
        let n_c = self.c_min.len();
        let mut w_sum = 0.0;
        let mut pi_sum = 0.0;
        for &id in &order[n_a..s - n_c] {
            w_sum += self.w[id];
            pi_sum += self.pi[id];
        }
        w_sum / pi_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64, msg: &str) {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
            "{msg}: {a} vs {b}"
        );
    }

    #[test]
    fn uniform_buckets_estimate_common_value() {
        // 8 buckets, each with π = 10 columns, all carrying w = 10·β.
        let pi = vec![10u64; 8];
        let mut bh = BiasHeap::new(&pi, 2);
        for b in 0..8 {
            bh.update(b, 500.0); // every bucket averages 50
        }
        assert_close(bh.bias(), 50.0, 1e-12, "uniform bias");
    }

    #[test]
    fn outliers_in_extreme_buckets_are_excluded() {
        let pi = vec![10u64; 8];
        let mut bh = BiasHeap::new(&pi, 2); // window = 4, excludes 2+2
        for b in 0..8 {
            bh.update(b, 100.0); // all average 10
        }
        // Pollute two buckets massively (outliers) and two negatively.
        bh.update(0, 1_000_000.0);
        bh.update(1, 900_000.0);
        bh.update(2, -500_000.0);
        bh.update(3, -400_000.0);
        // The middle window holds the 4 clean buckets averaging 10.
        assert_close(bh.bias(), 10.0, 1e-9, "outliers excluded");
    }

    #[test]
    fn matches_sort_reference_under_random_updates() {
        let pi: Vec<u64> = (0..33).map(|i| 1 + (i % 7)).collect();
        let mut bh = BiasHeap::new(&pi, 5);
        let mut state = 42u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..5000 {
            let bucket = (rng() % 33) as usize;
            let delta = ((rng() % 2001) as f64 - 1000.0) / 10.0;
            bh.update(bucket, delta);
            if step % 97 == 0 {
                assert_close(
                    bh.bias(),
                    bh.bias_by_sorting(),
                    1e-9,
                    &format!("step {step}"),
                );
            }
        }
        assert_close(bh.bias(), bh.bias_by_sorting(), 1e-9, "final");
    }

    #[test]
    fn zero_pi_buckets_excluded() {
        let pi = vec![0u64, 5, 5, 0, 5, 5, 5, 5];
        let bh = BiasHeap::new(&pi, 2);
        assert_eq!(bh.num_buckets(), 6);
    }

    #[test]
    #[should_panic(expected = "zero column count and receives no items")]
    fn updating_zero_pi_bucket_panics() {
        let pi = vec![0u64, 5, 5, 5, 5];
        let mut bh = BiasHeap::new(&pi, 2);
        bh.update(0, 1.0);
    }

    #[test]
    fn oversized_window_clamps_to_all_buckets() {
        let mut bh = BiasHeap::new(&[1, 1, 1], 4);
        bh.update(0, 3.0);
        bh.update(1, 6.0);
        bh.update(2, 9.0);
        // Window clamped to 3 buckets: global average 18/3.
        assert!((bh.bias() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn window_equals_all_buckets_uses_everything() {
        let pi = vec![2u64; 4];
        let mut bh = BiasHeap::new(&pi, 2); // window 4 == s: A and C empty
        bh.update(0, 4.0);
        bh.update(1, 8.0);
        bh.update(2, 12.0);
        bh.update(3, 16.0);
        // Global average = 40 / 8 columns = 5.
        assert_close(bh.bias(), 5.0, 1e-12, "global average");
    }

    #[test]
    fn weighted_buckets_average_by_columns() {
        // Two middle buckets with different π must be combined as
        // Σw / Σπ, not as a mean of averages.
        let pi = vec![1u64, 1, 4, 1, 1];
        let mut bh = BiasHeap::new(&pi, 1); // window 2, A has 1, C has 2
                                            // Keys after updates: b0=-100, b1=2, b2=3 (12/4), b3=50, b4=60.
        bh.update(0, -100.0);
        bh.update(1, 2.0);
        bh.update(2, 12.0);
        bh.update(3, 50.0);
        bh.update(4, 60.0);
        // Middle window by key: ranks 1..3 → buckets 1 and 2.
        assert_close(bh.bias(), (2.0 + 12.0) / 5.0, 1e-12, "weighted");
        assert_close(bh.bias_by_sorting(), (2.0 + 12.0) / 5.0, 1e-12, "sorted");
    }
}
