//! Estimate-space combination: answering one query from **many**
//! frozen planes that need not share a hasher configuration.
//!
//! Counter-space plane arithmetic (`merge_snapshot` /
//! `subtract_snapshot`) is the cheapest way to combine planes, but it
//! is only *sound* when every plane hashes with the same functions —
//! adding bucket `(r, c)` across planes presumes the bucket means the
//! same set of colliding items in each. Seed rotation
//! (`bas_pipeline::RotatingIngest`) and heterogeneous distributed
//! sites break that premise on purpose. This module combines planes
//! one level up, in **estimate space**: query each plane through its
//! own hashers, then combine the per-plane *estimates*:
//!
//! * [`EstimateCombine::Sum`] — the planes partition the stream
//!   (disjoint time slices, disjoint sites): by linearity of the
//!   underlying frequency vectors, `x_j = Σ_g x^g_j`, so summing
//!   unbiased per-plane estimates estimates the total. Consecutive
//!   **same-config** planes are first merged in counter space — free
//!   accuracy, and the reason the homogeneous-seed case degenerates to
//!   exactly the counter-space answer, bit for bit
//!   (`tests/estimate_space.rs` freezes this).
//! * [`EstimateCombine::Mean`] / [`EstimateCombine::Median`] — the
//!   planes *replicate* the stream (same updates, independent seeds):
//!   each plane is an independent estimator of the same `x_j`, so the
//!   mean tightens variance and the median tightens the failure
//!   probability, Count-Median-style but across planes. Here
//!   same-config planes are **not** merged — each plane is one vote.
//!
//! The price of Sum over K rotated planes: each plane's estimate
//! carries its own Theorem-1 error term, so the window bound is up to
//! K error terms where a single fixed-seed plane pays one. That is the
//! robustness trade quantified in the `window_serving` bench and
//! tested end-to-end in `tests/adversarial.rs`.

use crate::error::QueryError;
use bas_sketch::{HeavyHitter, Reseedable, Snapshottable};

/// How per-plane estimates are combined into one answer — see the
/// module docs for which variant matches which plane relationship
/// (partitioned stream vs replicated stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateCombine {
    /// Sum the per-plane estimates: the planes partition the stream
    /// (time slices of one engine, disjoint distributed sites).
    Sum,
    /// Average the per-plane estimates: the planes replicate the
    /// stream under independent seeds; averaging tightens variance.
    Mean,
    /// Median of the per-plane estimates: replicated planes again,
    /// trading variance reduction for outlier (failure-probability)
    /// suppression — the cross-plane analogue of median-of-rows.
    Median,
}

impl EstimateCombine {
    /// Combines one query's per-plane estimates. `values` is scratch
    /// (Median reorders it).
    ///
    /// # Panics
    /// Panics on an empty slice — a query must see at least one plane.
    pub fn combine(&self, values: &mut [f64]) -> f64 {
        assert!(!values.is_empty(), "no planes to combine");
        match self {
            EstimateCombine::Sum => values.iter().sum(),
            EstimateCombine::Mean => values.iter().sum::<f64>() / values.len() as f64,
            EstimateCombine::Median => {
                values.sort_by(f64::total_cmp);
                let mid = values.len() / 2;
                if values.len() % 2 == 1 {
                    values[mid]
                } else {
                    (values[mid - 1] + values[mid]) / 2.0
                }
            }
        }
    }
}

/// One combination unit: either a borrowed single plane (bit-for-bit
/// the caller's counters) or the counter-space merge of a run of
/// same-config planes.
enum GroupPlane<'a, S: Snapshottable> {
    Borrowed(&'a S::Snapshot),
    Merged(S::Snapshot),
}

/// The planes regrouped for one combination pass: built once, queried
/// per item.
struct Combined<'a, S: Snapshottable> {
    groups: Vec<(&'a S, GroupPlane<'a, S>)>,
    combine: EstimateCombine,
}

impl<'a, S: Snapshottable + Reseedable> Combined<'a, S> {
    fn new(entries: &[(&'a S, &'a S::Snapshot)], combine: EstimateCombine) -> Self {
        assert!(!entries.is_empty(), "no planes to combine");
        let mut groups: Vec<(&'a S, GroupPlane<'a, S>)> = Vec::new();
        if combine == EstimateCombine::Sum {
            // Runs of consecutive same-config planes merge in counter
            // space first: sound (identical hashers) and strictly more
            // accurate than summing their separate estimates, because
            // the median/min recovery then sees the summed counters.
            let mut run = 0;
            while run < entries.len() {
                let (sketch, first) = entries[run];
                let config = sketch.config();
                let mut end = run + 1;
                while end < entries.len()
                    && entries[end]
                        .0
                        .config()
                        .check_counter_compatible(&config)
                        .is_ok()
                {
                    end += 1;
                }
                if end == run + 1 {
                    groups.push((sketch, GroupPlane::Borrowed(first)));
                } else {
                    let mut acc = sketch.make_snapshot(); // zero-filled
                    let mut merged_all = true;
                    for &(_, plane) in &entries[run..end] {
                        if sketch.merge_snapshot(&mut acc, plane).is_err() {
                            merged_all = false;
                            break;
                        }
                    }
                    if merged_all {
                        groups.push((sketch, GroupPlane::Merged(acc)));
                    } else {
                        // Non-additive counters (state-dependent
                        // baselines): fall back to per-plane estimates,
                        // which is the definition of estimate-space Sum.
                        for &(s, plane) in &entries[run..end] {
                            groups.push((s, GroupPlane::Borrowed(plane)));
                        }
                    }
                }
                run = end;
            }
        } else {
            // Mean/Median: every plane is one independent vote — never
            // pre-merge, even same-config planes.
            for &(sketch, plane) in entries {
                groups.push((sketch, GroupPlane::Borrowed(plane)));
            }
        }
        Self { groups, combine }
    }

    fn estimate(&self, item: u64, scratch: &mut Vec<f64>) -> f64 {
        scratch.clear();
        for (sketch, group) in &self.groups {
            let plane = match group {
                GroupPlane::Borrowed(p) => *p,
                GroupPlane::Merged(p) => p,
            };
            scratch.push(sketch.estimate_in(plane, item));
        }
        self.combine.combine(scratch)
    }
}

/// Combined point estimates for `items` across many frozen planes,
/// each queried through its **own** sketch's hash functions — the
/// estimate-space path that stays sound when the planes' seeds differ
/// (rotated generations, heterogeneous distributed sites).
///
/// Each entry pairs the sketch owning the hashers with the frozen
/// plane to query; entries should be ordered (by time slice or site)
/// so that same-config runs are adjacent — under
/// [`EstimateCombine::Sum`] those runs are counter-merged first, which
/// makes the all-same-config case agree **bit for bit** with the
/// counter-space merge path on integer streams.
///
/// # Panics
/// Panics if `entries` is empty, or on plane-shape mismatches between
/// same-config entries (the same panic `merge_snapshot` raises).
pub fn combine_plane_estimates<S: Snapshottable + Reseedable>(
    entries: &[(&S, &S::Snapshot)],
    items: &[u64],
    combine: EstimateCombine,
) -> Vec<f64> {
    let combined = Combined::new(entries, combine);
    let mut scratch = Vec::with_capacity(entries.len());
    items
        .iter()
        .map(|&item| combined.estimate(item, &mut scratch))
        .collect()
}

/// Heavy hitters across many frozen planes by combined estimate: every
/// item whose [`combine_plane_estimates`] value reaches `phi · mass`,
/// sorted by decreasing estimate — the estimate-space counterpart of
/// the counter-space window scan. `mass` is the caller's combined
/// window mass (sum over the planes for [`EstimateCombine::Sum`]; the
/// common stream's mass for Mean/Median replicas).
///
/// A full universe scan over every group (`O(n · groups · d)`).
///
/// # Errors
/// Returns [`QueryError::InvalidPhi`] unless `0 < phi < 1`.
///
/// # Panics
/// Panics if `entries` is empty.
pub fn heavy_hitters_across<S: Snapshottable + Reseedable>(
    entries: &[(&S, &S::Snapshot)],
    mass: f64,
    phi: f64,
    combine: EstimateCombine,
) -> Result<Vec<HeavyHitter>, QueryError> {
    QueryError::check_phi(phi)?;
    let combined = Combined::new(entries, combine);
    if mass <= 0.0 {
        return Ok(Vec::new());
    }
    let threshold = phi * mass;
    let universe = entries[0].0.universe();
    let mut scratch = Vec::with_capacity(entries.len());
    let mut out: Vec<HeavyHitter> = (0..universe)
        .filter_map(|item| {
            let estimate = combined.estimate(item, &mut scratch);
            (estimate >= threshold).then_some(HeavyHitter { item, estimate })
        })
        .collect();
    out.sort_by(|a, b| b.estimate.total_cmp(&a.estimate).then(a.item.cmp(&b.item)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sketch::{CountMedian, PointQuerySketch, SketchParams};

    fn params(seed: u64) -> SketchParams {
        SketchParams::new(300, 64, 5).with_seed(seed)
    }

    fn sketch_of(seed: u64, updates: &[(u64, f64)]) -> CountMedian {
        let mut cm = CountMedian::new(&params(seed));
        cm.update_batch(updates);
        cm
    }

    #[test]
    fn combine_variants() {
        assert_eq!(EstimateCombine::Sum.combine(&mut [1.0, 2.0, 4.0]), 7.0);
        assert_eq!(EstimateCombine::Mean.combine(&mut [1.0, 2.0, 6.0]), 3.0);
        assert_eq!(EstimateCombine::Median.combine(&mut [9.0, 1.0, 4.0]), 4.0);
        assert_eq!(EstimateCombine::Median.combine(&mut [4.0, 2.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "no planes")]
    fn empty_combine_panics() {
        EstimateCombine::Sum.combine(&mut []);
    }

    #[test]
    fn homogeneous_sum_equals_counter_space_bit_for_bit() {
        let first: Vec<(u64, f64)> = (0..400).map(|i| (i * 7 % 300, 2.0)).collect();
        let second: Vec<(u64, f64)> = (0..300).map(|i| (i * 11 % 300, 3.0)).collect();
        let a = sketch_of(5, &first);
        let b = sketch_of(5, &second);
        let (snap_a, snap_b) = (a.make_snapshot_of(), b.make_snapshot_of());

        // Counter-space reference: merge the planes, estimate once.
        let mut merged = snap_a.clone();
        a.merge_snapshot(&mut merged, &snap_b).unwrap();

        let items: Vec<u64> = (0..300).collect();
        let combined = combine_plane_estimates(
            &[(&a, &snap_a), (&b, &snap_b)],
            &items,
            EstimateCombine::Sum,
        );
        for (j, &est) in items.iter().zip(&combined) {
            assert_eq!(est, a.estimate_in(&merged, *j), "item {j}");
        }
    }

    #[test]
    fn heterogeneous_sum_estimates_the_total() {
        // Different seeds: counter merging is unsound, estimate-space
        // Sum still estimates x_j = x^0_j + x^1_j.
        let first: Vec<(u64, f64)> = vec![(7, 100.0), (9, 40.0)];
        let second: Vec<(u64, f64)> = vec![(7, 50.0), (11, 30.0)];
        let a = sketch_of(1, &first);
        let b = sketch_of(2, &second);
        let (snap_a, snap_b) = (a.make_snapshot_of(), b.make_snapshot_of());
        let out = combine_plane_estimates(
            &[(&a, &snap_a), (&b, &snap_b)],
            &[7, 9, 11],
            EstimateCombine::Sum,
        );
        // Sparse stream, wide sketch: estimates are exact here.
        assert_eq!(out, vec![150.0, 40.0, 30.0]);
    }

    #[test]
    fn median_across_replicas_suppresses_an_outlier_plane() {
        // Three replicas of the same stream under independent seeds;
        // one is corrupted. The median ignores it, the mean does not.
        let stream: Vec<(u64, f64)> = vec![(3, 10.0)];
        let a = sketch_of(1, &stream);
        let b = sketch_of(2, &stream);
        let mut c = sketch_of(3, &stream);
        c.update(3, 900.0); // corrupted replica
        let (sa, sb, sc) = (
            a.make_snapshot_of(),
            b.make_snapshot_of(),
            c.make_snapshot_of(),
        );
        let entries = [(&a, &sa), (&b, &sb), (&c, &sc)];
        let med = combine_plane_estimates(&entries, &[3], EstimateCombine::Median)[0];
        let mean = combine_plane_estimates(&entries, &[3], EstimateCombine::Mean)[0];
        assert_eq!(med, 10.0);
        assert!(mean > 100.0);
    }

    #[test]
    fn heavy_hitters_across_rotated_planes() {
        // Item 7 is heavy only when both time slices are combined.
        let first: Vec<(u64, f64)> = (0..100u64).map(|i| (i, 1.0)).chain([(7, 60.0)]).collect();
        let second: Vec<(u64, f64)> = (100..200u64).map(|i| (i, 1.0)).chain([(7, 60.0)]).collect();
        let a = sketch_of(1, &first);
        let b = sketch_of(2, &second);
        let (sa, sb) = (a.make_snapshot_of(), b.make_snapshot_of());
        let mass = 320.0;
        let hot = heavy_hitters_across(&[(&a, &sa), (&b, &sb)], mass, 0.25, EstimateCombine::Sum)
            .unwrap();
        let items: Vec<u64> = hot.iter().map(|h| h.item).collect();
        assert!(items.contains(&7), "{items:?}");
        for w in hot.windows(2) {
            assert!(w[0].estimate >= w[1].estimate);
        }
        assert_eq!(
            heavy_hitters_across(&[(&a, &sa)], mass, 1.5, EstimateCombine::Sum),
            Err(QueryError::InvalidPhi { phi: 1.5 })
        );
    }

    /// Test helper: freeze a sketch's current counters.
    trait MakeSnapshotOf: Snapshottable {
        fn make_snapshot_of(&self) -> Self::Snapshot {
            let mut snap = self.make_snapshot();
            self.snapshot_into(&mut snap);
            snap
        }
    }
    impl<S: Snapshottable> MakeSnapshotOf for S {}
}
