//! # bas-serve — the live query plane
//!
//! Everything below this crate moves data *into* sketches; this crate
//! serves queries *out of* one **while writers are still feeding it**.
//! A [`QueryEngine`] owns the write side — a
//! [`WindowedIngest`] fanning each
//! flush across N worker threads into one shared `Atomic`-backed
//! sketch — and hands out any number of cloneable [`QueryHandle`]s for
//! the read side. Two read modes, chosen per query:
//!
//! * **live** ([`QueryHandle::estimate_live`]) — reads the atomic cells
//!   directly, lock-free, never waits. Each cell is one atomic word,
//!   so a single-cell read is always a real value; a multi-cell
//!   estimate may mix counters from an in-flight flush. Right for
//!   monitoring-grade point reads where a bounded smear across one
//!   flush is acceptable.
//! * **snapshot** ([`QueryHandle::pin`]) — freezes an epoch-consistent
//!   dense copy via the seqlock in `bas_pipeline::epoch`. Every pinned
//!   view equals the sketch of a **prefix** of the pushed stream, so
//!   multi-cell queries (median-of-rows estimates, heavy-hitter scans,
//!   range decompositions, inner products) are exactly as trustworthy
//!   as on a quiesced sketch. [`SnapshotHandle::refresh`] re-pins into
//!   the same buffer, so steady-state readers allocate nothing.
//!
//! ## Serving policies: since-boot vs time-scoped
//!
//! The engine is generic over a [`ServingPolicy`] deciding *how much
//! history* queries cover:
//!
//! * [`Unbounded`] (the default) — the since-boot accumulator, with
//!   the exact pre-window behavior;
//! * [`Tumbling`]`(K)` / [`Sliding`]`(K)` — **windowed** serving over
//!   the last bucket / last `K` intervals. The write side gains one
//!   verb, [`advance_interval`](QueryEngine::advance_interval) (flush
//!   + seal the cumulative plane into a rotating bank), and the read
//!   side gains window-scoped queries:
//!   [`point_in_window`](QueryEngine::point_in_window),
//!   [`heavy_hitters_in_window`](QueryEngine::heavy_hitters_in_window),
//!   [`range_sum_in_window`](QueryEngine::range_sum_in_window), and
//!   pinnable [`WindowSnapshot`]s. Window answers are **plane
//!   arithmetic** — `cumulative(now) − sealed(boundary)`, exact for
//!   the linear sketches by `Φx^{(a,t]} = Φx^{(0,t]} − Φx^{(0,a]}` —
//!   so there is no second ingest path and no per-window counters.
//!
//! Bad query parameters (invalid `phi`, reversed ranges, zero-length
//! windows) are rejected with the typed [`QueryError`]; the panicking
//! conveniences panic with its `Display` message.
//!
//! The engine is generic over any sketch that is both
//! [`SharedSketch`] (lock-free shared ingest)
//! and [`Snapshottable`] (freezable counters): Count-Median,
//! Count-Sketch, Count-Min (plain), and the dyadic range-sum stack.
//!
//! ```
//! use bas_serve::QueryEngine;
//! use bas_sketch::{AtomicCountMedian, SketchParams};
//!
//! let params = SketchParams::new(10_000, 256, 5).with_seed(8);
//! let mut engine = QueryEngine::new(4, AtomicCountMedian::with_backend(&params));
//!
//! // Writer side: push updates; full buffers flush across 4 threads.
//! for i in 0..20_000u64 {
//!     engine.push(i % 10_000, 1.0);
//! }
//! engine.flush();
//!
//! // Reader side: live point reads and consistent snapshots. On a
//! // quiesced engine the two modes agree bit-for-bit.
//! let snap = engine.pin();
//! assert_eq!(snap.applied(), 20_000);
//! assert_eq!(snap.estimate(42), engine.estimate_live(42));
//! ```
//!
//! Windowed serving (the time-scoped shape — "heavy hitters in the
//! current window", not "since boot"):
//!
//! ```
//! use bas_serve::{QueryEngine, Sliding};
//! use bas_sketch::{AtomicCountMedian, SketchParams};
//!
//! let params = SketchParams::new(1_000, 128, 5).with_seed(9);
//! let policy = Sliding::new(2).unwrap(); // last 2 intervals
//! let mut engine =
//!     QueryEngine::with_policy(2, AtomicCountMedian::with_backend(&params), policy);
//!
//! for interval in 0..4u64 {
//!     engine.push(7, 10.0); // item 7 gets 10 per interval
//!     engine.advance_interval();
//! }
//! // Window = intervals 3..=4 (4 is in progress, still empty).
//! let window = engine.pin_window();
//! assert_eq!(window.estimate(7), 10.0); // one interval's worth, not 40
//! assert_eq!(window.mass(), 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod error;
mod estimate;
mod policy;
mod rotate;
mod window;

pub use audit::{AuditPolicy, AuditedHandle};
pub use error::QueryError;
pub use estimate::{combine_plane_estimates, heavy_hitters_across, EstimateCombine};
pub use policy::{ServingPolicy, Sliding, Tumbling, Unbounded, WindowPolicy};
pub use rotate::RotatingEngine;
pub use window::WindowSnapshot;

use bas_pipeline::{EpochHandle, SnapshotHandle, WindowedIngest};
use bas_sketch::{
    AbsorbPlane, CountSketch, CounterBackend, HeavyHitter, MergeError, PointQuerySketch,
    RangeSumSketch, Reseedable, SharedSketch, Snapshottable,
};
use bas_stream::StreamUpdate;

/// Scans a frozen plane for every item whose estimate reaches
/// `phi · mass` — the one heavy-hitter kernel shared by the unbounded
/// snapshot scan and the window scan.
fn scan_heavy_hitters<S: Snapshottable>(
    sketch: &S,
    plane: &S::Snapshot,
    mass: f64,
    phi: f64,
) -> Result<Vec<HeavyHitter>, QueryError> {
    QueryError::check_phi(phi)?;
    if mass <= 0.0 {
        return Ok(Vec::new());
    }
    let threshold = phi * mass;
    let mut out: Vec<HeavyHitter> = (0..sketch.universe())
        .filter_map(|item| {
            let estimate = sketch.estimate_in(plane, item);
            (estimate >= threshold).then_some(HeavyHitter { item, estimate })
        })
        .collect();
    out.sort_by(|a, b| b.estimate.total_cmp(&a.estimate).then(a.item.cmp(&b.item)));
    Ok(out)
}

/// A query engine over one concurrently-fed sketch: the write side is
/// a [`WindowedIngest`] (N worker threads, one shared counter
/// plane, plus interval rotation when the policy is windowed), the
/// read side is any number of [`QueryHandle`]s serving live and
/// snapshot reads — see the crate docs for the mode choice and the
/// policy choice.
///
/// The `&mut self` methods are the single-producer write side (hand
/// the engine to your ingest thread); [`handle`](QueryEngine::handle)
/// clones are the multi-consumer read side (hand one to each reader
/// thread). Readers never block writers: snapshot pins retry across
/// in-flight flushes instead of locking them out.
///
/// When building the underlying sketch for a **new** engine, prefer
/// `SketchParams` with `HashKind::OneHash`: the batch kernels the
/// flush path runs hoist its single digest out of the row loop, which
/// is where serving throughput comes from. The classical kinds remain
/// the right choice for paper-conformance experiments and for engines
/// that must answer bit-for-bit like existing serialized sketches.
#[derive(Debug)]
pub struct QueryEngine<
    S: SharedSketch + Snapshottable + Reseedable + Send,
    P: ServingPolicy = Unbounded,
> {
    ingest: WindowedIngest<S>,
    policy: P,
}

impl<S: SharedSketch + Snapshottable + Reseedable + Send> QueryEngine<S> {
    /// Creates an [`Unbounded`] (since-boot) engine whose flushes fan
    /// across `workers` threads — the pre-window constructor,
    /// behaviorally identical to it. The sketch must be built on a
    /// shared-capable backend (e.g. [`bas_sketch::Atomic`]).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize, sketch: S) -> Self {
        Self::with_policy(workers, sketch, Unbounded)
    }
}

impl<S: SharedSketch + Snapshottable + Reseedable + Send, P: ServingPolicy> QueryEngine<S, P> {
    /// Creates an engine with an explicit serving policy (see the
    /// crate docs). [`Unbounded`] allocates no plane bank; windowed
    /// policies retain `policy.bank_capacity()` sealed planes.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_policy(workers: usize, sketch: S, policy: P) -> Self {
        Self {
            ingest: WindowedIngest::new(workers, sketch, policy.bank_capacity()),
            policy,
        }
    }

    /// Overrides the flush threshold (see
    /// [`bas_pipeline::ConcurrentIngest::with_flush_threshold`]).
    /// Smaller thresholds mean fresher snapshots (more flush
    /// boundaries) at more per-flush overhead.
    ///
    /// # Panics
    /// Panics if `updates` is zero.
    pub fn with_flush_threshold(mut self, updates: usize) -> Self {
        self.ingest = self.ingest.with_flush_threshold(updates);
        self
    }

    /// The serving policy in effect.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    // ---- write side (single producer, `&mut self`) ----

    /// Buffers one update, flushing across the workers when the buffer
    /// fills.
    pub fn push(&mut self, item: u64, delta: f64) {
        self.ingest.push(item, delta);
    }

    /// Buffers a slice of updates, flushing as the buffer fills.
    pub fn extend_from_slice(&mut self, updates: &[(u64, f64)]) {
        self.ingest.extend_from_slice(updates);
    }

    /// Buffers a stream of [`StreamUpdate`]s, flushing as the buffer
    /// fills.
    pub fn extend_updates<I: IntoIterator<Item = StreamUpdate>>(&mut self, updates: I) {
        self.ingest.extend_updates(updates);
    }

    /// Applies all buffered updates now. After this returns, the next
    /// pinned snapshot captures everything pushed so far.
    pub fn flush(&mut self) {
        self.ingest.flush();
    }

    /// Flushes the remainder and returns the shared sketch handle; the
    /// engine's write side is gone, readers (and their snapshots)
    /// remain valid.
    pub fn finish(self) -> EpochHandle<S> {
        let (shared, _bank) = self.ingest.finish();
        shared
    }

    // ---- read side (`&self`; or clone a `QueryHandle` per thread) ----

    /// A cloneable read handle for another thread.
    pub fn handle(&self) -> QueryHandle<S> {
        QueryHandle {
            shared: self.ingest.shared().clone(),
        }
    }

    /// Live lock-free point estimate — see the crate docs for when the
    /// live mode is appropriate. Always since-boot: windowed scoping
    /// requires a frozen plane to subtract from, which is what
    /// [`pin_window`](QueryEngine::pin_window) provides.
    pub fn estimate_live(&self, item: u64) -> f64 {
        self.ingest.shared().sketch().estimate(item)
    }

    /// Pins an epoch-consistent **since-boot** snapshot of everything
    /// flushed so far (the cumulative plane, under every policy).
    pub fn pin(&self) -> SnapshotHandle<S> {
        self.ingest.shared().pin()
    }

    /// Heavy hitters as of a pinned snapshot: every item whose
    /// snapshot estimate reaches `phi` times the snapshot's total
    /// mass, sorted by decreasing estimate. A full universe scan
    /// (`O(n·d)`) — the serving-side complement of the streaming
    /// [`bas_sketch::HeavyHitters`] tracker, with no tracker state to
    /// maintain on the hot write path.
    ///
    /// An empty (or net-non-positive) snapshot has no heavy hitters:
    /// with zero mass every threshold is vacuous, so the scan returns
    /// the empty list rather than the whole universe.
    ///
    /// # Errors
    /// Returns [`QueryError::InvalidPhi`] unless `0 < phi < 1`.
    pub fn try_heavy_hitters_in(
        &self,
        snap: &SnapshotHandle<S>,
        phi: f64,
    ) -> Result<Vec<HeavyHitter>, QueryError> {
        scan_heavy_hitters(
            self.ingest.shared().sketch(),
            snap.snapshot(),
            snap.mass(),
            phi,
        )
    }

    /// Panicking convenience over
    /// [`try_heavy_hitters_in`](QueryEngine::try_heavy_hitters_in).
    ///
    /// # Panics
    /// Panics with the [`QueryError`] message unless `0 < phi < 1`.
    pub fn heavy_hitters_in(&self, snap: &SnapshotHandle<S>, phi: f64) -> Vec<HeavyHitter> {
        self.try_heavy_hitters_in(snap, phi)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Convenience: pin a fresh snapshot and scan it — see
    /// [`try_heavy_hitters_in`](QueryEngine::try_heavy_hitters_in).
    ///
    /// # Errors
    /// Returns [`QueryError::InvalidPhi`] unless `0 < phi < 1`.
    pub fn try_heavy_hitters(&self, phi: f64) -> Result<Vec<HeavyHitter>, QueryError> {
        let snap = self.pin();
        self.try_heavy_hitters_in(&snap, phi)
    }

    /// Panicking convenience over
    /// [`try_heavy_hitters`](QueryEngine::try_heavy_hitters).
    ///
    /// # Panics
    /// Panics with the [`QueryError`] message unless `0 < phi < 1`.
    pub fn heavy_hitters(&self, phi: f64) -> Vec<HeavyHitter> {
        self.try_heavy_hitters(phi)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    // ---- bookkeeping ----

    /// Worker threads per flush.
    pub fn workers(&self) -> usize {
        self.ingest.workers()
    }

    /// Updates applied in completed flushes (what a snapshot pinned
    /// now would capture).
    pub fn applied(&self) -> u64 {
        self.ingest.applied()
    }

    /// Updates buffered but not yet flushed.
    pub fn pending(&self) -> usize {
        self.ingest.pending()
    }

    /// Total delta mass applied in completed flushes.
    pub fn mass(&self) -> f64 {
        self.ingest.mass()
    }

    /// The shared sketch (hash functions + live counters).
    pub fn sketch(&self) -> &S {
        self.ingest.shared().sketch()
    }

    /// Closes the current interval: flushes the buffered tail, seals
    /// the cumulative plane into the rotating bank (recycling the
    /// oldest slot allocation-free), and starts the next interval.
    /// Returns the id of the interval just sealed. Drive it from a
    /// wall-clock tick, a [`bas_stream::drive_timestamped`] boundary
    /// callback, or any other notion of time.
    ///
    /// Under [`Unbounded`] the bank retains nothing, so this is a
    /// flush plus interval bookkeeping — the hook a serving fabric
    /// uses to rotate per-tenant admission quotas uniformly across
    /// windowed and since-boot tenants.
    pub fn advance_interval(&mut self) -> u64 {
        self.ingest.advance_interval()
    }

    /// Id of the interval currently accepting updates.
    pub fn interval(&self) -> u64 {
        self.ingest.interval()
    }

    // ---- plane transfer (tenant rebalance by linearity) ----

    /// The bank of sealed cumulative planes (empty under
    /// [`Unbounded`]) — read it to ship a windowed tenant's seals to
    /// another host.
    pub fn bank(&self) -> &bas_sketch::PlaneBank<S::Snapshot> {
        self.ingest.bank()
    }

    /// Absorbs a transferred **cumulative** plane into the live sketch
    /// by linearity (see
    /// [`WindowedIngest::absorb_cumulative`]): a freshly built
    /// same-seed engine that absorbs a shipped plane answers every
    /// later query bit-for-bit as the source would have (integer-delta
    /// streams).
    ///
    /// # Errors
    /// Propagates the sketch's [`bas_sketch::AbsorbPlane`] rejection
    /// with the counters untouched.
    pub fn absorb_cumulative(
        &mut self,
        plane: &S::Snapshot,
        applied: u64,
        mass: f64,
    ) -> Result<(), MergeError>
    where
        S: AbsorbPlane,
    {
        self.ingest.absorb_cumulative(plane, applied, mass)
    }

    /// Restores one sealed plane into the bank with its original
    /// bookkeeping (see [`WindowedIngest::restore_seal`]); seals must
    /// arrive oldest-first.
    pub fn restore_seal(&mut self, interval: u64, plane: S::Snapshot, applied: u64, mass: f64) {
        self.ingest.restore_seal(interval, plane, applied, mass);
    }

    /// Fast-forwards the interval id after restoring seals (see
    /// [`WindowedIngest::restore_interval`]).
    pub fn restore_interval(&mut self, interval: u64) {
        self.ingest.restore_interval(interval);
    }
}

// ---- windowed serving (Tumbling / Sliding policies only) ----

impl<S: SharedSketch + Snapshottable + Reseedable + Send, P: WindowPolicy> QueryEngine<S, P> {
    /// Flushes the remainder and returns the shared sketch handle
    /// **plus the bank of sealed planes** — the windowed counterpart
    /// of [`finish`](QueryEngine::finish), which drops the bank and
    /// with it the ability to answer any window question after
    /// shutdown (`window = cumulative − seal` needs the seals).
    pub fn finish_windowed(self) -> (EpochHandle<S>, bas_sketch::PlaneBank<S::Snapshot>) {
        self.ingest.finish()
    }

    /// Pins a [`WindowSnapshot`]: an epoch-consistent frozen plane of
    /// exactly the policy's current window (`cumulative(now) −
    /// sealed(boundary)`), with the window's own `applied`/`mass` for
    /// thresholds. During warm-up (fewer closed intervals than the
    /// window reaches back) the window covers everything since boot.
    ///
    /// Allocates one plane per call; steady-state readers hold a
    /// snapshot and [`refresh_window`](QueryEngine::refresh_window) it.
    pub fn pin_window(&self) -> WindowSnapshot<S> {
        let current = self.ingest.interval();
        let mut ws = WindowSnapshot {
            owner: self.ingest.shared().clone(),
            plane: self.ingest.shared().make_snapshot(),
            params: self.sketch().config(),
            start_interval: 0,
            end_interval: current,
            applied: 0,
            mass: 0.0,
        };
        self.refresh_window(&mut ws);
        ws
    }

    /// Re-pins `ws` against the policy's *current* window, reusing its
    /// plane buffer — the allocation-free steady-state path (the
    /// windowed counterpart of
    /// [`SnapshotHandle::refresh`](bas_pipeline::SnapshotHandle::refresh)).
    ///
    /// # Panics
    /// Panics if `ws` was pinned from a differently-configured engine
    /// (plane shape mismatch).
    pub fn refresh_window(&self, ws: &mut WindowSnapshot<S>) {
        let current = self.ingest.interval();
        let (_, applied, mass) = self.ingest.shared().pin_into(&mut ws.plane);
        let (start, applied_w, mass_w) = match self.policy.window_boundary(current) {
            None => (0, applied, mass),
            Some(boundary) => {
                let seal = self
                    .ingest
                    .bank()
                    .sealed(boundary)
                    .expect("policy boundaries stay within bank retention");
                self.ingest
                    .shared()
                    .subtract_snapshot(&mut ws.plane, seal.plane())
                    .expect("servable sketches subtract exactly");
                (boundary + 1, applied - seal.applied(), mass - seal.mass())
            }
        };
        ws.start_interval = start;
        ws.end_interval = current;
        ws.applied = applied_w;
        ws.mass = mass_w;
    }

    /// Pins a window reaching back to the **end of interval
    /// `boundary`** instead of the policy's own boundary — the manual
    /// form for ad-hoc lookback (covers intervals
    /// `boundary + 1 ..= current`).
    ///
    /// # Errors
    /// Returns [`QueryError::WindowUnavailable`] when the bank no
    /// longer retains interval `boundary`'s seal.
    pub fn pin_window_since(&self, boundary: u64) -> Result<WindowSnapshot<S>, QueryError> {
        let current = self.ingest.interval();
        let seal = self
            .ingest
            .bank()
            .sealed(boundary)
            .ok_or(QueryError::WindowUnavailable { interval: boundary })?;
        let snap = self.ingest.shared().pin();
        let (applied, mass) = (snap.applied(), snap.mass());
        let mut plane = snap.into_snapshot();
        self.ingest
            .shared()
            .subtract_snapshot(&mut plane, seal.plane())
            .expect("servable sketches subtract exactly");
        Ok(WindowSnapshot {
            owner: self.ingest.shared().clone(),
            plane,
            params: self.sketch().config(),
            start_interval: boundary + 1,
            end_interval: current,
            applied: applied - seal.applied(),
            mass: mass - seal.mass(),
        })
    }

    /// Point estimate of `x_item` **within the current window** — the
    /// windowed counterpart of a snapshot point read. Pins a fresh
    /// window per call (allocates); batch several queries through one
    /// [`pin_window`](QueryEngine::pin_window) instead when serving a
    /// stream of them.
    pub fn point_in_window(&self, item: u64) -> f64 {
        self.pin_window().estimate(item)
    }

    /// Heavy hitters **within the current window**: every item whose
    /// window estimate reaches `phi` times the window's mass, sorted
    /// by decreasing estimate — "heavy in the last K intervals", the
    /// time-scoped question operators actually ask.
    ///
    /// # Errors
    /// Returns [`QueryError::InvalidPhi`] unless `0 < phi < 1`.
    pub fn heavy_hitters_in_window(&self, phi: f64) -> Result<Vec<HeavyHitter>, QueryError> {
        QueryError::check_phi(phi)?; // fail before paying for the pin
        self.pin_window().heavy_hitters(phi)
    }
}

impl<B: CounterBackend, P: WindowPolicy> QueryEngine<RangeSumSketch<B>, P>
where
    RangeSumSketch<B>: SharedSketch,
{
    /// Range sum `Σ_{a ≤ i ≤ b} x_i` **within the current window**.
    ///
    /// # Errors
    /// Returns [`QueryError::InvalidRange`] if `a > b` or `b ≥ n`.
    pub fn range_sum_in_window(&self, a: u64, b: u64) -> Result<f64, QueryError> {
        QueryError::check_range(a, b, self.sketch().universe())?;
        self.pin_window().range_sum(a, b)
    }
}

impl<B: CounterBackend, P: ServingPolicy> QueryEngine<RangeSumSketch<B>, P>
where
    RangeSumSketch<B>: SharedSketch,
{
    /// Range sum `Σ_{a ≤ i ≤ b} x_i` from a pinned snapshot: the whole
    /// dyadic decomposition reads one consistent stream prefix.
    ///
    /// # Panics
    /// Panics if `a > b` or `b ≥ n`.
    pub fn range_sum_in(&self, snap: &SnapshotHandle<RangeSumSketch<B>>, a: u64, b: u64) -> f64 {
        self.sketch().query_in(snap.snapshot(), a, b)
    }

    /// Convenience: pin a fresh snapshot and answer one range query.
    pub fn range_sum(&self, a: u64, b: u64) -> f64 {
        let snap = self.pin();
        self.range_sum_in(&snap, a, b)
    }
}

impl<B: CounterBackend, P: ServingPolicy> QueryEngine<CountSketch<B>, P>
where
    CountSketch<B>: SharedSketch,
{
    /// Inner-product estimate `⟨x, y⟩` between this engine's stream
    /// and another engine's, from one pinned snapshot of each — the
    /// join-size / correlation query, served without quiescing either
    /// ingest path. Both engines must use identical sketch parameters
    /// (same seed).
    ///
    /// # Errors
    /// Returns a [`MergeError`] when the configurations differ.
    pub fn inner_product_with<B2: CounterBackend, P2: ServingPolicy>(
        &self,
        other: &QueryEngine<CountSketch<B2>, P2>,
    ) -> Result<f64, MergeError>
    where
        CountSketch<B2>: SharedSketch,
    {
        let mine = self.pin();
        let theirs = other.pin();
        self.sketch()
            .inner_product_in(mine.snapshot(), other.sketch(), theirs.snapshot())
    }
}

/// A cloneable, `Send` read handle to a [`QueryEngine`]'s sketch: one
/// per reader thread. Offers the same read surface as the engine
/// (live estimates and snapshot pins) without touching the write side.
///
/// ```
/// use bas_serve::QueryEngine;
/// use bas_sketch::{AtomicCountMedian, SketchParams};
///
/// let params = SketchParams::new(1_000, 64, 5).with_seed(3);
/// let mut engine = QueryEngine::new(2, AtomicCountMedian::with_backend(&params));
/// let reader = engine.handle();
///
/// std::thread::scope(|scope| {
///     scope.spawn(move || {
///         let mut snap = reader.pin(); // consistent even mid-ingest
///         let _ = reader.estimate_live(7); // lock-free
///         snap.refresh(); // allocation-free re-pin
///     });
///     for i in 0..10_000u64 {
///         engine.push(i % 1_000, 1.0); // writer keeps writing
///     }
/// });
/// ```
#[derive(Debug)]
pub struct QueryHandle<S: SharedSketch + Snapshottable + Send> {
    shared: EpochHandle<S>,
}

impl<S: SharedSketch + Snapshottable + Send> Clone for QueryHandle<S> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<S: SharedSketch + Snapshottable + Send> QueryHandle<S> {
    /// Live lock-free point estimate.
    pub fn estimate_live(&self, item: u64) -> f64 {
        self.shared.sketch().estimate(item)
    }

    /// Pins an epoch-consistent snapshot.
    pub fn pin(&self) -> SnapshotHandle<S> {
        self.shared.pin()
    }

    /// Updates applied in completed flushes.
    pub fn applied(&self) -> u64 {
        self.shared.applied()
    }

    /// Total delta mass applied in completed flushes.
    pub fn mass(&self) -> f64 {
        self.shared.mass()
    }

    /// The shared sketch (hash functions + live counters).
    pub fn sketch(&self) -> &S {
        self.shared.sketch()
    }

    /// Wraps this handle in a query-audit layer: per-key query
    /// counting with an optional noise/quantize answer policy, the
    /// serving-side defense against adaptive feedback (see
    /// [`AuditPolicy`]). The underlying handle stays usable through
    /// [`AuditedHandle::inner`]; clone before wrapping to keep an
    /// unaudited handle for trusted readers.
    pub fn audited(self, policy: AuditPolicy) -> AuditedHandle<S> {
        AuditedHandle::new(self, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sketch::{
        Atomic, AtomicCountMedian, AtomicCountSketch, CountMedian, PointQuerySketch, SketchParams,
    };

    fn params() -> SketchParams {
        SketchParams::new(500, 64, 5).with_seed(77)
    }

    fn stream(len: u64) -> Vec<(u64, f64)> {
        (0..len)
            .map(|i| (i * 11 % 500, (1 + i % 3) as f64))
            .collect()
    }

    #[test]
    fn snapshot_equals_quiesced_reference_at_flush_boundary() {
        let updates = stream(4_000);
        let mut engine = QueryEngine::new(3, AtomicCountMedian::with_backend(&params()))
            .with_flush_threshold(1_000);
        engine.extend_from_slice(&updates);
        let snap = engine.pin();
        assert_eq!(snap.applied(), 4_000);
        let mut reference = CountMedian::new(&params());
        reference.update_batch(&updates);
        for j in 0..500u64 {
            assert_eq!(snap.estimate(j), reference.estimate(j), "item {j}");
            assert_eq!(engine.estimate_live(j), reference.estimate(j), "item {j}");
        }
    }

    #[test]
    fn readers_run_concurrently_with_the_writer() {
        let updates = stream(50_000);
        let total_mass: f64 = updates.iter().map(|&(_, d)| d).sum();
        let mut engine = QueryEngine::new(4, AtomicCountMedian::with_backend(&params()))
            .with_flush_threshold(2_000);
        let readers: Vec<QueryHandle<_>> = (0..2).map(|_| engine.handle()).collect();
        std::thread::scope(|scope| {
            for reader in readers {
                scope.spawn(move || {
                    let mut snap = reader.pin();
                    for round in 0..50 {
                        snap.refresh();
                        // Non-negative stream: a consistent prefix can
                        // never exceed the final mass.
                        assert!(snap.mass() <= total_mass + 1e-9, "round {round}");
                        for j in (0..500u64).step_by(41) {
                            assert!(snap.estimate(j) <= snap.mass() + 1e-9);
                            let _ = reader.estimate_live(j);
                        }
                    }
                });
            }
            engine.extend_from_slice(&updates);
            engine.flush();
        });
        assert_eq!(engine.applied(), 50_000);
        assert_eq!(engine.mass(), total_mass);
    }

    #[test]
    fn heavy_hitter_scan_finds_planted_items() {
        let mut engine = QueryEngine::new(2, AtomicCountMedian::with_backend(&params()));
        for _ in 0..300 {
            engine.push(7, 1.0);
            engine.push(9, 1.0);
        }
        for i in 0..400u64 {
            engine.push(i, 1.0);
        }
        engine.flush();
        let found = engine.heavy_hitters(0.2);
        let items: Vec<u64> = found.iter().map(|h| h.item).collect();
        assert!(items.contains(&7) && items.contains(&9), "{items:?}");
        assert!(items.len() <= 4, "{items:?}");
        // Sorted by decreasing estimate.
        for w in found.windows(2) {
            assert!(w[0].estimate >= w[1].estimate);
        }
        // The typed path returns the same list.
        assert_eq!(engine.try_heavy_hitters(0.2).unwrap(), found);
    }

    #[test]
    fn range_sum_engine_serves_range_queries() {
        let p = SketchParams::new(256, 128, 5).with_seed(6);
        let mut engine = QueryEngine::new(2, RangeSumSketch::<Atomic>::with_backend(&p))
            .with_flush_threshold(64);
        engine.push(10, 5.0);
        engine.push(20, 3.0);
        engine.push(200, 2.0);
        engine.flush();
        let est = engine.range_sum(0, 100);
        assert!((est - 8.0).abs() < 1.0, "est = {est}");
        let snap = engine.pin();
        assert_eq!(engine.range_sum_in(&snap, 0, 255), engine.range_sum(0, 255));
    }

    #[test]
    fn inner_product_between_two_engines() {
        let p = SketchParams::new(500, 256, 9).with_seed(41);
        let mut a = QueryEngine::new(2, AtomicCountSketch::with_backend(&p));
        let mut b = QueryEngine::new(2, AtomicCountSketch::with_backend(&p));
        a.push(3, 10.0);
        a.push(100, -2.0);
        b.push(3, 5.0);
        b.push(100, 6.0);
        a.flush();
        b.flush();
        // True <x, y> = 50 - 12 = 38.
        let est = a.inner_product_with(&b).unwrap();
        assert!((est - 38.0).abs() < 8.0, "est = {est}");
    }

    #[test]
    fn finish_leaves_readers_alive() {
        let mut engine = QueryEngine::new(2, AtomicCountMedian::with_backend(&params()));
        let reader = engine.handle();
        engine.push(3, 4.0);
        let shared = engine.finish();
        assert_eq!(shared.sketch().estimate(3), 4.0);
        assert_eq!(reader.estimate_live(3), 4.0);
        assert_eq!(reader.pin().estimate(3), 4.0);
    }

    #[test]
    fn heavy_hitters_on_an_empty_engine_is_empty() {
        // Zero mass means every threshold is vacuous; the scan must
        // return nothing, not the entire universe.
        let engine = QueryEngine::new(2, AtomicCountMedian::with_backend(&params()));
        assert!(engine.heavy_hitters(0.05).is_empty());
    }

    #[test]
    #[should_panic(expected = "phi must be in (0,1)")]
    fn heavy_hitters_rejects_bad_phi() {
        let engine = QueryEngine::new(1, AtomicCountMedian::with_backend(&params()));
        let _ = engine.heavy_hitters(1.0);
    }

    #[test]
    fn typed_rejection_carries_the_parameter() {
        let engine = QueryEngine::new(1, AtomicCountMedian::with_backend(&params()));
        assert_eq!(
            engine.try_heavy_hitters(1.0),
            Err(QueryError::InvalidPhi { phi: 1.0 })
        );
    }

    // ---- windowed serving ----

    /// One interval's worth of deterministic integer-delta traffic,
    /// distinct per interval.
    fn interval_stream(interval: u64, len: u64) -> Vec<(u64, f64)> {
        (0..len)
            .map(|i| {
                (
                    (i * 13 + interval * 29) % 500,
                    (1 + (i + interval) % 4) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn sliding_window_matches_reference_over_exactly_k_intervals() {
        let policy = Sliding::new(2).unwrap();
        let mut engine =
            QueryEngine::with_policy(2, AtomicCountMedian::with_backend(&params()), policy);
        let mut per_interval = Vec::new();
        for t in 0..5u64 {
            let updates = interval_stream(t, 800);
            engine.extend_from_slice(&updates);
            per_interval.push(updates);
            engine.advance_interval();
        }
        // Interval 5 is in progress and empty; window = intervals 4, 5.
        assert_eq!(engine.interval(), 5);
        let window = engine.pin_window();
        assert_eq!(window.start_interval(), 4);
        assert_eq!(window.end_interval(), 5);
        assert_eq!(window.applied(), 800);
        let mut reference = CountMedian::new(&params());
        reference.update_batch(&per_interval[4]);
        for j in 0..500u64 {
            assert_eq!(window.estimate(j), reference.estimate(j), "item {j}");
            assert_eq!(engine.point_in_window(j), reference.estimate(j));
        }
    }

    #[test]
    fn tumbling_window_resets_at_bucket_boundaries() {
        let policy = Tumbling::new(2).unwrap();
        let mut engine =
            QueryEngine::with_policy(2, AtomicCountMedian::with_backend(&params()), policy);
        // Bucket 0 = intervals 0,1; bucket 1 = intervals 2,3.
        for _ in 0..3u64 {
            engine.push(7, 10.0);
            engine.advance_interval();
        }
        engine.push(7, 10.0);
        engine.flush();
        // In-progress interval 3: bucket 1 covers intervals 2..=3 only.
        let window = engine.pin_window();
        assert_eq!(window.start_interval(), 2);
        assert_eq!(window.estimate(7), 20.0);
        assert_eq!(window.mass(), 20.0);
        // Since-boot reads are untouched by the policy.
        assert_eq!(engine.estimate_live(7), 40.0);
        assert_eq!(engine.pin().estimate(7), 40.0);
    }

    #[test]
    fn warm_up_window_covers_since_boot() {
        let policy = Sliding::new(4).unwrap();
        let mut engine =
            QueryEngine::with_policy(2, AtomicCountMedian::with_backend(&params()), policy);
        engine.push(3, 5.0);
        engine.advance_interval();
        engine.push(3, 2.0);
        engine.flush();
        // Only 1 closed interval < window of 4: everything counts.
        let window = engine.pin_window();
        assert_eq!(window.start_interval(), 0);
        assert_eq!(window.estimate(3), 7.0);
        assert_eq!(window.mass(), 7.0);
    }

    #[test]
    fn refresh_window_reuses_the_plane_and_tracks_rotation() {
        let policy = Sliding::new(1).unwrap();
        let mut engine =
            QueryEngine::with_policy(2, AtomicCountMedian::with_backend(&params()), policy);
        engine.push(9, 4.0);
        engine.advance_interval();
        let mut window = engine.pin_window();
        assert_eq!(window.estimate(9), 0.0); // interval 1 is empty so far
        engine.push(9, 6.0);
        engine.advance_interval(); // now window = interval 2 (empty)
        engine.push(9, 1.0);
        engine.flush();
        engine.refresh_window(&mut window);
        assert_eq!(window.start_interval(), 2);
        assert_eq!(window.estimate(9), 1.0);
        assert_eq!(window.mass(), 1.0);
    }

    #[test]
    fn window_heavy_hitters_see_only_the_window() {
        let policy = Sliding::new(1).unwrap();
        let mut engine =
            QueryEngine::with_policy(2, AtomicCountMedian::with_backend(&params()), policy);
        // Interval 0: item 7 dominates. Interval 1: item 9 dominates.
        for _ in 0..100 {
            engine.push(7, 1.0);
        }
        for i in 0..100u64 {
            engine.push(i % 50, 1.0);
        }
        engine.advance_interval();
        for _ in 0..100 {
            engine.push(9, 1.0);
        }
        for i in 0..100u64 {
            engine.push((i % 50) + 100, 1.0);
        }
        engine.flush();
        let hot = engine.heavy_hitters_in_window(0.2).unwrap();
        let items: Vec<u64> = hot.iter().map(|h| h.item).collect();
        assert!(items.contains(&9), "{items:?}");
        assert!(
            !items.contains(&7),
            "window must exclude interval 0: {items:?}"
        );
        // The since-boot scan still sees both.
        let all: Vec<u64> = engine.heavy_hitters(0.2).iter().map(|h| h.item).collect();
        assert!(all.contains(&7) && all.contains(&9), "{all:?}");
    }

    #[test]
    fn windowed_range_sums_scope_the_decomposition() {
        let p = SketchParams::new(256, 128, 5).with_seed(6);
        let policy = Sliding::new(1).unwrap();
        let mut engine =
            QueryEngine::with_policy(2, RangeSumSketch::<Atomic>::with_backend(&p), policy);
        engine.push(10, 5.0);
        engine.advance_interval();
        engine.push(20, 3.0);
        engine.flush();
        let est = engine.range_sum_in_window(0, 100).unwrap();
        assert!((est - 3.0).abs() < 1.0, "window est = {est}");
        let since_boot = engine.range_sum(0, 100);
        assert!(
            (since_boot - 8.0).abs() < 1.0,
            "since-boot est = {since_boot}"
        );
        assert_eq!(
            engine.range_sum_in_window(10, 5),
            Err(QueryError::InvalidRange {
                a: 10,
                b: 5,
                n: 256
            })
        );
    }

    #[test]
    fn pin_window_since_rejects_evicted_boundaries() {
        let policy = Sliding::new(2).unwrap();
        let mut engine =
            QueryEngine::with_policy(2, AtomicCountMedian::with_backend(&params()), policy);
        for t in 0..5u64 {
            engine.push(t, 1.0);
            engine.advance_interval();
        }
        // Bank capacity 2: seals 3 and 4 retained, 0..=2 evicted.
        assert!(engine.pin_window_since(3).is_ok());
        assert_eq!(
            engine.pin_window_since(0).unwrap_err(),
            QueryError::WindowUnavailable { interval: 0 }
        );
        let lookback = engine.pin_window_since(3).unwrap();
        assert_eq!(lookback.start_interval(), 4);
        assert_eq!(lookback.applied(), 1); // interval 4's single update
    }

    #[test]
    fn window_snapshot_is_frozen_and_sendable() {
        let policy = Sliding::new(1).unwrap();
        let mut engine =
            QueryEngine::with_policy(2, AtomicCountMedian::with_backend(&params()), policy);
        engine.push(5, 3.0);
        engine.advance_interval();
        engine.push(5, 4.0);
        engine.flush();
        let window = engine.pin_window();
        let frozen = window.estimate(5);
        assert_eq!(frozen, 4.0);
        engine.push(5, 100.0);
        engine.flush();
        // The pinned window does not move; queries work from any thread.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                assert_eq!(window.estimate(5), frozen);
                assert_eq!(window.sketch().label(), "CM");
            });
        });
    }

    #[test]
    fn finish_windowed_preserves_the_bank() {
        let policy = Sliding::new(2).unwrap();
        let mut engine =
            QueryEngine::with_policy(2, AtomicCountMedian::with_backend(&params()), policy);
        engine.push(3, 5.0);
        engine.advance_interval();
        engine.push(3, 2.0);
        let (shared, bank) = engine.finish_windowed();
        assert_eq!(shared.mass(), 7.0);
        // The seal survives shutdown: window answers stay computable.
        assert_eq!(bank.sealed(0).unwrap().mass(), 5.0);
        let mut window = shared.pin().into_snapshot();
        shared
            .subtract_snapshot(&mut window, bank.sealed(0).unwrap().plane())
            .unwrap();
        assert_eq!(shared.estimate_in(&window, 3), 2.0);
    }

    #[test]
    fn policy_accessors() {
        let engine = QueryEngine::new(1, AtomicCountMedian::with_backend(&params()));
        assert_eq!(engine.policy().describe(), "unbounded");
        let windowed = QueryEngine::with_policy(
            1,
            AtomicCountMedian::with_backend(&params()),
            Sliding::new(3).unwrap(),
        );
        assert_eq!(windowed.policy().describe(), "sliding(3)");
        assert_eq!(windowed.policy().window_len(), 3);
    }
}
