//! # bas-serve — the live query plane
//!
//! Everything below this crate moves data *into* sketches; this crate
//! serves queries *out of* one **while writers are still feeding it**.
//! A [`QueryEngine`] owns the write side — a
//! [`ConcurrentIngest`] fanning each
//! flush across N worker threads into one shared `Atomic`-backed
//! sketch — and hands out any number of cloneable [`QueryHandle`]s for
//! the read side. Two read modes, chosen per query:
//!
//! * **live** ([`QueryHandle::estimate_live`]) — reads the atomic cells
//!   directly, lock-free, never waits. Each cell is one atomic word,
//!   so a single-cell read is always a real value; a multi-cell
//!   estimate may mix counters from an in-flight flush. Right for
//!   monitoring-grade point reads where a bounded smear across one
//!   flush is acceptable.
//! * **snapshot** ([`QueryHandle::pin`]) — freezes an epoch-consistent
//!   dense copy via the seqlock in `bas_pipeline::epoch`. Every pinned
//!   view equals the sketch of a **prefix** of the pushed stream, so
//!   multi-cell queries (median-of-rows estimates, heavy-hitter scans,
//!   range decompositions, inner products) are exactly as trustworthy
//!   as on a quiesced sketch. [`SnapshotHandle::refresh`] re-pins into
//!   the same buffer, so steady-state readers allocate nothing.
//!
//! The engine is generic over any sketch that is both
//! [`SharedSketch`] (lock-free shared ingest)
//! and [`Snapshottable`] (freezable counters): Count-Median,
//! Count-Sketch, Count-Min (plain), and the dyadic range-sum stack.
//!
//! ```
//! use bas_serve::QueryEngine;
//! use bas_sketch::{AtomicCountMedian, SketchParams};
//!
//! let params = SketchParams::new(10_000, 256, 5).with_seed(8);
//! let mut engine = QueryEngine::new(4, AtomicCountMedian::with_backend(&params));
//!
//! // Writer side: push updates; full buffers flush across 4 threads.
//! for i in 0..20_000u64 {
//!     engine.push(i % 10_000, 1.0);
//! }
//! engine.flush();
//!
//! // Reader side: live point reads and consistent snapshots. On a
//! // quiesced engine the two modes agree bit-for-bit.
//! let snap = engine.pin();
//! assert_eq!(snap.applied(), 20_000);
//! assert_eq!(snap.estimate(42), engine.estimate_live(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bas_pipeline::{ConcurrentIngest, EpochHandle, SnapshotHandle};
use bas_sketch::{
    CountSketch, CounterBackend, HeavyHitter, MergeError, RangeSumSketch, SharedSketch,
    Snapshottable,
};
use bas_stream::StreamUpdate;

/// A query engine over one concurrently-fed sketch: the write side is
/// a [`ConcurrentIngest`] (N worker threads, one shared counter
/// plane), the read side is any number of [`QueryHandle`]s serving
/// live and snapshot reads — see the crate docs for the mode choice.
///
/// The `&mut self` methods are the single-producer write side (hand
/// the engine to your ingest thread); [`handle`](QueryEngine::handle)
/// clones are the multi-consumer read side (hand one to each reader
/// thread). Readers never block writers: snapshot pins retry across
/// in-flight flushes instead of locking them out.
#[derive(Debug)]
pub struct QueryEngine<S: SharedSketch + Snapshottable + Send> {
    ingest: ConcurrentIngest<EpochHandle<S>>,
}

impl<S: SharedSketch + Snapshottable + Send> QueryEngine<S> {
    /// Creates an engine whose flushes fan across `workers` threads.
    /// The sketch must be built on a shared-capable backend (e.g.
    /// [`bas_sketch::Atomic`]).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize, sketch: S) -> Self {
        Self {
            ingest: ConcurrentIngest::new(workers, EpochHandle::new(sketch)),
        }
    }

    /// Overrides the flush threshold (see
    /// [`ConcurrentIngest::with_flush_threshold`]). Smaller thresholds
    /// mean fresher snapshots (more flush boundaries) at more
    /// per-flush overhead.
    ///
    /// # Panics
    /// Panics if `updates` is zero.
    pub fn with_flush_threshold(mut self, updates: usize) -> Self {
        self.ingest = self.ingest.with_flush_threshold(updates);
        self
    }

    // ---- write side (single producer, `&mut self`) ----

    /// Buffers one update, flushing across the workers when the buffer
    /// fills.
    pub fn push(&mut self, item: u64, delta: f64) {
        self.ingest.push(item, delta);
    }

    /// Buffers a slice of updates, flushing as the buffer fills.
    pub fn extend_from_slice(&mut self, updates: &[(u64, f64)]) {
        self.ingest.extend_from_slice(updates);
    }

    /// Buffers a stream of [`StreamUpdate`]s, flushing as the buffer
    /// fills.
    pub fn extend_updates<I: IntoIterator<Item = StreamUpdate>>(&mut self, updates: I) {
        self.ingest.extend_updates(updates);
    }

    /// Applies all buffered updates now. After this returns, the next
    /// pinned snapshot captures everything pushed so far.
    pub fn flush(&mut self) {
        self.ingest.flush();
    }

    /// Flushes the remainder and returns the shared sketch handle; the
    /// engine's write side is gone, readers (and their snapshots)
    /// remain valid.
    pub fn finish(mut self) -> EpochHandle<S> {
        self.ingest.flush();
        self.ingest.finish()
    }

    // ---- read side (`&self`; or clone a `QueryHandle` per thread) ----

    /// A cloneable read handle for another thread.
    pub fn handle(&self) -> QueryHandle<S> {
        QueryHandle {
            shared: self.ingest.sketch().clone(),
        }
    }

    /// Live lock-free point estimate — see the crate docs for when the
    /// live mode is appropriate.
    pub fn estimate_live(&self, item: u64) -> f64 {
        self.ingest.sketch().sketch().estimate(item)
    }

    /// Pins an epoch-consistent snapshot of everything flushed so far.
    pub fn pin(&self) -> SnapshotHandle<S> {
        self.ingest.sketch().pin()
    }

    /// Heavy hitters as of a pinned snapshot: every item whose
    /// snapshot estimate reaches `phi` times the snapshot's total
    /// mass, sorted by decreasing estimate. A full universe scan
    /// (`O(n·d)`) — the serving-side complement of the streaming
    /// [`bas_sketch::HeavyHitters`] tracker, with no tracker state to
    /// maintain on the hot write path.
    ///
    /// An empty (or net-non-positive) snapshot has no heavy hitters:
    /// with zero mass every threshold is vacuous, so the scan returns
    /// the empty list rather than the whole universe.
    ///
    /// # Panics
    /// Panics unless `0 < phi < 1`.
    pub fn heavy_hitters_in(&self, snap: &SnapshotHandle<S>, phi: f64) -> Vec<HeavyHitter> {
        assert!(phi > 0.0 && phi < 1.0, "phi must be in (0,1), got {phi}");
        if snap.mass() <= 0.0 {
            return Vec::new();
        }
        let sketch = self.ingest.sketch().sketch();
        let threshold = phi * snap.mass();
        let mut out: Vec<HeavyHitter> = (0..sketch.universe())
            .filter_map(|item| {
                let estimate = sketch.estimate_in(snap.snapshot(), item);
                (estimate >= threshold).then_some(HeavyHitter { item, estimate })
            })
            .collect();
        out.sort_by(|a, b| b.estimate.total_cmp(&a.estimate).then(a.item.cmp(&b.item)));
        out
    }

    /// Convenience: pin a fresh snapshot and scan it — see
    /// [`heavy_hitters_in`](QueryEngine::heavy_hitters_in).
    pub fn heavy_hitters(&self, phi: f64) -> Vec<HeavyHitter> {
        let snap = self.pin();
        self.heavy_hitters_in(&snap, phi)
    }

    // ---- bookkeeping ----

    /// Worker threads per flush.
    pub fn workers(&self) -> usize {
        self.ingest.workers()
    }

    /// Updates applied in completed flushes (what a snapshot pinned
    /// now would capture).
    pub fn applied(&self) -> u64 {
        self.ingest.sketch().applied()
    }

    /// Updates buffered but not yet flushed.
    pub fn pending(&self) -> usize {
        self.ingest.pending()
    }

    /// Total delta mass applied in completed flushes.
    pub fn mass(&self) -> f64 {
        self.ingest.sketch().mass()
    }

    /// The shared sketch (hash functions + live counters).
    pub fn sketch(&self) -> &S {
        self.ingest.sketch().sketch()
    }
}

impl<B: CounterBackend> QueryEngine<RangeSumSketch<B>>
where
    RangeSumSketch<B>: SharedSketch,
{
    /// Range sum `Σ_{a ≤ i ≤ b} x_i` from a pinned snapshot: the whole
    /// dyadic decomposition reads one consistent stream prefix.
    ///
    /// # Panics
    /// Panics if `a > b` or `b ≥ n`.
    pub fn range_sum_in(&self, snap: &SnapshotHandle<RangeSumSketch<B>>, a: u64, b: u64) -> f64 {
        self.sketch().query_in(snap.snapshot(), a, b)
    }

    /// Convenience: pin a fresh snapshot and answer one range query.
    pub fn range_sum(&self, a: u64, b: u64) -> f64 {
        let snap = self.pin();
        self.range_sum_in(&snap, a, b)
    }
}

impl<B: CounterBackend> QueryEngine<CountSketch<B>>
where
    CountSketch<B>: SharedSketch,
{
    /// Inner-product estimate `⟨x, y⟩` between this engine's stream
    /// and another engine's, from one pinned snapshot of each — the
    /// join-size / correlation query, served without quiescing either
    /// ingest path. Both engines must use identical sketch parameters
    /// (same seed).
    ///
    /// # Errors
    /// Returns a [`MergeError`] when the configurations differ.
    pub fn inner_product_with<B2: CounterBackend>(
        &self,
        other: &QueryEngine<CountSketch<B2>>,
    ) -> Result<f64, MergeError>
    where
        CountSketch<B2>: SharedSketch,
    {
        let mine = self.pin();
        let theirs = other.pin();
        self.sketch()
            .inner_product_in(mine.snapshot(), other.sketch(), theirs.snapshot())
    }
}

/// A cloneable, `Send` read handle to a [`QueryEngine`]'s sketch: one
/// per reader thread. Offers the same read surface as the engine
/// (live estimates and snapshot pins) without touching the write side.
///
/// ```
/// use bas_serve::QueryEngine;
/// use bas_sketch::{AtomicCountMedian, SketchParams};
///
/// let params = SketchParams::new(1_000, 64, 5).with_seed(3);
/// let mut engine = QueryEngine::new(2, AtomicCountMedian::with_backend(&params));
/// let reader = engine.handle();
///
/// std::thread::scope(|scope| {
///     scope.spawn(move || {
///         let mut snap = reader.pin(); // consistent even mid-ingest
///         let _ = reader.estimate_live(7); // lock-free
///         snap.refresh(); // allocation-free re-pin
///     });
///     for i in 0..10_000u64 {
///         engine.push(i % 1_000, 1.0); // writer keeps writing
///     }
/// });
/// ```
#[derive(Debug)]
pub struct QueryHandle<S: SharedSketch + Snapshottable + Send> {
    shared: EpochHandle<S>,
}

impl<S: SharedSketch + Snapshottable + Send> Clone for QueryHandle<S> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<S: SharedSketch + Snapshottable + Send> QueryHandle<S> {
    /// Live lock-free point estimate.
    pub fn estimate_live(&self, item: u64) -> f64 {
        self.shared.sketch().estimate(item)
    }

    /// Pins an epoch-consistent snapshot.
    pub fn pin(&self) -> SnapshotHandle<S> {
        self.shared.pin()
    }

    /// Updates applied in completed flushes.
    pub fn applied(&self) -> u64 {
        self.shared.applied()
    }

    /// Total delta mass applied in completed flushes.
    pub fn mass(&self) -> f64 {
        self.shared.mass()
    }

    /// The shared sketch (hash functions + live counters).
    pub fn sketch(&self) -> &S {
        self.shared.sketch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sketch::{
        Atomic, AtomicCountMedian, AtomicCountSketch, CountMedian, PointQuerySketch, SketchParams,
    };

    fn params() -> SketchParams {
        SketchParams::new(500, 64, 5).with_seed(77)
    }

    fn stream(len: u64) -> Vec<(u64, f64)> {
        (0..len)
            .map(|i| (i * 11 % 500, (1 + i % 3) as f64))
            .collect()
    }

    #[test]
    fn snapshot_equals_quiesced_reference_at_flush_boundary() {
        let updates = stream(4_000);
        let mut engine = QueryEngine::new(3, AtomicCountMedian::with_backend(&params()))
            .with_flush_threshold(1_000);
        engine.extend_from_slice(&updates);
        let snap = engine.pin();
        assert_eq!(snap.applied(), 4_000);
        let mut reference = CountMedian::new(&params());
        reference.update_batch(&updates);
        for j in 0..500u64 {
            assert_eq!(snap.estimate(j), reference.estimate(j), "item {j}");
            assert_eq!(engine.estimate_live(j), reference.estimate(j), "item {j}");
        }
    }

    #[test]
    fn readers_run_concurrently_with_the_writer() {
        let updates = stream(50_000);
        let total_mass: f64 = updates.iter().map(|&(_, d)| d).sum();
        let mut engine = QueryEngine::new(4, AtomicCountMedian::with_backend(&params()))
            .with_flush_threshold(2_000);
        let readers: Vec<QueryHandle<_>> = (0..2).map(|_| engine.handle()).collect();
        std::thread::scope(|scope| {
            for reader in readers {
                scope.spawn(move || {
                    let mut snap = reader.pin();
                    for round in 0..50 {
                        snap.refresh();
                        // Non-negative stream: a consistent prefix can
                        // never exceed the final mass.
                        assert!(snap.mass() <= total_mass + 1e-9, "round {round}");
                        for j in (0..500u64).step_by(41) {
                            assert!(snap.estimate(j) <= snap.mass() + 1e-9);
                            let _ = reader.estimate_live(j);
                        }
                    }
                });
            }
            engine.extend_from_slice(&updates);
            engine.flush();
        });
        assert_eq!(engine.applied(), 50_000);
        assert_eq!(engine.mass(), total_mass);
    }

    #[test]
    fn heavy_hitter_scan_finds_planted_items() {
        let mut engine = QueryEngine::new(2, AtomicCountMedian::with_backend(&params()));
        for _ in 0..300 {
            engine.push(7, 1.0);
            engine.push(9, 1.0);
        }
        for i in 0..400u64 {
            engine.push(i, 1.0);
        }
        engine.flush();
        let found = engine.heavy_hitters(0.2);
        let items: Vec<u64> = found.iter().map(|h| h.item).collect();
        assert!(items.contains(&7) && items.contains(&9), "{items:?}");
        assert!(items.len() <= 4, "{items:?}");
        // Sorted by decreasing estimate.
        for w in found.windows(2) {
            assert!(w[0].estimate >= w[1].estimate);
        }
    }

    #[test]
    fn range_sum_engine_serves_range_queries() {
        let p = SketchParams::new(256, 128, 5).with_seed(6);
        let mut engine = QueryEngine::new(2, RangeSumSketch::<Atomic>::with_backend(&p))
            .with_flush_threshold(64);
        engine.push(10, 5.0);
        engine.push(20, 3.0);
        engine.push(200, 2.0);
        engine.flush();
        let est = engine.range_sum(0, 100);
        assert!((est - 8.0).abs() < 1.0, "est = {est}");
        let snap = engine.pin();
        assert_eq!(engine.range_sum_in(&snap, 0, 255), engine.range_sum(0, 255));
    }

    #[test]
    fn inner_product_between_two_engines() {
        let p = SketchParams::new(500, 256, 9).with_seed(41);
        let mut a = QueryEngine::new(2, AtomicCountSketch::with_backend(&p));
        let mut b = QueryEngine::new(2, AtomicCountSketch::with_backend(&p));
        a.push(3, 10.0);
        a.push(100, -2.0);
        b.push(3, 5.0);
        b.push(100, 6.0);
        a.flush();
        b.flush();
        // True <x, y> = 50 - 12 = 38.
        let est = a.inner_product_with(&b).unwrap();
        assert!((est - 38.0).abs() < 8.0, "est = {est}");
    }

    #[test]
    fn finish_leaves_readers_alive() {
        let mut engine = QueryEngine::new(2, AtomicCountMedian::with_backend(&params()));
        let reader = engine.handle();
        engine.push(3, 4.0);
        let shared = engine.finish();
        assert_eq!(shared.sketch().estimate(3), 4.0);
        assert_eq!(reader.estimate_live(3), 4.0);
        assert_eq!(reader.pin().estimate(3), 4.0);
    }

    #[test]
    fn heavy_hitters_on_an_empty_engine_is_empty() {
        // Zero mass means every threshold is vacuous; the scan must
        // return nothing, not the entire universe.
        let engine = QueryEngine::new(2, AtomicCountMedian::with_backend(&params()));
        assert!(engine.heavy_hitters(0.05).is_empty());
    }

    #[test]
    #[should_panic(expected = "phi must be in (0,1)")]
    fn heavy_hitters_rejects_bad_phi() {
        let engine = QueryEngine::new(1, AtomicCountMedian::with_backend(&params()));
        let _ = engine.heavy_hitters(1.0);
    }
}
