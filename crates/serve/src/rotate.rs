//! The rotating query engine: bounded-lifetime seeds on the write
//! side, estimate-space windows and query auditing on the read side —
//! the serving package of the robustness plane.
//!
//! A [`RotatingEngine`] is the adaptive-adversary-hardened counterpart
//! of a [`Sliding`](crate::Sliding) [`QueryEngine`](crate::QueryEngine):
//! same window semantics (the live interval plus the last `K − 1`
//! closed ones), but every interval runs under its **own** hasher
//! seed, derived from a [`SeedSchedule`] by
//! [`bas_pipeline::RotatingIngest`]. Since the generations' planes are
//! not counter-compatible, window answers combine per-generation
//! **estimates** ([`EstimateCombine::Sum`](crate::EstimateCombine) over
//! the disjoint time slices — see `crate::estimate`); each generation
//! contributes its own Theorem-1 error term, so a K-interval window
//! pays up to K terms where the fixed-seed engine pays one. That is
//! the price of robustness; `tests/adversarial.rs` shows what it buys:
//! the identical adaptive attack that blows the fixed-seed engine's
//! bound leaves this engine inside it.
//!
//! Rotation alone bounds how long leaked seed knowledge stays useful;
//! the optional audit ([`with_audit`](RotatingEngine::with_audit))
//! bounds how much can leak per generation in the first place, and its
//! per-key budgets reset automatically at every
//! [`advance_interval`](RotatingEngine::advance_interval) — a fresh
//! seed makes stale feedback worthless.

use std::collections::HashMap;

use crate::audit::AuditPolicy;
use crate::error::QueryError;
use bas_hash::SeedSchedule;
use bas_pipeline::{EpochHandle, RotatingGeneration, RotatingIngest};
use bas_sketch::{HeavyHitter, PointQuerySketch, Reseedable, SharedSketch, Snapshottable};
use bas_stream::StreamUpdate;
use parking_lot::Mutex;

/// A query engine whose hasher seeds rotate every interval — see the
/// module docs for the threat model and the error trade.
///
/// ```
/// use bas_hash::SeedSchedule;
/// use bas_serve::RotatingEngine;
/// use bas_sketch::{AtomicCountMedian, SketchParams};
///
/// let params = SketchParams::new(1_000, 64, 5).with_seed(42);
/// let mut engine = RotatingEngine::new(
///     2,
///     AtomicCountMedian::with_backend(&params),
///     SeedSchedule::new(42),
///     /* window of */ 3, // live interval + 2 retired generations
/// )
/// .unwrap();
///
/// for interval in 0..4u64 {
///     engine.push(7, 10.0);
///     engine.advance_interval();
/// }
/// engine.push(7, 10.0);
/// engine.flush();
/// // Window = intervals 2, 3 (retired) + 4 (live): 30 of the 50.
/// assert_eq!(engine.window_estimate(7), 30.0);
/// assert_eq!(engine.window_mass(), 30.0);
/// ```
#[derive(Debug)]
pub struct RotatingEngine<S: SharedSketch + Snapshottable + Reseedable + Send> {
    ingest: RotatingIngest<S>,
    window_len: usize,
    audit: Option<AuditState>,
}

#[derive(Debug)]
struct AuditState {
    policy: AuditPolicy,
    counts: Mutex<HashMap<u64, u64>>,
}

impl<S: SharedSketch + Snapshottable + Reseedable + Send> RotatingEngine<S> {
    /// Creates a rotating engine serving a sliding window of
    /// `window_len` intervals (the live one plus `window_len − 1`
    /// retired generations). The sketch is reseeded to
    /// `schedule.seed_for(0)`, so generation `g` always runs under
    /// `schedule.seed_for(g)`.
    ///
    /// # Errors
    /// Returns [`QueryError::InvalidWindowLen`] if `window_len` is 0.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(
        workers: usize,
        sketch: S,
        schedule: SeedSchedule,
        window_len: usize,
    ) -> Result<Self, QueryError> {
        QueryError::check_window_len(window_len)?;
        Ok(Self {
            ingest: RotatingIngest::new(workers, sketch, schedule, window_len - 1),
            window_len,
            audit: None,
        })
    }

    /// Overrides the flush threshold (see
    /// [`bas_pipeline::ConcurrentIngest::with_flush_threshold`]).
    ///
    /// # Panics
    /// Panics if `updates` is zero.
    pub fn with_flush_threshold(mut self, updates: usize) -> Self {
        self.ingest = self.ingest.with_flush_threshold(updates);
        self
    }

    /// Installs a query audit on the windowed read path: per-key
    /// budgets for [`audited_window_estimate`](RotatingEngine::audited_window_estimate),
    /// reset automatically at every rotation.
    pub fn with_audit(mut self, policy: AuditPolicy) -> Self {
        self.audit = Some(AuditState {
            policy,
            counts: Mutex::new(HashMap::new()),
        });
        self
    }

    // ---- write side (single producer, `&mut self`) ----

    /// Buffers one update into the current generation.
    pub fn push(&mut self, item: u64, delta: f64) {
        self.ingest.push(item, delta);
    }

    /// Buffers a slice of updates into the current generation.
    pub fn extend_from_slice(&mut self, updates: &[(u64, f64)]) {
        self.ingest.extend_from_slice(updates);
    }

    /// Buffers a stream of [`StreamUpdate`]s into the current
    /// generation.
    pub fn extend_updates<I: IntoIterator<Item = StreamUpdate>>(&mut self, updates: I) {
        self.ingest.extend_updates(updates);
    }

    /// Applies all buffered updates now (without rotating).
    pub fn flush(&mut self) {
        self.ingest.flush();
    }

    /// Rotates: retires the live generation (frozen hashers and
    /// counters), starts the next under the schedule's next seed, and
    /// resets the audit budgets — stale feedback is worthless against
    /// the fresh seed. Returns the id of the interval just retired.
    pub fn advance_interval(&mut self) -> u64 {
        if let Some(audit) = &self.audit {
            audit.counts.lock().clear();
        }
        self.ingest.advance_interval()
    }

    // ---- read side (`&self`) ----

    /// Point estimate of `x_item` **within the window**: the sum of
    /// per-generation estimates, each answered through that
    /// generation's own hashers (the estimate-space path — generation
    /// planes are deliberately not counter-compatible). Retired
    /// generations are quiesced, so their terms are settled; the live
    /// generation's term is a lock-free live read with the usual
    /// single-flush smear (flush first for settled answers).
    pub fn window_estimate(&self, item: u64) -> f64 {
        let live = self.ingest.live().estimate(item);
        self.ingest
            .generations()
            .map(|g| g.handle().estimate(item))
            .fold(live, |acc, e| acc + e)
    }

    /// Total delta mass inside the window (live + retained
    /// generations) — the base for window heavy-hitter thresholds.
    pub fn window_mass(&self) -> f64 {
        self.ingest.live().mass() + self.ingest.generations().map(|g| g.mass()).sum::<f64>()
    }

    /// Updates applied inside the window.
    pub fn window_applied(&self) -> u64 {
        self.ingest.live().applied() + self.ingest.generations().map(|g| g.applied()).sum::<u64>()
    }

    /// Heavy hitters **within the window** by combined estimate: every
    /// item whose [`window_estimate`](RotatingEngine::window_estimate)
    /// reaches `phi` times the window's mass, sorted by decreasing
    /// estimate. A full universe scan over every generation
    /// (`O(n · K · d)`).
    ///
    /// # Errors
    /// Returns [`QueryError::InvalidPhi`] unless `0 < phi < 1`.
    pub fn window_heavy_hitters(&self, phi: f64) -> Result<Vec<HeavyHitter>, QueryError> {
        QueryError::check_phi(phi)?;
        let mass = self.window_mass();
        if mass <= 0.0 {
            return Ok(Vec::new());
        }
        let threshold = phi * mass;
        let mut out: Vec<HeavyHitter> = (0..self.ingest.live().universe())
            .filter_map(|item| {
                let estimate = self.window_estimate(item);
                (estimate >= threshold).then_some(HeavyHitter { item, estimate })
            })
            .collect();
        out.sort_by(|a, b| b.estimate.total_cmp(&a.estimate).then(a.item.cmp(&b.item)));
        Ok(out)
    }

    /// The audited window read: counts the query against `item`'s
    /// per-generation budget, then answers
    /// [`window_estimate`](RotatingEngine::window_estimate) through
    /// the policy's noise/quantize pipeline. Without an installed
    /// audit this is an uncounted exact window read.
    ///
    /// # Errors
    /// Returns [`QueryError::AuditRejected`] once `item`'s budget for
    /// the current generation is exhausted (budgets reset at every
    /// rotation).
    pub fn audited_window_estimate(&self, item: u64) -> Result<f64, QueryError> {
        let Some(audit) = &self.audit else {
            return Ok(self.window_estimate(item));
        };
        {
            let mut counts = audit.counts.lock();
            let used = counts.entry(item).or_insert(0);
            if *used >= audit.policy.max_queries_per_key() {
                return Err(QueryError::AuditRejected {
                    item,
                    limit: audit.policy.max_queries_per_key(),
                });
            }
            *used += 1;
        }
        Ok(audit.policy.apply(item, self.window_estimate(item)))
    }

    // ---- bookkeeping ----

    /// Id of the interval (= generation) currently accepting updates.
    pub fn interval(&self) -> u64 {
        self.ingest.interval()
    }

    /// The window length in intervals (live + retired).
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// The seed schedule driving the rotations.
    pub fn schedule(&self) -> SeedSchedule {
        self.ingest.schedule()
    }

    /// The live generation's handle (current seed, current counters).
    pub fn live(&self) -> &EpochHandle<S> {
        self.ingest.live()
    }

    /// The retired generations inside the window, oldest first.
    pub fn generations(&self) -> impl Iterator<Item = &RotatingGeneration<S>> {
        self.ingest.generations()
    }

    /// The rotating write side, for direct access.
    pub fn ingest(&self) -> &RotatingIngest<S> {
        &self.ingest
    }

    /// Updates buffered but not yet flushed.
    pub fn pending(&self) -> usize {
        self.ingest.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sketch::{AtomicCountMedian, CountMedian, PointQuerySketch, SketchParams};

    const N: u64 = 400;
    const MASTER: u64 = 23;

    fn params() -> SketchParams {
        SketchParams::new(N, 64, 5).with_seed(MASTER)
    }

    fn make_engine(window_len: usize) -> RotatingEngine<AtomicCountMedian> {
        RotatingEngine::new(
            2,
            AtomicCountMedian::with_backend(&params()),
            SeedSchedule::new(MASTER),
            window_len,
        )
        .unwrap()
    }

    fn interval_stream(interval: u64, len: u64) -> Vec<(u64, f64)> {
        (0..len)
            .map(|i| {
                (
                    (i * 13 + interval * 29) % N,
                    (1 + (i + interval) % 3) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn zero_window_is_rejected() {
        let result = RotatingEngine::new(
            1,
            AtomicCountMedian::with_backend(&params()),
            SeedSchedule::new(MASTER),
            0,
        );
        assert_eq!(result.unwrap_err(), QueryError::InvalidWindowLen { len: 0 });
    }

    #[test]
    fn window_estimate_sums_generation_estimates() {
        // Wide sketch, sparse stream: every per-generation estimate is
        // exact, so the window sum is exact too.
        let mut engine = make_engine(3);
        for interval in 0..4u64 {
            engine.push(7, 10.0);
            engine.push(interval + 100, 1.0);
            engine.advance_interval();
        }
        engine.push(7, 5.0);
        engine.flush();
        // Window = generations 2, 3 + live interval 4.
        assert_eq!(engine.window_estimate(7), 25.0);
        assert_eq!(engine.window_mass(), 27.0);
        assert_eq!(engine.window_applied(), 5);
        assert_eq!(engine.interval(), 4);
    }

    #[test]
    fn window_tracks_reference_per_interval_truth() {
        // Denser traffic: window answers stay within the sum of the
        // per-generation Theorem-1 bounds (3·mass_g/s each).
        let mut engine = make_engine(2).with_flush_threshold(256);
        let mut per_interval_truth: Vec<Vec<f64>> = Vec::new();
        for t in 0..3u64 {
            let updates = interval_stream(t, 600);
            let mut truth = vec![0.0; N as usize];
            for &(item, delta) in &updates {
                truth[item as usize] += delta;
            }
            per_interval_truth.push(truth);
            engine.extend_from_slice(&updates);
            engine.advance_interval();
        }
        engine.flush();
        // Window = generation 2 + empty live interval 3.
        let width = 64.0;
        let mass: f64 = per_interval_truth[2].iter().sum();
        let bound = 3.0 * mass / width;
        for j in 0..N {
            let err = (engine.window_estimate(j) - per_interval_truth[2][j as usize]).abs();
            assert!(err <= bound, "item {j}: err {err} > bound {bound}");
        }
    }

    #[test]
    fn generations_rotate_seeds_per_schedule() {
        let schedule = SeedSchedule::new(MASTER);
        let mut engine = make_engine(4);
        for t in 0..3u64 {
            engine.push(t, 1.0);
            engine.advance_interval();
        }
        assert_eq!(engine.live().config().seed, schedule.seed_for(3));
        let seeds: Vec<u64> = engine.generations().map(|g| g.config().seed).collect();
        assert_eq!(
            seeds,
            vec![
                schedule.seed_for(0),
                schedule.seed_for(1),
                schedule.seed_for(2)
            ]
        );
    }

    #[test]
    fn window_heavy_hitters_sees_across_generations() {
        let mut engine = make_engine(3);
        // Item 9 is moderately hot in each of three generations —
        // heavy only in the combined window.
        for _ in 0..3 {
            for _ in 0..40 {
                engine.push(9, 1.0);
            }
            for i in 0..80u64 {
                engine.push(i % 70, 1.0);
            }
            engine.advance_interval();
        }
        let hot = engine.window_heavy_hitters(0.25).unwrap();
        let items: Vec<u64> = hot.iter().map(|h| h.item).collect();
        assert!(items.contains(&9), "{items:?}");
        assert_eq!(
            engine.window_heavy_hitters(0.0),
            Err(QueryError::InvalidPhi { phi: 0.0 })
        );
        // Empty window after the bank ages everything out: vacuous.
        let empty = make_engine(1);
        assert!(empty.window_heavy_hitters(0.5).unwrap().is_empty());
    }

    #[test]
    fn audit_budget_caps_and_resets_on_rotation() {
        let mut engine = make_engine(2).with_audit(AuditPolicy::new(2));
        engine.push(7, 30.0);
        engine.flush();
        assert_eq!(engine.audited_window_estimate(7), Ok(30.0));
        assert_eq!(engine.audited_window_estimate(7), Ok(30.0));
        assert_eq!(
            engine.audited_window_estimate(7),
            Err(QueryError::AuditRejected { item: 7, limit: 2 })
        );
        // Unbudgeted keys still answer; the exact read is unthrottled.
        assert_eq!(engine.audited_window_estimate(8), Ok(0.0));
        assert_eq!(engine.window_estimate(7), 30.0);
        // Rotation renews the budget.
        engine.advance_interval();
        assert_eq!(engine.audited_window_estimate(7), Ok(30.0));
    }

    #[test]
    fn unaudited_engine_serves_uncounted() {
        let mut engine = make_engine(1);
        engine.push(3, 4.0);
        engine.flush();
        for _ in 0..100 {
            assert_eq!(engine.audited_window_estimate(3), Ok(4.0));
        }
    }

    #[test]
    fn matches_fixed_seed_engine_before_first_rotation() {
        let mut rotating = make_engine(3);
        let mut fixed = CountMedian::new(&params());
        let updates = interval_stream(0, 500);
        rotating.extend_from_slice(&updates);
        fixed.update_batch(&updates);
        rotating.flush();
        for j in 0..N {
            assert_eq!(rotating.window_estimate(j), fixed.estimate(j), "item {j}");
        }
    }
}
