//! Serving policies: how much history a [`QueryEngine`] answers over.
//!
//! The engine is generic over a [`ServingPolicy`] chosen at
//! construction:
//!
//! * [`Unbounded`] — the since-boot accumulator, bit-for-bit the
//!   pre-window behavior. No plane bank is allocated and rotation is
//!   free; this is the default type parameter, so existing code
//!   compiles and behaves unchanged.
//! * [`Tumbling`]`(K)` — time is partitioned into fixed buckets of `K`
//!   intervals; queries cover the current bucket only, and the answer
//!   resets at every bucket boundary (the classic "per-5-minute
//!   report" shape).
//! * [`Sliding`]`(K)` — queries always cover the last `K` intervals,
//!   including the one in progress (the "last 5 minutes, right now"
//!   shape).
//!
//! Both windowed policies answer by **plane arithmetic**, not by
//! keeping per-window counters: the engine's bank holds sealed
//! *cumulative* planes, and the window ending in the in-progress
//! interval `t` is `cumulative(now) − sealed(boundary)`, one
//! subtractive merge. The policy's entire job is to name that boundary
//! ([`WindowPolicy::window_boundary`]) and the bank capacity that keeps
//! it retained ([`ServingPolicy::bank_capacity`] = `K` for both).
//!
//! [`QueryEngine`]: crate::QueryEngine

use crate::error::QueryError;

/// How a [`QueryEngine`](crate::QueryEngine) scopes its answers in
/// time. See the module docs for the three shipped policies.
pub trait ServingPolicy: Copy + Clone + std::fmt::Debug + Send + Sync + 'static {
    /// Sealed cumulative planes the engine's bank must retain (0 for
    /// unbounded serving — no bank at all).
    fn bank_capacity(&self) -> usize;

    /// Human-readable label for diagnostics and bench reports
    /// (`"unbounded"`, `"tumbling(4)"`, `"sliding(4)"`).
    fn describe(&self) -> String;
}

/// A windowed [`ServingPolicy`]: answers are scoped to a window of
/// whole intervals ending in the one currently in progress.
pub trait WindowPolicy: ServingPolicy {
    /// Window length in intervals (the `K` of `Tumbling(K)` /
    /// `Sliding(K)`).
    fn window_len(&self) -> usize;

    /// The sealed interval whose cumulative plane is the window's
    /// start boundary when interval `current` is in progress: the
    /// window covers intervals `boundary + 1 ..= current`. `None`
    /// during warm-up, when the window still reaches back to boot
    /// (nothing to subtract).
    ///
    /// Invariant (checked by the conformance tests): the boundary is
    /// always within the last [`window_len`](WindowPolicy::window_len)
    /// seals, so a bank of that capacity always retains it.
    fn window_boundary(&self, current: u64) -> Option<u64>;

    /// First interval the window covers when `current` is in progress.
    fn window_start(&self, current: u64) -> u64 {
        self.window_boundary(current).map_or(0, |b| b + 1)
    }
}

/// Since-boot serving: the pre-window `QueryEngine` behavior,
/// bit for bit. The default policy type parameter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Unbounded;

impl ServingPolicy for Unbounded {
    fn bank_capacity(&self) -> usize {
        0
    }

    fn describe(&self) -> String {
        "unbounded".to_string()
    }
}

/// Tumbling windows of `K` intervals: queries cover the current
/// `K`-interval bucket and reset at bucket boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tumbling {
    len: usize,
}

impl Tumbling {
    /// A tumbling policy over buckets of `len` intervals.
    ///
    /// # Errors
    /// Returns [`QueryError::InvalidWindowLen`] if `len` is zero.
    pub fn new(len: usize) -> Result<Self, QueryError> {
        QueryError::check_window_len(len)?;
        Ok(Self { len })
    }
}

impl ServingPolicy for Tumbling {
    fn bank_capacity(&self) -> usize {
        self.len
    }

    fn describe(&self) -> String {
        format!("tumbling({})", self.len)
    }
}

impl WindowPolicy for Tumbling {
    fn window_len(&self) -> usize {
        self.len
    }

    /// The bucket containing `current` starts at
    /// `current − current % K`; the boundary seal is the interval just
    /// before it. The boundary is at most `K` seals back
    /// (`current % K ≤ K − 1`), so a capacity-`K` bank retains it.
    fn window_boundary(&self, current: u64) -> Option<u64> {
        let bucket_start = current - current % self.len as u64;
        bucket_start.checked_sub(1)
    }
}

/// Sliding windows of `K` intervals: queries always cover the last
/// `K` intervals, including the one in progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sliding {
    len: usize,
}

impl Sliding {
    /// A sliding policy over the last `len` intervals.
    ///
    /// # Errors
    /// Returns [`QueryError::InvalidWindowLen`] if `len` is zero.
    pub fn new(len: usize) -> Result<Self, QueryError> {
        QueryError::check_window_len(len)?;
        Ok(Self { len })
    }
}

impl ServingPolicy for Sliding {
    fn bank_capacity(&self) -> usize {
        self.len
    }

    fn describe(&self) -> String {
        format!("sliding({})", self.len)
    }
}

impl WindowPolicy for Sliding {
    fn window_len(&self) -> usize {
        self.len
    }

    /// The window covers `current − K + 1 ..= current`, so the
    /// boundary seal is interval `current − K` — exactly `K` seals
    /// back, the oldest slot a capacity-`K` bank retains.
    fn window_boundary(&self, current: u64) -> Option<u64> {
        current.checked_sub(self.len as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_needs_no_bank() {
        assert_eq!(Unbounded.bank_capacity(), 0);
        assert_eq!(Unbounded.describe(), "unbounded");
    }

    #[test]
    fn zero_length_windows_rejected() {
        assert_eq!(
            Tumbling::new(0).unwrap_err(),
            QueryError::InvalidWindowLen { len: 0 }
        );
        assert!(Sliding::new(0).is_err());
    }

    #[test]
    fn sliding_boundary_trails_by_exactly_k() {
        let p = Sliding::new(3).unwrap();
        assert_eq!(p.window_boundary(0), None);
        assert_eq!(p.window_boundary(2), None);
        assert_eq!(p.window_boundary(3), Some(0));
        assert_eq!(p.window_boundary(10), Some(7));
        assert_eq!(p.window_start(10), 8);
        assert_eq!(p.window_start(1), 0); // warm-up: back to boot
        assert_eq!(p.describe(), "sliding(3)");
    }

    #[test]
    fn tumbling_boundary_resets_per_bucket() {
        let p = Tumbling::new(4).unwrap();
        // First bucket (intervals 0..=3): no boundary yet.
        for t in 0..4 {
            assert_eq!(p.window_boundary(t), None, "t = {t}");
            assert_eq!(p.window_start(t), 0);
        }
        // Second bucket (4..=7): boundary is seal 3 throughout.
        for t in 4..8 {
            assert_eq!(p.window_boundary(t), Some(3), "t = {t}");
            assert_eq!(p.window_start(t), 4);
        }
        assert_eq!(p.window_boundary(8), Some(7));
        assert_eq!(p.describe(), "tumbling(4)");
    }

    #[test]
    fn boundaries_stay_within_bank_retention() {
        // The invariant pin_window relies on: boundary ≥ current − K.
        for k in 1..6usize {
            let t_policy = Tumbling::new(k).unwrap();
            let s_policy = Sliding::new(k).unwrap();
            for current in 0..40u64 {
                for boundary in [
                    t_policy.window_boundary(current),
                    s_policy.window_boundary(current),
                ]
                .into_iter()
                .flatten()
                {
                    assert!(boundary < current);
                    assert!(current - boundary <= k as u64, "k {k}, t {current}");
                }
            }
        }
    }
}
