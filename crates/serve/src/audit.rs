//! Query auditing: bounding the adaptive feedback a reader can extract
//! from one plane lifetime.
//!
//! Seed rotation (`bas_pipeline::RotatingIngest`) bounds how *long* an
//! adversary can exploit a learned hasher configuration; this module
//! bounds how *much* they can learn in the first place. The attack
//! loop in `tests/adversarial.rs` works by asking about the same
//! victim key after every probe and keeping the probes that moved its
//! estimate — every answer leaks one bit about the victim's colliding
//! buckets. An [`AuditedHandle`] throttles exactly that channel:
//!
//! * **per-key query counting** — at most
//!   [`max_queries_per_key`](AuditPolicy::max_queries_per_key) answers
//!   about any one item per plane lifetime; further queries return
//!   [`QueryError::AuditRejected`]. Rotation resets the budget (call
//!   [`AuditedHandle::reset`] at the boundary — `RotatingEngine` does).
//! * **answer coarsening** — optional deterministic per-item noise
//!   ([`with_noise`](AuditPolicy::with_noise)) and/or quantization
//!   ([`with_quantize`](AuditPolicy::with_quantize)). Both blunt the
//!   "did my probe move the estimate?" signal below the probe size.
//!   The noise is a pure function of the *item* (not of the query
//!   count), so repeating a query returns the identical answer —
//!   averaging over repeats buys the adversary nothing, and honest
//!   dashboards see stable numbers.
//!
//! The audit is a serving-side overlay: the sketch, its counters and
//! the unaudited handles are untouched, so trusted readers keep exact
//! answers while untrusted query surfaces get the throttled view.

use std::collections::HashMap;

use crate::error::QueryError;
use crate::QueryHandle;
use bas_hash::{mix64, SplitMix64};
use bas_sketch::{SharedSketch, Snapshottable};
use parking_lot::Mutex;

/// The knobs of a query-audit layer — see the module docs for the
/// threat model each addresses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditPolicy {
    max_queries_per_key: u64,
    noise_magnitude: f64,
    noise_seed: u64,
    quantize: f64,
}

impl AuditPolicy {
    /// A counting-only policy: at most `max_queries_per_key` answers
    /// about any one item per plane lifetime, exact answers until
    /// then. A cap of 0 rejects every query (useful as a kill switch).
    pub fn new(max_queries_per_key: u64) -> Self {
        Self {
            max_queries_per_key,
            noise_magnitude: 0.0,
            noise_seed: 0,
            quantize: 0.0,
        }
    }

    /// Adds deterministic per-item noise, uniform in
    /// `[-magnitude, magnitude]`, derived from `seed` and the item
    /// only — repeat queries for the same item get the identical
    /// perturbed answer (no averaging attack; keep `seed` private, or
    /// the adversary subtracts the noise right back off).
    pub fn with_noise(mut self, magnitude: f64, seed: u64) -> Self {
        assert!(
            magnitude >= 0.0 && magnitude.is_finite(),
            "noise magnitude must be finite and non-negative"
        );
        self.noise_magnitude = magnitude;
        self.noise_seed = seed;
        self
    }

    /// Quantizes answers to the nearest multiple of `step` (applied
    /// after noise) — estimates move only in visible jumps, hiding
    /// sub-`step` probe effects entirely.
    pub fn with_quantize(mut self, step: f64) -> Self {
        assert!(
            step >= 0.0 && step.is_finite(),
            "quantize step must be finite and non-negative"
        );
        self.quantize = step;
        self
    }

    /// The per-key, per-lifetime query cap.
    pub fn max_queries_per_key(&self) -> u64 {
        self.max_queries_per_key
    }

    /// Applies the answer-coarsening half of the policy (noise, then
    /// quantization) to a raw estimate. The counting half lives in
    /// [`AuditedHandle`].
    pub fn apply(&self, item: u64, raw: f64) -> f64 {
        let mut answer = raw;
        if self.noise_magnitude > 0.0 {
            let mut rng = SplitMix64::new(self.noise_seed ^ mix64(item));
            // 53 random mantissa bits → uniform in [0, 1), mapped to
            // [-magnitude, magnitude].
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            answer += (2.0 * unit - 1.0) * self.noise_magnitude;
        }
        if self.quantize > 0.0 {
            answer = (answer / self.quantize).round() * self.quantize;
        }
        answer
    }
}

/// A [`QueryHandle`] behind an [`AuditPolicy`]: the untrusted-reader
/// view of an engine. Build one with
/// [`QueryHandle::audited`](crate::QueryHandle::audited).
///
/// The per-key counters are shared by nothing else — each audited
/// handle tracks its own reader's budget. Hand one audited handle per
/// untrusted consumer (or one per session) and
/// [`reset`](AuditedHandle::reset) them at rotation boundaries.
#[derive(Debug)]
pub struct AuditedHandle<S: SharedSketch + Snapshottable + Send> {
    inner: QueryHandle<S>,
    policy: AuditPolicy,
    counts: Mutex<HashMap<u64, u64>>,
}

impl<S: SharedSketch + Snapshottable + Send> AuditedHandle<S> {
    pub(crate) fn new(inner: QueryHandle<S>, policy: AuditPolicy) -> Self {
        Self {
            inner,
            policy,
            counts: Mutex::new(HashMap::new()),
        }
    }

    /// Audited live point estimate: counts the query against `item`'s
    /// budget, then answers through the policy's noise/quantize
    /// pipeline.
    ///
    /// # Errors
    /// Returns [`QueryError::AuditRejected`] once `item` has used up
    /// its per-lifetime budget; rejected queries do not consume
    /// budget (the counter saturates at the cap).
    pub fn estimate_live(&self, item: u64) -> Result<f64, QueryError> {
        {
            let mut counts = self.counts.lock();
            let used = counts.entry(item).or_insert(0);
            if *used >= self.policy.max_queries_per_key {
                return Err(QueryError::AuditRejected {
                    item,
                    limit: self.policy.max_queries_per_key,
                });
            }
            *used += 1;
        }
        Ok(self.policy.apply(item, self.inner.estimate_live(item)))
    }

    /// How many answered queries `item` has consumed this lifetime.
    pub fn queries_of(&self, item: u64) -> u64 {
        self.counts.lock().get(&item).copied().unwrap_or(0)
    }

    /// Resets every per-key budget — call at a rotation boundary,
    /// where a fresh hasher configuration makes the previously leaked
    /// feedback worthless.
    pub fn reset(&self) {
        self.counts.lock().clear();
    }

    /// The policy in effect.
    pub fn policy(&self) -> &AuditPolicy {
        &self.policy
    }

    /// The unaudited handle underneath (trusted-path escape hatch:
    /// exact, uncounted, unthrottled).
    pub fn inner(&self) -> &QueryHandle<S> {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryEngine;
    use bas_sketch::{AtomicCountMedian, SketchParams};

    fn engine() -> QueryEngine<AtomicCountMedian> {
        let params = SketchParams::new(200, 64, 5).with_seed(11);
        let mut engine = QueryEngine::new(1, AtomicCountMedian::with_backend(&params));
        engine.push(7, 40.0);
        engine.push(9, 8.0);
        engine.flush();
        engine
    }

    #[test]
    fn cap_rejects_after_budget_and_reset_restores() {
        let audited = engine().handle().audited(AuditPolicy::new(3));
        for _ in 0..3 {
            assert_eq!(audited.estimate_live(7), Ok(40.0));
        }
        assert_eq!(
            audited.estimate_live(7),
            Err(QueryError::AuditRejected { item: 7, limit: 3 })
        );
        assert_eq!(audited.queries_of(7), 3);
        // Other keys have their own budgets; rejected queries did not
        // touch them.
        assert_eq!(audited.estimate_live(9), Ok(8.0));
        audited.reset();
        assert_eq!(audited.estimate_live(7), Ok(40.0));
    }

    #[test]
    fn noise_is_deterministic_per_item_and_bounded() {
        let policy = AuditPolicy::new(u64::MAX).with_noise(2.0, 99);
        let audited = engine().handle().audited(policy);
        let first = audited.estimate_live(7).unwrap();
        // Repeats return the identical perturbed answer — averaging
        // over repeats cannot wash the noise out.
        for _ in 0..10 {
            assert_eq!(audited.estimate_live(7).unwrap(), first);
        }
        assert!((first - 40.0).abs() <= 2.0, "answer {first}");
        // Different items get independent perturbations.
        let other = audited.estimate_live(9).unwrap();
        assert!((other - 8.0).abs() <= 2.0, "answer {other}");
        assert_ne!(first - 40.0, other - 8.0);
    }

    #[test]
    fn quantization_rounds_to_the_step() {
        let policy = AuditPolicy::new(u64::MAX).with_quantize(16.0);
        let audited = engine().handle().audited(policy);
        assert_eq!(audited.estimate_live(7), Ok(48.0)); // 40/16 = 2.5 rounds away from zero
        assert_eq!(audited.estimate_live(9), Ok(16.0)); // 8 rounds up
    }

    #[test]
    fn inner_handle_stays_exact_and_unthrottled() {
        let audited = engine().handle().audited(AuditPolicy::new(0));
        assert!(audited.estimate_live(7).is_err()); // kill switch
        for _ in 0..5 {
            assert_eq!(audited.inner().estimate_live(7), 40.0);
        }
    }

    #[test]
    fn apply_composes_noise_then_quantize() {
        let plain = AuditPolicy::new(1);
        assert_eq!(plain.apply(3, 12.34), 12.34);
        let quantized = plain.with_quantize(5.0);
        assert_eq!(quantized.apply(3, 12.34), 10.0);
        let noisy = AuditPolicy::new(1).with_noise(1.0, 7).with_quantize(0.5);
        let out = noisy.apply(3, 12.0);
        assert!((out - 12.0).abs() <= 1.25, "out {out}");
        assert_eq!((out / 0.5).round() * 0.5, out);
    }
}
