//! Typed rejection of bad query parameters.

/// Error returned when a query (or a serving-policy configuration)
/// carries invalid parameters — the serving layer's counterpart of
/// [`bas_sketch::MergeError`].
///
/// Every validation in this crate goes through this enum; the
/// panicking convenience methods (e.g.
/// [`QueryEngine::heavy_hitters`](crate::QueryEngine::heavy_hitters))
/// panic with its [`Display`](std::fmt::Display) message, so callers
/// that prefer `Result`s use the `try_*` / windowed APIs and callers
/// that prefer panics lose nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryError {
    /// A heavy-hitter threshold outside `(0, 1)`.
    InvalidPhi {
        /// The rejected threshold.
        phi: f64,
    },
    /// A range query with `a > b` or `b ≥ n`.
    InvalidRange {
        /// Inclusive lower bound.
        a: u64,
        /// Inclusive upper bound.
        b: u64,
        /// Universe size.
        n: u64,
    },
    /// A window length of zero intervals.
    InvalidWindowLen {
        /// The rejected length.
        len: usize,
    },
    /// The window reaches back to an interval whose sealed plane the
    /// bank no longer retains.
    WindowUnavailable {
        /// The boundary interval that was requested.
        interval: u64,
    },
    /// An audited handle refused the query: the key has already been
    /// asked about `limit` times in the current plane lifetime (see
    /// [`AuditPolicy`](crate::AuditPolicy)). Answering further probes
    /// would hand an adaptive adversary the per-key feedback budget the
    /// robustness analysis bounds.
    AuditRejected {
        /// The item whose query budget is exhausted.
        item: u64,
        /// The per-key, per-lifetime query cap that was reached.
        limit: u64,
    },
}

impl QueryError {
    /// Validates a heavy-hitter threshold.
    pub fn check_phi(phi: f64) -> Result<(), QueryError> {
        if phi > 0.0 && phi < 1.0 {
            Ok(())
        } else {
            Err(QueryError::InvalidPhi { phi })
        }
    }

    /// Validates an inclusive range over a universe of size `n`.
    pub fn check_range(a: u64, b: u64, n: u64) -> Result<(), QueryError> {
        if a <= b && b < n {
            Ok(())
        } else {
            Err(QueryError::InvalidRange { a, b, n })
        }
    }

    /// Validates a window length in intervals.
    pub fn check_window_len(len: usize) -> Result<(), QueryError> {
        if len > 0 {
            Ok(())
        } else {
            Err(QueryError::InvalidWindowLen { len })
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            QueryError::InvalidPhi { phi } => {
                write!(f, "phi must be in (0,1), got {phi}")
            }
            QueryError::InvalidRange { a, b, n } => {
                write!(f, "invalid range [{a}, {b}] over universe [0, {n})")
            }
            QueryError::InvalidWindowLen { len } => {
                write!(f, "window length must be at least 1 interval, got {len}")
            }
            QueryError::WindowUnavailable { interval } => {
                write!(
                    f,
                    "sealed plane for interval {interval} is no longer retained by the bank"
                )
            }
            QueryError::AuditRejected { item, limit } => {
                write!(
                    f,
                    "query audit rejected item {item}: per-key budget of {limit} queries \
                     for this plane lifetime is exhausted"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_validation() {
        assert!(QueryError::check_phi(0.5).is_ok());
        assert_eq!(
            QueryError::check_phi(0.0),
            Err(QueryError::InvalidPhi { phi: 0.0 })
        );
        assert!(QueryError::check_phi(1.0).is_err());
        assert!(QueryError::check_phi(f64::NAN).is_err());
    }

    #[test]
    fn range_validation() {
        assert!(QueryError::check_range(2, 5, 10).is_ok());
        assert!(QueryError::check_range(5, 2, 10).is_err());
        assert!(QueryError::check_range(0, 10, 10).is_err());
    }

    #[test]
    fn messages_name_the_parameter() {
        assert!(QueryError::InvalidPhi { phi: 2.0 }
            .to_string()
            .contains("phi must be in (0,1)"));
        assert!(QueryError::InvalidRange { a: 5, b: 2, n: 10 }
            .to_string()
            .contains("invalid range"));
        assert!(QueryError::InvalidWindowLen { len: 0 }
            .to_string()
            .contains("window length"));
        assert!(QueryError::WindowUnavailable { interval: 7 }
            .to_string()
            .contains("interval 7"));
        let rejected = QueryError::AuditRejected { item: 3, limit: 10 }.to_string();
        assert!(
            rejected.contains("item 3") && rejected.contains("10"),
            "{rejected}"
        );
        // It is a std error like MergeError.
        let e: Box<dyn std::error::Error> = Box::new(QueryError::InvalidWindowLen { len: 0 });
        assert!(e.to_string().contains("at least 1"));
    }
}
