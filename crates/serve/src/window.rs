//! Window-pinned snapshots: frozen, self-contained views of one time
//! window.

use crate::error::QueryError;
use bas_pipeline::EpochHandle;
use bas_sketch::{
    CounterBackend, HeavyHitter, PointQuerySketch, RangeSumSketch, SharedSketch, SketchParams,
    Snapshottable,
};

/// A pinned, epoch-consistent frozen view of **one window** of the
/// stream: the counter plane of intervals
/// `start_interval ..= end_interval`, obtained as
/// `cumulative(now) − sealed(boundary)` by linearity.
///
/// Like `bas_pipeline::SnapshotHandle`, the view is self-contained
/// (it keeps the owning sketch alive for its hash functions) and
/// `Send`, so a coordinator can ship per-site window snapshots across
/// threads — `bas_distributed::aggregate_windows` merges same-window
/// snapshots from many sites by the same linearity that built them.
///
/// Obtain one from
/// [`QueryEngine::pin_window`](crate::QueryEngine::pin_window); refresh
/// it in place (allocation-free) with
/// [`QueryEngine::refresh_window`](crate::QueryEngine::refresh_window).
#[derive(Debug)]
pub struct WindowSnapshot<S: SharedSketch + Snapshottable + Send> {
    pub(crate) owner: EpochHandle<S>,
    pub(crate) plane: S::Snapshot,
    /// The hasher configuration (seed included) the plane was pinned
    /// under: carried explicitly so a coordinator can refuse to
    /// counter-merge windows sealed under different seeds (see
    /// `bas_distributed::aggregate_windows`) instead of silently
    /// combining incompatible planes.
    pub(crate) params: SketchParams,
    pub(crate) start_interval: u64,
    pub(crate) end_interval: u64,
    pub(crate) applied: u64,
    pub(crate) mass: f64,
}

impl<S: SharedSketch + Snapshottable + Send> WindowSnapshot<S> {
    /// Point estimate of `x_item` **within the window** — the frozen
    /// counterpart of a live estimate, scoped to the window's updates.
    pub fn estimate(&self, item: u64) -> f64 {
        self.owner.sketch().estimate_in(&self.plane, item)
    }

    /// Heavy hitters of the window: every item whose window estimate
    /// reaches `phi` times the window's mass, sorted by decreasing
    /// estimate. A full universe scan (`O(n·d)`), like the unbounded
    /// engine scan. An empty (or net-non-positive) window has no heavy
    /// hitters.
    ///
    /// # Errors
    /// Returns [`QueryError::InvalidPhi`] unless `0 < phi < 1`.
    pub fn heavy_hitters(&self, phi: f64) -> Result<Vec<HeavyHitter>, QueryError> {
        crate::scan_heavy_hitters(self.owner.sketch(), &self.plane, self.mass, phi)
    }

    /// The frozen window plane, for sketch-specific multi-cell queries
    /// and for shipping to a distributed coordinator.
    pub fn plane(&self) -> &S::Snapshot {
        &self.plane
    }

    /// The sketch this window was pinned from (hash functions).
    pub fn sketch(&self) -> &S {
        self.owner.sketch()
    }

    /// The hasher configuration the window's plane was pinned under.
    /// Counter-space combination of two windows is only sound when
    /// their configs pass
    /// [`SketchParams::check_counter_compatible`]; otherwise combine
    /// their **estimates** (see [`crate::combine_plane_estimates`]).
    pub fn config(&self) -> SketchParams {
        self.params
    }

    /// First interval the window covers.
    pub fn start_interval(&self) -> u64 {
        self.start_interval
    }

    /// Last interval the window covers (the interval that was in
    /// progress at pin time).
    pub fn end_interval(&self) -> u64 {
        self.end_interval
    }

    /// Updates inside the window as of the pin.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Total delta mass inside the window as of the pin — the base for
    /// window heavy-hitter thresholds.
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Unwraps the frozen window plane (e.g. to ship it to a
    /// coordinator without the owner handle).
    pub fn into_plane(self) -> S::Snapshot {
        self.plane
    }
}

impl<B: CounterBackend> WindowSnapshot<RangeSumSketch<B>>
where
    RangeSumSketch<B>: SharedSketch,
{
    /// Range sum `Σ_{a ≤ i ≤ b} x_i` **within the window**: the whole
    /// dyadic decomposition reads the one subtracted plane, so every
    /// level reflects the same window of the stream.
    ///
    /// # Errors
    /// Returns [`QueryError::InvalidRange`] if `a > b` or `b ≥ n`.
    pub fn range_sum(&self, a: u64, b: u64) -> Result<f64, QueryError> {
        let sketch = self.owner.sketch();
        QueryError::check_range(a, b, sketch.universe())?;
        Ok(sketch.query_in(&self.plane, a, b))
    }
}
