//! Count-Min-Log with conservative update (CML-CU).

use crate::snapshot::Snapshottable;
use crate::storage::{CounterBackend, CounterMatrix, Dense};
use crate::traits::{MergeError, PointQuerySketch, SketchParams};
use bas_hash::{AnyBucketHasher, BucketHasher, HashFamily, SplitMix64};

/// Count-Min-Log sketch with conservative update (Pitel & Fouquier,
/// 2015) — the CML-CU baseline of the paper's experiments, with the same
/// log base **1.00025** (§5.1).
///
/// Counters hold log-scale values: a counter at level `c` represents the
/// estimate `value(c) = (base^c − 1)/(base − 1)`. A unit increment
/// succeeds with probability `base^{−c_min}` and (conservatively) bumps
/// only the counters currently at the minimum level. Queries return
/// `value(min_i c_i)`.
///
/// Properties relevant to the paper's comparison:
/// * **Not linear** — the probabilistic, state-dependent increments make
///   merging lossy, so CML-CU is excluded from the distributed protocol.
/// * Cash-register only — `Δ` must be a non-negative integer (fractional
///   or negative deltas panic).
/// * Bit-efficient — levels grow logarithmically with the count, which
///   is the sketch's entire reason to exist. Levels are stored in 16
///   bits (as in Pitel & Fouquier's evaluation), so **four counters fit
///   per 64-bit word**; at equal space budgets CML-CU therefore gets 4x
///   the buckets of Count-Min, which is exactly why the paper's CML-CU
///   beats CM-CU. With base 1.00025 a saturated 16-bit level represents
///   ≈5·10^10, far beyond any workload here; saturated counters stop
///   incrementing.
///
/// Bulk updates `(i, Δ)` are applied with exact geometric batching: the
/// number of Bernoulli(`p`) trials until a success is sampled directly as
/// a Geometric(`p`) variate, so one `update` call with `Δ = m` follows
/// exactly the same distribution as `m` unit updates, in
/// `O(levels gained + 1)` work instead of `O(m)`.
///
/// The 16-bit levels live in a [`CounterMatrix`] whose backend `B` is a
/// type parameter like every other sketch's. CML-CU never implements
/// shared ingest, though: each increment reads the current minimum
/// level *and* the RNG — state dependence that lock-free per-counter
/// updates cannot express (the same property that already makes it
/// non-mergeable). The generic parameter exists for storage-layer
/// uniformity, and [`Dense`] is the only sensible choice.
///
/// ```
/// use bas_sketch::{CountMinLog, PointQuerySketch, SketchParams};
///
/// let params = SketchParams::new(1_000, 64, 4).with_seed(23);
/// let mut cml = CountMinLog::new(&params);
/// cml.update(7, 40.0);
/// cml.update_batch(&[(7, 10.0), (9, 25.0)]); // integer deltas only
/// // Base 1.00025 makes small counts near-exact.
/// assert!((cml.estimate(7) - 50.0).abs() < 1.0);
/// assert!((cml.estimate(9) - 25.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct CountMinLog<B: CounterBackend = Dense> {
    params: SketchParams,
    base: f64,
    ln_base: f64,
    levels: CounterMatrix<u16, B>, // depth × width
    hashers: Vec<AnyBucketHasher>,
    rng: SplitMix64,
}

#[cfg(feature = "serde")]
crate::impl_backend_serde!(CountMinLog {
    params,
    base,
    ln_base,
    levels,
    hashers,
    rng
});

impl CountMinLog {
    /// Creates an empty CML-CU sketch with the given log base and the
    /// default [`Dense`] backend.
    ///
    /// # Panics
    /// Panics unless `base > 1`.
    pub fn with_base(params: &SketchParams, base: f64) -> Self {
        Self::with_backend(params, base)
    }

    /// Creates an empty sketch with the paper's base of 1.00025.
    pub fn new(params: &SketchParams) -> Self {
        Self::with_base(params, Self::PAPER_BASE)
    }
}

impl<B: CounterBackend> CountMinLog<B> {
    /// Log base used in the paper's experiments.
    pub const PAPER_BASE: f64 = 1.00025;

    /// Creates an empty CML-CU sketch with an explicit counter backend.
    ///
    /// # Panics
    /// Panics unless `base > 1`.
    pub fn with_backend(params: &SketchParams, base: f64) -> Self {
        assert!(base > 1.0, "log base must exceed 1, got {base}");
        let mut seeder = SplitMix64::new(params.seed ^ 0xC0DE_0004);
        let mut family = HashFamily::new(params.hash_kind, &mut seeder, params.width);
        let hashers = family.sample_many(params.depth);
        let width = family.buckets();
        let mut params = *params;
        params.width = width;
        Self {
            params,
            base,
            ln_base: base.ln(),
            levels: CounterMatrix::new(width, params.depth),
            hashers,
            rng: seeder.split(),
        }
    }

    /// The log base in use.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The estimated count represented by a level.
    #[inline]
    pub fn value_of_level(&self, level: u16) -> f64 {
        ((level as f64 * self.ln_base).exp() - 1.0) / (self.base - 1.0)
    }

    #[inline]
    fn cell(&self, row: usize, col: usize) -> u16 {
        self.levels.get(row, col)
    }

    #[inline]
    fn min_level(&self, item: u64) -> u16 {
        let mut best = u16::MAX;
        for (row, h) in self.hashers.iter().enumerate() {
            let v = self.cell(row, h.bucket(item));
            if v < best {
                best = v;
            }
        }
        best
    }

    /// Samples `G ~ Geometric(p)`: the number of Bernoulli(`p`) trials up
    /// to and including the first success. Exact inverse-CDF sampling.
    #[inline]
    fn sample_geometric(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 1;
        }
        debug_assert!(p > 0.0);
        // U uniform in (0,1]; G = ceil(ln U / ln(1-p)).
        let u = loop {
            let bits = self.rng.next_u64() >> 11; // 53 random bits
            let u = (bits as f64 + 1.0) / (1u64 << 53) as f64;
            if u > 0.0 {
                break u;
            }
        };
        let g = (u.ln() / (-p).ln_1p()).ceil();
        if g < 1.0 {
            1
        } else if g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Applies `remaining` unit increments to `item` (the validated
    /// inner loop shared by `update` and `update_batch`).
    fn apply_units(&mut self, item: u64, mut remaining: u64) {
        while remaining > 0 {
            let c_min = self.min_level(item);
            if c_min == u16::MAX {
                return; // saturated: estimate is pinned at value(65535)
            }
            // Success probability for a unit increment at this level.
            let p = (-(c_min as f64) * self.ln_base).exp();
            let g = self.sample_geometric(p);
            if g > remaining {
                return; // no success within the remaining units
            }
            remaining -= g;
            // Conservative: bump only the counters at the minimum level.
            for row in 0..self.params.depth {
                let b = self.hashers[row].bucket(item);
                if self.levels.get(row, b) == c_min {
                    self.levels.set(row, b, c_min + 1);
                }
            }
        }
    }

    /// Validates the cash-register / integer-delta contract shared by
    /// `update` and `update_batch`.
    #[inline]
    fn validate_delta(delta: f64) {
        assert!(
            delta >= 0.0 && delta.fract() == 0.0,
            "CML-CU requires non-negative integer deltas, got {delta}"
        );
    }
}

impl<B: CounterBackend> PointQuerySketch for CountMinLog<B> {
    /// Applies `Δ` unit increments with the exact batched distribution.
    ///
    /// # Panics
    /// Panics if `delta` is negative or not an integer.
    fn update(&mut self, item: u64, delta: f64) {
        debug_assert!(item < self.params.n, "item outside universe");
        Self::validate_delta(delta);
        self.apply_units(item, delta as u64);
    }

    /// Batch update. CML-CU's counters are probabilistic *and*
    /// state-dependent (each increment's success probability reads the
    /// current minimum level), so there is no hoisted rewrite: the
    /// specialization validates the whole batch up front — failing fast
    /// before any counter or RNG state changes — then applies items in
    /// order, drawing from the RNG exactly as the one-by-one loop
    /// would. State after a successful call is therefore bit-for-bit
    /// identical to calling [`update`](PointQuerySketch::update) per
    /// item.
    fn update_batch(&mut self, items: &[(u64, f64)]) {
        for &(item, delta) in items {
            debug_assert!(item < self.params.n, "item outside universe");
            Self::validate_delta(delta);
        }
        for &(item, delta) in items {
            self.apply_units(item, delta as u64);
        }
    }

    fn estimate(&self, item: u64) -> f64 {
        self.value_of_level(self.min_level(item))
    }

    fn universe(&self) -> u64 {
        self.params.n
    }

    fn size_in_words(&self) -> usize {
        // Four u16 levels per 64-bit word: the bit-efficiency that buys
        // CML-CU extra width in equal-space comparisons. (The `Atomic`
        // backend physically spends a word per level, but the paper's
        // space accounting — what this method reports — is about the
        // dense wire/storage form.)
        self.levels.len().div_ceil(4)
    }

    fn label(&self) -> &'static str {
        "CML-CU"
    }
}

impl<B: CounterBackend> Snapshottable for CountMinLog<B> {
    /// The frozen view keeps the 16-bit log levels as-is; decoding to
    /// counts happens at query time exactly as on the live sketch.
    type Snapshot = CounterMatrix<u16, Dense>;

    fn make_snapshot(&self) -> Self::Snapshot {
        CounterMatrix::new(self.params.width, self.params.depth)
    }

    fn snapshot_into(&self, snap: &mut Self::Snapshot) {
        self.levels.snapshot_into(snap);
    }

    fn estimate_in(&self, snap: &Self::Snapshot, item: u64) -> f64 {
        let mut best = u16::MAX;
        for (row, h) in self.hashers.iter().enumerate() {
            let v = snap.get(row, h.bucket(item));
            if v < best {
                best = v;
            }
        }
        self.value_of_level(best)
    }

    /// Always an error: log-scale levels are not additive (the same
    /// non-linearity that excludes CML-CU from merging and from the
    /// distributed protocol).
    fn merge_snapshot(
        &self,
        _snap: &mut Self::Snapshot,
        _other: &Self::Snapshot,
    ) -> Result<(), MergeError> {
        Err(MergeError::ShapeMismatch {
            what: "log-scale counters (CML-CU is not linear)",
        })
    }

    /// **Approximate only.** Log-scale levels are not sums, so the
    /// windowed plane arithmetic that is exact for the linear sketches
    /// degenerates here to per-cell *saturating level subtraction*:
    /// `level ← level − min(level, old_level)`. The result decodes to a
    /// crude lower-bound-ish window estimate (a bucket whose level did
    /// not move since the boundary decodes to 0, one that moved decodes
    /// to far less than the window's true mass). Allowed so
    /// bounded-lifetime rotation stays *possible* on every sketch in
    /// the comparison set; callers needing faithful windows must use a
    /// linear sketch — which is also why the windowed `QueryEngine`
    /// never admits CML-CU (no `SharedSketch` impl).
    fn subtract_snapshot(
        &self,
        snap: &mut Self::Snapshot,
        other: &Self::Snapshot,
    ) -> Result<(), MergeError> {
        for row in 0..snap.depth() {
            for col in 0..snap.width() {
                let diff = snap.get(row, col).saturating_sub(other.get(row, col));
                snap.set(row, col, diff);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: u64, w: usize, d: usize) -> SketchParams {
        SketchParams::new(n, w, d).with_seed(23)
    }

    #[test]
    fn snapshot_estimates_match_live_when_quiescent() {
        let mut cml = CountMinLog::new(&params(200, 64, 4));
        let items: Vec<(u64, f64)> = (0..300u64)
            .map(|i| (i * 3 % 200, (1 + i % 6) as f64))
            .collect();
        cml.update_batch(&items);
        let snap = cml.snapshot();
        for j in 0..200u64 {
            assert_eq!(cml.estimate_in(&snap, j), cml.estimate(j), "item {j}");
        }
        let other = cml.snapshot();
        let mut snap2 = cml.snapshot();
        assert!(cml.merge_snapshot(&mut snap2, &other).is_err());
    }

    #[test]
    fn level_zero_is_zero() {
        let cml = CountMinLog::new(&params(100, 32, 4));
        assert_eq!(cml.value_of_level(0), 0.0);
        assert_eq!(cml.estimate(5), 0.0);
    }

    #[test]
    fn value_function_matches_formula() {
        let cml = CountMinLog::with_base(&params(10, 4, 1), 2.0);
        // base 2: value(c) = 2^c - 1.
        for c in 0..10u16 {
            assert!((cml.value_of_level(c) - ((1u64 << c) - 1) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn small_counts_are_near_exact() {
        // With base 1.00025, increments are deterministic for thousands
        // of units (p ~ 1), so small counts come back almost exactly.
        let mut cml = CountMinLog::new(&params(100, 64, 4));
        cml.update(7, 50.0);
        let est = cml.estimate(7);
        assert!((est - 50.0).abs() < 1.0, "est = {est}");
    }

    #[test]
    fn batched_update_matches_unit_updates_in_distribution() {
        // Mean estimate over many trials should approximate the true
        // count for both update styles.
        let truth = 2000.0;
        let trials = 30;
        let mut batched = 0.0;
        let mut units = 0.0;
        for seed in 0..trials {
            let p = SketchParams::new(10, 16, 2).with_seed(seed);
            let mut a = CountMinLog::new(&p);
            a.update(3, truth);
            batched += a.estimate(3);
            let mut b = CountMinLog::new(&p.with_seed(seed + 1000));
            for _ in 0..truth as u64 {
                b.update(3, 1.0);
            }
            units += b.estimate(3);
        }
        batched /= trials as f64;
        units /= trials as f64;
        assert!(
            (batched - truth).abs() < 0.05 * truth,
            "batched = {batched}"
        );
        assert!((units - truth).abs() < 0.05 * truth, "units = {units}");
        assert!((batched - units).abs() < 0.05 * truth);
    }

    #[test]
    fn update_batch_matches_one_by_one_exactly() {
        // Same seed => same RNG stream => identical counters, because
        // the batch path draws geometrics in the same order.
        let p = params(100, 16, 3);
        let mut batched = CountMinLog::new(&p);
        let mut looped = CountMinLog::new(&p);
        let items: Vec<(u64, f64)> = (0..200u64).map(|i| (i % 100, (i % 5) as f64)).collect();
        batched.update_batch(&items);
        for &(i, d) in &items {
            looped.update(i, d);
        }
        for j in 0..100u64 {
            assert_eq!(batched.estimate(j), looped.estimate(j), "item {j}");
        }
    }

    #[test]
    #[should_panic(expected = "non-negative integer")]
    fn batch_fractional_delta_panics() {
        let mut cml = CountMinLog::new(&params(10, 8, 2));
        cml.update_batch(&[(0, 1.0), (1, 0.5)]);
    }

    #[test]
    fn estimate_relative_error_reasonable_for_large_counts() {
        let mut cml = CountMinLog::new(&params(50, 32, 4));
        let truth = 200_000.0;
        cml.update(11, truth);
        let est = cml.estimate(11);
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.10, "relative error {rel}");
    }

    #[test]
    #[should_panic(expected = "non-negative integer")]
    fn negative_delta_panics() {
        let mut cml = CountMinLog::new(&params(10, 8, 2));
        cml.update(0, -1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative integer")]
    fn fractional_delta_panics() {
        let mut cml = CountMinLog::new(&params(10, 8, 2));
        cml.update(0, 1.5);
    }

    #[test]
    #[should_panic(expected = "log base must exceed 1")]
    fn base_one_rejected() {
        CountMinLog::with_base(&params(10, 8, 2), 1.0);
    }

    #[test]
    fn geometric_sampler_mean() {
        let mut cml = CountMinLog::new(&params(10, 8, 2));
        let p = 0.2;
        let trials = 20_000;
        let sum: u64 = (0..trials).map(|_| cml.sample_geometric(p)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 1.0 / p).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn geometric_p_one_is_always_one() {
        let mut cml = CountMinLog::new(&params(10, 8, 2));
        for _ in 0..100 {
            assert_eq!(cml.sample_geometric(1.0), 1);
        }
    }

    #[test]
    fn size_reports_quarter_words() {
        let cml = CountMinLog::new(&params(10, 8, 2));
        assert_eq!(cml.size_in_words(), 4); // 16 u16 cells = 4 words
        assert_eq!(cml.label(), "CML-CU");
    }

    #[test]
    fn saturation_stops_cleanly() {
        // Force saturation with a huge base so levels climb fast.
        let mut cml = CountMinLog::with_base(&params(4, 2, 1), 1e9);
        // With base 1e9, the first unit increment moves level 0 -> 1 and
        // the success probability for the next is 1e-9; just check the
        // sketch keeps answering.
        cml.update(0, 1_000_000.0);
        assert!(cml.estimate(0).is_finite());
    }
}
