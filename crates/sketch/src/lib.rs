//! # bas-sketch — classical linear and non-linear sketch baselines
//!
//! The substrate under the bias-aware sketches and the comparison set for
//! every experiment in *Bias-Aware Sketches* (Chen & Zhang, VLDB 2017,
//! §5.1). Space is counted in 64-bit words for a width-`s`, depth-`d`
//! configuration over a universe of size `n`:
//!
//! * [`CountMedian`] — the CM-matrix sketch of Cormode & Muthukrishnan
//!   with median recovery. **Space** `s·d` words; **guarantee**
//!   (paper, Theorem 1): with `s = Θ(k/α)`, `d = Θ(log n)`,
//!   `‖x̂ − x‖∞ ≤ (α/k)·Err_1^k(x)` w.p. `1 − 1/n`. Linear; the
//!   building block of the paper's `ℓ1`-S/R and of the `ℓ2` bias
//!   estimator.
//! * [`CountSketch`] — Charikar–Chen–Farach-Colton with pairwise random
//!   signs. **Space** `s·d` words; **guarantee** (paper, Theorem 2):
//!   with `s = Θ(k/α²)`, `d = Θ(log n)`,
//!   `‖x̂ − x‖∞ ≤ (α/√k)·Err_2^k(x)` w.p. `1 − 1/n`. Linear; the
//!   recovery engine of `ℓ2`-S/R.
//! * [`CountMin`] — min-recovery sketch for non-negative vectors.
//!   **Space** `s·d` words; **guarantee** (Cormode–Muthukrishnan, cited
//!   in the paper's §2): `x_j ≤ x̂_j ≤ x_j + (e/s)·‖x‖₁` w.p.
//!   `1 − e^{−d}`. The **conservative update** mode (CM-CU,
//!   Estan–Varghese) is the paper's improved baseline; it only tightens
//!   the upper bound but is not linear.
//! * [`CountMinLog`] — Count-Min-Log with conservative update (CML-CU,
//!   Pitel & Fouquier), log-scale probabilistic counters with the
//!   paper's base of 1.00025. **Space** `s·d/4` words (four 16-bit
//!   levels per word — why it gets 4× the buckets at equal space in
//!   §5.1); approximate counting, no deterministic bound; not linear.
//! * [`HeavyHitters`] — a sketch-plus-candidate-set tracker for the
//!   frequent-elements application the paper's introduction motivates.
//!   Inherits the wrapped sketch's space and error.
//! * [`RangeSumSketch`] — dyadic decomposition over `⌈log₂ n⌉ + 1`
//!   Count-Median levels answering range-sum queries, the intro's
//!   "range query" application. **Space** `O(s·d·log n)` words; each of
//!   the `O(log n)` dyadic point queries inherits Theorem 1's error.
//!
//! All sketches share the [`PointQuerySketch`] trait; the linear ones
//! also implement [`MergeableSketch`], which is what makes them usable in
//! the distributed model (sketch locally, add sketches at the
//! coordinator).
//!
//! ## Storage layer
//!
//! Every sketch stores its counters in one shared abstraction, the
//! [`CounterMatrix`], and takes its storage
//! backend as a type parameter (`CountSketch<B: CounterBackend = Dense>`):
//!
//! * [`storage::Dense`] (the default) — contiguous row-major cells,
//!   exclusive access, bit-for-bit the pre-storage-layer semantics and
//!   performance;
//! * [`storage::Atomic`] — one `AtomicU64` per counter; exclusive
//!   access costs the same, and the linear sketches additionally
//!   implement [`SharedSketch`]: lock-free `&self` ingest, so N
//!   threads can feed **one** shared sketch (see
//!   `bas_pipeline::ConcurrentIngest`) instead of N same-seed shards.
//!
//! The aliases [`AtomicCountMedian`], [`AtomicCountSketch`] and
//! [`AtomicCountMin`] name the shared-ingest configurations.
//!
//! ## Batched ingest
//!
//! Every sketch accepts batches through
//! [`PointQuerySketch::update_batch`]. The grid-backed sketches
//! override it with a **dispatch-hoisted** pass: all rows share one
//! hash family, so the batch path (`bas_hash::bucket_rows_each`)
//! downcasts the row hashers once per batch and runs the item×row
//! loop fully monomorphized, with no per-item enum dispatch. The
//! result is bit-for-bit equivalent to the one-by-one loop and
//! measurably faster (see the `throughput_ingest` bench, which also
//! records why a *whole-batch* row-major sweep was rejected —
//! re-streaming a multi-MiB batch once per row loses to one pass).
//! `bas-pipeline` builds on this to shard batches across threads and
//! merge by linearity.
//!
//! On one-hash rows (`bas_hash::HashKind::OneHash`) the linear grid
//! sketches go further: `update_batch` routes through the **blocked
//! row-major kernel** [`CounterMatrix::apply_rows`] — one `mix64`
//! digest per item yields all `d` bucket indices (and Count-Sketch
//! signs) by per-row multiply-shift re-keying, the whole block's
//! indices are precomputed, and the counter writes sweep row by row
//! within the block (L1-resident scratch, so none of the whole-batch
//! sweep's losses). Conservative-update Count-Min stays item-by-item:
//! each bump reads the pre-update minimum across all rows, a state
//! dependence no precomputed schedule can honor.
//!
//! ```
//! use bas_sketch::{CountSketch, PointQuerySketch, SketchParams};
//!
//! let params = SketchParams::new(1_000, 64, 5).with_seed(7);
//! let mut cs = CountSketch::new(&params);
//! cs.update(3, 10.0);
//! cs.update(3, 5.0);
//! cs.update(9, -2.0); // turnstile updates are fine
//! let est = cs.estimate(3);
//! assert!((est - 15.0).abs() < 1e-9 || est != 15.0); // estimate, not exact
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod count_median;
mod count_min;
mod count_min_log;
mod count_sketch;
mod heavy_hitters;
mod range_sum;
mod snapshot;
pub mod storage;
mod traits;
pub mod util;

pub use count_median::CountMedian;
pub use count_min::{CountMin, UpdatePolicy};
pub use count_min_log::CountMinLog;
pub use count_sketch::CountSketch;
pub use heavy_hitters::{HeavyHitter, HeavyHitters};
pub use range_sum::RangeSumSketch;
pub use snapshot::{AbsorbPlane, Snapshottable};
pub use storage::{
    Atomic, CellGrid, CellValue, CellWidth, CounterBackend, CounterMatrix, CounterValue, Dense,
    EpochCounter, PlaneBank, SealedPlane, SharedBackend,
};
pub use traits::{
    MergeError, MergeableSketch, PointQuerySketch, Reseedable, SharedSketch, SketchParams,
};

/// Count-Median over the [`Atomic`] backend: the lock-free
/// shared-ingest configuration (implements [`SharedSketch`]).
pub type AtomicCountMedian = CountMedian<Atomic>;

/// Count-Sketch over the [`Atomic`] backend: the lock-free
/// shared-ingest configuration (implements [`SharedSketch`]).
pub type AtomicCountSketch = CountSketch<Atomic>;

/// Count-Min over the [`Atomic`] backend; only
/// [`UpdatePolicy::Plain`] supports shared ingest.
pub type AtomicCountMin = CountMin<Atomic>;
