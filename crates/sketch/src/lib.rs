//! # bas-sketch — classical linear and non-linear sketch baselines
//!
//! The substrate under the bias-aware sketches and the comparison set for
//! every experiment in *Bias-Aware Sketches* (Chen & Zhang, VLDB 2017,
//! §5.1):
//!
//! * [`CountMedian`] — the CM-matrix sketch of Cormode & Muthukrishnan
//!   with median recovery (`ℓ∞/ℓ1` guarantee, Theorem 1). Linear; the
//!   building block of the paper's `ℓ1`-S/R and of the `ℓ2` bias
//!   estimator.
//! * [`CountSketch`] — Charikar–Chen–Farach-Colton with pairwise random
//!   signs (`ℓ∞/ℓ2` guarantee, Theorem 2). Linear; the recovery engine of
//!   `ℓ2`-S/R.
//! * [`CountMin`] — min-recovery sketch for non-negative vectors, with an
//!   optional **conservative update** mode (CM-CU, Estan–Varghese) that
//!   the paper uses as an improved baseline. Not linear in CU mode.
//! * [`CountMinLog`] — Count-Min-Log with conservative update (CML-CU,
//!   Pitel & Fouquier), log-scale probabilistic counters with the paper's
//!   base of 1.00025. Not linear.
//! * [`HeavyHitters`] — a sketch-plus-candidate-set tracker for the
//!   frequent-elements application the paper's introduction motivates.
//! * [`RangeSumSketch`] — dyadic decomposition over Count-Median levels
//!   answering range-sum queries, the intro's "range query" application.
//!
//! All sketches share the [`PointQuerySketch`] trait; the linear ones
//! also implement [`MergeableSketch`], which is what makes them usable in
//! the distributed model (sketch locally, add sketches at the
//! coordinator).
//!
//! ```
//! use bas_sketch::{CountSketch, PointQuerySketch, SketchParams};
//!
//! let params = SketchParams::new(1_000, 64, 5).with_seed(7);
//! let mut cs = CountSketch::new(&params);
//! cs.update(3, 10.0);
//! cs.update(3, 5.0);
//! cs.update(9, -2.0); // turnstile updates are fine
//! let est = cs.estimate(3);
//! assert!((est - 15.0).abs() < 1e-9 || est != 15.0); // estimate, not exact
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod count_median;
mod count_min;
mod count_min_log;
mod count_sketch;
mod heavy_hitters;
mod range_sum;
mod traits;
pub mod util;

pub use count_median::CountMedian;
pub use count_min::{CountMin, UpdatePolicy};
pub use count_min_log::CountMinLog;
pub use count_sketch::CountSketch;
pub use heavy_hitters::{HeavyHitter, HeavyHitters};
pub use range_sum::RangeSumSketch;
pub use traits::{MergeError, MergeableSketch, PointQuerySketch, SketchParams};
