//! Count-Median: CM-matrix sketching with median recovery.

use crate::snapshot::Snapshottable;
use crate::storage::{CellGrid, CounterBackend, CounterMatrix, Dense, SharedBackend};
use crate::traits::{
    MergeError, MergeableSketch, PointQuerySketch, Reseedable, SharedSketch, SketchParams,
};
use crate::util::median_of_rows;
use bas_hash::{AnyBucketHasher, BucketHasher, HashFamily, RowDeriver, SplitMix64};

/// The Count-Median sketch of Cormode & Muthukrishnan (paper, Theorem 1).
///
/// `d` independent CM-matrices `Π(h_1), …, Π(h_d)` (Definition 1) are
/// applied to the input vector; a point query returns the **median** of
/// the `d` bucket sums the item hashes into:
///
/// ```text
/// x̂_j = median_{i ∈ [d]} ( Π(h_i)·x )_{h_i(j)}
/// ```
///
/// With `s = Θ(k/α)` and `d = Θ(log n)` this guarantees
/// `‖x̂ − x‖∞ ≤ α/k · Err_1^k(x)` with probability `1 − 1/n`. It is fully
/// linear (supports turnstile updates and merging) — and it is the
/// component the bias-aware `ℓ1`-S/R de-biases.
///
/// Counters live in a [`CounterMatrix`] whose backend `B` is a type
/// parameter: the default [`Dense`] is the classical single-threaded
/// configuration, while `CountMedian<Atomic>` (alias
/// [`AtomicCountMedian`](crate::AtomicCountMedian)) additionally
/// implements [`SharedSketch`] for lock-free multi-threaded ingest into
/// one shared sketch.
///
/// ```
/// use bas_sketch::{CountMedian, PointQuerySketch, SketchParams};
///
/// let params = SketchParams::new(1_000, 128, 7).with_seed(42);
/// let mut cm = CountMedian::new(&params);
/// cm.update(17, 5.0);                          // single turnstile update
/// cm.update_batch(&[(17, 2.0), (900, -1.0)]);  // batched fast path
/// assert_eq!(cm.estimate(17), 7.0);            // sparse input: exact
/// assert_eq!(cm.estimate(900), -1.0);
/// ```
#[derive(Debug, Clone)]
pub struct CountMedian<B: CounterBackend = Dense> {
    params: SketchParams,
    grid: CellGrid<B>,
    hashers: Vec<AnyBucketHasher>,
}

#[cfg(feature = "serde")]
crate::impl_backend_serde!(CountMedian {
    params,
    grid,
    hashers
});

impl CountMedian {
    /// Creates an empty Count-Median sketch with the default [`Dense`]
    /// backend.
    pub fn new(params: &SketchParams) -> Self {
        Self::with_backend(params)
    }
}

impl<B: CounterBackend> CountMedian<B> {
    /// Creates an empty Count-Median sketch with an explicit counter
    /// backend (e.g. `CountMedian::<Atomic>::with_backend` for
    /// lock-free shared ingest).
    pub fn with_backend(params: &SketchParams) -> Self {
        let mut seeder = SplitMix64::new(params.seed ^ 0xC0DE_0001);
        let mut family = HashFamily::new(params.hash_kind, &mut seeder, params.width);
        let hashers = family.sample_many(params.depth);
        let width = family.buckets();
        let mut params = *params;
        params.width = width; // multiply-shift may round up
        Self {
            params,
            grid: CellGrid::new(width, params.depth, params.cell),
            hashers,
        }
    }

    /// The parameters the sketch was built with (width may have been
    /// rounded up by the hash family).
    pub fn params(&self) -> &SketchParams {
        &self.params
    }

    /// Raw bucket sum `(Π(h_row)·x)[bucket]` — exposed because the
    /// bias-aware recovery needs direct access to de-bias buckets.
    #[inline]
    pub fn bucket_value(&self, row: usize, bucket: usize) -> f64 {
        self.grid.get_f64(row, bucket)
    }

    /// The bucket the item hashes to in a given row.
    #[inline]
    pub fn bucket_of(&self, row: usize, item: u64) -> usize {
        self.hashers[row].bucket(item)
    }

    /// A dense copy of one row of bucket sums, read through the matrix
    /// API (backend-independent; the storage layout stays private).
    pub fn row_snapshot(&self, row: usize) -> Vec<f64> {
        self.grid.row_snapshot_f64(row)
    }

    /// Per-bucket column counts `π_i` of each CM-matrix: `π_i[b]` is the
    /// number of universe elements hashed to bucket `b` in row `i`
    /// (paper, Algorithm 2 line 2), returned as a `depth × width`
    /// [`CounterMatrix`]. Costs `O(n·d)`; the caller caches it.
    pub fn column_counts(&self) -> CounterMatrix<u64> {
        let mut pis = CounterMatrix::<u64>::new(self.params.width, self.params.depth);
        for j in 0..self.params.n {
            for (row, h) in self.hashers.iter().enumerate() {
                pis.add(row, h.bucket(j), 1);
            }
        }
        pis
    }
}

impl<B: CounterBackend> Reseedable for CountMedian<B> {
    fn config(&self) -> SketchParams {
        self.params
    }

    fn reseeded(&self, seed: u64) -> Self {
        Self::with_backend(&self.params.with_seed(seed))
    }
}

impl<B: CounterBackend> PointQuerySketch for CountMedian<B> {
    #[inline]
    fn update(&mut self, item: u64, delta: f64) {
        debug_assert!(item < self.params.n, "item outside universe");
        for (row, h) in self.hashers.iter().enumerate() {
            self.grid.add_f64(row, h.bucket(item), delta);
        }
    }

    /// Batched update. One-hash rows ([`bas_hash::HashKind::OneHash`])
    /// route through the blocked row-major kernel
    /// [`CellGrid::apply_rows_blocked_f64`]: one digest per item (SIMD
    /// batch lane when active), all `d` bucket indices derived up
    /// front, counter writes swept row by row per block. Every other
    /// family goes through [`bas_hash::bucket_rows_each`] — family
    /// dispatched once for the whole batch, inner item×row loop fully
    /// monomorphized. Both paths are bit-for-bit identical to the
    /// one-by-one loop (each cell receives the same increments in item
    /// order).
    fn update_batch(&mut self, items: &[(u64, f64)]) {
        #[cfg(debug_assertions)]
        for &(item, _) in items {
            debug_assert!(item < self.params.n, "item outside universe");
        }
        if let Some(rd) = RowDeriver::from_hashers(&self.hashers) {
            let derive = crate::util::onehash_block_derive(&rd, self.params.depth);
            self.grid.apply_rows_blocked_f64(items, derive);
            return;
        }
        let grid = &mut self.grid;
        bas_hash::bucket_rows_each(&self.hashers, items, |row, _, b, delta: f64| {
            grid.add_f64(row, b, delta);
        });
    }

    fn estimate(&self, item: u64) -> f64 {
        median_of_rows(self.params.depth, |row| {
            self.grid.get_f64(row, self.hashers[row].bucket(item))
        })
    }

    fn universe(&self) -> u64 {
        self.params.n
    }

    fn size_in_words(&self) -> usize {
        self.grid.len()
    }

    fn label(&self) -> &'static str {
        "CM"
    }
}

impl<B: SharedBackend> SharedSketch for CountMedian<B> {
    #[inline]
    fn update_shared(&self, item: u64, delta: f64) {
        debug_assert!(item < self.params.n, "item outside universe");
        for (row, h) in self.hashers.iter().enumerate() {
            self.grid.add_shared_f64(row, h.bucket(item), delta);
        }
    }

    /// Shared batched update through the coalescing kernel
    /// [`CellGrid::apply_rows_shared_f64`]: per block, duplicate hits
    /// on the same cell collapse into **one** atomic RMW (summed in
    /// item order — bit-for-bit with sequential ingest for integer
    /// deltas).
    fn update_batch_shared(&self, items: &[(u64, f64)]) {
        #[cfg(debug_assertions)]
        for &(item, _) in items {
            debug_assert!(item < self.params.n, "item outside universe");
        }
        if let Some(rd) = RowDeriver::from_hashers(&self.hashers) {
            let derive = crate::util::onehash_block_derive(&rd, self.params.depth);
            self.grid.apply_rows_shared_f64(items, derive);
            return;
        }
        let derive = crate::util::hashed_block_derive(&self.hashers);
        self.grid.apply_rows_shared_f64(items, derive);
    }
}

impl<B: CounterBackend> Snapshottable for CountMedian<B> {
    type Snapshot = CounterMatrix<f64, Dense>;

    fn make_snapshot(&self) -> Self::Snapshot {
        CounterMatrix::new(self.params.width, self.params.depth)
    }

    fn snapshot_into(&self, snap: &mut Self::Snapshot) {
        self.grid.snapshot_into_f64(snap);
    }

    fn estimate_in(&self, snap: &Self::Snapshot, item: u64) -> f64 {
        median_of_rows(self.params.depth, |row| {
            snap.get(row, self.hashers[row].bucket(item))
        })
    }

    /// Count-Median is linear, so snapshots add: always `Ok`.
    fn merge_snapshot(
        &self,
        snap: &mut Self::Snapshot,
        other: &Self::Snapshot,
    ) -> Result<(), MergeError> {
        snap.add_matrix(other);
        Ok(())
    }

    /// Linear, so snapshots subtract exactly: always `Ok`.
    fn subtract_snapshot(
        &self,
        snap: &mut Self::Snapshot,
        other: &Self::Snapshot,
    ) -> Result<(), MergeError> {
        snap.sub_matrix(other);
        Ok(())
    }
}

/// Count-Median is linear: a shipped plane adds straight into the
/// live grid, so a tenant rebuilt from seed + plane is bit-for-bit.
impl<B: SharedBackend> crate::snapshot::AbsorbPlane for CountMedian<B> {
    fn absorb_plane_shared(&self, plane: &Self::Snapshot) -> Result<(), MergeError> {
        self.grid.add_plane_shared(plane);
        Ok(())
    }
}

impl<B: CounterBackend> CountMedian<B> {
    fn check_compatible(&self, other: &Self) -> Result<(), MergeError> {
        if self.params.width != other.params.width || self.params.depth != other.params.depth {
            return Err(MergeError::ShapeMismatch {
                what: "widths/depths",
            });
        }
        if self.params.n != other.params.n {
            return Err(MergeError::ShapeMismatch { what: "universes" });
        }
        if self.params.cell != other.params.cell {
            return Err(MergeError::ShapeMismatch {
                what: "cell widths",
            });
        }
        if self.params.seed != other.params.seed || self.params.hash_kind != other.params.hash_kind
        {
            return Err(MergeError::SeedMismatch);
        }
        Ok(())
    }
}

impl<B: CounterBackend> MergeableSketch for CountMedian<B> {
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        self.check_compatible(other)?;
        self.grid.add_grid(&other.grid);
        Ok(())
    }

    /// Exact counter subtraction (Count-Median is linear).
    fn subtract_from(&mut self, other: &Self) -> Result<(), MergeError> {
        self.check_compatible(other)?;
        self.grid.sub_grid(&other.grid);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Atomic;

    fn params(n: u64, w: usize, d: usize) -> SketchParams {
        SketchParams::new(n, w, d).with_seed(42)
    }

    #[test]
    fn exact_on_sparse_vectors() {
        // A 1-sparse vector collides with nothing: recovery is exact up
        // to hash collisions, which the median across rows suppresses.
        let p = params(1000, 256, 7);
        let mut cm = CountMedian::new(&p);
        cm.update(17, 5.0);
        assert_eq!(cm.estimate(17), 5.0);
        // Untouched items should estimate ~0 (possibly exactly 0).
        let zero_est = cm.estimate(900);
        assert!(zero_est.abs() <= 5.0);
    }

    #[test]
    fn turnstile_updates_cancel() {
        let p = params(100, 64, 5);
        let mut cm = CountMedian::new(&p);
        cm.update(3, 10.0);
        cm.update(3, -10.0);
        for j in 0..100 {
            assert_eq!(cm.estimate(j), 0.0, "item {j}");
        }
    }

    #[test]
    fn error_bounded_by_theorem_1_shape() {
        // x has k=2 heavy entries and small tail; Count-Median error
        // should be O(Err_1^k / k), far below the heavy values.
        let n = 2000u64;
        let p = params(n, 200, 9);
        let mut cm = CountMedian::new(&p);
        let mut x = vec![0.0f64; n as usize];
        x[10] = 1000.0;
        x[20] = -800.0;
        for (i, v) in x.iter_mut().enumerate() {
            if i != 10 && i != 20 {
                *v = if i % 3 == 0 { 1.0 } else { 0.0 };
            }
        }
        cm.ingest_vector(&x);
        let tail: f64 = x
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 10 && *i != 20)
            .map(|(_, v)| v.abs())
            .sum();
        // Generous bound: per-item error below tail/ (width/..) scale.
        for j in [10u64, 20, 30, 999] {
            let err = (cm.estimate(j) - x[j as usize]).abs();
            assert!(err <= tail * 10.0 / 200.0, "item {j}: err {err}");
        }
    }

    #[test]
    fn merge_equals_combined_stream() {
        let p = params(500, 64, 5);
        let mut a = CountMedian::new(&p);
        let mut b = CountMedian::new(&p);
        let mut combined = CountMedian::new(&p);
        for i in 0..250u64 {
            a.update(i, i as f64);
            combined.update(i, i as f64);
        }
        for i in 250..500u64 {
            b.update(i, 2.0 * i as f64);
            combined.update(i, 2.0 * i as f64);
        }
        a.merge_from(&b).unwrap();
        for j in (0..500u64).step_by(17) {
            assert_eq!(a.estimate(j), combined.estimate(j), "item {j}");
        }
    }

    #[test]
    fn update_batch_matches_one_by_one_exactly() {
        let p = params(400, 32, 5);
        let mut batched = CountMedian::new(&p);
        let mut looped = CountMedian::new(&p);
        let items: Vec<(u64, f64)> = (0..500u64)
            .map(|i| (i * 7 % 400, ((i % 13) as f64 - 6.0) * 0.25))
            .collect();
        batched.update_batch(&items);
        for &(i, d) in &items {
            looped.update(i, d);
        }
        for j in 0..400u64 {
            assert_eq!(batched.estimate(j), looped.estimate(j), "item {j}");
        }
    }

    #[test]
    fn atomic_backend_matches_dense_bit_for_bit() {
        // Same seed, same updates, exclusive access: the storage
        // backend must be unobservable.
        let p = params(300, 32, 5);
        let mut dense = CountMedian::new(&p);
        let mut atomic = CountMedian::<Atomic>::with_backend(&p);
        let items: Vec<(u64, f64)> = (0..400u64)
            .map(|i| (i * 11 % 300, ((i % 9) as f64 - 4.0) * 0.5))
            .collect();
        dense.update_batch(&items);
        atomic.update_batch(&items);
        for j in 0..300u64 {
            assert_eq!(dense.estimate(j), atomic.estimate(j), "item {j}");
        }
    }

    #[test]
    fn shared_updates_match_exclusive_updates() {
        let p = params(200, 32, 5);
        let mut exclusive = CountMedian::<Atomic>::with_backend(&p);
        let shared = CountMedian::<Atomic>::with_backend(&p);
        let items: Vec<(u64, f64)> = (0..300u64).map(|i| (i % 200, (1 + i % 5) as f64)).collect();
        for &(i, d) in &items {
            exclusive.update(i, d);
            shared.update_shared(i, d);
        }
        let batch_shared = CountMedian::<Atomic>::with_backend(&p);
        batch_shared.update_batch_shared(&items);
        for j in 0..200u64 {
            assert_eq!(exclusive.estimate(j), shared.estimate(j), "item {j}");
            assert_eq!(exclusive.estimate(j), batch_shared.estimate(j), "item {j}");
        }
    }

    #[test]
    fn snapshot_estimates_match_live_when_quiescent() {
        let p = params(300, 32, 5);
        let mut cm = CountMedian::new(&p);
        let items: Vec<(u64, f64)> = (0..400u64)
            .map(|i| (i * 13 % 300, (i % 7) as f64))
            .collect();
        cm.update_batch(&items);
        let snap = cm.snapshot();
        for j in 0..300u64 {
            assert_eq!(cm.estimate_in(&snap, j), cm.estimate(j), "item {j}");
        }
        // The snapshot is frozen: further updates do not affect it.
        let before = cm.estimate_in(&snap, 3);
        cm.update(3, 50.0);
        assert_eq!(cm.estimate_in(&snap, 3), before);
    }

    #[test]
    fn merged_snapshots_equal_snapshot_of_merged_sketch() {
        let p = params(200, 32, 5);
        let mut a = CountMedian::new(&p);
        let mut b = CountMedian::new(&p);
        for i in 0..200u64 {
            a.update(i, (i % 5) as f64);
            b.update(i, (i % 3) as f64);
        }
        let mut snap = a.snapshot();
        a.merge_snapshot(&mut snap, &b.snapshot()).unwrap();
        a.merge_from(&b).unwrap();
        for j in (0..200u64).step_by(11) {
            assert_eq!(a.estimate_in(&snap, j), a.estimate(j), "item {j}");
        }
    }

    #[test]
    fn merge_rejects_mismatched_seed() {
        let mut a = CountMedian::new(&params(10, 8, 2));
        let b = CountMedian::new(&SketchParams::new(10, 8, 2).with_seed(43));
        assert_eq!(a.merge_from(&b), Err(MergeError::SeedMismatch));
    }

    #[test]
    fn merge_rejects_mismatched_shape() {
        let mut a = CountMedian::new(&params(10, 8, 2));
        let b = CountMedian::new(&params(10, 16, 2));
        assert!(matches!(
            a.merge_from(&b),
            Err(MergeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn column_counts_sum_to_n() {
        let p = params(300, 32, 4);
        let cm = CountMedian::new(&p);
        let pis = cm.column_counts();
        assert_eq!(pis.depth(), 4);
        for row in 0..4 {
            assert_eq!(pis.row_snapshot(row).iter().sum::<u64>(), 300);
        }
    }

    #[test]
    fn bucket_value_consistent_with_update() {
        let p = params(50, 16, 3);
        let mut cm = CountMedian::new(&p);
        cm.update(7, 4.0);
        for row in 0..3 {
            let b = cm.bucket_of(row, 7);
            assert_eq!(cm.bucket_value(row, b), 4.0);
            assert_eq!(cm.row_snapshot(row)[b], 4.0);
        }
    }

    #[test]
    fn size_in_words_is_grid_size() {
        let cm = CountMedian::new(&params(100, 32, 6));
        assert_eq!(cm.size_in_words(), 32 * 6);
        assert_eq!(cm.label(), "CM");
        assert_eq!(cm.universe(), 100);
    }
}
