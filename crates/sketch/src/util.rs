//! Small helpers shared by the sketches: medians over rows, and the
//! block-derive closures the grid sketches hand to the blocked/shared
//! batch kernels.
//!
//! (Counter storage lives in [`crate::storage`]; this module keeps the
//! pure numeric routines and the kernel glue.)

use bas_hash::{AnyBucketHasher, BucketHasher, RowDeriver};

/// Builds a block-derive closure for the blocked batch kernels
/// ([`crate::CellGrid::apply_rows_blocked_f64`] /
/// [`crate::CellGrid::apply_rows_shared_f64`]) over **one-hash** rows,
/// broadcasting each item's delta to every row (the unsigned sketches:
/// Count-Median, plain Count-Min).
///
/// Kernel contract: for a block of `n` items the closure fills
/// `cols[row·n + i]` / `vals[row·n + i]`, deriving through the
/// SIMD-dispatched batch helpers of [`RowDeriver`] — one `mix64`
/// digest per item, one multiply-shift lane sweep per row.
pub(crate) fn onehash_block_derive(
    rd: &RowDeriver,
    depth: usize,
) -> impl FnMut(&[(u64, f64)], &mut [usize], &mut [f64]) + '_ {
    let mut keys: Vec<u64> = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    move |block, cols, vals| {
        let n = block.len();
        keys.clear();
        keys.extend(block.iter().map(|&(x, _)| x));
        digests.resize(n, 0);
        rd.digests_into(&keys, &mut digests);
        for row in 0..depth {
            rd.buckets_of_digests(row, &digests, &mut cols[row * n..(row + 1) * n]);
        }
        for (slot, &(_, delta)) in vals[..n].iter_mut().zip(block) {
            *slot = delta;
        }
        let (first, rest) = vals.split_at_mut(n);
        for lane in rest.chunks_exact_mut(n) {
            lane.copy_from_slice(first);
        }
    }
}

/// One-hash block-derive with **signs**: the Count-Sketch variant of
/// [`onehash_block_derive`], filling `vals[row·n + i]` with
/// `σ_row(x_i)·δ_i` through the sign-bit XOR lane
/// ([`RowDeriver::signed_deltas_of_digests`]).
pub(crate) fn onehash_signed_block_derive(
    rd: &RowDeriver,
    depth: usize,
) -> impl FnMut(&[(u64, f64)], &mut [usize], &mut [f64]) + '_ {
    let mut keys: Vec<u64> = Vec::new();
    let mut deltas: Vec<f64> = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    move |block, cols, vals| {
        let n = block.len();
        keys.clear();
        deltas.clear();
        for &(x, d) in block {
            keys.push(x);
            deltas.push(d);
        }
        digests.resize(n, 0);
        rd.digests_into(&keys, &mut digests);
        for row in 0..depth {
            rd.buckets_of_digests(row, &digests, &mut cols[row * n..(row + 1) * n]);
            rd.signed_deltas_of_digests(row, &digests, &deltas, &mut vals[row * n..(row + 1) * n]);
        }
    }
}

/// Block-derive over arbitrary row hashers (the classical families,
/// which have no shared digest): per-item dynamic dispatch fills the
/// row-major scratch so even non-one-hash sketches ride the shared
/// coalescing kernel.
pub(crate) fn hashed_block_derive(
    hashers: &[AnyBucketHasher],
) -> impl FnMut(&[(u64, f64)], &mut [usize], &mut [f64]) + '_ {
    move |block, cols, vals| {
        let n = block.len();
        for (i, &(x, delta)) in block.iter().enumerate() {
            for (row, h) in hashers.iter().enumerate() {
                cols[row * n + i] = h.bucket(x);
                vals[row * n + i] = delta;
            }
        }
    }
}

/// Returns the median of a slice, averaging the two central elements for
/// even lengths — the `median(x)` of the paper's notation table.
///
/// The slice is reordered in place (selection, not full sort), so the
/// caller passes a scratch buffer it owns.
///
/// # Panics
/// Panics on an empty slice.
pub fn median_in_place(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let n = values.len();
    let mid = n / 2;
    let (_, m, _) = values.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    let upper = *m;
    if n % 2 == 1 {
        upper
    } else {
        // Lower middle = max of the left partition after selection.
        let lower = values[..mid]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        0.5 * (lower + upper)
    }
}

/// Median of a borrowed slice, copying into a scratch `Vec`.
pub fn median(values: &[f64]) -> f64 {
    let mut buf = values.to_vec();
    median_in_place(&mut buf)
}

/// Depths at or below this bound keep the scratch buffer of
/// [`median_of_rows`] on the stack. Every practical configuration
/// qualifies — the paper's experiments use `d ≤ 10`.
pub const MEDIAN_SCRATCH_DEPTH: usize = 64;

/// Computes `median_{row < depth} value_of_row(row)` — the recovery
/// step shared by every median-recovery estimate path — **without a
/// per-query heap allocation** for `depth ≤ `[`MEDIAN_SCRATCH_DEPTH`].
///
/// Rows are evaluated in order (`0, 1, …, depth-1`), so replacing a
/// collect-into-`Vec` loop with this helper is bit-for-bit neutral; it
/// only moves the scratch buffer from the heap to the stack.
///
/// # Panics
/// Panics if `depth` is zero.
///
/// ```
/// use bas_sketch::util::median_of_rows;
///
/// let rows = [5.0, 1.0, 3.0];
/// assert_eq!(median_of_rows(rows.len(), |r| rows[r]), 3.0);
/// ```
#[inline]
pub fn median_of_rows<F: FnMut(usize) -> f64>(depth: usize, mut value_of_row: F) -> f64 {
    assert!(depth > 0, "median of empty slice");
    if depth <= MEDIAN_SCRATCH_DEPTH {
        let mut scratch = [0.0f64; MEDIAN_SCRATCH_DEPTH];
        for (row, slot) in scratch[..depth].iter_mut().enumerate() {
            *slot = value_of_row(row);
        }
        median_in_place(&mut scratch[..depth])
    } else {
        let mut scratch: Vec<f64> = (0..depth).map(value_of_row).collect();
        median_in_place(&mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd() {
        let mut v = vec![5.0, 1.0, 3.0];
        assert_eq!(median_in_place(&mut v), 3.0);
    }

    #[test]
    fn median_even_averages_middle_two() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(median_in_place(&mut v), 2.5);
    }

    #[test]
    fn median_single() {
        assert_eq!(median(&[42.0]), 42.0);
    }

    #[test]
    fn median_with_duplicates() {
        assert_eq!(median(&[2.0, 2.0, 2.0, 9.0, 1.0]), 2.0);
    }

    #[test]
    fn median_negative_values() {
        assert_eq!(median(&[-5.0, -1.0, -3.0]), -3.0);
        assert_eq!(median(&[-4.0, -2.0, 2.0, 4.0]), 0.0);
    }

    #[test]
    fn median_matches_sort_based_reference() {
        // Cross-check the selection-based implementation on many sizes.
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for len in 1..40usize {
            let v: Vec<f64> = (0..len).map(|_| next()).collect();
            let mut sorted = v.clone();
            sorted.sort_by(f64::total_cmp);
            let expect = if len % 2 == 1 {
                sorted[len / 2]
            } else {
                0.5 * (sorted[len / 2 - 1] + sorted[len / 2])
            };
            assert!((median(&v) - expect).abs() < 1e-12, "len = {len}");
        }
    }

    #[test]
    #[should_panic(expected = "median of empty slice")]
    fn median_empty_panics() {
        median_in_place(&mut []);
    }

    #[test]
    fn median_of_rows_matches_vec_path() {
        // Stack path (small depth) and heap path (depth > bound) must
        // agree with the plain median of the same values.
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for depth in [
            1usize,
            2,
            9,
            MEDIAN_SCRATCH_DEPTH,
            MEDIAN_SCRATCH_DEPTH + 1,
            200,
        ] {
            let vals: Vec<f64> = (0..depth).map(|_| next()).collect();
            assert_eq!(
                median_of_rows(depth, |r| vals[r]),
                median(&vals),
                "depth {depth}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "median of empty slice")]
    fn median_of_rows_empty_panics() {
        median_of_rows(0, |_| 0.0);
    }
}
