//! Small numeric helpers shared by the sketches: medians and counter
//! grids.

/// Returns the median of a slice, averaging the two central elements for
/// even lengths — the `median(x)` of the paper's notation table.
///
/// The slice is reordered in place (selection, not full sort), so the
/// caller passes a scratch buffer it owns.
///
/// # Panics
/// Panics on an empty slice.
pub fn median_in_place(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let n = values.len();
    let mid = n / 2;
    let (_, m, _) = values.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    let upper = *m;
    if n % 2 == 1 {
        upper
    } else {
        // Lower middle = max of the left partition after selection.
        let lower = values[..mid]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        0.5 * (lower + upper)
    }
}

/// Median of a borrowed slice, copying into a scratch `Vec`.
pub fn median(values: &[f64]) -> f64 {
    let mut buf = values.to_vec();
    median_in_place(&mut buf)
}

/// A dense `depth × width` grid of `f64` counters stored row-major.
///
/// All linear sketches are a counter grid plus hash functions; keeping
/// the storage in one flat allocation keeps updates cache-friendly and
/// makes merging a single vectorizable loop.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct CounterGrid {
    cells: Vec<f64>,
    width: usize,
    depth: usize,
}

impl CounterGrid {
    /// Creates a zeroed grid.
    pub fn new(width: usize, depth: usize) -> Self {
        Self {
            cells: vec![0.0; width * depth],
            width,
            depth,
        }
    }

    /// Grid width (buckets per row).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid depth (number of rows).
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Immutable access to a cell.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.depth && col < self.width);
        self.cells[row * self.width + col]
    }

    /// Adds `delta` to a cell.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, delta: f64) {
        debug_assert!(row < self.depth && col < self.width);
        self.cells[row * self.width + col] += delta;
    }

    /// Overwrites a cell (used by conservative update).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.depth && col < self.width);
        self.cells[row * self.width + col] = value;
    }

    /// A full row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.cells[row * self.width..(row + 1) * self.width]
    }

    /// A full row as a mutable slice, for callers that sweep one row
    /// at a time (e.g. per-row batch passes over grids too large to
    /// stay cache-resident).
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        &mut self.cells[row * self.width..(row + 1) * self.width]
    }

    /// Element-wise addition of another grid of identical shape.
    pub fn add_grid(&mut self, other: &CounterGrid) {
        assert_eq!(self.width, other.width);
        assert_eq!(self.depth, other.depth);
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            *a += *b;
        }
    }

    /// Number of counter cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid has no cells (never true for valid params).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd() {
        let mut v = vec![5.0, 1.0, 3.0];
        assert_eq!(median_in_place(&mut v), 3.0);
    }

    #[test]
    fn median_even_averages_middle_two() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(median_in_place(&mut v), 2.5);
    }

    #[test]
    fn median_single() {
        assert_eq!(median(&[42.0]), 42.0);
    }

    #[test]
    fn median_with_duplicates() {
        assert_eq!(median(&[2.0, 2.0, 2.0, 9.0, 1.0]), 2.0);
    }

    #[test]
    fn median_negative_values() {
        assert_eq!(median(&[-5.0, -1.0, -3.0]), -3.0);
        assert_eq!(median(&[-4.0, -2.0, 2.0, 4.0]), 0.0);
    }

    #[test]
    fn median_matches_sort_based_reference() {
        // Cross-check the selection-based implementation on many sizes.
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for len in 1..40usize {
            let v: Vec<f64> = (0..len).map(|_| next()).collect();
            let mut sorted = v.clone();
            sorted.sort_by(f64::total_cmp);
            let expect = if len % 2 == 1 {
                sorted[len / 2]
            } else {
                0.5 * (sorted[len / 2 - 1] + sorted[len / 2])
            };
            assert!((median(&v) - expect).abs() < 1e-12, "len = {len}");
        }
    }

    #[test]
    #[should_panic(expected = "median of empty slice")]
    fn median_empty_panics() {
        median_in_place(&mut []);
    }

    #[test]
    fn grid_accessors() {
        let mut g = CounterGrid::new(4, 2);
        assert_eq!(g.len(), 8);
        assert!(!g.is_empty());
        g.add(1, 3, 2.5);
        g.add(1, 3, 0.5);
        assert_eq!(g.get(1, 3), 3.0);
        g.set(0, 0, -1.0);
        assert_eq!(g.row(0), &[-1.0, 0.0, 0.0, 0.0]);
        assert_eq!(g.row(1), &[0.0, 0.0, 0.0, 3.0]);
        g.row_mut(0)[2] = 7.0;
        assert_eq!(g.get(0, 2), 7.0);
    }

    #[test]
    fn grid_addition_is_elementwise() {
        let mut a = CounterGrid::new(3, 2);
        let mut b = CounterGrid::new(3, 2);
        a.add(0, 1, 1.0);
        b.add(0, 1, 2.0);
        b.add(1, 2, 5.0);
        a.add_grid(&b);
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.get(1, 2), 5.0);
    }

    #[test]
    #[should_panic]
    fn grid_addition_shape_mismatch_panics() {
        let mut a = CounterGrid::new(3, 2);
        let b = CounterGrid::new(2, 3);
        a.add_grid(&b);
    }
}
