//! The counter-storage layer: one `depth × width` matrix abstraction
//! under every sketch in the workspace.
//!
//! Every sketch here — the classical baselines and the paper's
//! bias-aware S/R variants alike — is "`d` rows × `s` buckets of
//! counters" plus hash functions. This module owns that counter plane
//! once, as [`CounterMatrix`], so cross-cutting concerns (batching,
//! merging, serialization, concurrent ingest) are implemented one time
//! instead of once per sketch.
//!
//! Two backends ship today, selected at the type level through
//! [`CounterBackend`]:
//!
//! * [`Dense`] — a plain contiguous row-major `Box<[T]>`. Exclusive
//!   (`&mut`) access, zero abstraction cost: every operation inlines to
//!   the same slice arithmetic the sketches used before this layer
//!   existed, so single-threaded throughput is unchanged.
//! * [`Atomic`] — one `AtomicU64` per counter holding the value's bit
//!   pattern. Exclusive access behaves exactly like `Dense` (plain
//!   loads/stores through `get_mut`, no bus locking); *shared* (`&self`)
//!   access additionally supports lock-free accumulation via
//!   [`SharedCounterStore::add_shared`] — a `fetch_add` for integer
//!   counters, a CAS loop over bit-cast floats for `f64`. This is what
//!   lets N ingest threads feed **one** sketch (1× memory) instead of N
//!   same-seed shards (N× memory); see `bas_pipeline::ConcurrentIngest`.
//!
//! The backend is a type parameter of every sketch
//! (e.g. `CountSketch<B: CounterBackend = Dense>`), so the choice is
//! made at construction time and the compiler monomorphizes the hot
//! paths for each storage strategy. Future backends (compact/quantized
//! counters, NUMA-aware placement) plug in by implementing
//! [`CounterBackend`] + [`CounterStore`].
//!
//! ## Exactness of shared accumulation
//!
//! `add_shared` applies updates atomically but in nondeterministic
//! order. For **integer-valued** `f64` deltas (the paper's arrival
//! model) every intermediate sum below `2^53` is exact, and exact
//! addition is commutative and associative — so concurrent ingest is
//! bit-for-bit equal to any sequential order. For general real deltas
//! the result can differ in the last ulp per counter (the same caveat
//! `ShardedIngest` documents for shard merging). The property tests in
//! `tests/concurrent_ingest.rs` pin down both regimes.

use std::sync::atomic::{AtomicU64, Ordering};

/// A seqlock-style write-epoch sequence published by shared sketches to
/// snapshot readers.
///
/// Writers bracket each batch of counter mutations (e.g. one
/// `ConcurrentIngest` flush) with [`begin_write`]/[`end_write`]; the
/// sequence is **odd exactly while a write section is open** and even
/// between sections. A reader copies the counters and keeps the copy
/// only if the epoch was even and unchanged across the copy — then the
/// copy reflects a settled state from *between* write sections, i.e. a
/// prefix of the applied update stream. The retry loop lives in
/// `bas_pipeline::epoch`; this type is just the fence-free primitive
/// the storage layer owns.
///
/// Because every counter cell is itself an atomic, a racing copy can
/// never observe a torn *value* — the epoch only rules out a torn
/// *schedule* (a mix of two write sections).
///
/// ```
/// use bas_sketch::storage::EpochCounter;
///
/// let epoch = EpochCounter::new();
/// let before = epoch.read();
/// assert!(!EpochCounter::is_write_open(before));
/// epoch.begin_write();
/// assert!(EpochCounter::is_write_open(epoch.read()));
/// epoch.end_write();
/// assert_eq!(epoch.read(), before + 2);
/// ```
///
/// [`begin_write`]: EpochCounter::begin_write
/// [`end_write`]: EpochCounter::end_write
#[derive(Debug, Default)]
pub struct EpochCounter {
    seq: AtomicU64,
}

impl EpochCounter {
    /// A fresh counter at epoch 0 (no write section open).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a write section: the sequence becomes odd. Returns the new
    /// (odd) value. Callers must pair this with
    /// [`end_write`](EpochCounter::end_write); `bas_pipeline`'s
    /// `EpochGuard` does so by RAII.
    ///
    /// # Panics
    /// Panics if a write section is already open. Writers must be
    /// serialized (ingest drivers take `&mut self` per flush, so this
    /// only trips when two drivers are mistakenly built over clones of
    /// one shared sketch) — and overlapping sections would make the
    /// sequence even *mid-write*, silently handing readers torn
    /// snapshots, so the overlap is a hard error even in release
    /// builds.
    pub fn begin_write(&self) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel) + 1;
        assert!(
            Self::is_write_open(seq),
            "overlapping write sections: epoch writers must be serialized"
        );
        seq
    }

    /// Closes the current write section: the sequence becomes even
    /// again. The `AcqRel` ordering makes every counter store in the
    /// section visible to a reader that observes the new epoch.
    pub fn end_write(&self) {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel) + 1;
        debug_assert!(!Self::is_write_open(seq), "unbalanced end_write");
    }

    /// The current sequence value (`Acquire`, so cell reads issued
    /// after it observe at least the state the epoch advertises).
    pub fn read(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Whether a sequence value was sampled inside a write section.
    pub fn is_write_open(seq: u64) -> bool {
        seq % 2 == 1
    }
}

/// A primitive that can live in a counter cell: copyable, zeroable,
/// addable, and bit-castable to `u64` for the atomic backend.
pub trait CounterValue:
    Copy + Default + PartialEq + Send + Sync + std::fmt::Debug + 'static
{
    /// The additive identity (fresh matrices are zero-filled).
    const ZERO: Self;

    /// Counter addition: `+` for floats, wrapping for integers (a
    /// counter that wraps was mis-sized; wrapping keeps the operation
    /// total and branch-free).
    fn add(self, rhs: Self) -> Self;

    /// Counter subtraction — the inverse of
    /// [`add`](CounterValue::add): `-` for floats, wrapping for
    /// integers. This is what makes window arithmetic possible: for
    /// linear sketches, the counters of a time window are the
    /// cumulative counters *now* minus the cumulative counters at the
    /// window's start boundary.
    fn sub(self, rhs: Self) -> Self;

    /// Counter multiplication (`*` for floats, wrapping for integers) —
    /// used by dot-product queries such as
    /// [`CounterMatrix::row_dot`].
    fn mul(self, rhs: Self) -> Self;

    /// The value's bit pattern, as stored by the atomic backend.
    fn to_bits(self) -> u64;

    /// Inverse of [`to_bits`](CounterValue::to_bits).
    fn from_bits(bits: u64) -> Self;

    /// Lock-free `*cell += delta` on a cell holding `to_bits` patterns.
    ///
    /// The default is a compare-exchange loop (required for floats,
    /// whose addition has no single-instruction atomic form); integer
    /// implementations override it with a plain `fetch_add`.
    #[inline]
    fn atomic_add(cell: &AtomicU64, delta: Self) {
        let mut current = cell.load(Ordering::Relaxed);
        loop {
            let next = Self::from_bits(current).add(delta).to_bits();
            match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }
}

impl CounterValue for f64 {
    const ZERO: Self = 0.0;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }

    #[inline]
    fn to_bits(self) -> u64 {
        f64::to_bits(self)
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl CounterValue for i64 {
    const ZERO: Self = 0;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.wrapping_mul(rhs)
    }

    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as i64
    }

    /// Two's-complement wrapping addition is the same bit operation as
    /// unsigned wrapping addition, so a single `fetch_add` suffices.
    #[inline]
    fn atomic_add(cell: &AtomicU64, delta: Self) {
        cell.fetch_add(delta as u64, Ordering::Relaxed);
    }
}

impl CounterValue for u64 {
    const ZERO: Self = 0;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.wrapping_mul(rhs)
    }

    #[inline]
    fn to_bits(self) -> u64 {
        self
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits
    }

    #[inline]
    fn atomic_add(cell: &AtomicU64, delta: Self) {
        cell.fetch_add(delta, Ordering::Relaxed);
    }
}

impl CounterValue for u16 {
    const ZERO: Self = 0;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.wrapping_mul(rhs)
    }

    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as u16
    }
    // No fetch_add override: a u64 fetch_add would carry past bit 15
    // instead of wrapping at u16 range, so the CAS default stays.
}

/// Compact cell mode for integer-delta workloads: half the bytes of
/// `f64`/`u64` cells, so twice the sketch width stays cache-resident —
/// the batch kernels' row sweeps touch half the lines per block.
impl CounterValue for u32 {
    const ZERO: Self = 0;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.wrapping_mul(rhs)
    }

    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as u32
    }
    // No fetch_add override: a u64 fetch_add would carry past bit 31
    // instead of wrapping at u32 range, so the CAS default stays.
}

/// A [`CounterValue`] that can act as a sketch grid cell: convertible
/// to and from the `f64` update/estimate domain every sketch speaks.
///
/// Integer cells model a **two's-complement accumulator**: an f64 delta
/// is truncated (`as`-cast, saturating at the `i64` domain bounds) and
/// added with wrapping arithmetic; reads reinterpret the stored bits as
/// a signed value of the cell's width. Cancellation therefore works
/// exactly like a signed counter of that width — Count-Sketch's `±1`
/// signs and window subtraction land on the same residues the full
/// `f64` grid would produce, as long as no intermediate per-cell sum
/// overflows the width. A cell that does overflow wraps silently: the
/// cell was mis-sized for the stream, and the (bound, δ) conformance
/// suites pin how much headroom each width actually buys.
pub trait CellValue: CounterValue {
    /// Truncates an `f64` delta into the cell domain.
    fn cell_from_f64(v: f64) -> Self;

    /// Reads the cell back into the `f64` estimate domain (signed
    /// reinterpretation for integer cells).
    fn cell_to_f64(self) -> f64;
}

impl CellValue for f64 {
    #[inline]
    fn cell_from_f64(v: f64) -> Self {
        v
    }

    #[inline]
    fn cell_to_f64(self) -> f64 {
        self
    }
}

impl CellValue for i64 {
    #[inline]
    fn cell_from_f64(v: f64) -> Self {
        v as i64
    }

    #[inline]
    fn cell_to_f64(self) -> f64 {
        self as f64
    }
}

impl CellValue for u64 {
    #[inline]
    fn cell_from_f64(v: f64) -> Self {
        (v as i64) as u64
    }

    #[inline]
    fn cell_to_f64(self) -> f64 {
        (self as i64) as f64
    }
}

impl CellValue for u32 {
    #[inline]
    fn cell_from_f64(v: f64) -> Self {
        (v as i64) as u32
    }

    #[inline]
    fn cell_to_f64(self) -> f64 {
        (self as i32) as f64
    }
}

impl CellValue for u16 {
    #[inline]
    fn cell_from_f64(v: f64) -> Self {
        (v as i64) as u16
    }

    #[inline]
    fn cell_to_f64(self) -> f64 {
        (self as i16) as f64
    }
}

/// Counter cell width selection for a sketch grid — the
/// [`SketchParams`](crate::SketchParams) knob behind [`CellGrid`].
///
/// The default `F64` is the classical configuration (exact for every
/// workload whose per-cell sums stay below `2^53`, including fractional
/// deltas). The integer widths trade delta generality for density:
/// `U32`/`U16` cells hold a two's-complement accumulator of that width,
/// so twice/four times the sketch width stays cache-resident — at the
/// cost of truncating fractional deltas and wrapping on per-cell
/// overflow.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CellWidth {
    /// 8-byte IEEE double — the default and the only width accepting
    /// fractional deltas exactly.
    #[default]
    F64,
    /// 8-byte signed integer accumulator (wrapping).
    I64,
    /// 8-byte unsigned storage of a 64-bit two's-complement accumulator.
    U64,
    /// 4-byte two's-complement accumulator: half the bytes of `F64`.
    U32,
    /// 2-byte two's-complement accumulator: a quarter of the bytes.
    U16,
}

impl CellWidth {
    /// Short human label used in diagnostics and snapshots.
    pub fn label(self) -> &'static str {
        match self {
            CellWidth::F64 => "f64",
            CellWidth::I64 => "i64",
            CellWidth::U64 => "u64",
            CellWidth::U32 => "u32",
            CellWidth::U16 => "u16",
        }
    }

    /// Bytes one cell occupies under the [`Dense`] backend (the
    /// [`Atomic`] backend always spends a full 8-byte word per cell).
    pub fn bytes(self) -> usize {
        match self {
            CellWidth::F64 | CellWidth::I64 | CellWidth::U64 => 8,
            CellWidth::U32 => 4,
            CellWidth::U16 => 2,
        }
    }
}

/// Items per block of [`CounterMatrix::apply_rows`]: large enough to
/// amortize the per-block row loop, small enough that the index +
/// increment scratch (`2 · APPLY_BLOCK · depth` words) stays
/// L1-resident at production depths.
pub const APPLY_BLOCK: usize = 256;

/// Lookahead distance (in items) of the row sweep's speculative read —
/// the safe-Rust stand-in for a prefetch instruction.
pub const APPLY_PREFETCH: usize = 8;

/// Grid size (bytes) above which the row sweep prefetches; below it
/// the grid is cache-resident and speculative reads are pure overhead.
const APPLY_PREFETCH_MIN_BYTES: usize = 2 << 20;

/// Flat storage for a run of counters, behind exclusive access.
///
/// Implementations index a logical `[T; len]`; [`CounterMatrix`] maps
/// `(row, col)` onto it row-major. `Clone`/`Debug` are required so the
/// sketches' derived impls work for every backend.
pub trait CounterStore<T: CounterValue>: Clone + std::fmt::Debug + Send + Sync + Sized {
    /// A zero-filled store of `len` cells.
    fn zeroed(len: usize) -> Self;

    /// A store initialized from explicit cell values (deserialization,
    /// backend conversion).
    fn from_cells(cells: Vec<T>) -> Self;

    /// Number of cells.
    fn len(&self) -> usize;

    /// Whether the store has no cells.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads one cell.
    fn get(&self, idx: usize) -> T;

    /// Overwrites one cell.
    fn set(&mut self, idx: usize, value: T);

    /// `cells[idx] += delta` under exclusive access.
    fn add(&mut self, idx: usize, delta: T);

    /// `cells[idx] -= delta` under exclusive access — the inverse of
    /// [`add`](CounterStore::add), used by subtractive plane merges.
    fn sub(&mut self, idx: usize, delta: T) {
        self.set(idx, self.get(idx).sub(delta));
    }

    /// A dense copy of all cells, in index order — the canonical
    /// (backend-independent) representation used for serialization and
    /// equality.
    fn snapshot(&self) -> Vec<T>;

    /// Copies every cell into `out`, in index order, reusing `out`'s
    /// capacity — the allocation-free form of
    /// [`snapshot`](CounterStore::snapshot) that steady-state query
    /// snapshots are built on.
    fn snapshot_into(&self, out: &mut Vec<T>) {
        out.clear();
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(self.get(i));
        }
    }

    /// Sum of `self[i] * other[i]` over `start..start + len` — the
    /// kernel of inner-product queries. The default reads cell by
    /// cell; [`DenseStore`] overrides it with a zipped slice loop the
    /// compiler can vectorize.
    fn dot_range(&self, other: &Self, start: usize, len: usize) -> T {
        let mut acc = T::ZERO;
        for i in start..start + len {
            acc = acc.add(self.get(i).mul(other.get(i)));
        }
        acc
    }
}

/// A [`CounterStore`] that additionally supports **lock-free shared
/// accumulation**: `add_shared` takes `&self`, so any number of threads
/// may feed the same store concurrently.
///
/// Only accumulation is shared; reads still race with writers (a torn
/// *schedule*, never a torn *value* — each cell is a single atomic).
/// Callers quiesce writers before querying, as
/// `bas_pipeline::ConcurrentIngest` does around its flushes.
pub trait SharedCounterStore<T: CounterValue>: CounterStore<T> {
    /// `cells[idx] += delta`, atomically, through a shared reference.
    fn add_shared(&self, idx: usize, delta: T);
}

/// Marker type selecting a storage strategy for [`CounterMatrix`].
///
/// The generic-associated `Store` is what actually holds cells; the
/// marker itself is a zero-sized type so it can ride along as a sketch
/// type parameter for free.
pub trait CounterBackend:
    Copy + Clone + Default + PartialEq + std::fmt::Debug + Send + Sync + 'static
{
    /// The store this backend uses for cells of type `T`.
    type Store<T: CounterValue>: CounterStore<T>;

    /// Short human label used in diagnostics ("dense", "atomic").
    const LABEL: &'static str;
}

/// Plain contiguous storage (`Box<[T]>`): the default backend, with
/// the exact semantics and performance of the pre-storage-layer grids.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dense;

/// One `AtomicU64` per counter: exclusive access costs the same as
/// [`Dense`] (plain `get_mut` loads/stores), shared access supports
/// lock-free [`add_shared`](SharedCounterStore::add_shared).
///
/// Cells narrower than 64 bits (e.g. the `u16` levels of Count-Min-Log)
/// still occupy a full word each under this backend; the bit-packed
/// space accounting only applies to [`Dense`]. That trade-off is
/// irrelevant in practice because the only sketches worth sharing are
/// the linear ones, whose counters are full words anyway.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Atomic;

/// The [`Dense`] backend's store.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseStore<T> {
    cells: Box<[T]>,
}

impl<T: CounterValue> CounterStore<T> for DenseStore<T> {
    fn zeroed(len: usize) -> Self {
        Self {
            cells: vec![T::ZERO; len].into_boxed_slice(),
        }
    }

    fn from_cells(cells: Vec<T>) -> Self {
        Self {
            cells: cells.into_boxed_slice(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    fn get(&self, idx: usize) -> T {
        self.cells[idx]
    }

    #[inline]
    fn set(&mut self, idx: usize, value: T) {
        self.cells[idx] = value;
    }

    #[inline]
    fn add(&mut self, idx: usize, delta: T) {
        self.cells[idx] = self.cells[idx].add(delta);
    }

    fn snapshot(&self) -> Vec<T> {
        self.cells.to_vec()
    }

    fn snapshot_into(&self, out: &mut Vec<T>) {
        out.clear();
        out.extend_from_slice(&self.cells);
    }

    fn dot_range(&self, other: &Self, start: usize, len: usize) -> T {
        self.cells[start..start + len]
            .iter()
            .zip(&other.cells[start..start + len])
            .fold(T::ZERO, |acc, (&a, &b)| acc.add(a.mul(b)))
    }
}

impl<T> DenseStore<T> {
    /// The cells as a contiguous slice — dense-only, the layout this
    /// backend guarantees.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.cells
    }

    /// Mutable view of the cells.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.cells
    }
}

impl CounterBackend for Dense {
    type Store<T: CounterValue> = DenseStore<T>;
    const LABEL: &'static str = "dense";
}

/// The [`Atomic`] backend's store: values live as bit patterns inside
/// `AtomicU64` cells.
pub struct AtomicStore<T> {
    cells: Box<[AtomicU64]>,
    _value: std::marker::PhantomData<T>,
}

impl<T: CounterValue> AtomicStore<T> {
    fn from_bit_iter(bits: impl Iterator<Item = u64>) -> Self {
        Self {
            cells: bits.map(AtomicU64::new).collect(),
            _value: std::marker::PhantomData,
        }
    }
}

impl<T: CounterValue> Clone for AtomicStore<T> {
    fn clone(&self) -> Self {
        Self::from_bit_iter(self.cells.iter().map(|c| c.load(Ordering::Relaxed)))
    }
}

impl<T: CounterValue> std::fmt::Debug for AtomicStore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicStore")
            .field("cells", &self.snapshot())
            .finish()
    }
}

impl<T: CounterValue> CounterStore<T> for AtomicStore<T> {
    fn zeroed(len: usize) -> Self {
        Self::from_bit_iter((0..len).map(|_| T::ZERO.to_bits()))
    }

    fn from_cells(cells: Vec<T>) -> Self {
        Self::from_bit_iter(cells.into_iter().map(T::to_bits))
    }

    #[inline]
    fn len(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    fn get(&self, idx: usize) -> T {
        T::from_bits(self.cells[idx].load(Ordering::Relaxed))
    }

    #[inline]
    fn set(&mut self, idx: usize, value: T) {
        // Exclusive access: a plain store through get_mut, no bus lock.
        *self.cells[idx].get_mut() = value.to_bits();
    }

    #[inline]
    fn add(&mut self, idx: usize, delta: T) {
        let cell = self.cells[idx].get_mut();
        *cell = T::from_bits(*cell).add(delta).to_bits();
    }

    fn snapshot(&self) -> Vec<T> {
        self.cells
            .iter()
            .map(|c| T::from_bits(c.load(Ordering::Relaxed)))
            .collect()
    }
}

impl<T: CounterValue> SharedCounterStore<T> for AtomicStore<T> {
    #[inline]
    fn add_shared(&self, idx: usize, delta: T) {
        T::atomic_add(&self.cells[idx], delta);
    }
}

impl CounterBackend for Atomic {
    type Store<T: CounterValue> = AtomicStore<T>;
    const LABEL: &'static str = "atomic";
}

/// A [`CounterBackend`] whose stores support lock-free shared
/// accumulation for **every** cell type — the bound generic code (cell
/// grids, shared batch kernels) uses where the per-store
/// `B::Store<T>: SharedCounterStore<T>` clause cannot be named.
///
/// Today this is exactly [`Atomic`]; a future backend adds itself by
/// forwarding to its store's [`SharedCounterStore::add_shared`].
pub trait SharedBackend: CounterBackend {
    /// `store[idx] += delta`, atomically, through a shared reference.
    fn add_shared_cell<T: CounterValue>(store: &Self::Store<T>, idx: usize, delta: T);
}

impl SharedBackend for Atomic {
    #[inline]
    fn add_shared_cell<T: CounterValue>(store: &AtomicStore<T>, idx: usize, delta: T) {
        store.add_shared(idx, delta);
    }
}

/// A dense `depth × width` matrix of counters stored row-major behind a
/// pluggable [`CounterBackend`].
///
/// This is the single counter plane shared by every sketch in the
/// workspace: all linear sketches are a `CounterMatrix` plus hash
/// functions, and merging two sketches is one element-wise
/// [`add_matrix`](CounterMatrix::add_matrix). The default parameters
/// (`f64` cells, [`Dense`] backend) are the classical single-threaded
/// configuration; `CounterMatrix<f64, Atomic>` is the shared-ingest
/// one.
///
/// ```
/// use bas_sketch::storage::{Atomic, CounterMatrix};
///
/// let mut dense = CounterMatrix::<f64>::new(4, 2); // width 4, depth 2
/// dense.add(1, 3, 2.5);
/// assert_eq!(dense.get(1, 3), 2.5);
///
/// let shared = CounterMatrix::<f64, Atomic>::new(4, 2);
/// shared.add_shared(1, 3, 2.5); // &self: any number of threads may do this
/// assert_eq!(shared.get(1, 3), 2.5);
/// ```
#[derive(Debug, Clone)]
pub struct CounterMatrix<T: CounterValue = f64, B: CounterBackend = Dense> {
    store: B::Store<T>,
    width: usize,
    depth: usize,
}

impl<T: CounterValue, B: CounterBackend> CounterMatrix<T, B> {
    /// Creates a zeroed matrix.
    pub fn new(width: usize, depth: usize) -> Self {
        Self {
            store: B::Store::<T>::zeroed(width * depth),
            width,
            depth,
        }
    }

    /// Builds a matrix from row-major cells.
    ///
    /// # Panics
    /// Panics unless `cells.len() == width * depth`.
    pub fn from_cells(width: usize, depth: usize, cells: Vec<T>) -> Self {
        assert_eq!(
            cells.len(),
            width * depth,
            "cell count must equal width * depth"
        );
        Self {
            store: B::Store::<T>::from_cells(cells),
            width,
            depth,
        }
    }

    /// Matrix width (buckets per row).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Matrix depth (number of rows).
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of counter cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the matrix has no cells (never true for valid params).
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.depth && col < self.width);
        row * self.width + col
    }

    /// Reads a cell.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> T {
        self.store.get(self.idx(row, col))
    }

    /// Overwrites a cell (used by conservative update).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        self.store.set(self.idx(row, col), value);
    }

    /// Adds `delta` to a cell under exclusive access.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, delta: T) {
        self.store.add(self.idx(row, col), delta);
    }

    /// Row-major batch kernel: applies a block of items' per-row
    /// increments with the index math hoisted ahead of the write sweep.
    ///
    /// `derive(item, payload, cols, vals)` fills one item's bucket
    /// index and increment per row (`cols.len() == vals.len() ==
    /// depth`; every index must be `< width`). The kernel processes
    /// `items` in blocks of [`APPLY_BLOCK`]: it first derives the
    /// whole block's indices/increments into two scratch buffers, then
    /// sweeps the counter writes **row by row** within the block, so
    /// each row's slice of the grid is touched once per block instead
    /// of being interleaved with `depth − 1` other rows per item.
    ///
    /// Blocking matters: sweeping rows over the *whole* batch loses
    /// (re-streaming a multi-MiB batch once per row costs more than the
    /// grid misses it saves — measured in `throughput_ingest`), while a
    /// block's scratch stays L1-resident. For grids that spill past L2
    /// the sweep also issues a speculative read [`APPLY_PREFETCH`]
    /// items ahead, pulling the line in before its read-modify-write —
    /// a software prefetch in safe Rust.
    ///
    /// Addition is the backend's exclusive-access `add`, so the result
    /// is bit-for-bit the per-item loop's (same increments, same cells,
    /// reordered only **across items within a block per row** — exact
    /// for integer deltas and for f64 sums of per-item derived values,
    /// since each cell still receives its increments in item order).
    pub fn apply_rows<P, D>(&mut self, items: &[(u64, P)], mut derive: D)
    where
        P: Copy,
        D: FnMut(u64, P, &mut [usize], &mut [T]),
    {
        let depth = self.depth;
        if depth == 0 || items.is_empty() {
            return;
        }
        let block_len = APPLY_BLOCK.min(items.len());
        let mut cols = vec![0usize; block_len * depth];
        let mut vals = vec![T::ZERO; block_len * depth];
        // Prefetch only pays once the grid spills past L2; for a
        // cache-resident grid the extra loads are pure overhead.
        let prefetch = self.len() * std::mem::size_of::<T>() > APPLY_PREFETCH_MIN_BYTES;
        for block in items.chunks(APPLY_BLOCK) {
            for (i, &(x, payload)) in block.iter().enumerate() {
                let s = i * depth;
                derive(x, payload, &mut cols[s..s + depth], &mut vals[s..s + depth]);
            }
            for row in 0..depth {
                if prefetch {
                    for i in 0..block.len() {
                        if i + APPLY_PREFETCH < block.len() {
                            let ahead = cols[(i + APPLY_PREFETCH) * depth + row];
                            std::hint::black_box(self.get(row, ahead));
                        }
                        let o = i * depth + row;
                        self.add(row, cols[o], vals[o]);
                    }
                } else {
                    for i in 0..block.len() {
                        let o = i * depth + row;
                        self.add(row, cols[o], vals[o]);
                    }
                }
            }
        }
    }

    /// Block-at-a-time variant of [`apply_rows`](CounterMatrix::apply_rows):
    /// the derivation callback fills a whole block's scratch at once,
    /// in **row-major** layout, so it can run data-parallel (SIMD) maps
    /// over each row's contiguous lane instead of deriving item by
    /// item.
    ///
    /// For a block of `n ≤ APPLY_BLOCK` items, `block_derive(block,
    /// cols, vals)` receives scratch of length `n · depth` and must
    /// fill row `r`'s bucket of item `i` at `cols[r·n + i]` (and its
    /// increment at `vals[r·n + i]`; every index must be `< width`).
    /// The write sweep then walks each row's lane in item order, so the
    /// result is bit-for-bit identical to
    /// [`apply_rows`](CounterMatrix::apply_rows) with an equivalent
    /// per-item derivation — same increments, same cells, same
    /// within-cell order.
    pub fn apply_rows_blocked<P, D>(&mut self, items: &[(u64, P)], mut block_derive: D)
    where
        P: Copy,
        D: FnMut(&[(u64, P)], &mut [usize], &mut [T]),
    {
        let depth = self.depth;
        if depth == 0 || items.is_empty() {
            return;
        }
        let block_len = APPLY_BLOCK.min(items.len());
        let mut cols = vec![0usize; block_len * depth];
        let mut vals = vec![T::ZERO; block_len * depth];
        let prefetch = self.len() * std::mem::size_of::<T>() > APPLY_PREFETCH_MIN_BYTES;
        for block in items.chunks(APPLY_BLOCK) {
            let n = block.len();
            block_derive(block, &mut cols[..n * depth], &mut vals[..n * depth]);
            for row in 0..depth {
                let lane = row * n..(row + 1) * n;
                let (rc, rv) = (&cols[lane.clone()], &vals[lane]);
                if prefetch {
                    for i in 0..n {
                        if i + APPLY_PREFETCH < n {
                            std::hint::black_box(self.get(row, rc[i + APPLY_PREFETCH]));
                        }
                        self.add(row, rc[i], rv[i]);
                    }
                } else {
                    for i in 0..n {
                        self.add(row, rc[i], rv[i]);
                    }
                }
            }
        }
    }

    /// Element-wise addition of another matrix of identical shape —
    /// the merge step of every linear sketch.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_matrix(&mut self, other: &Self) {
        assert_eq!(self.width, other.width, "matrix widths differ");
        assert_eq!(self.depth, other.depth, "matrix depths differ");
        for i in 0..self.store.len() {
            self.store.add(i, other.store.get(i));
        }
    }

    /// Element-wise **subtraction** of another matrix of identical
    /// shape — the inverse of [`add_matrix`](CounterMatrix::add_matrix).
    ///
    /// For linear sketches this is the window-arithmetic primitive: the
    /// counter plane of the updates between two stream positions is the
    /// cumulative plane at the later position minus the cumulative
    /// plane at the earlier one (`Φx^{(a,b]} = Φx^{(0,b]} − Φx^{(0,a]}`
    /// by linearity).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub_matrix(&mut self, other: &Self) {
        assert_eq!(self.width, other.width, "matrix widths differ");
        assert_eq!(self.depth, other.depth, "matrix depths differ");
        for i in 0..self.store.len() {
            self.store.sub(i, other.store.get(i));
        }
    }

    /// A dense row-major copy of all cells — the backend-independent
    /// canonical form.
    pub fn snapshot(&self) -> Vec<T> {
        self.store.snapshot()
    }

    /// A dense copy of one row.
    pub fn row_snapshot(&self, row: usize) -> Vec<T> {
        (0..self.width).map(|col| self.get(row, col)).collect()
    }

    /// Dot product of one row with the same row of `other` — the
    /// per-row kernel of sketch inner-product estimators. Dense
    /// backends run a vectorizable slice loop.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn row_dot(&self, other: &Self, row: usize) -> T {
        assert_eq!(self.width, other.width, "matrix widths differ");
        assert_eq!(self.depth, other.depth, "matrix depths differ");
        self.store
            .dot_range(&other.store, row * self.width, self.width)
    }

    /// Rebuilds this matrix with a different backend, preserving every
    /// cell value (e.g. an `Atomic` ingest sketch frozen into a `Dense`
    /// query copy).
    pub fn to_backend<B2: CounterBackend>(&self) -> CounterMatrix<T, B2> {
        CounterMatrix::from_cells(self.width, self.depth, self.snapshot())
    }

    /// Copies every cell into a caller-owned [`Dense`] matrix of the
    /// same shape — the allocation-free freeze step behind the query
    /// plane's epoch snapshots: one preallocated dense matrix is
    /// refilled per snapshot, so steady-state reads allocate nothing.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn snapshot_into(&self, dst: &mut CounterMatrix<T, Dense>) {
        assert_eq!(self.width, dst.width, "matrix widths differ");
        assert_eq!(self.depth, dst.depth, "matrix depths differ");
        for (i, slot) in dst.store.as_mut_slice().iter_mut().enumerate() {
            *slot = self.store.get(i);
        }
    }
}

impl<T: CounterValue, B: CounterBackend> CounterMatrix<T, B>
where
    B::Store<T>: SharedCounterStore<T>,
{
    /// Adds `delta` to a cell through a **shared** reference,
    /// lock-free. Only backends whose store implements
    /// [`SharedCounterStore`] (today: [`Atomic`]) expose this.
    #[inline]
    pub fn add_shared(&self, row: usize, col: usize, delta: T) {
        self.store.add_shared(self.idx(row, col), delta);
    }

    /// Adds every cell of a [`Dense`] matrix of identical shape into
    /// this one through the **shared** lock-free path — the
    /// destination half of a counter-plane transfer. Moving a sketch
    /// between hosts ships only its counters (hashers are rebuilt from
    /// the seed); by linearity, adding the shipped plane into a live
    /// zeroed sketch reproduces the original counters exactly, and on
    /// integer-delta streams the result is bit-for-bit.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_matrix_shared(&self, other: &CounterMatrix<T, Dense>) {
        assert_eq!(self.width, other.width, "matrix widths differ");
        assert_eq!(self.depth, other.depth, "matrix depths differ");
        for (i, &delta) in other.store.as_slice().iter().enumerate() {
            self.store.add_shared(i, delta);
        }
    }
}

impl<T: CounterValue, B: SharedBackend> CounterMatrix<T, B> {
    /// [`add_shared`](CounterMatrix::add_shared) spelled through the
    /// [`SharedBackend`] bound, for generic code that cannot name the
    /// per-store `SharedCounterStore` clause.
    #[inline]
    pub fn add_cell_shared(&self, row: usize, col: usize, delta: T) {
        B::add_shared_cell(&self.store, self.idx(row, col), delta);
    }

    /// Shared-path batch kernel: the `&self` counterpart of
    /// [`apply_rows_blocked`](CounterMatrix::apply_rows_blocked), with
    /// duplicate-cell coalescing in front of the atomic store.
    ///
    /// `block_derive` has the same contract as in `apply_rows_blocked`
    /// (row-major scratch, `cols[r·n + i]` / `vals[r·n + i]`). Instead
    /// of one atomic RMW per (item, row), the kernel sorts each row's
    /// lane by bucket, folds every run of same-bucket hits into one
    /// accumulated delta — in item order, so within-cell addition order
    /// matches the sequential path — and issues **one**
    /// `fetch_add`/CAS per distinct cell touched by the block. On
    /// skewed streams (the interesting ones) that collapses most of the
    /// block's atomics; on uniform streams it costs one small sort of
    /// L1-resident scratch.
    ///
    /// Exactness matches [`add_shared`](SharedCounterStore::add_shared):
    /// for integer-valued deltas the result is bit-for-bit equal to
    /// sequential per-item ingest; for general reals the per-cell
    /// pre-accumulation can differ in the last ulp.
    pub fn apply_rows_shared<P, D>(&self, items: &[(u64, P)], mut block_derive: D)
    where
        P: Copy,
        D: FnMut(&[(u64, P)], &mut [usize], &mut [T]),
    {
        let depth = self.depth;
        if depth == 0 || items.is_empty() {
            return;
        }
        debug_assert!(
            self.width <= u32::MAX as usize,
            "apply_rows_shared packs (bucket, item) into 32+32 bits"
        );
        let block_len = APPLY_BLOCK.min(items.len());
        let mut cols = vec![0usize; block_len * depth];
        let mut vals = vec![T::ZERO; block_len * depth];
        let mut order = vec![0u64; block_len];
        for block in items.chunks(APPLY_BLOCK) {
            let n = block.len();
            block_derive(block, &mut cols[..n * depth], &mut vals[..n * depth]);
            for row in 0..depth {
                let lane = row * n..(row + 1) * n;
                let (rc, rv) = (&cols[lane.clone()], &vals[lane]);
                let ord = &mut order[..n];
                for (i, slot) in ord.iter_mut().enumerate() {
                    *slot = ((rc[i] as u64) << 32) | i as u64;
                }
                // Sorting (bucket << 32) | item keeps same-bucket hits
                // in item order, so the fold below is order-exact.
                ord.sort_unstable();
                let base = row * self.width;
                let mut k = 0;
                while k < n {
                    let col = (ord[k] >> 32) as usize;
                    let mut acc = rv[(ord[k] & 0xFFFF_FFFF) as usize];
                    let mut j = k + 1;
                    while j < n && (ord[j] >> 32) as usize == col {
                        acc = acc.add(rv[(ord[j] & 0xFFFF_FFFF) as usize]);
                        j += 1;
                    }
                    B::add_shared_cell(&self.store, base + col, acc);
                    k = j;
                }
            }
        }
    }
}

impl<T: CounterValue> CounterMatrix<T, Dense> {
    /// A full row as a contiguous slice — [`Dense`]-only, since only
    /// that backend guarantees the layout.
    #[inline]
    pub fn row(&self, row: usize) -> &[T] {
        &self.store.as_slice()[row * self.width..(row + 1) * self.width]
    }

    /// A full row as a mutable slice, for callers that sweep one row at
    /// a time.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [T] {
        &mut self.store.as_mut_slice()[row * self.width..(row + 1) * self.width]
    }
}

/// Shape + cell-wise equality (cells compared through snapshots, so it
/// works across the `Atomic` backend too).
impl<T: CounterValue, B: CounterBackend, B2: CounterBackend> PartialEq<CounterMatrix<T, B2>>
    for CounterMatrix<T, B>
{
    fn eq(&self, other: &CounterMatrix<T, B2>) -> bool {
        self.width == other.width
            && self.depth == other.depth
            && (0..self.store.len()).all(|i| self.store.get(i) == other.store.get(i))
    }
}

#[cfg(feature = "serde")]
impl<T: CounterValue + serde::Serialize, B: CounterBackend> serde::Serialize
    for CounterMatrix<T, B>
{
    /// Serializes as the dense snapshot `{cells, width, depth}` — the
    /// `Atomic` backend ships its current values, not its atomics, so
    /// the wire format is backend-independent.
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let cells = serde::to_content(&self.snapshot())
            .map_err(|e| <S::Error as serde::ser::Error>::custom(e))?;
        serializer.serialize_content(serde::Content::Map(vec![
            ("cells".to_string(), cells),
            ("width".to_string(), serde::Content::U64(self.width as u64)),
            ("depth".to_string(), serde::Content::U64(self.depth as u64)),
        ]))
    }
}

#[cfg(feature = "serde")]
impl<'de, T: CounterValue + serde::Deserialize<'de>, B: CounterBackend> serde::Deserialize<'de>
    for CounterMatrix<T, B>
{
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let mut entries = match deserializer.deserialize_content()? {
            serde::Content::Map(entries) => entries,
            _ => return Err(D::Error::custom("expected a map for CounterMatrix")),
        };
        let mut take = |key: &str| {
            let at = entries
                .iter()
                .position(|(k, _)| k == key)
                .ok_or_else(|| D::Error::custom(format!("missing field `{key}`")))?;
            Ok(entries.swap_remove(at).1)
        };
        let cells: Vec<T> = serde::from_content(take("cells")?)
            .map_err(|e| D::Error::custom(format!("field `cells`: {e}")))?;
        let width: usize = serde::from_content(take("width")?)
            .map_err(|e| D::Error::custom(format!("field `width`: {e}")))?;
        let depth: usize = serde::from_content(take("depth")?)
            .map_err(|e| D::Error::custom(format!("field `depth`: {e}")))?;
        if width.checked_mul(depth) != Some(cells.len()) {
            return Err(D::Error::custom(format!(
                "CounterMatrix shape mismatch: {width} x {depth} != {} cells",
                cells.len()
            )));
        }
        Ok(Self::from_cells(width, depth, cells))
    }
}

/// Applies `$body` with `$m` bound to the inner [`CounterMatrix`] of
/// whichever cell-width variant `$self` holds.
macro_rules! with_cells {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            CellGrid::F64($m) => $body,
            CellGrid::I64($m) => $body,
            CellGrid::U64($m) => $body,
            CellGrid::U32($m) => $body,
            CellGrid::U16($m) => $body,
        }
    };
}

/// Same-variant binary dispatch over two [`CellGrid`]s; mismatched
/// widths fall through to `$else`.
macro_rules! with_cell_pairs {
    ($a:expr, $b:expr, $x:ident, $y:ident => $body:expr, else => $else:expr) => {
        match ($a, $b) {
            (CellGrid::F64($x), CellGrid::F64($y)) => $body,
            (CellGrid::I64($x), CellGrid::I64($y)) => $body,
            (CellGrid::U64($x), CellGrid::U64($y)) => $body,
            (CellGrid::U32($x), CellGrid::U32($y)) => $body,
            (CellGrid::U16($x), CellGrid::U16($y)) => $body,
            _ => $else,
        }
    };
}

/// A sketch counter grid whose cell width is chosen at **runtime** via
/// [`CellWidth`], dispatching to a monomorphized [`CounterMatrix`] per
/// width.
///
/// Every grid sketch holds one of these instead of a bare
/// `CounterMatrix<f64, B>`. The `F64` variant is the classical
/// configuration and compiles to exactly the code the sketches ran
/// before this enum existed (one match on a niche-packed discriminant
/// per batch, not per item — the batch kernels dispatch once). The
/// integer variants store the two's-complement accumulators described
/// on [`CellValue`]: updates truncate their f64 delta into the cell
/// domain, queries read the cell back as a signed value.
///
/// All public entry points speak `f64`, so the sketches' update/query
/// code is width-agnostic; binary operations (merge, subtract, dot)
/// require both grids to hold the **same** variant — callers gate on
/// [`SketchParams::check_counter_compatible`](crate::SketchParams::check_counter_compatible),
/// which includes the cell width.
#[derive(Debug, Clone)]
pub enum CellGrid<B: CounterBackend = Dense> {
    /// 8-byte IEEE-double cells (default; bit-compatible with the
    /// pre-`CellGrid` snapshot format).
    F64(CounterMatrix<f64, B>),
    /// 8-byte signed integer cells.
    I64(CounterMatrix<i64, B>),
    /// 8-byte unsigned cells holding a 64-bit two's-complement
    /// accumulator.
    U64(CounterMatrix<u64, B>),
    /// 4-byte two's-complement accumulator cells.
    U32(CounterMatrix<u32, B>),
    /// 2-byte two's-complement accumulator cells.
    U16(CounterMatrix<u16, B>),
}

impl<B: CounterBackend> CellGrid<B> {
    /// A zeroed grid of the given shape and cell width.
    pub fn new(width: usize, depth: usize, cell: CellWidth) -> Self {
        match cell {
            CellWidth::F64 => CellGrid::F64(CounterMatrix::new(width, depth)),
            CellWidth::I64 => CellGrid::I64(CounterMatrix::new(width, depth)),
            CellWidth::U64 => CellGrid::U64(CounterMatrix::new(width, depth)),
            CellWidth::U32 => CellGrid::U32(CounterMatrix::new(width, depth)),
            CellWidth::U16 => CellGrid::U16(CounterMatrix::new(width, depth)),
        }
    }

    /// The grid's cell width.
    pub fn cell(&self) -> CellWidth {
        match self {
            CellGrid::F64(_) => CellWidth::F64,
            CellGrid::I64(_) => CellWidth::I64,
            CellGrid::U64(_) => CellWidth::U64,
            CellGrid::U32(_) => CellWidth::U32,
            CellGrid::U16(_) => CellWidth::U16,
        }
    }

    /// Grid width (buckets per row).
    #[inline]
    pub fn width(&self) -> usize {
        with_cells!(self, m => m.width())
    }

    /// Grid depth (number of rows).
    #[inline]
    pub fn depth(&self) -> usize {
        with_cells!(self, m => m.depth())
    }

    /// Number of counter cells.
    #[inline]
    pub fn len(&self) -> usize {
        with_cells!(self, m => m.len())
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        with_cells!(self, m => m.is_empty())
    }

    /// Reads a cell into the f64 estimate domain.
    #[inline]
    pub fn get_f64(&self, row: usize, col: usize) -> f64 {
        with_cells!(self, m => m.get(row, col).cell_to_f64())
    }

    /// Overwrites a cell from the f64 domain (conservative update).
    #[inline]
    pub fn set_f64(&mut self, row: usize, col: usize, value: f64) {
        with_cells!(self, m => m.set(row, col, CellValue::cell_from_f64(value)))
    }

    /// Adds an f64 delta to a cell under exclusive access.
    #[inline]
    pub fn add_f64(&mut self, row: usize, col: usize, delta: f64) {
        with_cells!(self, m => m.add(row, col, CellValue::cell_from_f64(delta)))
    }

    /// [`CounterMatrix::apply_rows_blocked`] over f64 deltas: the f64
    /// variant passes the derivation straight through (zero conversion
    /// cost on the default path); integer variants derive into an f64
    /// lane and truncate the block into the cell domain afterwards.
    pub fn apply_rows_blocked_f64<D>(&mut self, items: &[(u64, f64)], block_derive: D)
    where
        D: FnMut(&[(u64, f64)], &mut [usize], &mut [f64]),
    {
        match self {
            CellGrid::F64(m) => m.apply_rows_blocked(items, block_derive),
            CellGrid::I64(m) => apply_blocked_converted(m, items, block_derive),
            CellGrid::U64(m) => apply_blocked_converted(m, items, block_derive),
            CellGrid::U32(m) => apply_blocked_converted(m, items, block_derive),
            CellGrid::U16(m) => apply_blocked_converted(m, items, block_derive),
        }
    }

    /// Dense row copy in the f64 domain.
    pub fn row_snapshot_f64(&self, row: usize) -> Vec<f64> {
        with_cells!(self, m => (0..m.width()).map(|col| m.get(row, col).cell_to_f64()).collect())
    }

    /// Dot product of one row with the same row of `other`, accumulated
    /// in f64 in index order (the f64 variant delegates to the
    /// vectorizable [`CounterMatrix::row_dot`]; the math is identical).
    ///
    /// # Panics
    /// Panics if the grids hold different cell widths or shapes.
    pub fn row_dot_f64(&self, other: &Self, row: usize) -> f64 {
        match (self, other) {
            (CellGrid::F64(a), CellGrid::F64(b)) => a.row_dot(b, row),
            (CellGrid::I64(a), CellGrid::I64(b)) => row_dot_converted(a, b, row),
            (CellGrid::U64(a), CellGrid::U64(b)) => row_dot_converted(a, b, row),
            (CellGrid::U32(a), CellGrid::U32(b)) => row_dot_converted(a, b, row),
            (CellGrid::U16(a), CellGrid::U16(b)) => row_dot_converted(a, b, row),
            _ => panic!("cell widths differ"),
        }
    }

    /// Element-wise merge of another grid of the same cell width and
    /// shape (wrapping in the cell domain for integer widths).
    ///
    /// # Panics
    /// Panics if the grids hold different cell widths or shapes.
    pub fn add_grid(&mut self, other: &Self) {
        with_cell_pairs!(self, other, a, b => a.add_matrix(b), else => panic!("cell widths differ"))
    }

    /// Element-wise subtraction — the inverse of
    /// [`add_grid`](CellGrid::add_grid), and the window-arithmetic
    /// primitive (wrapping in the cell domain for integer widths).
    ///
    /// # Panics
    /// Panics if the grids hold different cell widths or shapes.
    pub fn sub_grid(&mut self, other: &Self) {
        with_cell_pairs!(self, other, a, b => a.sub_matrix(b), else => panic!("cell widths differ"))
    }

    /// Copies every cell, converted to the f64 domain, into a
    /// caller-owned [`Dense`] f64 matrix of the same shape — the
    /// allocation-free freeze step behind snapshots. The canonical
    /// snapshot plane stays `f64` for every cell width, so sealed
    /// planes, rebalance transfers, and the wire format are
    /// width-independent.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn snapshot_into_f64(&self, dst: &mut CounterMatrix<f64, Dense>) {
        with_cells!(self, m => {
            assert_eq!(m.width(), dst.width, "matrix widths differ");
            assert_eq!(m.depth(), dst.depth, "matrix depths differ");
            for (i, slot) in dst.store.as_mut_slice().iter_mut().enumerate() {
                *slot = m.store.get(i).cell_to_f64();
            }
        })
    }

    /// A fresh dense f64 copy of the grid (the allocating form of
    /// [`snapshot_into_f64`](CellGrid::snapshot_into_f64)).
    pub fn to_dense_f64(&self) -> CounterMatrix<f64, Dense> {
        let mut dst = CounterMatrix::new(self.width(), self.depth());
        self.snapshot_into_f64(&mut dst);
        dst
    }
}

impl<B: SharedBackend> CellGrid<B> {
    /// Adds an f64 delta to a cell through a **shared** reference,
    /// lock-free (truncated into the cell domain first).
    #[inline]
    pub fn add_shared_f64(&self, row: usize, col: usize, delta: f64) {
        with_cells!(self, m => m.add_cell_shared(row, col, CellValue::cell_from_f64(delta)))
    }

    /// [`CounterMatrix::apply_rows_shared`] over f64 deltas — the
    /// shared/Atomic batch kernel with duplicate-cell coalescing.
    /// Integer variants truncate each item's delta into the cell domain
    /// **before** coalescing, so per-cell accumulation wraps exactly
    /// like sequential per-item ingest.
    pub fn apply_rows_shared_f64<D>(&self, items: &[(u64, f64)], block_derive: D)
    where
        D: FnMut(&[(u64, f64)], &mut [usize], &mut [f64]),
    {
        match self {
            CellGrid::F64(m) => m.apply_rows_shared(items, block_derive),
            CellGrid::I64(m) => apply_shared_converted(m, items, block_derive),
            CellGrid::U64(m) => apply_shared_converted(m, items, block_derive),
            CellGrid::U32(m) => apply_shared_converted(m, items, block_derive),
            CellGrid::U16(m) => apply_shared_converted(m, items, block_derive),
        }
    }

    /// Adds every cell of a dense f64 plane into this grid through the
    /// shared lock-free path, truncating into the cell domain — the
    /// destination half of a counter-plane transfer onto a compact-cell
    /// sketch.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_plane_shared(&self, plane: &CounterMatrix<f64, Dense>) {
        with_cells!(self, m => {
            assert_eq!(m.width(), plane.width, "matrix widths differ");
            assert_eq!(m.depth(), plane.depth, "matrix depths differ");
            for (i, &delta) in plane.store.as_slice().iter().enumerate() {
                B::add_shared_cell(&m.store, i, CellValue::cell_from_f64(delta));
            }
        })
    }
}

/// Shape + cell-wise equality; grids of different cell widths are
/// never equal.
impl<B: CounterBackend, B2: CounterBackend> PartialEq<CellGrid<B2>> for CellGrid<B> {
    fn eq(&self, other: &CellGrid<B2>) -> bool {
        with_cell_pairs!(self, other, a, b => a == b, else => false)
    }
}

fn apply_blocked_converted<T: CellValue, B: CounterBackend>(
    m: &mut CounterMatrix<T, B>,
    items: &[(u64, f64)],
    mut block_derive: impl FnMut(&[(u64, f64)], &mut [usize], &mut [f64]),
) {
    let mut lane: Vec<f64> = Vec::new();
    m.apply_rows_blocked(items, |block, cols, vals| {
        lane.resize(vals.len(), 0.0);
        block_derive(block, cols, &mut lane);
        for (o, &f) in vals.iter_mut().zip(lane.iter()) {
            *o = T::cell_from_f64(f);
        }
    });
}

fn apply_shared_converted<T: CellValue, B: SharedBackend>(
    m: &CounterMatrix<T, B>,
    items: &[(u64, f64)],
    mut block_derive: impl FnMut(&[(u64, f64)], &mut [usize], &mut [f64]),
) {
    let mut lane: Vec<f64> = Vec::new();
    m.apply_rows_shared(items, |block, cols, vals| {
        lane.resize(vals.len(), 0.0);
        block_derive(block, cols, &mut lane);
        for (o, &f) in vals.iter_mut().zip(lane.iter()) {
            *o = T::cell_from_f64(f);
        }
    });
}

fn row_dot_converted<T: CellValue, B: CounterBackend>(
    a: &CounterMatrix<T, B>,
    b: &CounterMatrix<T, B>,
    row: usize,
) -> f64 {
    assert_eq!(a.width, b.width, "matrix widths differ");
    assert_eq!(a.depth, b.depth, "matrix depths differ");
    let mut acc = 0.0;
    for col in 0..a.width {
        acc += a.get(row, col).cell_to_f64() * b.get(row, col).cell_to_f64();
    }
    acc
}

#[cfg(feature = "serde")]
impl<B: CounterBackend> serde::Serialize for CellGrid<B> {
    /// The `F64` variant serializes **exactly** as the legacy
    /// `CounterMatrix` map `{cells, width, depth}`, so pre-`CellGrid`
    /// snapshots stay byte-identical; compact variants append a `cell`
    /// key naming the width.
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        if let CellGrid::F64(m) = self {
            return m.serialize(serializer);
        }
        let cell = serde::to_content(&self.cell())
            .map_err(|e| <S::Error as serde::ser::Error>::custom(e))?;
        with_cells!(self, m => {
            let cells = serde::to_content(&m.snapshot())
                .map_err(|e| <S::Error as serde::ser::Error>::custom(e))?;
            serializer.serialize_content(serde::Content::Map(vec![
                ("cells".to_string(), cells),
                ("width".to_string(), serde::Content::U64(m.width() as u64)),
                ("depth".to_string(), serde::Content::U64(m.depth() as u64)),
                ("cell".to_string(), cell),
            ]))
        })
    }
}

#[cfg(feature = "serde")]
impl<'de, B: CounterBackend> serde::Deserialize<'de> for CellGrid<B> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let mut entries = match deserializer.deserialize_content()? {
            serde::Content::Map(entries) => entries,
            _ => return Err(D::Error::custom("expected a map for CellGrid")),
        };
        let mut take = |key: &str| {
            entries
                .iter()
                .position(|(k, _)| k == key)
                .map(|at| entries.swap_remove(at).1)
        };
        // A map without a `cell` key is a legacy f64 snapshot.
        let cell: CellWidth = match take("cell") {
            Some(content) => serde::from_content(content)
                .map_err(|e| D::Error::custom(format!("field `cell`: {e}")))?,
            None => CellWidth::F64,
        };
        let cells_content =
            take("cells").ok_or_else(|| D::Error::custom("missing field `cells` in CellGrid"))?;
        let width: usize = serde::from_content(
            take("width").ok_or_else(|| D::Error::custom("missing field `width` in CellGrid"))?,
        )
        .map_err(|e| D::Error::custom(format!("field `width`: {e}")))?;
        let depth: usize = serde::from_content(
            take("depth").ok_or_else(|| D::Error::custom("missing field `depth` in CellGrid"))?,
        )
        .map_err(|e| D::Error::custom(format!("field `depth`: {e}")))?;
        macro_rules! grid_arm {
            ($t:ty, $variant:ident) => {{
                let cells: Vec<$t> = serde::from_content(cells_content)
                    .map_err(|e| D::Error::custom(format!("field `cells`: {e}")))?;
                if width.checked_mul(depth) != Some(cells.len()) {
                    return Err(D::Error::custom(format!(
                        "CellGrid shape mismatch: {width} x {depth} != {} cells",
                        cells.len()
                    )));
                }
                CellGrid::$variant(CounterMatrix::from_cells(width, depth, cells))
            }};
        }
        Ok(match cell {
            CellWidth::F64 => grid_arm!(f64, F64),
            CellWidth::I64 => grid_arm!(i64, I64),
            CellWidth::U64 => grid_arm!(u64, U64),
            CellWidth::U32 => grid_arm!(u32, U32),
            CellWidth::U16 => grid_arm!(u16, U16),
        })
    }
}

/// One sealed plane in a [`PlaneBank`]: a frozen counter plane plus the
/// stream position it was sealed at.
///
/// The plane type `P` is deliberately open — a single
/// [`CounterMatrix`] for the matrix sketches, a stack of them for the
/// dyadic range-sum sketch, or any other `Snapshot` type a
/// [`Snapshottable`](crate::Snapshottable) sketch defines. Counters
/// alone do not determine which vector a plane sketches, so every seal
/// also records the hasher configuration it was counted under
/// ([`config`](SealedPlane::config)) — in a fixed-seed deployment all
/// seals share it, but under seed rotation adjacent seals differ, and
/// combining them in counter space must be rejected, not silently
/// performed.
#[derive(Debug, Clone)]
pub struct SealedPlane<P> {
    plane: P,
    params: crate::traits::SketchParams,
    interval: u64,
    applied: u64,
    mass: f64,
}

impl<P> SealedPlane<P> {
    /// The frozen counter plane.
    pub fn plane(&self) -> &P {
        &self.plane
    }

    /// The hasher configuration the plane's counters were addressed
    /// under. Carried **per seal** rather than inherited from the bank:
    /// under seed rotation, planes sealed across a rotation boundary
    /// have different hash functions, and a recycled slot must never
    /// keep the old generation's configuration implicitly. Counter-
    /// space combination of two seals is valid only when
    /// [`SketchParams::check_counter_compatible`](crate::SketchParams::check_counter_compatible)
    /// accepts their configs.
    pub fn config(&self) -> crate::traits::SketchParams {
        self.params
    }

    /// The interval id this seal closed (seal `t` captures the
    /// cumulative state at the end of interval `t`).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Updates applied as of the seal — the length of the stream
    /// prefix the plane reflects.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Total delta mass applied as of the seal.
    pub fn mass(&self) -> f64 {
        self.mass
    }
}

/// A bank of `K` rotating sealed counter planes: the storage substrate
/// of windowed (tumbling / sliding) serving.
///
/// Any sketch state can be viewed as **current plane + ring of sealed
/// planes**: the live sketch keeps accumulating since boot, and every
/// `advance_interval` the rotation driver seals a copy of the
/// *cumulative* plane into this bank. Because all the sketches here
/// are linear, a window answer never needs per-interval planes kept
/// explicitly — the plane of intervals `(a, t]` is
/// `cumulative(now) − sealed(a)`, one subtractive merge — but the
/// per-interval deltas remain recoverable as differences of adjacent
/// seals (the window conformance tests exercise exactly that
/// identity).
///
/// The ring recycles: once `capacity` planes are sealed, sealing
/// interval `t` reuses the slot of interval `t − capacity`, refilled in
/// place — steady-state rotation allocates nothing. Retention is
/// therefore the **last `capacity` seals**, which is exactly what a
/// window of `K` intervals needs (`capacity = K`).
///
/// ```
/// use bas_sketch::storage::{CounterMatrix, PlaneBank};
/// use bas_sketch::SketchParams;
///
/// let config = SketchParams::new(16, 4, 1).with_seed(7);
/// let mut bank: PlaneBank<CounterMatrix<f64>> = PlaneBank::new(2);
/// for t in 0..4u64 {
///     bank.seal_with(
///         t,
///         config,
///         || CounterMatrix::new(4, 1),
///         |plane| {
///             plane.set(0, 0, t as f64); // stand-in for a counter copy
///             (t + 1, (t + 1) as f64)    // (applied, mass) at the seal
///         },
///     );
/// }
/// assert_eq!(bank.len(), 2);                  // ring recycled
/// assert!(bank.sealed(1).is_none());          // evicted
/// assert_eq!(bank.sealed(3).unwrap().applied(), 4);
/// assert_eq!(bank.sealed(3).unwrap().config(), config);
/// ```
#[derive(Debug, Clone)]
pub struct PlaneBank<P> {
    /// Sealed planes, ordered oldest → newest by rotation (the vec is a
    /// ring only in the recycling sense: `seal_with` pops the oldest
    /// slot and pushes it back refilled, so iteration order stays
    /// chronological).
    ring: std::collections::VecDeque<SealedPlane<P>>,
    capacity: usize,
}

impl<P> PlaneBank<P> {
    /// An empty bank retaining at most `capacity` sealed planes.
    /// Capacity 0 is allowed and makes every `seal_with` a no-op — the
    /// unbounded (no-window) configuration costs nothing.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of retained seals.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of seals currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no plane has been sealed (or capacity is 0).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Seals a plane for `interval`: recycles the oldest slot's plane
    /// allocation-free once the ring is full, otherwise allocates one
    /// via `make`. `fill` copies the live counters into the slot and
    /// returns the stream position `(applied, mass)` the copy captured.
    /// `config` is the hasher configuration the counters were addressed
    /// under at seal time — recorded on the seal (a recycled slot is
    /// fully overwritten, so it can never carry a previous generation's
    /// configuration implicitly).
    ///
    /// # Panics
    /// Panics if `interval` does not increase monotonically (each
    /// interval is sealed exactly once, in order).
    pub fn seal_with(
        &mut self,
        interval: u64,
        config: crate::traits::SketchParams,
        make: impl FnOnce() -> P,
        fill: impl FnOnce(&mut P) -> (u64, f64),
    ) {
        if self.capacity == 0 {
            return;
        }
        if let Some(latest) = self.ring.back() {
            assert!(
                interval > latest.interval,
                "seals must advance: interval {interval} after {}",
                latest.interval
            );
        }
        let mut slot = if self.ring.len() == self.capacity {
            self.ring.pop_front().expect("ring is full, so non-empty")
        } else {
            SealedPlane {
                plane: make(),
                params: config,
                interval: 0,
                applied: 0,
                mass: 0.0,
            }
        };
        let (applied, mass) = fill(&mut slot.plane);
        slot.params = config;
        slot.interval = interval;
        slot.applied = applied;
        slot.mass = mass;
        self.ring.push_back(slot);
    }

    /// The seal for a specific interval, if still retained.
    pub fn sealed(&self, interval: u64) -> Option<&SealedPlane<P>> {
        // The ring is sorted by interval; it is tiny (K slots), so a
        // linear scan from the newest end beats bookkeeping.
        self.ring.iter().rev().find(|s| s.interval == interval)
    }

    /// The most recent seal.
    pub fn latest(&self) -> Option<&SealedPlane<P>> {
        self.ring.back()
    }

    /// The oldest retained seal.
    pub fn oldest(&self) -> Option<&SealedPlane<P>> {
        self.ring.front()
    }

    /// Retained seals, oldest first.
    pub fn planes(&self) -> impl Iterator<Item = &SealedPlane<P>> {
        self.ring.iter()
    }
}

/// Implements `serde::Serialize`/`Deserialize` for a backend-generic
/// sketch struct, field by field, mirroring the derive's map format.
///
/// The vendored `serde_derive` intentionally rejects generic types, so
/// the sketches — generic over their [`CounterBackend`] since the
/// storage-layer refactor — spell their impls through this macro
/// instead:
///
/// ```ignore
/// bas_sketch::impl_backend_serde!(CountMedian { params, grid, hashers });
/// ```
///
/// The struct must have exactly one type parameter, the backend.
#[cfg(feature = "serde")]
#[macro_export]
macro_rules! impl_backend_serde {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl<B: $crate::storage::CounterBackend> ::serde::Serialize for $ty<B> {
            fn serialize<S: ::serde::Serializer>(
                &self,
                serializer: S,
            ) -> ::core::result::Result<S::Ok, S::Error> {
                let mut entries = ::std::vec::Vec::new();
                $(entries.push((
                    stringify!($field).to_string(),
                    ::serde::to_content(&self.$field)
                        .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?,
                ));)+
                serializer.serialize_content(::serde::Content::Map(entries))
            }
        }

        impl<'de, B: $crate::storage::CounterBackend> ::serde::Deserialize<'de> for $ty<B> {
            fn deserialize<D: ::serde::Deserializer<'de>>(
                deserializer: D,
            ) -> ::core::result::Result<Self, D::Error> {
                let mut entries = match deserializer.deserialize_content()? {
                    ::serde::Content::Map(entries) => entries,
                    _ => {
                        return ::core::result::Result::Err(
                            <D::Error as ::serde::de::Error>::custom(concat!(
                                "expected a map for ",
                                stringify!($ty)
                            )),
                        )
                    }
                };
                $(let $field = {
                    let at = entries
                        .iter()
                        .position(|(k, _)| k == stringify!($field))
                        .ok_or_else(|| <D::Error as ::serde::de::Error>::custom(concat!(
                            "missing field `",
                            stringify!($field),
                            "` in ",
                            stringify!($ty)
                        )))?;
                    ::serde::from_content(entries.swap_remove(at).1).map_err(|e| {
                        <D::Error as ::serde::de::Error>::custom(format!(
                            concat!("field `", stringify!($field), "`: {}"),
                            e
                        ))
                    })?
                };)+
                let _ = &mut entries;
                ::core::result::Result::Ok($ty { $($field),+ })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill<B: CounterBackend>() -> CounterMatrix<f64, B> {
        let mut m = CounterMatrix::<f64, B>::new(4, 3);
        for row in 0..3 {
            for col in 0..4 {
                m.add(row, col, (row * 4 + col) as f64);
            }
        }
        m
    }

    #[test]
    fn dense_accessors() {
        let mut m = CounterMatrix::<f64>::new(4, 2);
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
        m.add(1, 3, 2.5);
        m.add(1, 3, 0.5);
        assert_eq!(m.get(1, 3), 3.0);
        m.set(0, 0, -1.0);
        assert_eq!(m.row(0), &[-1.0, 0.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 0.0, 3.0]);
        m.row_mut(0)[2] = 7.0;
        assert_eq!(m.get(0, 2), 7.0);
        assert_eq!(m.row_snapshot(1), vec![0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn atomic_exclusive_ops_match_dense() {
        let dense = fill::<Dense>();
        let atomic = fill::<Atomic>();
        assert_eq!(dense.snapshot(), atomic.snapshot());
        assert_eq!(dense, atomic); // cross-backend PartialEq
    }

    #[test]
    fn atomic_shared_add_is_visible() {
        let m = CounterMatrix::<f64, Atomic>::new(3, 2);
        m.add_shared(0, 1, 1.5);
        m.add_shared(0, 1, 2.5);
        m.add_shared(1, 2, -1.0);
        assert_eq!(m.get(0, 1), 4.0);
        assert_eq!(m.get(1, 2), -1.0);
    }

    #[test]
    fn shared_integer_adds_from_many_threads_are_exact() {
        let m = CounterMatrix::<i64, Atomic>::new(8, 1);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let m = &m;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        m.add_shared(0, ((i + t) % 8) as usize, 1);
                    }
                });
            }
        });
        let total: i64 = m.snapshot().iter().sum();
        assert_eq!(total, 40_000);
    }

    #[test]
    fn shared_float_adds_from_many_threads_are_exact_on_integers() {
        // Integer-valued f64 deltas: addition is exact, hence
        // order-independent — the concurrent sum is bit-for-bit right.
        let m = CounterMatrix::<f64, Atomic>::new(4, 1);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = &m;
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        m.add_shared(0, (i % 4) as usize, 3.0);
                    }
                });
            }
        });
        for col in 0..4 {
            assert_eq!(m.get(0, col), 4.0 * 1_250.0 * 3.0);
        }
    }

    #[test]
    fn add_matrix_is_elementwise() {
        let mut a = CounterMatrix::<f64>::new(3, 2);
        let mut b = CounterMatrix::<f64>::new(3, 2);
        a.add(0, 1, 1.0);
        b.add(0, 1, 2.0);
        b.add(1, 2, 5.0);
        a.add_matrix(&b);
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.get(1, 2), 5.0);
    }

    #[test]
    fn sub_matrix_inverts_add_matrix() {
        let mut cumulative = fill::<Dense>();
        let boundary = {
            let mut m = CounterMatrix::<f64>::new(4, 3);
            m.add(1, 2, 3.0);
            m.add(2, 0, 1.5);
            m
        };
        cumulative.add_matrix(&boundary);
        cumulative.sub_matrix(&boundary);
        assert_eq!(cumulative, fill::<Dense>());
        // And in the atomic backend through the same store API.
        let mut atomic = fill::<Atomic>();
        atomic.sub_matrix(&fill::<Atomic>());
        assert!(atomic.snapshot().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn sub_matrix_shape_mismatch_panics() {
        let mut a = CounterMatrix::<f64>::new(3, 2);
        let b = CounterMatrix::<f64>::new(2, 3);
        a.sub_matrix(&b);
    }

    #[test]
    fn plane_bank_recycles_oldest_slot() {
        let mut bank: PlaneBank<CounterMatrix<f64>> = PlaneBank::new(3);
        assert!(bank.is_empty() && bank.latest().is_none());
        for t in 0..5u64 {
            // Rotate the seed per seal: each slot must carry its own.
            bank.seal_with(
                t,
                crate::SketchParams::new(4, 2, 1).with_seed(t),
                || CounterMatrix::new(2, 1),
                |p| {
                    p.set(0, 0, t as f64);
                    (10 * (t + 1), (t + 1) as f64)
                },
            );
        }
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.capacity(), 3);
        assert!(bank.sealed(0).is_none() && bank.sealed(1).is_none());
        let intervals: Vec<u64> = bank.planes().map(|s| s.interval()).collect();
        assert_eq!(intervals, vec![2, 3, 4]);
        assert_eq!(bank.oldest().unwrap().interval(), 2);
        let latest = bank.latest().unwrap();
        assert_eq!(latest.interval(), 4);
        assert_eq!(latest.applied(), 50);
        assert_eq!(latest.mass(), 5.0);
        assert_eq!(latest.plane().get(0, 0), 4.0);
        // The recycled slot was refilled, not stale.
        assert_eq!(bank.sealed(2).unwrap().plane().get(0, 0), 2.0);
        // ...including its hasher configuration: the slot sealed at
        // t = 4 reused t = 1's allocation but must carry t = 4's seed.
        assert_eq!(latest.config().seed, 4);
        assert_eq!(bank.sealed(2).unwrap().config().seed, 2);
        assert!(bank
            .sealed(2)
            .unwrap()
            .config()
            .check_counter_compatible(&latest.config())
            .is_err());
    }

    #[test]
    fn zero_capacity_bank_ignores_seals() {
        let mut bank: PlaneBank<CounterMatrix<f64>> = PlaneBank::new(0);
        bank.seal_with(
            0,
            crate::SketchParams::new(4, 2, 1),
            || panic!("must not allocate"),
            |_| (0, 0.0),
        );
        assert!(bank.is_empty());
    }

    #[test]
    #[should_panic(expected = "seals must advance")]
    fn non_monotone_seal_rejected() {
        let mut bank: PlaneBank<CounterMatrix<f64>> = PlaneBank::new(2);
        let cfg = crate::SketchParams::new(4, 1, 1);
        bank.seal_with(3, cfg, || CounterMatrix::new(1, 1), |_| (0, 0.0));
        bank.seal_with(3, cfg, || CounterMatrix::new(1, 1), |_| (0, 0.0));
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn add_matrix_shape_mismatch_panics() {
        let mut a = CounterMatrix::<f64>::new(3, 2);
        let b = CounterMatrix::<f64>::new(2, 3);
        a.add_matrix(&b);
    }

    #[test]
    fn row_dot_matches_manual_sum_in_both_backends() {
        let a_dense = fill::<Dense>();
        let b_dense = {
            let mut m = fill::<Dense>();
            m.add(2, 3, 10.0);
            m
        };
        let a_atomic: CounterMatrix<f64, Atomic> = a_dense.to_backend();
        let b_atomic: CounterMatrix<f64, Atomic> = b_dense.to_backend();
        for row in 0..3 {
            let expect: f64 = (0..4)
                .map(|c| a_dense.get(row, c) * b_dense.get(row, c))
                .sum();
            assert_eq!(a_dense.row_dot(&b_dense, row), expect, "dense row {row}");
            assert_eq!(a_atomic.row_dot(&b_atomic, row), expect, "atomic row {row}");
        }
    }

    #[test]
    fn backend_conversion_preserves_cells() {
        let atomic = fill::<Atomic>();
        let dense: CounterMatrix<f64, Dense> = atomic.to_backend();
        assert_eq!(dense, atomic);
        let back: CounterMatrix<f64, Atomic> = dense.to_backend();
        assert_eq!(back, dense);
    }

    #[test]
    fn u16_cells_work_in_both_backends() {
        let mut d = CounterMatrix::<u16>::new(4, 1);
        let mut a = CounterMatrix::<u16, Atomic>::new(4, 1);
        for (i, delta) in [(0usize, 7u16), (1, 1), (0, 3)] {
            d.add(0, i, delta);
            a.add(0, i, delta);
        }
        assert_eq!(d.snapshot(), vec![10, 1, 0, 0]);
        assert_eq!(d, a);
        // Shared u16 adds go through the CAS path and wrap at 16 bits.
        a.add_shared(0, 0, u16::MAX);
        assert_eq!(a.get(0, 0), 10u16.wrapping_add(u16::MAX));
    }

    #[test]
    fn u32_cells_work_in_both_backends() {
        let mut d = CounterMatrix::<u32>::new(4, 1);
        let mut a = CounterMatrix::<u32, Atomic>::new(4, 1);
        for (i, delta) in [(0usize, 7u32), (1, 1), (0, 3)] {
            d.add(0, i, delta);
            a.add(0, i, delta);
        }
        assert_eq!(d.snapshot(), vec![10, 1, 0, 0]);
        assert_eq!(d, a);
        // Shared u32 adds go through the CAS path and wrap at 32 bits.
        a.add_shared(0, 0, u32::MAX);
        assert_eq!(a.get(0, 0), 10u32.wrapping_add(u32::MAX));
    }

    #[test]
    fn apply_rows_matches_per_item_adds() {
        // A synthetic derivation (item-dependent columns, row-dependent
        // increments) over enough items to cross several blocks; the
        // kernel must land bit-for-bit where the per-item loop does.
        fn derive(x: u64, delta: f64, cols: &mut [usize], vals: &mut [f64]) {
            for row in 0..cols.len() {
                cols[row] = ((x.wrapping_mul(row as u64 * 2 + 1)) % 16) as usize;
                vals[row] = delta * (row as f64 + 1.0);
            }
        }
        let items: Vec<(u64, f64)> = (0..1000u64).map(|x| (x * 7 + 3, 0.5 + x as f64)).collect();

        let mut kernel = CounterMatrix::<f64>::new(16, 3);
        kernel.apply_rows(&items, derive);

        let mut reference = CounterMatrix::<f64>::new(16, 3);
        let (mut cols, mut vals) = ([0usize; 3], [0f64; 3]);
        for &(x, delta) in &items {
            derive(x, delta, &mut cols, &mut vals);
            for row in 0..3 {
                reference.add(row, cols[row], vals[row]);
            }
        }
        assert_eq!(kernel.snapshot(), reference.snapshot());

        // Same through the Atomic backend's exclusive-access path.
        let mut atomic = CounterMatrix::<f64, Atomic>::new(16, 3);
        atomic.apply_rows(&items, derive);
        assert_eq!(atomic, reference);
    }

    #[test]
    fn apply_rows_prefetch_path_is_exact() {
        // A grid past the prefetch threshold (width 64Ki × depth 4 × 8B
        // = 2 MiB+) exercises the speculative-read sweep.
        let width = 1 << 16;
        let mut kernel = CounterMatrix::<u64>::new(width, 4);
        let mut reference = CounterMatrix::<u64>::new(width, 4);
        let items: Vec<(u64, u64)> = (0..600u64).map(|x| (x, 1 + x % 5)).collect();
        let derive = |x: u64, delta: u64, cols: &mut [usize], vals: &mut [u64]| {
            for row in 0..cols.len() {
                cols[row] =
                    (x.wrapping_mul(0x9E37_79B9_7F4A_7C15 + row as u64) >> 48) as usize % width;
                vals[row] = delta;
            }
        };
        kernel.apply_rows(&items, derive);
        let (mut cols, mut vals) = ([0usize; 4], [0u64; 4]);
        for &(x, delta) in &items {
            derive(x, delta, &mut cols, &mut vals);
            for row in 0..4 {
                reference.add(row, cols[row], vals[row]);
            }
        }
        assert_eq!(kernel.snapshot(), reference.snapshot());
    }

    #[test]
    fn apply_rows_empty_inputs_are_noops() {
        let mut m = CounterMatrix::<f64>::new(8, 2);
        m.apply_rows(&[], |_, _: f64, _, _| panic!("no items, no calls"));
        assert!(m.snapshot().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn i64_wrapping_matches_between_paths() {
        let mut m = CounterMatrix::<i64, Atomic>::new(1, 1);
        m.add(0, 0, i64::MAX);
        m.add_shared(0, 0, 1); // fetch_add wraps in two's complement
        assert_eq!(m.get(0, 0), i64::MIN);
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn from_cells_rejects_bad_shape() {
        let _ = CounterMatrix::<f64>::from_cells(3, 2, vec![0.0; 5]);
    }

    #[test]
    fn backend_labels() {
        assert_eq!(Dense::LABEL, "dense");
        assert_eq!(Atomic::LABEL, "atomic");
    }

    #[test]
    fn snapshot_into_refills_without_reallocating() {
        let src = fill::<Atomic>();
        let mut dst = CounterMatrix::<f64, Dense>::new(4, 3);
        src.snapshot_into(&mut dst);
        assert_eq!(dst, src);
        // Refill after the source moved on: same buffer, new values.
        let mut src2 = src.clone();
        src2.add(2, 1, 100.0);
        src2.snapshot_into(&mut dst);
        assert_eq!(dst.get(2, 1), src2.get(2, 1));
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn snapshot_into_rejects_shape_mismatch() {
        let src = CounterMatrix::<f64, Atomic>::new(4, 2);
        let mut dst = CounterMatrix::<f64, Dense>::new(2, 4);
        src.snapshot_into(&mut dst);
    }

    #[test]
    fn store_snapshot_into_matches_snapshot() {
        let m = fill::<Atomic>();
        let mut buf = Vec::new();
        m.store.snapshot_into(&mut buf);
        assert_eq!(buf, m.snapshot());
        // Dense override agrees with the cell-by-cell default.
        let d = fill::<Dense>();
        let mut buf2 = Vec::with_capacity(32);
        d.store.snapshot_into(&mut buf2);
        assert_eq!(buf2, d.snapshot());
    }

    #[test]
    fn epoch_counter_seqlock_protocol() {
        let e = EpochCounter::new();
        assert_eq!(e.read(), 0);
        assert!(!EpochCounter::is_write_open(e.read()));
        let odd = e.begin_write();
        assert_eq!(odd, 1);
        assert!(EpochCounter::is_write_open(e.read()));
        e.end_write();
        assert_eq!(e.read(), 2);
        assert!(!EpochCounter::is_write_open(e.read()));
    }

    #[test]
    fn clone_decouples_atomic_storage() {
        let m = fill::<Atomic>();
        let mut c = m.clone();
        c.add(0, 0, 100.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(c.get(0, 0), 100.0);
    }

    /// A synthetic block derivation matching `derive_item` below, in
    /// the row-major layout `apply_rows_blocked` expects.
    fn derive_block(block: &[(u64, f64)], cols: &mut [usize], vals: &mut [f64]) {
        let n = block.len();
        for (i, &(x, delta)) in block.iter().enumerate() {
            for row in 0..cols.len() / n {
                cols[row * n + i] = ((x.wrapping_mul(row as u64 * 2 + 1)) % 16) as usize;
                vals[row * n + i] = delta * (row as f64 + 1.0);
            }
        }
    }

    fn derive_item(x: u64, delta: f64, cols: &mut [usize], vals: &mut [f64]) {
        for row in 0..cols.len() {
            cols[row] = ((x.wrapping_mul(row as u64 * 2 + 1)) % 16) as usize;
            vals[row] = delta * (row as f64 + 1.0);
        }
    }

    #[test]
    fn apply_rows_blocked_matches_apply_rows() {
        let items: Vec<(u64, f64)> = (0..1000u64).map(|x| (x * 7 + 3, 1.0 + x as f64)).collect();
        let mut blocked = CounterMatrix::<f64>::new(16, 3);
        blocked.apply_rows_blocked(&items, derive_block);
        let mut per_item = CounterMatrix::<f64>::new(16, 3);
        per_item.apply_rows(&items, derive_item);
        let (a, b) = (blocked.snapshot(), per_item.snapshot());
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn apply_rows_shared_coalesces_to_sequential_result() {
        // Integer deltas over few buckets: heavy duplicate-cell
        // coalescing, compared bit-for-bit against sequential ingest,
        // across several blocks including a partial tail.
        let items: Vec<(u64, f64)> = (0..777u64)
            .map(|x| (x * 13 + 1, (1 + x % 9) as f64))
            .collect();
        let shared = CounterMatrix::<f64, Atomic>::new(16, 3);
        shared.apply_rows_shared(&items, derive_block);
        let mut sequential = CounterMatrix::<f64>::new(16, 3);
        let (mut cols, mut vals) = ([0usize; 3], [0f64; 3]);
        for &(x, delta) in &items {
            derive_item(x, delta, &mut cols, &mut vals);
            for row in 0..3 {
                sequential.add(row, cols[row], vals[row]);
            }
        }
        assert_eq!(
            shared
                .snapshot()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            sequential
                .snapshot()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn apply_rows_shared_is_safe_under_concurrency() {
        let m = CounterMatrix::<i64, Atomic>::new(8, 2);
        let items: Vec<(u64, i64)> = (0..512u64).map(|x| (x, 1)).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (m, items) = (&m, &items);
                scope.spawn(move || {
                    m.apply_rows_shared(items, |block, cols, vals| {
                        let n = block.len();
                        for (i, &(x, delta)) in block.iter().enumerate() {
                            for row in 0..2 {
                                cols[row * n + i] = ((x + row as u64) % 8) as usize;
                                vals[row * n + i] = delta;
                            }
                        }
                    });
                });
            }
        });
        let total: i64 = m.snapshot().iter().sum();
        assert_eq!(total, 4 * 512 * 2);
    }

    #[test]
    fn cell_grid_f64_matches_counter_matrix() {
        let mut g: CellGrid = CellGrid::new(8, 2, CellWidth::F64);
        assert_eq!(g.cell(), CellWidth::F64);
        assert_eq!((g.width(), g.depth(), g.len()), (8, 2, 16));
        g.add_f64(1, 3, 2.5);
        g.add_f64(1, 3, -0.5);
        assert_eq!(g.get_f64(1, 3), 2.0);
        g.set_f64(0, 0, -7.25);
        assert_eq!(g.get_f64(0, 0), -7.25);
        assert_eq!(g.row_snapshot_f64(1)[3], 2.0);
    }

    #[test]
    fn cell_grid_integer_cells_truncate_and_read_signed() {
        for cell in [
            CellWidth::I64,
            CellWidth::U64,
            CellWidth::U32,
            CellWidth::U16,
        ] {
            let mut g: CellGrid = CellGrid::new(4, 1, cell);
            g.add_f64(0, 0, 5.9); // truncates toward zero
            assert_eq!(g.get_f64(0, 0), 5.0, "{cell:?}");
            g.add_f64(0, 1, -3.0); // negative deltas live in two's complement
            assert_eq!(g.get_f64(0, 1), -3.0, "{cell:?}");
            g.add_f64(0, 1, 3.0);
            assert_eq!(g.get_f64(0, 1), 0.0, "{cell:?}");
        }
    }

    #[test]
    fn cell_grid_u16_wraps_at_width() {
        let mut g: CellGrid = CellGrid::new(2, 1, CellWidth::U16);
        g.add_f64(0, 0, 32_767.0);
        g.add_f64(0, 0, 1.0);
        // 0x8000 reads back as i16::MIN: the cell overflowed its width.
        assert_eq!(g.get_f64(0, 0), -32_768.0);
    }

    #[test]
    fn cell_grid_merge_subtract_and_dot() {
        for cell in [
            CellWidth::F64,
            CellWidth::I64,
            CellWidth::U32,
            CellWidth::U16,
        ] {
            let mut a: CellGrid = CellGrid::new(4, 2, cell);
            let mut b: CellGrid = CellGrid::new(4, 2, cell);
            a.add_f64(0, 1, 3.0);
            b.add_f64(0, 1, 4.0);
            b.add_f64(1, 2, 5.0);
            a.add_grid(&b);
            assert_eq!(a.get_f64(0, 1), 7.0, "{cell:?}");
            assert_eq!(a.row_dot_f64(&b, 0), 28.0, "{cell:?}");
            a.sub_grid(&b);
            assert_eq!(a.get_f64(0, 1), 3.0, "{cell:?}");
            assert_eq!(a.get_f64(1, 2), 0.0, "{cell:?}");
        }
    }

    #[test]
    #[should_panic(expected = "cell widths differ")]
    fn cell_grid_mixed_width_merge_panics() {
        let mut a: CellGrid = CellGrid::new(4, 1, CellWidth::F64);
        let b: CellGrid = CellGrid::new(4, 1, CellWidth::U32);
        a.add_grid(&b);
    }

    #[test]
    fn cell_grid_shared_and_snapshot_paths() {
        let g: CellGrid<Atomic> = CellGrid::new(4, 2, CellWidth::U32);
        g.add_shared_f64(0, 1, 41.0);
        g.add_shared_f64(0, 1, 1.0);
        assert_eq!(g.get_f64(0, 1), 42.0);

        let mut plane = CounterMatrix::<f64, Dense>::new(4, 2);
        plane.add(1, 2, -6.0);
        g.add_plane_shared(&plane);
        assert_eq!(g.get_f64(1, 2), -6.0);

        let mut dst = CounterMatrix::<f64, Dense>::new(4, 2);
        g.snapshot_into_f64(&mut dst);
        assert_eq!(dst.get(0, 1), 42.0);
        assert_eq!(dst.get(1, 2), -6.0);
        assert_eq!(g.to_dense_f64(), dst);
    }

    #[test]
    fn cell_grid_blocked_kernels_match_per_item_adds() {
        let items: Vec<(u64, f64)> = (0..700u64)
            .map(|x| (x * 3 + 5, (1 + x % 7) as f64))
            .collect();
        for cell in [
            CellWidth::F64,
            CellWidth::I64,
            CellWidth::U32,
            CellWidth::U16,
        ] {
            let mut blocked: CellGrid = CellGrid::new(16, 3, cell);
            blocked.apply_rows_blocked_f64(&items, derive_block);
            let shared: CellGrid<Atomic> = CellGrid::new(16, 3, cell);
            shared.apply_rows_shared_f64(&items, derive_block);

            let mut per_item: CellGrid = CellGrid::new(16, 3, cell);
            let (mut cols, mut vals) = ([0usize; 3], [0f64; 3]);
            for &(x, delta) in &items {
                derive_item(x, delta, &mut cols, &mut vals);
                for row in 0..3 {
                    per_item.add_f64(row, cols[row], vals[row]);
                }
            }
            assert!(blocked == per_item, "blocked vs per-item, {cell:?}");
            assert!(shared == per_item, "shared vs per-item, {cell:?}");
        }
    }

    #[cfg(feature = "serde")]
    #[test]
    fn cell_grid_f64_serde_is_legacy_counter_matrix_format() {
        let mut m = CounterMatrix::<f64, Dense>::new(3, 2);
        m.add(1, 2, 4.5);
        let g = CellGrid::<Dense>::F64(m.clone());
        // Byte-identical to the bare matrix's wire form...
        assert_eq!(
            serde_json::to_string(&g).unwrap(),
            serde_json::to_string(&m).unwrap()
        );
        // ...and a legacy matrix snapshot deserializes as an f64 grid.
        let back: CellGrid = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(back.cell(), CellWidth::F64);
        assert!(back == g);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn cell_grid_compact_serde_roundtrips() {
        for cell in [
            CellWidth::I64,
            CellWidth::U64,
            CellWidth::U32,
            CellWidth::U16,
        ] {
            let mut g: CellGrid = CellGrid::new(3, 2, cell);
            g.add_f64(0, 1, 7.0);
            g.add_f64(1, 2, -2.0);
            let json = serde_json::to_string(&g).unwrap();
            assert!(json.contains("\"cell\""), "{json}");
            let back: CellGrid = serde_json::from_str(&json).unwrap();
            assert_eq!(back.cell(), cell);
            assert!(back == g, "{cell:?}");
            // The same snapshot loads into the Atomic backend too.
            let shared: CellGrid<Atomic> = serde_json::from_str(&json).unwrap();
            assert!(shared == g, "{cell:?}");
        }
    }

    #[test]
    fn cell_width_labels_and_bytes() {
        assert_eq!(CellWidth::default(), CellWidth::F64);
        assert_eq!(CellWidth::F64.label(), "f64");
        assert_eq!(CellWidth::U32.bytes(), 4);
        assert_eq!(CellWidth::U16.bytes(), 2);
        assert_eq!(CellWidth::I64.bytes(), 8);
    }
}
