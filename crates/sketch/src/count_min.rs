//! Count-Min with plain and conservative update policies.

use crate::snapshot::Snapshottable;
use crate::storage::{CellGrid, CounterBackend, CounterMatrix, Dense, SharedBackend};
use crate::traits::{
    MergeError, MergeableSketch, PointQuerySketch, Reseedable, SharedSketch, SketchParams,
};
use crate::util::MEDIAN_SCRATCH_DEPTH;
use bas_hash::{AnyBucketHasher, BucketHasher, HashFamily, RowDeriver, SplitMix64};

/// Update policy for [`CountMin`].
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdatePolicy {
    /// Plain Count-Min: every row's bucket receives the full delta.
    /// Linear, mergeable.
    #[default]
    Plain,
    /// Conservative update (Estan & Varghese; CM-CU in the paper's
    /// experiments): each bucket is raised only as far as needed —
    /// `c_i ← max(c_i, est + Δ)` where `est` is the pre-update minimum.
    /// Strictly reduces over-estimation but breaks linearity, so CM-CU
    /// "cannot be directly used in the distributed setting" (paper §2).
    Conservative,
}

/// The Count-Min sketch of Cormode & Muthukrishnan, with the
/// conservative-update variant used as the CM-CU baseline in the paper.
///
/// Point queries return the **minimum** of the `d` bucket counters, which
/// for non-negative vectors over-estimates:
/// `x_j ≤ x̂_j ≤ x_j + ε‖x‖₁` with `ε = e/s`, w.p. `1 − e^{-d}`.
///
/// Both policies require the **cash-register** model: updates must have
/// `Δ ≥ 0` (negative deltas panic). The paper does not bench plain
/// Count-Min because CM-CU dominates it; we keep both for completeness
/// and for the linearity/merging tests.
///
/// Counters live in a [`CounterMatrix`] whose backend `B` is a type
/// parameter. Under the `Atomic` backend the **plain** policy
/// additionally implements [`SharedSketch`] (lock-free shared ingest);
/// conservative update cannot — its bump depends on the pre-update
/// minimum across all rows, a read-modify-write cycle that per-counter
/// atomicity cannot express (the same state dependence that breaks
/// linearity).
///
/// ```
/// use bas_sketch::{CountMin, PointQuerySketch, SketchParams, UpdatePolicy};
///
/// let params = SketchParams::new(1_000, 128, 5).with_seed(17);
/// let mut cm = CountMin::new(&params, UpdatePolicy::Plain);
/// cm.update(4, 5.0);
/// cm.update_batch(&[(4, 2.0), (8, 3.0)]); // cash-register batch
/// // Count-Min never under-estimates; sparse input keeps it exact here.
/// assert_eq!(cm.estimate(4), 7.0);
/// assert_eq!(cm.estimate(8), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct CountMin<B: CounterBackend = Dense> {
    params: SketchParams,
    policy: UpdatePolicy,
    grid: CellGrid<B>,
    hashers: Vec<AnyBucketHasher>,
}

#[cfg(feature = "serde")]
crate::impl_backend_serde!(CountMin {
    params,
    policy,
    grid,
    hashers
});

impl CountMin {
    /// Creates an empty Count-Min sketch with the given update policy
    /// and the default [`Dense`] backend.
    pub fn new(params: &SketchParams, policy: UpdatePolicy) -> Self {
        Self::with_backend(params, policy)
    }

    /// Convenience constructor for the conservative-update baseline.
    pub fn conservative(params: &SketchParams) -> Self {
        Self::new(params, UpdatePolicy::Conservative)
    }
}

impl<B: CounterBackend> CountMin<B> {
    /// Creates an empty Count-Min sketch with an explicit counter
    /// backend.
    pub fn with_backend(params: &SketchParams, policy: UpdatePolicy) -> Self {
        let mut seeder = SplitMix64::new(params.seed ^ 0xC0DE_0003);
        let mut family = HashFamily::new(params.hash_kind, &mut seeder, params.width);
        let hashers = family.sample_many(params.depth);
        let width = family.buckets();
        let mut params = *params;
        params.width = width;
        Self {
            params,
            policy,
            grid: CellGrid::new(width, params.depth, params.cell),
            hashers,
        }
    }

    /// The update policy in effect.
    pub fn policy(&self) -> UpdatePolicy {
        self.policy
    }

    /// The parameters the sketch was built with.
    pub fn params(&self) -> &SketchParams {
        &self.params
    }

    /// Estimates the inner product `⟨x, y⟩` of two non-negative vectors
    /// from their plain Count-Min sketches (Cormode–Muthukrishnan): each
    /// row's dot product `Σ_b A_i[b]·B_i[b]` over-estimates, so the
    /// minimum over rows is the tightest upper bound — the classic
    /// join-size estimator.
    ///
    /// # Errors
    /// Returns a [`MergeError`] if the sketches are incompatible or
    /// either uses conservative update (whose counters are not sums).
    pub fn inner_product(&self, other: &Self) -> Result<f64, MergeError> {
        if self.policy != UpdatePolicy::Plain || other.policy != UpdatePolicy::Plain {
            return Err(MergeError::ShapeMismatch {
                what: "update policies (CU counters are not additive)",
            });
        }
        if self.params.width != other.params.width || self.params.depth != other.params.depth {
            return Err(MergeError::ShapeMismatch {
                what: "widths/depths",
            });
        }
        if self.params.cell != other.params.cell {
            return Err(MergeError::ShapeMismatch {
                what: "cell widths",
            });
        }
        if self.params.seed != other.params.seed || self.params.hash_kind != other.params.hash_kind
        {
            return Err(MergeError::SeedMismatch);
        }
        let best = (0..self.params.depth)
            .map(|row| self.grid.row_dot_f64(&other.grid, row))
            .fold(f64::INFINITY, f64::min);
        Ok(best)
    }

    #[inline]
    fn min_over_rows(&self, item: u64) -> f64 {
        let mut best = f64::INFINITY;
        for (row, h) in self.hashers.iter().enumerate() {
            let v = self.grid.get_f64(row, h.bucket(item));
            if v < best {
                best = v;
            }
        }
        best
    }

    #[inline]
    fn validate_delta(delta: f64) {
        assert!(
            delta >= 0.0,
            "Count-Min requires the cash-register model (delta >= 0), got {delta}"
        );
    }
}

impl<B: CounterBackend> Reseedable for CountMin<B> {
    fn config(&self) -> SketchParams {
        self.params
    }

    /// The reseeded sketch keeps the update policy (Plain vs CU).
    fn reseeded(&self, seed: u64) -> Self {
        Self::with_backend(&self.params.with_seed(seed), self.policy)
    }
}

impl<B: CounterBackend> PointQuerySketch for CountMin<B> {
    #[inline]
    fn update(&mut self, item: u64, delta: f64) {
        debug_assert!(item < self.params.n, "item outside universe");
        Self::validate_delta(delta);
        match self.policy {
            UpdatePolicy::Plain => {
                for (row, h) in self.hashers.iter().enumerate() {
                    self.grid.add_f64(row, h.bucket(item), delta);
                }
            }
            UpdatePolicy::Conservative => {
                // Hash each row once: the same indices feed the
                // pre-update minimum and the raise pass (previously the
                // raise pass re-evaluated every row hash).
                let depth = self.params.depth;
                let mut scratch = [0usize; MEDIAN_SCRATCH_DEPTH];
                let mut spill;
                let buckets: &mut [usize] = if depth <= MEDIAN_SCRATCH_DEPTH {
                    &mut scratch[..depth]
                } else {
                    spill = vec![0usize; depth];
                    &mut spill
                };
                let mut target = f64::INFINITY;
                for (row, h) in self.hashers.iter().enumerate() {
                    let b = h.bucket(item);
                    buckets[row] = b;
                    let v = self.grid.get_f64(row, b);
                    if v < target {
                        target = v;
                    }
                }
                target += delta;
                for (row, &b) in buckets.iter().enumerate() {
                    if self.grid.get_f64(row, b) < target {
                        self.grid.set_f64(row, b, target);
                    }
                }
            }
        }
    }

    /// Batch update. [`UpdatePolicy::Plain`] takes the blocked
    /// row-major kernel ([`CellGrid::apply_rows_blocked_f64`], SIMD
    /// batch lane when active) on one-hash rows and the
    /// dispatch-hoisted fast path of [`bas_hash::bucket_rows_each`]
    /// otherwise; [`UpdatePolicy::Conservative`] necessarily stays
    /// item-by-item because each bump depends on the pre-update
    /// minimum across all rows — exactly the state dependence that
    /// also breaks linearity. Both policies validate the whole batch
    /// before touching any counter, and both are bit-for-bit
    /// equivalent to the one-by-one loop on valid (non-negative)
    /// input.
    fn update_batch(&mut self, items: &[(u64, f64)]) {
        for &(item, delta) in items {
            debug_assert!(item < self.params.n, "item outside universe");
            Self::validate_delta(delta);
        }
        match self.policy {
            UpdatePolicy::Plain => {
                if let Some(rd) = RowDeriver::from_hashers(&self.hashers) {
                    let derive = crate::util::onehash_block_derive(&rd, self.params.depth);
                    self.grid.apply_rows_blocked_f64(items, derive);
                    return;
                }
                let grid = &mut self.grid;
                bas_hash::bucket_rows_each(&self.hashers, items, |row, _, b, delta: f64| {
                    grid.add_f64(row, b, delta);
                });
            }
            UpdatePolicy::Conservative => {
                for &(item, delta) in items {
                    self.update(item, delta);
                }
            }
        }
    }

    fn estimate(&self, item: u64) -> f64 {
        self.min_over_rows(item)
    }

    fn universe(&self) -> u64 {
        self.params.n
    }

    fn size_in_words(&self) -> usize {
        self.grid.len()
    }

    fn label(&self) -> &'static str {
        match self.policy {
            UpdatePolicy::Plain => "CMin",
            UpdatePolicy::Conservative => "CM-CU",
        }
    }
}

impl<B: SharedBackend> SharedSketch for CountMin<B> {
    /// # Panics
    /// Panics for [`UpdatePolicy::Conservative`] — conservative update
    /// is a cross-counter read-modify-write and has no lock-free form.
    #[inline]
    fn update_shared(&self, item: u64, delta: f64) {
        debug_assert!(item < self.params.n, "item outside universe");
        Self::validate_delta(delta);
        assert!(
            self.policy == UpdatePolicy::Plain,
            "conservative update is state-dependent and cannot be applied through a shared reference"
        );
        for (row, h) in self.hashers.iter().enumerate() {
            self.grid.add_shared_f64(row, h.bucket(item), delta);
        }
    }

    /// Shared batched update through the coalescing kernel
    /// [`CellGrid::apply_rows_shared_f64`] (plain policy only):
    /// duplicate hits on one cell collapse into a single atomic RMW
    /// per block, summed in item order.
    fn update_batch_shared(&self, items: &[(u64, f64)]) {
        assert!(
            self.policy == UpdatePolicy::Plain,
            "conservative update is state-dependent and cannot be applied through a shared reference"
        );
        for &(item, delta) in items {
            debug_assert!(item < self.params.n, "item outside universe");
            Self::validate_delta(delta);
        }
        if let Some(rd) = RowDeriver::from_hashers(&self.hashers) {
            let derive = crate::util::onehash_block_derive(&rd, self.params.depth);
            self.grid.apply_rows_shared_f64(items, derive);
            return;
        }
        let derive = crate::util::hashed_block_derive(&self.hashers);
        self.grid.apply_rows_shared_f64(items, derive);
    }
}

impl<B: CounterBackend> Snapshottable for CountMin<B> {
    type Snapshot = CounterMatrix<f64, Dense>;

    fn make_snapshot(&self) -> Self::Snapshot {
        CounterMatrix::new(self.params.width, self.params.depth)
    }

    fn snapshot_into(&self, snap: &mut Self::Snapshot) {
        self.grid.snapshot_into_f64(snap);
    }

    /// Min-over-rows from the frozen counters. Works for both update
    /// policies — queries only read.
    fn estimate_in(&self, snap: &Self::Snapshot, item: u64) -> f64 {
        let mut best = f64::INFINITY;
        for (row, h) in self.hashers.iter().enumerate() {
            let v = snap.get(row, h.bucket(item));
            if v < best {
                best = v;
            }
        }
        best
    }

    /// Snapshots add only under [`UpdatePolicy::Plain`]; conservative
    /// counters are running maxima, not sums.
    fn merge_snapshot(
        &self,
        snap: &mut Self::Snapshot,
        other: &Self::Snapshot,
    ) -> Result<(), MergeError> {
        if self.policy != UpdatePolicy::Plain {
            return Err(MergeError::ShapeMismatch {
                what: "update policies (conservative update is not linear)",
            });
        }
        snap.add_matrix(other);
        Ok(())
    }

    /// Subtracts cumulative snapshots. Under [`UpdatePolicy::Plain`]
    /// the counters are sums and the result is **exact** window
    /// arithmetic; under [`UpdatePolicy::Conservative`] the counters
    /// are running maxima, so the difference of two cumulative CU
    /// snapshots is only an **approximation** of the window's counters
    /// (it can under-estimate, forfeiting Count-Min's one-sided
    /// guarantee). CU subtraction is allowed — bounded-lifetime
    /// rotation is still meaningful — but documented approximate-only;
    /// pick a linear sketch when windows must be exact.
    fn subtract_snapshot(
        &self,
        snap: &mut Self::Snapshot,
        other: &Self::Snapshot,
    ) -> Result<(), MergeError> {
        snap.sub_matrix(other);
        Ok(())
    }
}

/// Planes absorb only under [`UpdatePolicy::Plain`] — conservative
/// counters are running maxima, not sums, so a shipped CU plane cannot
/// be reproduced by addition (mirrors
/// [`merge_snapshot`](Snapshottable::merge_snapshot)).
impl<B: SharedBackend> crate::snapshot::AbsorbPlane for CountMin<B> {
    fn absorb_plane_shared(&self, plane: &Self::Snapshot) -> Result<(), MergeError> {
        if self.policy != UpdatePolicy::Plain {
            return Err(MergeError::ShapeMismatch {
                what: "update policies (conservative update is not linear)",
            });
        }
        self.grid.add_plane_shared(plane);
        Ok(())
    }
}

impl<B: CounterBackend> CountMin<B> {
    fn check_compatible(&self, other: &Self) -> Result<(), MergeError> {
        if self.params.width != other.params.width || self.params.depth != other.params.depth {
            return Err(MergeError::ShapeMismatch {
                what: "widths/depths",
            });
        }
        if self.params.n != other.params.n {
            return Err(MergeError::ShapeMismatch { what: "universes" });
        }
        if self.params.cell != other.params.cell {
            return Err(MergeError::ShapeMismatch {
                what: "cell widths",
            });
        }
        if self.params.seed != other.params.seed || self.params.hash_kind != other.params.hash_kind
        {
            return Err(MergeError::SeedMismatch);
        }
        Ok(())
    }
}

impl<B: CounterBackend> MergeableSketch for CountMin<B> {
    /// Only the [`UpdatePolicy::Plain`] variant is linear; merging a
    /// conservative-update sketch returns a shape error to prevent the
    /// silent accuracy loss the paper warns about.
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.policy != UpdatePolicy::Plain || other.policy != UpdatePolicy::Plain {
            return Err(MergeError::ShapeMismatch {
                what: "update policies (conservative update is not linear)",
            });
        }
        self.check_compatible(other)?;
        self.grid.add_grid(&other.grid);
        Ok(())
    }

    /// Counter subtraction: exact under [`UpdatePolicy::Plain`],
    /// **approximate only** under [`UpdatePolicy::Conservative`] (see
    /// [`Snapshottable::subtract_snapshot`] on this type for why CU
    /// differences merely approximate the window).
    fn subtract_from(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.policy != other.policy {
            return Err(MergeError::ShapeMismatch {
                what: "update policies",
            });
        }
        self.check_compatible(other)?;
        self.grid.sub_grid(&other.grid);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Atomic;

    fn params(n: u64, w: usize, d: usize) -> SketchParams {
        SketchParams::new(n, w, d).with_seed(17)
    }

    #[test]
    fn never_underestimates() {
        let n = 500u64;
        let mut cm = CountMin::new(&params(n, 32, 4), UpdatePolicy::Plain);
        let mut cu = CountMin::conservative(&params(n, 32, 4));
        let x: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
        cm.ingest_vector(&x);
        cu.ingest_vector(&x);
        for j in 0..n {
            assert!(cm.estimate(j) >= x[j as usize] - 1e-9, "plain item {j}");
            assert!(cu.estimate(j) >= x[j as usize] - 1e-9, "cu item {j}");
        }
    }

    #[test]
    fn snapshot_estimates_match_live_for_both_policies() {
        let p = params(400, 32, 4);
        for policy in [UpdatePolicy::Plain, UpdatePolicy::Conservative] {
            let mut cm = CountMin::new(&p, policy);
            let items: Vec<(u64, f64)> =
                (0..600u64).map(|i| (i * 7 % 400, (i % 4) as f64)).collect();
            cm.update_batch(&items);
            let snap = cm.snapshot();
            for j in 0..400u64 {
                assert_eq!(
                    cm.estimate_in(&snap, j),
                    cm.estimate(j),
                    "{policy:?} item {j}"
                );
            }
        }
    }

    #[test]
    fn snapshot_merge_respects_linearity_rules() {
        let p = params(100, 16, 3);
        let mut plain = CountMin::new(&p, UpdatePolicy::Plain);
        let mut other = CountMin::new(&p, UpdatePolicy::Plain);
        plain.update(3, 2.0);
        other.update(3, 5.0);
        let mut snap = plain.snapshot();
        plain.merge_snapshot(&mut snap, &other.snapshot()).unwrap();
        assert_eq!(plain.estimate_in(&snap, 3), 7.0);

        let cu = CountMin::conservative(&p);
        let mut cu_snap = cu.snapshot();
        let cu_other = cu.snapshot();
        assert!(cu.merge_snapshot(&mut cu_snap, &cu_other).is_err());
    }

    #[test]
    fn conservative_dominates_plain() {
        // CU estimates are pointwise <= plain CM estimates on the same
        // stream with the same hash functions.
        let n = 2000u64;
        let p = params(n, 64, 4);
        let mut plain = CountMin::new(&p, UpdatePolicy::Plain);
        let mut cons = CountMin::new(&p, UpdatePolicy::Conservative);
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 17) as f64).collect();
        plain.ingest_vector(&x);
        cons.ingest_vector(&x);
        for j in 0..n {
            assert!(
                cons.estimate(j) <= plain.estimate(j) + 1e-9,
                "item {j}: cu {} > plain {}",
                cons.estimate(j),
                plain.estimate(j)
            );
        }
    }

    #[test]
    fn exact_when_no_collisions() {
        let mut cm = CountMin::new(&params(4, 64, 4), UpdatePolicy::Plain);
        cm.update(0, 5.0);
        cm.update(1, 7.0);
        assert_eq!(cm.estimate(0), 5.0);
        assert_eq!(cm.estimate(1), 7.0);
    }

    #[test]
    #[should_panic(expected = "cash-register")]
    fn negative_delta_panics() {
        let mut cm = CountMin::new(&params(10, 8, 2), UpdatePolicy::Plain);
        cm.update(0, -1.0);
    }

    #[test]
    fn update_batch_matches_one_by_one_both_policies() {
        for policy in [UpdatePolicy::Plain, UpdatePolicy::Conservative] {
            let p = params(200, 16, 4);
            let mut batched = CountMin::new(&p, policy);
            let mut looped = CountMin::new(&p, policy);
            let items: Vec<(u64, f64)> =
                (0..300u64).map(|i| (i * 3 % 200, (i % 7) as f64)).collect();
            batched.update_batch(&items);
            for &(i, d) in &items {
                looped.update(i, d);
            }
            for j in 0..200u64 {
                assert_eq!(batched.estimate(j), looped.estimate(j), "{policy:?} {j}");
            }
        }
    }

    #[test]
    fn atomic_backend_matches_dense_both_policies() {
        for policy in [UpdatePolicy::Plain, UpdatePolicy::Conservative] {
            let p = params(200, 16, 4);
            let mut dense = CountMin::new(&p, policy);
            let mut atomic = CountMin::<Atomic>::with_backend(&p, policy);
            let items: Vec<(u64, f64)> =
                (0..300u64).map(|i| (i * 3 % 200, (i % 7) as f64)).collect();
            dense.update_batch(&items);
            atomic.update_batch(&items);
            for j in 0..200u64 {
                assert_eq!(dense.estimate(j), atomic.estimate(j), "{policy:?} {j}");
            }
        }
    }

    #[test]
    fn shared_updates_match_exclusive_for_plain() {
        let p = params(200, 16, 4);
        let mut exclusive = CountMin::<Atomic>::with_backend(&p, UpdatePolicy::Plain);
        let shared = CountMin::<Atomic>::with_backend(&p, UpdatePolicy::Plain);
        let items: Vec<(u64, f64)> = (0..300u64).map(|i| (i % 200, (i % 7) as f64)).collect();
        for &(i, d) in &items {
            exclusive.update(i, d);
        }
        shared.update_batch_shared(&items);
        for j in 0..200u64 {
            assert_eq!(exclusive.estimate(j), shared.estimate(j), "item {j}");
        }
    }

    #[test]
    #[should_panic(expected = "shared reference")]
    fn shared_update_rejects_conservative() {
        let cu = CountMin::<Atomic>::with_backend(&params(10, 8, 2), UpdatePolicy::Conservative);
        cu.update_shared(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "cash-register")]
    fn batch_negative_delta_panics() {
        let mut cm = CountMin::new(&params(10, 8, 2), UpdatePolicy::Plain);
        cm.update_batch(&[(0, 1.0), (1, -2.0)]);
    }

    #[test]
    fn plain_merge_equals_combined() {
        let p = params(100, 16, 3);
        let mut a = CountMin::new(&p, UpdatePolicy::Plain);
        let mut b = CountMin::new(&p, UpdatePolicy::Plain);
        let mut c = CountMin::new(&p, UpdatePolicy::Plain);
        for i in 0..100u64 {
            a.update(i, 1.0);
            b.update(i, 2.0);
            c.update(i, 3.0);
        }
        a.merge_from(&b).unwrap();
        for j in 0..100u64 {
            assert_eq!(a.estimate(j), c.estimate(j));
        }
    }

    #[test]
    fn conservative_merge_rejected() {
        let p = params(10, 8, 2);
        let mut a = CountMin::conservative(&p);
        let b = CountMin::conservative(&p);
        assert!(matches!(
            a.merge_from(&b),
            Err(MergeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn inner_product_upper_bounds_join_size() {
        let n = 2000u64;
        let p = params(n, 256, 5);
        let mut a = CountMin::new(&p, UpdatePolicy::Plain);
        let mut b = CountMin::new(&p, UpdatePolicy::Plain);
        // Two relations joining on keys 0..50.
        for i in 0..50u64 {
            a.update(i, 4.0);
            b.update(i, 3.0);
        }
        for i in 500..600u64 {
            a.update(i, 2.0); // no join partner
        }
        let truth = 50.0 * 4.0 * 3.0;
        let est = a.inner_product(&b).unwrap();
        assert!(est >= truth - 1e-9, "never underestimates");
        assert!(est <= truth * 1.3 + 10.0, "est = {est} vs {truth}");
    }

    #[test]
    fn inner_product_rejects_cu() {
        let p = params(10, 8, 2);
        let a = CountMin::conservative(&p);
        let b = CountMin::conservative(&p);
        assert!(a.inner_product(&b).is_err());
    }

    #[test]
    fn labels() {
        let p = params(10, 8, 2);
        assert_eq!(CountMin::new(&p, UpdatePolicy::Plain).label(), "CMin");
        assert_eq!(CountMin::conservative(&p).label(), "CM-CU");
    }

    #[test]
    fn conservative_update_order_insensitive_totals() {
        // CU is order-dependent in general, but single-update-per-item
        // streams must still produce upper bounds regardless of order.
        let n = 50u64;
        let p = params(n, 8, 3);
        let x: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let mut fwd = CountMin::conservative(&p);
        for i in 0..n {
            fwd.update(i, x[i as usize]);
        }
        let mut rev = CountMin::conservative(&p);
        for i in (0..n).rev() {
            rev.update(i, x[i as usize]);
        }
        for j in 0..n {
            assert!(fwd.estimate(j) >= x[j as usize]);
            assert!(rev.estimate(j) >= x[j as usize]);
        }
    }
}
