//! Count-Sketch: CS-matrix sketching with signed median recovery.

use crate::snapshot::Snapshottable;
use crate::storage::{CellGrid, CounterBackend, CounterMatrix, Dense, SharedBackend};
use crate::traits::{
    MergeError, MergeableSketch, PointQuerySketch, Reseedable, SharedSketch, SketchParams,
};
use crate::util::median_of_rows;
use bas_hash::{
    AnyBucketHasher, BucketHasher, HashFamily, RowDeriver, SignHash, SignHasher, SplitMix64,
};

/// One row's sign for `item`. One-hash rows carry their own sign
/// channel derived from the shared digest (so batch kernels get signs
/// for free); every other family uses the row's sampled [`SignHash`].
/// The constructor samples the `SignHash` vector identically for all
/// kinds, so seeding streams and the serialized layout never change.
#[inline]
fn row_sign(hasher: &AnyBucketHasher, sign: &SignHash, item: u64) -> i8 {
    match hasher {
        AnyBucketHasher::Derived(r) => r.sign(item),
        _ => sign.sign(item),
    }
}

/// The Count-Sketch of Charikar, Chen & Farach-Colton (paper, Theorem 2).
///
/// Each row pairs a bucket hash `h_i` with a pairwise-independent sign
/// `r_i : [n] → {−1, +1}` (the CS-matrix of Definition 2); a point query
/// returns
///
/// ```text
/// x̂_j = median_{i ∈ [d]} r_i(j)·( Ψ(h_i, r_i)·x )_{h_i(j)}
/// ```
///
/// With `s = Θ(k/α)`, `d = Θ(log n)` this achieves
/// `‖x̂ − x‖∞ ≤ α/√k · Err_2^k(x)` w.p. `1 − 1/n` — the `ℓ∞/ℓ2` guarantee
/// that the bias-aware `ℓ2`-S/R strictly improves on biased inputs.
/// Linear, so it merges and works in the distributed model.
///
/// Counters live in a [`CounterMatrix`] whose backend `B` is a type
/// parameter: [`Dense`] (the default) for classical exclusive ingest,
/// `CountSketch<Atomic>` (alias
/// [`AtomicCountSketch`](crate::AtomicCountSketch)) for lock-free
/// [`SharedSketch`] ingest into one shared sketch.
///
/// ```
/// use bas_sketch::{CountSketch, PointQuerySketch, SketchParams};
///
/// let params = SketchParams::new(1_000, 128, 7).with_seed(7);
/// let mut cs = CountSketch::new(&params);
/// cs.update(42, 9.0);
/// cs.update_batch(&[(42, 1.0), (9, -2.0)]); // turnstile batch
/// assert_eq!(cs.estimate(42), 10.0);        // sparse input: exact
/// assert_eq!(cs.estimate(9), -2.0);
/// ```
#[derive(Debug, Clone)]
pub struct CountSketch<B: CounterBackend = Dense> {
    params: SketchParams,
    grid: CellGrid<B>,
    hashers: Vec<AnyBucketHasher>,
    signs: Vec<SignHash>,
}

#[cfg(feature = "serde")]
crate::impl_backend_serde!(CountSketch {
    params,
    grid,
    hashers,
    signs
});

impl CountSketch {
    /// Creates an empty Count-Sketch with the default [`Dense`] backend.
    pub fn new(params: &SketchParams) -> Self {
        Self::with_backend(params)
    }
}

impl<B: CounterBackend> CountSketch<B> {
    /// Creates an empty Count-Sketch with an explicit counter backend
    /// (e.g. `CountSketch::<Atomic>::with_backend` for lock-free shared
    /// ingest).
    pub fn with_backend(params: &SketchParams) -> Self {
        let mut seeder = SplitMix64::new(params.seed ^ 0xC0DE_0002);
        let mut family = HashFamily::new(params.hash_kind, &mut seeder, params.width);
        let hashers = family.sample_many(params.depth);
        let signs = (0..params.depth)
            .map(|_| SignHash::sample(&mut seeder))
            .collect();
        let width = family.buckets();
        let mut params = *params;
        params.width = width;
        Self {
            params,
            grid: CellGrid::new(width, params.depth, params.cell),
            hashers,
            signs,
        }
    }

    /// The parameters the sketch was built with.
    pub fn params(&self) -> &SketchParams {
        &self.params
    }

    /// Raw signed bucket sum `(Ψ(h_row, r_row)·x)[bucket]`.
    #[inline]
    pub fn bucket_value(&self, row: usize, bucket: usize) -> f64 {
        self.grid.get_f64(row, bucket)
    }

    /// The bucket the item hashes to in a given row.
    #[inline]
    pub fn bucket_of(&self, row: usize, item: u64) -> usize {
        self.hashers[row].bucket(item)
    }

    /// The sign the item carries in a given row.
    #[inline]
    pub fn sign_of(&self, row: usize, item: u64) -> f64 {
        row_sign(&self.hashers[row], &self.signs[row], item) as f64
    }

    /// Estimates the inner product `⟨x, y⟩` from two Count-Sketches of
    /// `x` and `y` built with identical parameters: each row's dot
    /// product `Σ_b A_i[b]·B_i[b]` is an unbiased estimator (the random
    /// signs cancel cross terms), and the median over rows concentrates
    /// it — the join-size / correlation application of sketches.
    ///
    /// # Errors
    /// Returns a [`MergeError`] when the sketches are not compatible.
    pub fn inner_product(&self, other: &Self) -> Result<f64, MergeError> {
        if self.params.width != other.params.width || self.params.depth != other.params.depth {
            return Err(MergeError::ShapeMismatch {
                what: "widths/depths",
            });
        }
        if self.params.cell != other.params.cell {
            return Err(MergeError::ShapeMismatch {
                what: "cell widths",
            });
        }
        if self.params.seed != other.params.seed || self.params.hash_kind != other.params.hash_kind
        {
            return Err(MergeError::SeedMismatch);
        }
        Ok(median_of_rows(self.params.depth, |row| {
            self.grid.row_dot_f64(&other.grid, row)
        }))
    }

    /// [`inner_product`](CountSketch::inner_product) over **frozen
    /// snapshots**: estimates `⟨x, y⟩` from epoch-consistent copies of
    /// two compatible Count-Sketches, so the estimate is not smeared by
    /// writers feeding either sketch mid-query. `other` may use a
    /// different storage backend — only the hash configuration must
    /// match.
    ///
    /// # Errors
    /// Returns a [`MergeError`] when the sketches are not compatible.
    ///
    /// # Panics
    /// Panics if a snapshot's shape does not match its sketch.
    pub fn inner_product_in<B2: CounterBackend>(
        &self,
        mine: &CounterMatrix<f64, Dense>,
        other: &CountSketch<B2>,
        theirs: &CounterMatrix<f64, Dense>,
    ) -> Result<f64, MergeError> {
        if self.params.width != other.params.width || self.params.depth != other.params.depth {
            return Err(MergeError::ShapeMismatch {
                what: "widths/depths",
            });
        }
        if self.params.seed != other.params.seed || self.params.hash_kind != other.params.hash_kind
        {
            return Err(MergeError::SeedMismatch);
        }
        assert_eq!(mine.width(), self.params.width, "snapshot width mismatch");
        assert_eq!(
            theirs.width(),
            other.params.width,
            "snapshot width mismatch"
        );
        Ok(median_of_rows(self.params.depth, |row| {
            mine.row_dot(theirs, row)
        }))
    }

    /// Per-bucket **signed** column sums `ψ_i` of each CS-matrix:
    /// `ψ_i[b] = Σ_{j : h_i(j)=b} r_i(j)` (paper, Algorithm 4 line 3),
    /// returned as a `depth × width` [`CounterMatrix`]. Needed by the
    /// `ℓ2` bias-aware recovery to de-bias buckets. Costs `O(n·d)`; the
    /// caller caches it.
    pub fn signed_column_sums(&self) -> CounterMatrix<f64> {
        let mut psis = CounterMatrix::<f64>::new(self.params.width, self.params.depth);
        for j in 0..self.params.n {
            for (row, h) in self.hashers.iter().enumerate() {
                psis.add(row, h.bucket(j), row_sign(h, &self.signs[row], j) as f64);
            }
        }
        psis
    }
}

impl<B: CounterBackend> Reseedable for CountSketch<B> {
    fn config(&self) -> SketchParams {
        self.params
    }

    fn reseeded(&self, seed: u64) -> Self {
        Self::with_backend(&self.params.with_seed(seed))
    }
}

impl<B: CounterBackend> PointQuerySketch for CountSketch<B> {
    #[inline]
    fn update(&mut self, item: u64, delta: f64) {
        debug_assert!(item < self.params.n, "item outside universe");
        for row in 0..self.params.depth {
            let b = self.hashers[row].bucket(item);
            let s = row_sign(&self.hashers[row], &self.signs[row], item) as f64;
            self.grid.add_f64(row, b, s * delta);
        }
    }

    /// Batched update. One-hash rows route through the blocked
    /// row-major kernel [`CellGrid::apply_rows_blocked_f64`] — one
    /// digest per item (SIMD batch lane when active) yields every
    /// row's bucket *and* sign, then the signed writes sweep row by
    /// row per block. Other families go through
    /// [`bas_hash::bucket_rows_each`]: family dispatched once for the
    /// whole batch, inner item×row loop (bucket hash + sign flip +
    /// add) fully monomorphized. Both paths are bit-for-bit identical
    /// to the one-by-one loop.
    fn update_batch(&mut self, items: &[(u64, f64)]) {
        #[cfg(debug_assertions)]
        for &(item, _) in items {
            debug_assert!(item < self.params.n, "item outside universe");
        }
        if let Some(rd) = RowDeriver::from_hashers(&self.hashers) {
            let derive = crate::util::onehash_signed_block_derive(&rd, self.params.depth);
            self.grid.apply_rows_blocked_f64(items, derive);
            return;
        }
        let grid = &mut self.grid;
        let hashers = &self.hashers;
        let signs = &self.signs;
        bas_hash::bucket_rows_each(hashers, items, |row, item, b, delta: f64| {
            grid.add_f64(
                row,
                b,
                row_sign(&hashers[row], &signs[row], item) as f64 * delta,
            );
        });
    }

    fn estimate(&self, item: u64) -> f64 {
        median_of_rows(self.params.depth, |row| {
            let b = self.hashers[row].bucket(item);
            row_sign(&self.hashers[row], &self.signs[row], item) as f64 * self.grid.get_f64(row, b)
        })
    }

    fn universe(&self) -> u64 {
        self.params.n
    }

    fn size_in_words(&self) -> usize {
        self.grid.len()
    }

    fn label(&self) -> &'static str {
        "CS"
    }
}

impl<B: SharedBackend> SharedSketch for CountSketch<B> {
    #[inline]
    fn update_shared(&self, item: u64, delta: f64) {
        debug_assert!(item < self.params.n, "item outside universe");
        for row in 0..self.params.depth {
            let b = self.hashers[row].bucket(item);
            let s = row_sign(&self.hashers[row], &self.signs[row], item) as f64;
            self.grid.add_shared_f64(row, b, s * delta);
        }
    }

    /// Shared batched update through the coalescing kernel
    /// [`CellGrid::apply_rows_shared_f64`]: duplicate hits on one cell
    /// collapse into a single atomic RMW per block (signed deltas
    /// summed in item order — bit-for-bit with sequential ingest for
    /// integer deltas).
    fn update_batch_shared(&self, items: &[(u64, f64)]) {
        #[cfg(debug_assertions)]
        for &(item, _) in items {
            debug_assert!(item < self.params.n, "item outside universe");
        }
        if let Some(rd) = RowDeriver::from_hashers(&self.hashers) {
            let derive = crate::util::onehash_signed_block_derive(&rd, self.params.depth);
            self.grid.apply_rows_shared_f64(items, derive);
            return;
        }
        let hashers = &self.hashers;
        let signs = &self.signs;
        self.grid.apply_rows_shared_f64(items, |block, cols, vals| {
            let n = block.len();
            for (i, &(x, delta)) in block.iter().enumerate() {
                for (row, h) in hashers.iter().enumerate() {
                    cols[row * n + i] = h.bucket(x);
                    vals[row * n + i] = row_sign(h, &signs[row], x) as f64 * delta;
                }
            }
        });
    }
}

impl<B: CounterBackend> Snapshottable for CountSketch<B> {
    type Snapshot = CounterMatrix<f64, Dense>;

    fn make_snapshot(&self) -> Self::Snapshot {
        CounterMatrix::new(self.params.width, self.params.depth)
    }

    fn snapshot_into(&self, snap: &mut Self::Snapshot) {
        self.grid.snapshot_into_f64(snap);
    }

    fn estimate_in(&self, snap: &Self::Snapshot, item: u64) -> f64 {
        median_of_rows(self.params.depth, |row| {
            let b = self.hashers[row].bucket(item);
            row_sign(&self.hashers[row], &self.signs[row], item) as f64 * snap.get(row, b)
        })
    }

    /// Count-Sketch is linear, so snapshots add: always `Ok`.
    fn merge_snapshot(
        &self,
        snap: &mut Self::Snapshot,
        other: &Self::Snapshot,
    ) -> Result<(), MergeError> {
        snap.add_matrix(other);
        Ok(())
    }

    /// Linear, so snapshots subtract exactly: always `Ok`.
    fn subtract_snapshot(
        &self,
        snap: &mut Self::Snapshot,
        other: &Self::Snapshot,
    ) -> Result<(), MergeError> {
        snap.sub_matrix(other);
        Ok(())
    }
}

/// Count-Sketch is linear: a shipped plane adds straight into the
/// live grid (signs live in the hashers, which the seed rebuilds).
impl<B: SharedBackend> crate::snapshot::AbsorbPlane for CountSketch<B> {
    fn absorb_plane_shared(&self, plane: &Self::Snapshot) -> Result<(), MergeError> {
        self.grid.add_plane_shared(plane);
        Ok(())
    }
}

impl<B: CounterBackend> CountSketch<B> {
    fn check_compatible(&self, other: &Self) -> Result<(), MergeError> {
        if self.params.width != other.params.width || self.params.depth != other.params.depth {
            return Err(MergeError::ShapeMismatch {
                what: "widths/depths",
            });
        }
        if self.params.n != other.params.n {
            return Err(MergeError::ShapeMismatch { what: "universes" });
        }
        if self.params.cell != other.params.cell {
            return Err(MergeError::ShapeMismatch {
                what: "cell widths",
            });
        }
        if self.params.seed != other.params.seed || self.params.hash_kind != other.params.hash_kind
        {
            return Err(MergeError::SeedMismatch);
        }
        Ok(())
    }
}

impl<B: CounterBackend> MergeableSketch for CountSketch<B> {
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        self.check_compatible(other)?;
        self.grid.add_grid(&other.grid);
        Ok(())
    }

    /// Exact counter subtraction (Count-Sketch is linear).
    fn subtract_from(&mut self, other: &Self) -> Result<(), MergeError> {
        self.check_compatible(other)?;
        self.grid.sub_grid(&other.grid);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Atomic;

    fn params(n: u64, w: usize, d: usize) -> SketchParams {
        SketchParams::new(n, w, d).with_seed(7)
    }

    #[test]
    fn single_item_recovers_exactly() {
        let mut cs = CountSketch::new(&params(1000, 128, 7));
        cs.update(42, 9.0);
        assert_eq!(cs.estimate(42), 9.0);
    }

    #[test]
    fn turnstile_updates_cancel() {
        let mut cs = CountSketch::new(&params(200, 64, 5));
        cs.update(5, 3.0);
        cs.update(5, -1.0);
        cs.update(5, -2.0);
        for j in 0..200 {
            assert_eq!(cs.estimate(j), 0.0, "item {j}");
        }
    }

    #[test]
    fn estimator_is_unbiased_empirically() {
        // Across many seeds, the mean estimate of a fixed coordinate
        // should converge to its true value even with heavy collisions.
        let n = 64u64;
        let mut x = vec![1.0f64; n as usize];
        x[0] = 10.0;
        let trials = 300;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut cs = CountSketch::new(&SketchParams::new(n, 4, 1).with_seed(seed));
            cs.ingest_vector(&x);
            sum += cs.estimate(0);
        }
        let mean = sum / trials as f64;
        assert!((mean - 10.0).abs() < 1.5, "mean = {mean}");
    }

    #[test]
    fn merge_equals_combined_stream() {
        let p = params(300, 32, 5);
        let mut a = CountSketch::new(&p);
        let mut b = CountSketch::new(&p);
        let mut combined = CountSketch::new(&p);
        for i in 0..300u64 {
            let (va, vb) = ((i % 7) as f64, (i % 3) as f64);
            a.update(i, va);
            b.update(i, vb);
            combined.update(i, va + vb);
        }
        a.merge_from(&b).unwrap();
        for j in (0..300u64).step_by(13) {
            assert!((a.estimate(j) - combined.estimate(j)).abs() < 1e-9);
        }
    }

    #[test]
    fn update_batch_matches_one_by_one_exactly() {
        let p = params(300, 32, 5);
        let mut batched = CountSketch::new(&p);
        let mut looped = CountSketch::new(&p);
        let items: Vec<(u64, f64)> = (0..400u64)
            .map(|i| (i * 11 % 300, ((i % 9) as f64 - 4.0) * 0.5))
            .collect();
        batched.update_batch(&items);
        for &(i, d) in &items {
            looped.update(i, d);
        }
        for j in 0..300u64 {
            assert_eq!(batched.estimate(j), looped.estimate(j), "item {j}");
        }
    }

    #[test]
    fn atomic_backend_matches_dense_bit_for_bit() {
        let p = params(300, 32, 5);
        let mut dense = CountSketch::new(&p);
        let mut atomic = CountSketch::<Atomic>::with_backend(&p);
        let items: Vec<(u64, f64)> = (0..400u64)
            .map(|i| (i * 11 % 300, ((i % 9) as f64 - 4.0) * 0.5))
            .collect();
        dense.update_batch(&items);
        atomic.update_batch(&items);
        for j in 0..300u64 {
            assert_eq!(dense.estimate(j), atomic.estimate(j), "item {j}");
        }
    }

    #[test]
    fn shared_updates_match_exclusive_updates() {
        let p = params(200, 32, 5);
        let mut exclusive = CountSketch::<Atomic>::with_backend(&p);
        let shared = CountSketch::<Atomic>::with_backend(&p);
        let items: Vec<(u64, f64)> = (0..300u64).map(|i| (i % 200, (1 + i % 5) as f64)).collect();
        for &(i, d) in &items {
            exclusive.update(i, d);
            shared.update_shared(i, d);
        }
        let batch_shared = CountSketch::<Atomic>::with_backend(&p);
        batch_shared.update_batch_shared(&items);
        for j in 0..200u64 {
            assert_eq!(exclusive.estimate(j), shared.estimate(j), "item {j}");
            assert_eq!(exclusive.estimate(j), batch_shared.estimate(j), "item {j}");
        }
    }

    #[test]
    fn merge_rejects_hash_kind_mismatch() {
        use bas_hash::HashKind;
        let mut a = CountSketch::new(&params(10, 8, 2));
        let b = CountSketch::new(
            &SketchParams::new(10, 8, 2)
                .with_seed(7)
                .with_hash_kind(HashKind::Tabulation),
        );
        assert_eq!(a.merge_from(&b), Err(MergeError::SeedMismatch));
    }

    #[test]
    fn signed_column_sums_match_brute_force() {
        let p = params(100, 16, 3);
        let cs = CountSketch::new(&p);
        let psis = cs.signed_column_sums();
        for row in 0..3 {
            let mut expect = vec![0.0f64; 16];
            for j in 0..100u64 {
                expect[cs.bucket_of(row, j)] += cs.sign_of(row, j);
            }
            assert_eq!(psis.row_snapshot(row), expect, "row {row}");
        }
    }

    #[test]
    fn beats_count_median_on_l2_friendly_tails() {
        // Long-tail input: CS (l2 guarantee) should have smaller average
        // error than CM (l1 guarantee) for equal space.
        use crate::count_median::CountMedian;
        let n = 5000u64;
        let mut x = vec![0.0f64; n as usize];
        for (i, v) in x.iter_mut().enumerate() {
            *v = 1000.0 / (i + 1) as f64; // Zipf-ish tail
        }
        let p = SketchParams::new(n, 100, 9).with_seed(3);
        let mut cs = CountSketch::new(&p);
        let mut cm = CountMedian::new(&p);
        cs.ingest_vector(&x);
        cm.ingest_vector(&x);
        let err = |est: &dyn Fn(u64) -> f64| -> f64 {
            (0..n).map(|j| (est(j) - x[j as usize]).abs()).sum::<f64>() / n as f64
        };
        let cs_err = err(&|j| cs.estimate(j));
        let cm_err = err(&|j| cm.estimate(j));
        assert!(
            cs_err < cm_err,
            "CS avg err {cs_err} should beat CM avg err {cm_err}"
        );
    }

    #[test]
    fn inner_product_estimates_dot() {
        let n = 500u64;
        let p = params(n, 256, 9);
        let mut a = CountSketch::new(&p);
        let mut b = CountSketch::new(&p);
        // Sparse disjoint + overlapping support.
        a.update(3, 10.0);
        a.update(7, 4.0);
        a.update(100, -2.0);
        b.update(3, 5.0);
        b.update(100, 6.0);
        b.update(200, 9.0);
        // True <x, y> = 10*5 + (-2)*6 = 38.
        let est = a.inner_product(&b).unwrap();
        assert!((est - 38.0).abs() < 8.0, "est = {est}");
    }

    #[test]
    fn inner_product_self_is_l2_norm_squared() {
        let n = 300u64;
        let p = params(n, 512, 9);
        let mut a = CountSketch::new(&p);
        for i in 0..20u64 {
            a.update(i, (i + 1) as f64);
        }
        let truth: f64 = (1..=20u64).map(|v| (v * v) as f64).sum();
        let est = a.inner_product(&a).unwrap();
        // Self inner product overestimates slightly (collision squares
        // add), but should be close for sparse input.
        assert!((est - truth).abs() < 0.15 * truth, "est = {est} vs {truth}");
    }

    #[test]
    fn snapshot_estimates_match_live_when_quiescent() {
        let p = params(300, 64, 5);
        let mut cs = CountSketch::new(&p);
        let items: Vec<(u64, f64)> = (0..500u64)
            .map(|i| (i * 17 % 300, ((i % 9) as f64 - 4.0)))
            .collect();
        cs.update_batch(&items);
        let snap = cs.snapshot();
        for j in 0..300u64 {
            assert_eq!(cs.estimate_in(&snap, j), cs.estimate(j), "item {j}");
        }
    }

    #[test]
    fn inner_product_in_matches_live_inner_product() {
        let p = params(500, 256, 9);
        let mut a = CountSketch::new(&p);
        let mut b = CountSketch::new(&p);
        a.update(3, 10.0);
        a.update(100, -2.0);
        b.update(3, 5.0);
        b.update(100, 6.0);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(
            a.inner_product_in(&sa, &b, &sb).unwrap(),
            a.inner_product(&b).unwrap()
        );
    }

    #[test]
    fn inner_product_in_rejects_seed_mismatch() {
        let a = CountSketch::new(&params(10, 8, 2));
        let b = CountSketch::new(&SketchParams::new(10, 8, 2).with_seed(99));
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(
            a.inner_product_in(&sa, &b, &sb),
            Err(MergeError::SeedMismatch)
        );
    }

    #[test]
    fn inner_product_rejects_mismatch() {
        let a = CountSketch::new(&params(10, 8, 2));
        let b = CountSketch::new(&SketchParams::new(10, 8, 2).with_seed(99));
        assert!(a.inner_product(&b).is_err());
    }

    #[test]
    fn label_and_size() {
        let cs = CountSketch::new(&params(10, 8, 2));
        assert_eq!(cs.label(), "CS");
        assert_eq!(cs.size_in_words(), 16);
    }
}
