//! Shared configuration, traits and errors for all sketches.

use crate::storage::{CellWidth, EpochCounter};
use bas_hash::HashKind;

/// Configuration shared by every sketch in the workspace.
///
/// Mirrors the paper's parameterization: a universe size `n`, a width `s`
/// (buckets per row — `s = c_s·k` for the trade-off parameter `k`), and a
/// depth `d` (number of independent rows — `Θ(log n)` in the theorems,
/// 9–10 in the paper's experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchParams {
    /// Universe size: items are indices in `[0, n)`.
    pub n: u64,
    /// Width `s`: number of buckets per row.
    pub width: usize,
    /// Depth `d`: number of independent rows.
    pub depth: usize,
    /// Master seed; equal seeds produce identical hash functions, which
    /// is required for merging and for distributed use.
    pub seed: u64,
    /// Hash family used for bucket (and sign) functions.
    pub hash_kind: HashKind,
    /// Counter cell width of the grid (default
    /// [`CellWidth::F64`]; compact integer widths trade fractional
    /// deltas and overflow headroom for cache density — see
    /// [`CellGrid`](crate::storage::CellGrid)).
    pub cell: CellWidth,
}

impl SketchParams {
    /// Creates parameters with the default seed (0) and the
    /// Carter–Wegman hash family.
    pub fn new(n: u64, width: usize, depth: usize) -> Self {
        assert!(n > 0, "universe must be non-empty");
        assert!(width > 0, "width must be positive");
        assert!(depth > 0, "depth must be positive");
        Self {
            n,
            width,
            depth,
            seed: 0,
            hash_kind: HashKind::CarterWegman,
            cell: CellWidth::F64,
        }
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the hash family.
    pub fn with_hash_kind(mut self, kind: HashKind) -> Self {
        self.hash_kind = kind;
        self
    }

    /// Sets the counter cell width.
    pub fn with_cell(mut self, cell: CellWidth) -> Self {
        self.cell = cell;
        self
    }

    /// Width and depth as used by the paper's sizing discussions:
    /// total counter words `s·d` for full-word cells, scaled down for
    /// compact cell widths (`s·d/2` at `U32`, `s·d/4` at `U16` — the
    /// same bit-packed accounting Count-Min-Log already uses for its
    /// 16-bit levels). The [`Atomic`](crate::storage::Atomic) backend
    /// spends a full word per cell regardless; this counts the dense
    /// (serving/snapshot) representation.
    pub fn counter_words(&self) -> usize {
        (self.width * self.depth * self.cell.bytes()).div_ceil(8)
    }

    /// Checks that counter planes built under `self` and `other` may
    /// be combined **in counter space** (added or subtracted cell by
    /// cell): same shape, same universe, and — the part an adaptive-
    /// robustness rotation makes easy to violate — the same hasher
    /// configuration. Two planes whose seeds differ address their
    /// counters through different hash functions; adding them cell by
    /// cell produces the sketch of no meaningful vector, so the
    /// mismatch is a typed error, never a silent blend. Heterogeneous-
    /// seed planes combine in *estimate space* instead
    /// (`bas_serve::EstimateCombine`).
    ///
    /// # Errors
    /// [`MergeError::ShapeMismatch`] when widths, depths, or universes
    /// differ; [`MergeError::PlaneSeedMismatch`] when shapes agree but
    /// the hasher configurations (seed or hash family) do not.
    pub fn check_counter_compatible(&self, other: &SketchParams) -> Result<(), MergeError> {
        if self.width != other.width || self.depth != other.depth {
            return Err(MergeError::ShapeMismatch {
                what: "widths/depths",
            });
        }
        if self.n != other.n {
            return Err(MergeError::ShapeMismatch { what: "universes" });
        }
        if self.cell != other.cell {
            return Err(MergeError::ShapeMismatch {
                what: "cell widths",
            });
        }
        if self.seed != other.seed || self.hash_kind != other.hash_kind {
            return Err(MergeError::PlaneSeedMismatch {
                left: self.seed,
                right: other.seed,
            });
        }
        Ok(())
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for SketchParams {
    /// Hand-written (not derived) so the `cell` field is **omitted**
    /// when it holds the default `F64`: the wire form of every
    /// pre-`CellWidth` config — tenant transfers, sealed snapshots,
    /// journal lines — stays byte-identical, and old readers never see
    /// an unknown key.
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries = vec![
            ("n".to_string(), serde::Content::U64(self.n)),
            ("width".to_string(), serde::Content::U64(self.width as u64)),
            ("depth".to_string(), serde::Content::U64(self.depth as u64)),
            ("seed".to_string(), serde::Content::U64(self.seed)),
            (
                "hash_kind".to_string(),
                serde::to_content(&self.hash_kind)
                    .map_err(|e| <S::Error as serde::ser::Error>::custom(e))?,
            ),
        ];
        if self.cell != CellWidth::F64 {
            entries.push((
                "cell".to_string(),
                serde::to_content(&self.cell)
                    .map_err(|e| <S::Error as serde::ser::Error>::custom(e))?,
            ));
        }
        serializer.serialize_content(serde::Content::Map(entries))
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for SketchParams {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let mut entries = match deserializer.deserialize_content()? {
            serde::Content::Map(entries) => entries,
            _ => return Err(D::Error::custom("expected a map for SketchParams")),
        };
        let mut take = |key: &str| {
            entries
                .iter()
                .position(|(k, _)| k == key)
                .map(|at| entries.swap_remove(at).1)
        };
        macro_rules! field {
            ($key:literal) => {
                serde::from_content(take($key).ok_or_else(|| {
                    D::Error::custom(concat!("missing field `", $key, "` in SketchParams"))
                })?)
                .map_err(|e| D::Error::custom(format!(concat!("field `", $key, "`: {}"), e)))?
            };
        }
        let n: u64 = field!("n");
        let width: usize = field!("width");
        let depth: usize = field!("depth");
        let seed: u64 = field!("seed");
        let hash_kind: HashKind = field!("hash_kind");
        // Absent in every pre-CellWidth snapshot: default to F64.
        let cell: CellWidth = match take("cell") {
            Some(content) => serde::from_content(content)
                .map_err(|e| D::Error::custom(format!("field `cell`: {e}")))?,
            None => CellWidth::F64,
        };
        Ok(SketchParams {
            n,
            width,
            depth,
            seed,
            hash_kind,
            cell,
        })
    }
}

/// A sketch whose hasher configuration can be read back and replaced —
/// the construction-level primitive under bounded-lifetime seed
/// rotation.
///
/// [`config`](Reseedable::config) exposes the *effective*
/// [`SketchParams`] (after any width normalization the hash family
/// performed), so a second party can reconstruct an identically-hashed
/// sketch, and a sealed plane can carry the configuration it was
/// counted under. [`reseeded`](Reseedable::reseeded) builds a fresh,
/// empty sketch of the same shape under a new seed — same universe,
/// width, depth, backend and policy; new hash functions, zeroed
/// counters. Rotation drivers call it at every interval boundary so no
/// seed's lifetime exceeds the serving window.
///
/// Implemented by the servable grid sketches (Count-Median,
/// Count-Sketch, Count-Min, the dyadic range-sum stack) and delegated
/// by the epoch wrappers in `bas_pipeline`. The non-linear baselines
/// could implement it too, but nothing rotates them today.
pub trait Reseedable: Sized {
    /// The effective parameters this sketch was built with (width may
    /// have been rounded up by the hash family; the stored value is
    /// the rounded one).
    fn config(&self) -> SketchParams;

    /// A fresh, empty sketch identical to `self` in every respect
    /// except the seed: new hash functions, zeroed counters.
    fn reseeded(&self, seed: u64) -> Self;
}

/// A frequency sketch answering point queries: "what is `x_i`?".
///
/// `update` follows the streaming model of the paper's §1: an update
/// `(i, Δ)` performs `x ← x + Δ·e_i`. Linear sketches accept any real
/// `Δ` (the turnstile model); the conservative-update baselines only
/// accept `Δ ≥ 0` (the cash-register model) and say so in their docs.
pub trait PointQuerySketch {
    /// Applies the update `x_item ← x_item + delta`.
    fn update(&mut self, item: u64, delta: f64);

    /// Applies a batch of updates, equivalent to calling [`update`]
    /// once per `(item, delta)` pair in order.
    ///
    /// The default implementation is exactly that loop. Sketches backed
    /// by a counter grid override it with a **dispatch-hoisted** pass
    /// (`bas_hash::bucket_rows_each`): all rows of a sketch share one
    /// hash family, so the batch path downcasts the row hashers to
    /// their concrete family once per batch and runs the item×row loop
    /// fully monomorphized — no per-item enum dispatch. Iteration
    /// order is unchanged, so the overrides are bit-for-bit equivalent
    /// to the one-by-one loop (the property tests in
    /// `tests/batching.rs` assert this for every sketch).
    ///
    /// This is the single-node half of the paper's linearity story: the
    /// same restructuring that lets distributed sites sketch
    /// independently (§5.5) lets one node amortize per-row setup over a
    /// batch.
    ///
    /// ```
    /// use bas_sketch::{CountMedian, PointQuerySketch, SketchParams};
    ///
    /// let params = SketchParams::new(100, 32, 5).with_seed(1);
    /// let mut batched = CountMedian::new(&params);
    /// batched.update_batch(&[(7, 2.0), (9, 1.0), (7, 3.0)]);
    ///
    /// let mut one_by_one = CountMedian::new(&params);
    /// one_by_one.update(7, 2.0);
    /// one_by_one.update(9, 1.0);
    /// one_by_one.update(7, 3.0);
    ///
    /// for j in 0..100 {
    ///     assert_eq!(batched.estimate(j), one_by_one.estimate(j));
    /// }
    /// ```
    ///
    /// [`update`]: PointQuerySketch::update
    fn update_batch(&mut self, items: &[(u64, f64)]) {
        for &(item, delta) in items {
            self.update(item, delta);
        }
    }

    /// Estimates the current value of `x_item`.
    fn estimate(&self, item: u64) -> f64;

    /// Universe size `n`.
    fn universe(&self) -> u64;

    /// Total size of the sketch in 64-bit words, the unit the paper uses
    /// when comparing sketch sizes ("all algorithms use `10s` words").
    fn size_in_words(&self) -> usize;

    /// Short algorithm label used in experiment tables (e.g. `"CS"`).
    fn label(&self) -> &'static str;

    /// Recovers an estimate of the whole vector — the recovery phase
    /// `x̂ = R(Φx)` of the paper.
    fn recover_all(&self) -> Vec<f64> {
        (0..self.universe()).map(|i| self.estimate(i)).collect()
    }

    /// Feeds an entire frequency vector through the sketch, one update
    /// per non-zero coordinate (the offline "sketching phase" `Φx`).
    fn ingest_vector(&mut self, x: &[f64]) {
        assert!(
            x.len() as u64 <= self.universe(),
            "vector longer than the universe"
        );
        for (i, &v) in x.iter().enumerate() {
            if v != 0.0 {
                self.update(i as u64, v);
            }
        }
    }
}

/// A sketch whose counters can be fed through a **shared reference**,
/// lock-free — the ingest contract behind
/// `bas_pipeline::ConcurrentIngest`, where N threads feed *one*
/// sketch (1× memory) instead of N same-seed shards (N× memory).
///
/// Implemented by the linear, matrix-backed sketches when their
/// [`CounterBackend`](crate::storage::CounterBackend) supports shared
/// accumulation (today: the [`Atomic`](crate::storage::Atomic)
/// backend). Sketches whose updates are state-dependent (CM-CU,
/// CML-CU, the bias-maintaining S/R types) cannot implement this —
/// their read-modify-write cycles are exactly what lock-freedom per
/// counter cannot express, the same structural property that already
/// excludes them from merging.
///
/// # Exactness
/// Shared updates land in nondeterministic order. For integer-valued
/// deltas `f64` addition is exact and therefore order-independent:
/// the concurrent result is bit-for-bit equal to any sequential
/// ingest. For general reals, each counter may differ in the last ulp
/// (same caveat as shard merging).
///
/// # Consistency
/// Individual counter updates are atomic, but a query concurrent with
/// ingest may observe some rows of an in-flight update and not others.
/// Quiesce writers (as `ConcurrentIngest` does around `flush`) before
/// querying for exact results.
pub trait SharedSketch: PointQuerySketch + Sync {
    /// Applies `x_item ← x_item + delta` through a shared reference.
    fn update_shared(&self, item: u64, delta: f64);

    /// Applies a batch of updates through a shared reference,
    /// equivalent to calling
    /// [`update_shared`](SharedSketch::update_shared) per item. The
    /// matrix-backed sketches override it with the same
    /// dispatch-hoisted pass as
    /// [`update_batch`](PointQuerySketch::update_batch).
    fn update_batch_shared(&self, items: &[(u64, f64)]) {
        for &(item, delta) in items {
            self.update_shared(item, delta);
        }
    }

    /// The write-epoch counter this sketch publishes to snapshot
    /// readers, if any.
    ///
    /// Plain shared sketches return `None` — they accept concurrent
    /// ingest but offer readers no consistency discipline beyond
    /// per-cell atomicity. Epoch-wrapped sketches
    /// (`bas_pipeline::EpochSketch`) return their counter, and ingest
    /// drivers such as `ConcurrentIngest` bracket every flush in a
    /// write section so seqlock snapshot readers can detect (and retry
    /// across) in-flight flushes.
    fn write_epoch(&self) -> Option<&EpochCounter> {
        None
    }

    /// Notes that a flush applying `updates` updates carrying `mass`
    /// total delta has completed. Called by ingest drivers **inside**
    /// the write section (after the workers join, before the epoch
    /// closes), so epoch-consistent readers always observe a stream
    /// position that matches the counters. Plain sketches keep no such
    /// bookkeeping: the default is a no-op.
    fn note_applied(&self, _updates: u64, _mass: f64) {}
}

/// Error returned when two sketches cannot be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// Widths, depths, or universes differ.
    ShapeMismatch {
        /// Human-readable description of the differing dimension.
        what: &'static str,
    },
    /// Seeds differ, so the sketches used different hash functions and
    /// their counters are not addressable by the same indices.
    SeedMismatch,
    /// The operation has no inverse for this sketch — e.g. subtracting
    /// from an S/R sketch whose sampler state cannot un-absorb
    /// contributions.
    NotInvertible {
        /// Human-readable description of the non-invertible state.
        what: &'static str,
    },
    /// Two counter planes were sealed under different hasher
    /// configurations (a seed-rotation boundary lies between them);
    /// combining them cell by cell is meaningless. Unlike the bare
    /// [`SeedMismatch`](MergeError::SeedMismatch), this variant names
    /// both seeds, because in a rotating deployment "which rotation
    /// did this plane come from" is the first diagnostic question.
    /// Heterogeneous-seed planes combine in estimate space instead.
    PlaneSeedMismatch {
        /// Seed of the left-hand (accumulating) plane.
        left: u64,
        /// Seed of the right-hand (incoming) plane.
        right: u64,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::ShapeMismatch { what } => {
                write!(f, "cannot merge sketches: {what} differ")
            }
            MergeError::SeedMismatch => write!(
                f,
                "cannot merge sketches built with different seeds (hash functions differ)"
            ),
            MergeError::NotInvertible { what } => {
                write!(f, "cannot subtract sketches: {what}")
            }
            MergeError::PlaneSeedMismatch { left, right } => {
                write!(
                    f,
                    "cannot combine counter planes sealed under different hasher \
                     configurations (seeds {left} vs {right}); combine their \
                     estimates instead"
                )
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// A sketch that can absorb another sketch of the *same configuration*,
/// yielding the sketch of the summed input vectors.
///
/// This is the linearity property `Φx = Φx¹ + … + Φxᵗ` the paper's
/// distributed protocol relies on (§1, §5.5). Non-linear baselines
/// (CM-CU, CML-CU) deliberately do not implement it — the paper calls out
/// that they "cannot be directly used in the distributed setting" (§2).
pub trait MergeableSketch: PointQuerySketch {
    /// Adds `other`'s counters into `self`.
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError>;

    /// Subtracts `other`'s counters from `self` — the inverse of
    /// [`merge_from`](MergeableSketch::merge_from), valid by the same
    /// linearity read backwards: if `self` sketches a stream and
    /// `other` sketches a *prefix* of it, the result sketches the
    /// suffix (`Φx^{(a,b]} = Φx^{(0,b]} − Φx^{(0,a]}`). This is the
    /// sketch-level form of the windowed query plane's plane
    /// arithmetic.
    ///
    /// The default returns [`MergeError::NotInvertible`]: sketches
    /// with auxiliary non-counter state (the S/R types' samplers)
    /// cannot un-absorb a contribution. The matrix-backed linear
    /// sketches override it with exact counter subtraction.
    ///
    /// # Errors
    /// Returns a [`MergeError`] when the configurations differ or the
    /// sketch state is not invertible.
    fn subtract_from(&mut self, _other: &Self) -> Result<(), MergeError> {
        Err(MergeError::NotInvertible {
            what: "this sketch keeps non-counter state with no inverse",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal exact sketch that does *not* override `update_batch`,
    /// pinning down the default implementation's semantics.
    struct Exact {
        x: Vec<f64>,
    }

    impl PointQuerySketch for Exact {
        fn update(&mut self, item: u64, delta: f64) {
            self.x[item as usize] += delta;
        }
        fn estimate(&self, item: u64) -> f64 {
            self.x[item as usize]
        }
        fn universe(&self) -> u64 {
            self.x.len() as u64
        }
        fn size_in_words(&self) -> usize {
            self.x.len()
        }
        fn label(&self) -> &'static str {
            "exact"
        }
    }

    #[test]
    fn default_update_batch_is_the_one_by_one_loop() {
        let mut a = Exact { x: vec![0.0; 8] };
        let mut b = Exact { x: vec![0.0; 8] };
        let items = [(3u64, 2.0), (5, -1.5), (3, 0.5)];
        a.update_batch(&items);
        for &(i, d) in &items {
            b.update(i, d);
        }
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn params_builder() {
        let p = SketchParams::new(100, 8, 3)
            .with_seed(9)
            .with_hash_kind(HashKind::Tabulation);
        assert_eq!(p.n, 100);
        assert_eq!(p.width, 8);
        assert_eq!(p.depth, 3);
        assert_eq!(p.seed, 9);
        assert_eq!(p.hash_kind, HashKind::Tabulation);
        assert_eq!(p.counter_words(), 24);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        SketchParams::new(10, 0, 1);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        SketchParams::new(10, 1, 0);
    }

    #[test]
    fn merge_error_messages() {
        let e = MergeError::ShapeMismatch { what: "widths" };
        assert!(e.to_string().contains("widths"));
        assert!(MergeError::SeedMismatch.to_string().contains("seeds"));
        let e = MergeError::PlaneSeedMismatch { left: 3, right: 9 };
        let msg = e.to_string();
        assert!(msg.contains("seeds 3 vs 9"), "{msg}");
        assert!(msg.contains("estimate"), "{msg}");
    }

    #[test]
    fn counter_words_scales_with_cell_width() {
        let p = SketchParams::new(100, 8, 3);
        assert_eq!(p.counter_words(), 24);
        assert_eq!(p.with_cell(CellWidth::I64).counter_words(), 24);
        assert_eq!(p.with_cell(CellWidth::U32).counter_words(), 12);
        assert_eq!(p.with_cell(CellWidth::U16).counter_words(), 6);
        // Partial words round up.
        let odd = SketchParams::new(100, 3, 1).with_cell(CellWidth::U16);
        assert_eq!(odd.counter_words(), 1);
    }

    #[test]
    fn cell_width_mismatch_is_a_shape_error() {
        let base = SketchParams::new(100, 8, 3).with_seed(1);
        assert!(matches!(
            base.check_counter_compatible(&base.with_cell(CellWidth::U32)),
            Err(MergeError::ShapeMismatch {
                what: "cell widths"
            })
        ));
        assert_eq!(
            base.with_cell(CellWidth::U32)
                .check_counter_compatible(&base.with_cell(CellWidth::U32)),
            Ok(())
        );
    }

    #[cfg(feature = "serde")]
    #[test]
    fn params_serde_omits_default_cell_and_roundtrips() {
        let p = SketchParams::new(10, 4, 2).with_seed(1);
        let json = serde_json::to_string(&p).unwrap();
        assert!(!json.contains("cell"), "{json}");
        // A pre-CellWidth reader's map (no `cell` key) parses as F64.
        let back: SketchParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);

        let compact = p.with_cell(CellWidth::U16);
        let json = serde_json::to_string(&compact).unwrap();
        assert!(json.contains("\"cell\""), "{json}");
        let back: SketchParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, compact);
    }

    #[test]
    fn counter_compatibility_checks_shape_before_seed() {
        let base = SketchParams::new(100, 8, 3).with_seed(1);
        assert_eq!(base.check_counter_compatible(&base), Ok(()));
        assert!(matches!(
            base.check_counter_compatible(&SketchParams::new(100, 16, 3).with_seed(1)),
            Err(MergeError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            base.check_counter_compatible(&SketchParams::new(200, 8, 3).with_seed(1)),
            Err(MergeError::ShapeMismatch { what: "universes" })
        ));
        assert_eq!(
            base.check_counter_compatible(&base.with_seed(2)),
            Err(MergeError::PlaneSeedMismatch { left: 1, right: 2 })
        );
        // Same seed, different family: still different hash functions.
        assert!(matches!(
            base.check_counter_compatible(&base.with_hash_kind(HashKind::Tabulation)),
            Err(MergeError::PlaneSeedMismatch { .. })
        ));
    }
}
