//! Shared configuration, traits and errors for all sketches.

use bas_hash::HashKind;

/// Configuration shared by every sketch in the workspace.
///
/// Mirrors the paper's parameterization: a universe size `n`, a width `s`
/// (buckets per row — `s = c_s·k` for the trade-off parameter `k`), and a
/// depth `d` (number of independent rows — `Θ(log n)` in the theorems,
/// 9–10 in the paper's experiments).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchParams {
    /// Universe size: items are indices in `[0, n)`.
    pub n: u64,
    /// Width `s`: number of buckets per row.
    pub width: usize,
    /// Depth `d`: number of independent rows.
    pub depth: usize,
    /// Master seed; equal seeds produce identical hash functions, which
    /// is required for merging and for distributed use.
    pub seed: u64,
    /// Hash family used for bucket (and sign) functions.
    pub hash_kind: HashKind,
}

impl SketchParams {
    /// Creates parameters with the default seed (0) and the
    /// Carter–Wegman hash family.
    pub fn new(n: u64, width: usize, depth: usize) -> Self {
        assert!(n > 0, "universe must be non-empty");
        assert!(width > 0, "width must be positive");
        assert!(depth > 0, "depth must be positive");
        Self {
            n,
            width,
            depth,
            seed: 0,
            hash_kind: HashKind::CarterWegman,
        }
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the hash family.
    pub fn with_hash_kind(mut self, kind: HashKind) -> Self {
        self.hash_kind = kind;
        self
    }

    /// Width and depth as used by the paper's sizing discussions:
    /// total counter words `s·d`.
    pub fn counter_words(&self) -> usize {
        self.width * self.depth
    }
}

/// A frequency sketch answering point queries: "what is `x_i`?".
///
/// `update` follows the streaming model of the paper's §1: an update
/// `(i, Δ)` performs `x ← x + Δ·e_i`. Linear sketches accept any real
/// `Δ` (the turnstile model); the conservative-update baselines only
/// accept `Δ ≥ 0` (the cash-register model) and say so in their docs.
pub trait PointQuerySketch {
    /// Applies the update `x_item ← x_item + delta`.
    fn update(&mut self, item: u64, delta: f64);

    /// Estimates the current value of `x_item`.
    fn estimate(&self, item: u64) -> f64;

    /// Universe size `n`.
    fn universe(&self) -> u64;

    /// Total size of the sketch in 64-bit words, the unit the paper uses
    /// when comparing sketch sizes ("all algorithms use `10s` words").
    fn size_in_words(&self) -> usize;

    /// Short algorithm label used in experiment tables (e.g. `"CS"`).
    fn label(&self) -> &'static str;

    /// Recovers an estimate of the whole vector — the recovery phase
    /// `x̂ = R(Φx)` of the paper.
    fn recover_all(&self) -> Vec<f64> {
        (0..self.universe()).map(|i| self.estimate(i)).collect()
    }

    /// Feeds an entire frequency vector through the sketch, one update
    /// per non-zero coordinate (the offline "sketching phase" `Φx`).
    fn ingest_vector(&mut self, x: &[f64]) {
        assert!(
            x.len() as u64 <= self.universe(),
            "vector longer than the universe"
        );
        for (i, &v) in x.iter().enumerate() {
            if v != 0.0 {
                self.update(i as u64, v);
            }
        }
    }
}

/// Error returned when two sketches cannot be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// Widths, depths, or universes differ.
    ShapeMismatch {
        /// Human-readable description of the differing dimension.
        what: &'static str,
    },
    /// Seeds differ, so the sketches used different hash functions and
    /// their counters are not addressable by the same indices.
    SeedMismatch,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::ShapeMismatch { what } => {
                write!(f, "cannot merge sketches: {what} differ")
            }
            MergeError::SeedMismatch => write!(
                f,
                "cannot merge sketches built with different seeds (hash functions differ)"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// A sketch that can absorb another sketch of the *same configuration*,
/// yielding the sketch of the summed input vectors.
///
/// This is the linearity property `Φx = Φx¹ + … + Φxᵗ` the paper's
/// distributed protocol relies on (§1, §5.5). Non-linear baselines
/// (CM-CU, CML-CU) deliberately do not implement it — the paper calls out
/// that they "cannot be directly used in the distributed setting" (§2).
pub trait MergeableSketch: PointQuerySketch {
    /// Adds `other`'s counters into `self`.
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_builder() {
        let p = SketchParams::new(100, 8, 3)
            .with_seed(9)
            .with_hash_kind(HashKind::Tabulation);
        assert_eq!(p.n, 100);
        assert_eq!(p.width, 8);
        assert_eq!(p.depth, 3);
        assert_eq!(p.seed, 9);
        assert_eq!(p.hash_kind, HashKind::Tabulation);
        assert_eq!(p.counter_words(), 24);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        SketchParams::new(10, 0, 1);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        SketchParams::new(10, 1, 0);
    }

    #[test]
    fn merge_error_messages() {
        let e = MergeError::ShapeMismatch { what: "widths" };
        assert!(e.to_string().contains("widths"));
        assert!(MergeError::SeedMismatch.to_string().contains("seeds"));
    }
}
