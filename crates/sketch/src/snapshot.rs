//! Frozen query views: the [`Snapshottable`] trait.
//!
//! Single-cell reads on an `Atomic`-backed sketch are always safe to
//! race with writers (each counter is one atomic word), but multi-cell
//! queries — median-of-rows point estimates, heavy-hitter scans, range
//! decompositions, inner products — combine many cells and can observe
//! a *mix* of two in-flight flushes. The query plane's answer is to
//! freeze a consistent dense copy of the counters and query that
//! instead. This module defines the contract every sketch implements
//! for it:
//!
//! * [`Snapshottable::snapshot_into`] copies the live counters into a
//!   caller-owned [`Snapshot`](Snapshottable::Snapshot) (a plain dense
//!   matrix, or a stack of them), reusing its storage so steady-state
//!   snapshots allocate nothing;
//! * `estimate_in` (and the sketch-specific `*_in` companions such as
//!   [`RangeSumSketch::query_in`](crate::RangeSumSketch::query_in))
//!   answer queries **from the snapshot's counters** using the live
//!   sketch's hash functions, which are immutable after construction;
//! * [`Snapshottable::merge_snapshot`] adds one snapshot into another —
//!   linearity (`Φx = Φx¹ + Φx²`) holds at the snapshot level exactly
//!   as it does at the sketch level, which is what lets a distributed
//!   coordinator aggregate per-site snapshots;
//! * [`Snapshottable::subtract_snapshot`] is its inverse — by the same
//!   linearity, `Φx^{(a,b]} = Φx^{(0,b]} − Φx^{(0,a]}`, so the sketch
//!   of a **time window** is one subtraction of two cumulative
//!   snapshots. This is the plane-arithmetic primitive under the
//!   tumbling/sliding serving policies in `bas_serve`.
//!
//! The *consistency* of the copy is not this trait's business: it only
//! promises a faithful cell-by-cell copy of whatever the counters held
//! during the copy. `bas_pipeline::epoch` layers the seqlock retry
//! discipline on top (copy, check the write epoch, retry if a flush
//! intervened), which upgrades the copy to "a settled state between
//! flushes — a prefix of the update stream".

use crate::traits::{MergeError, PointQuerySketch, SharedSketch};

/// A sketch that can freeze its counters into a dense, immutable,
/// cheaply-queryable view.
///
/// Implemented by all six sketches in this crate. The snapshot holds
/// *only counters*; hash functions stay on the live sketch (they are
/// immutable after construction, so sharing them across threads is
/// free), and every query method takes both.
///
/// ```
/// use bas_sketch::{CountMedian, PointQuerySketch, SketchParams, Snapshottable};
///
/// let params = SketchParams::new(1_000, 64, 5).with_seed(2);
/// let mut cm = CountMedian::new(&params);
/// cm.update(7, 4.0);
///
/// let mut snap = cm.make_snapshot();
/// cm.snapshot_into(&mut snap);
/// cm.update(7, 10.0); // the live sketch moves on...
///
/// assert_eq!(cm.estimate_in(&snap, 7), 4.0); // ...the snapshot does not
/// assert_eq!(cm.estimate(7), 14.0);
/// ```
pub trait Snapshottable: PointQuerySketch + Sync {
    /// The frozen dense view: plain owned data (no atomics, no hash
    /// state), safe to query from any thread.
    type Snapshot: Send + Sync + std::fmt::Debug;

    /// Allocates a zero-filled snapshot of the right shape for this
    /// sketch. Done once per reader; afterwards
    /// [`snapshot_into`](Snapshottable::snapshot_into) refills it
    /// without allocating.
    fn make_snapshot(&self) -> Self::Snapshot;

    /// Copies the sketch's current counters into `snap`, reusing its
    /// storage.
    ///
    /// # Panics
    /// Panics if `snap` was made for a different configuration (shape
    /// mismatch).
    fn snapshot_into(&self, snap: &mut Self::Snapshot);

    /// Point estimate of `x_item` computed from the snapshot's
    /// counters — the frozen counterpart of
    /// [`PointQuerySketch::estimate`]. On a quiescent sketch the two
    /// agree bit-for-bit.
    fn estimate_in(&self, snap: &Self::Snapshot, item: u64) -> f64;

    /// Adds `other`'s counters into `snap` element-wise — linearity at
    /// the snapshot level, used by the distributed coordinator to
    /// aggregate per-site snapshots.
    ///
    /// # Errors
    /// Returns a [`MergeError`] for sketches whose counters are not
    /// additive (CML-CU's log-scale levels, Count-Min with conservative
    /// update).
    ///
    /// # Panics
    /// Panics on shape mismatch between the two snapshots.
    fn merge_snapshot(
        &self,
        snap: &mut Self::Snapshot,
        other: &Self::Snapshot,
    ) -> Result<(), MergeError>;

    /// Subtracts `other`'s counters from `snap` element-wise — the
    /// inverse of [`merge_snapshot`](Snapshottable::merge_snapshot).
    ///
    /// For the linear sketches (Count-Median, Count-Sketch, plain
    /// Count-Min, the range-sum stack) this is **exact** plane
    /// arithmetic: if `other` is a cumulative snapshot at an earlier
    /// stream position, the result is bit-for-bit the sketch of the
    /// updates in between (on integer-delta streams, where `f64`
    /// addition is exact). The windowed query plane is built on this.
    ///
    /// For the state-dependent baselines — Count-Min with conservative
    /// update and CML-CU — subtraction is **approximate only**: their
    /// counters are running maxima / log-scale levels, not sums, so
    /// the difference of two cumulative snapshots merely approximates
    /// the window's counters (see the impls' docs for the exact
    /// semantics). They still return `Ok` so bounded-lifetime rotation
    /// remains *possible* on every sketch; callers needing exact
    /// windows should pick a linear sketch.
    ///
    /// # Panics
    /// Panics on shape mismatch between the two snapshots.
    fn subtract_snapshot(
        &self,
        snap: &mut Self::Snapshot,
        other: &Self::Snapshot,
    ) -> Result<(), MergeError>;

    /// Convenience: allocate a snapshot and fill it in one call.
    fn snapshot(&self) -> Self::Snapshot {
        let mut snap = self.make_snapshot();
        self.snapshot_into(&mut snap);
        snap
    }
}

/// A shared-backend sketch whose **live** counters can absorb a frozen
/// plane through a shared reference — the destination half of moving a
/// sketch between hosts.
///
/// Rebalance by linearity: a tenant's sketch is shipped as its counter
/// plane only (a [`Snapshot`](Snapshottable::Snapshot)); the
/// destination rebuilds the hashers deterministically from the same
/// [`SketchParams`](crate::SketchParams) seed and adds the shipped
/// plane into a freshly zeroed sketch. Because `Φx = Φx¹ + Φx²`
/// cell-wise, the rebuilt sketch's counters equal the original's — on
/// integer-delta streams (where `f64` addition is exact) **bit for
/// bit** — so every estimate the destination serves is identical to
/// what the source would have served.
///
/// The absorb goes through the lock-free
/// [`add_matrix_shared`](crate::CounterMatrix::add_matrix_shared)
/// path, so it composes with concurrent
/// [`update_shared`](SharedSketch::update_shared) writers the same way
/// any other shared write does.
pub trait AbsorbPlane: Snapshottable + SharedSketch {
    /// Adds `plane`'s counters into the live sketch cell-wise through
    /// a shared reference.
    ///
    /// # Errors
    /// Returns a [`MergeError`] for sketches whose counters are not
    /// additive (Count-Min with conservative update).
    ///
    /// # Panics
    /// Panics if `plane` was made for a different shape.
    fn absorb_plane_shared(&self, plane: &Self::Snapshot) -> Result<(), MergeError>;
}
